//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors this minimal shim. It keeps the bench binaries
//! compiling and lets `cargo bench` run every registered function a
//! small, fixed number of times with a single wall-clock measurement —
//! no warm-up, outlier analysis, or HTML reports.
//!
//! Crucially, `cargo test` also executes `harness = false` bench
//! binaries; the generated `main` detects that case (no `--bench` flag)
//! and exits immediately so test runs stay fast.

use std::time::{Duration, Instant};

/// Opaque black box: prevents the optimiser from deleting a benchmark
/// body by hiding the value behind a volatile read.
pub fn black_box<T>(x: T) -> T {
    // Same trick criterion uses on stable: a volatile read of the value.
    unsafe {
        let ret = std::ptr::read_volatile(&x);
        std::mem::forget(x);
        ret
    }
}

/// Measurement context handed to bench closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a displayable parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Build an id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Throughput annotation; recorded but only echoed in the report line.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Accepted for API compatibility; the shim runs a fixed iteration
    /// count regardless.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Record the per-iteration throughput for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark in this group with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            iters: self.criterion.iters,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher, input);
        self.criterion.report(
            &format!("{}/{}", self.name, id.id),
            &bencher,
            self.throughput,
        );
        self
    }

    /// Run one benchmark in this group without an input.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iters: self.criterion.iters,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        self.criterion.report(
            &format!("{}/{}", self.name, id.into()),
            &bencher,
            self.throughput,
        );
        self
    }

    /// End the group (no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// The bench driver.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { iters: 10 }
    }
}

impl Criterion {
    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            throughput: None,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iters: self.iters,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        self.report(&id.into(), &bencher, None);
        self
    }

    fn report(&self, id: &str, bencher: &Bencher, throughput: Option<Throughput>) {
        let per_iter = bencher.elapsed.as_nanos() / bencher.iters.max(1) as u128;
        let tp = match throughput {
            Some(Throughput::Elements(n)) => format!("  ({n} elems/iter)"),
            Some(Throughput::Bytes(n)) => format!("  ({n} bytes/iter)"),
            None => String::new(),
        };
        println!(
            "bench: {id}: {per_iter} ns/iter over {} iters{tp}",
            bencher.iters
        );
    }

    /// Whether this process was launched as a bench run (`--bench` flag,
    /// passed by `cargo bench` to harness=false targets).
    pub fn is_bench_invocation() -> bool {
        std::env::args().any(|a| a == "--bench")
    }
}

/// Register bench functions under a group name. Mirrors criterion's
/// macro shape: `criterion_group!(name, fn_a, fn_b);`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
    ($group:ident; $($rest:tt)*) => {
        $crate::criterion_group!($group, $($rest)*);
    };
}

/// Generate `main` for a bench binary. When the process is not invoked
/// with `--bench` (e.g. `cargo test` executing harness=false targets),
/// it exits immediately.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if !$crate::Criterion::is_bench_invocation() {
                return;
            }
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benches() {
        let mut c = Criterion::default();
        let mut ran = 0u64;
        {
            let mut g = c.benchmark_group("demo");
            g.sample_size(10).throughput(Throughput::Elements(4));
            g.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
                b.iter(|| {
                    ran += 1;
                    (0..n).sum::<u64>()
                });
            });
            g.finish();
        }
        assert!(ran >= 10);
    }

    #[test]
    fn black_box_returns_value() {
        assert_eq!(black_box(42), 42);
    }
}
