//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors this minimal, API-compatible subset instead of the
//! real `rand`. It provides exactly what the workspace uses:
//!
//! * [`rngs::StdRng`] / [`rngs::SmallRng`] — a deterministic splitmix64
//!   generator (NOT cryptographic, NOT the real StdRng stream);
//! * [`SeedableRng::seed_from_u64`];
//! * [`Rng::gen_range`] over integer and float ranges.
//!
//! Determinism per seed is the only property callers rely on (seeded
//! workload generators and reproducible schedules), and this shim keeps
//! it. Streams differ from the real `rand`, which is fine because no
//! golden values depend on the exact stream.

use std::ops::{Bound, RangeBounds};

/// Low-level generator interface: a source of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (modulo bias is acceptable here).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: RangeBounds<T>,
        Self: Sized,
    {
        T::sample_range(self, &range)
    }
}

impl<R: RngCore> Rng for R {}

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: Sized {
    /// Draw one sample from `range` using `rng`.
    fn sample_range<G: RngCore, R: RangeBounds<Self>>(rng: &mut G, range: &R) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<G: RngCore, R: RangeBounds<Self>>(rng: &mut G, range: &R) -> Self {
                let lo: i128 = match range.start_bound() {
                    Bound::Included(&b) => b as i128,
                    Bound::Excluded(&b) => b as i128 + 1,
                    Bound::Unbounded => <$t>::MIN as i128,
                };
                let hi: i128 = match range.end_bound() {
                    Bound::Included(&b) => b as i128,
                    Bound::Excluded(&b) => b as i128 - 1,
                    Bound::Unbounded => <$t>::MAX as i128,
                };
                assert!(lo <= hi, "cannot sample from an empty range");
                let width = (hi - lo + 1) as u128;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % width;
                (lo + draw as i128) as $t
            }
        }
    )*};
}

uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<G: RngCore, R: RangeBounds<Self>>(rng: &mut G, range: &R) -> Self {
                let lo = match range.start_bound() {
                    Bound::Included(&b) | Bound::Excluded(&b) => b,
                    Bound::Unbounded => 0.0,
                };
                let hi = match range.end_bound() {
                    Bound::Included(&b) | Bound::Excluded(&b) => b,
                    Bound::Unbounded => 1.0,
                };
                assert!(lo < hi, "cannot sample from an empty float range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}

uniform_float!(f32, f64);

/// The generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic splitmix64 generator (shim for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    /// Alias of [`StdRng`] in this shim.
    pub type SmallRng = StdRng;

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea & Flood): passes BigCrush, one u64 of
            // state, and every seed yields an independent-looking stream.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(-4i64..=3);
            assert!((-4..=3).contains(&v));
            let u = rng.gen_range(0u8..23);
            assert!(u < 23);
            let f = rng.gen_range(0.0f32..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn full_i64_range_does_not_overflow() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let _ = rng.gen_range(i64::MIN..=i64::MAX);
        }
    }
}
