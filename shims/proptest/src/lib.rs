//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors this minimal re-implementation of the proptest API
//! surface its test-suites use:
//!
//! * the [`proptest!`] macro (with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! * range strategies over integers, tuples of strategies,
//!   [`strategy::Strategy::prop_map`], [`strategy::Strategy::prop_filter`],
//!   [`collection::vec`], [`sample::select`] and [`strategy::Just`].
//!
//! Differences from real proptest: no shrinking (a failing case panics
//! with its inputs via the ordinary assert message), no persistence of
//! regressions, and a deterministic per-test RNG (seeded from the test's
//! module path) instead of an entropy-seeded one. Failures are therefore
//! reproducible run to run.

/// Deterministic RNG used by the generated test loops.
pub mod test_runner {
    /// A splitmix64 generator seeded from a test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed deterministically from an arbitrary string (FNV-1a hash).
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `lo..=hi` (inclusive), in `i128` to cover the
        /// full range of every primitive integer type.
        pub fn in_range(&mut self, lo: i128, hi: i128) -> i128 {
            assert!(lo <= hi, "empty strategy range");
            let width = (hi - lo + 1) as u128;
            let draw = ((self.next_u64() as u128) << 64 | self.next_u64() as u128) % width;
            lo + draw as i128
        }
    }
}

/// The `Strategy` trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    ///
    /// `generate` returns `None` when a `prop_filter` rejects the drawn
    /// value; the test loop re-draws the whole case.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value, or `None` on filter rejection.
        fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

        /// Transform generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Keep only values satisfying `f`; `_whence` is a human-readable
        /// reason, accepted for API compatibility and unused.
        fn prop_filter<R, F: Fn(&Self::Value) -> bool>(self, _whence: R, f: F) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter { inner: self, f }
        }

        /// Flat-map: generate an inner strategy from each value, then
        /// generate from it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> Option<O> {
            self.inner.generate(rng).map(&self.f)
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            self.inner.generate(rng).filter(|v| (self.f)(v))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> Option<T::Value> {
            self.inner
                .generate(rng)
                .and_then(|v| (self.f)(v).generate(rng))
        }
    }

    /// A strategy producing one fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> Option<T> {
            Some(self.0.clone())
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                    assert!(self.start < self.end, "empty strategy range");
                    Some(rng.in_range(self.start as i128, self.end as i128 - 1) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                    Some(rng.in_range(*self.start() as i128, *self.end() as i128) as $t)
                }
            }
        )*};
    }

    int_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> Option<f64> {
            assert!(self.start < self.end, "empty strategy range");
            let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            Some(self.start + unit * (self.end - self.start))
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> Option<f32> {
            assert!(self.start < self.end, "empty strategy range");
            let unit = (rng.next_u64() >> 11) as f32 / (1u64 << 53) as f32;
            Some(self.start + unit * (self.end - self.start))
        }
    }

    impl Strategy for bool {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> Option<bool> {
            // Mirrors `proptest::bool::ANY` only loosely: `true`/`false`
            // used as a strategy yields a fair coin either way.
            let _ = self;
            Some(rng.next_u64() & 1 == 1)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                    let ($($name,)+) = self;
                    Some(($($name.generate(rng)?,)+))
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A length specification for [`vec`]: a fixed size or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`: a vector of `element` values.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let len = rng.in_range(self.size.lo as i128, self.size.hi as i128) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies.
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy choosing uniformly among fixed options.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone>(Vec<T>);

    /// `proptest::sample::select`: choose one of `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> Option<T> {
            let i = rng.in_range(0, self.0.len() as i128 - 1) as usize;
            Some(self.0[i].clone())
        }
    }
}

/// Namespaced re-exports mirroring `proptest::prelude::prop`.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// The prelude: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Per-test configuration (only `cases` is honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

/// `prop_assert!` — plain `assert!` in this shim (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `prop_assert_eq!` — plain `assert_eq!` in this shim.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `prop_assert_ne!` — plain `assert_ne!` in this shim.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// `prop_assume!` — skips the remainder of the current case when the
/// assumption fails (the shim just `continue`s the case loop).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !$cond {
            continue;
        }
    };
}

/// The `proptest!` macro: a block of `#[test] fn name(pat in strategy, …) {
/// body }` items, each expanded to a deterministic random-testing loop.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::prelude::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr); $($(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $config;
                let __strategies = ($($strat,)+);
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut __case = 0u32;
                let mut __rejects = 0u32;
                'cases: while __case < __config.cases {
                    let __values = match $crate::strategy::Strategy::generate(
                        &__strategies,
                        &mut __rng,
                    ) {
                        Some(v) => v,
                        None => {
                            __rejects += 1;
                            assert!(
                                __rejects < 10_000,
                                "prop_filter rejected 10000 candidate cases; filter too strict"
                            );
                            continue 'cases;
                        }
                    };
                    __case += 1;
                    let ($($pat,)+) = __values;
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn doubled(max: i64) -> impl Strategy<Value = i64> {
        (0i64..max).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(a in -5i64..5, (b, c) in (0u8..4, 1usize..3)) {
            prop_assert!((-5..5).contains(&a));
            prop_assert!(b < 4);
            prop_assert!((1..3).contains(&c));
        }

        #[test]
        fn map_filter_vec(
            v in prop::collection::vec(0i64..10, 2..6),
            d in doubled(10).prop_filter("positive", |&x| x > 0),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert_eq!(d % 2, 0);
            prop_assert!(d > 0);
        }

        #[test]
        fn select_works(x in prop::sample::select(vec![3i64, 5, 7])) {
            prop_assert!([3, 5, 7].contains(&x));
            prop_assert_ne!(x, 4);
        }
    }
}
