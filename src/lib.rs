//! # uov — Schedule-Independent Storage Mapping for Loops
//!
//! A Rust reproduction of Strout, Carter, Ferrante and Simon,
//! *Schedule-Independent Storage Mapping for Loops* (ASPLOS 1998): the
//! **universal occupancy vector (UOV)**, a storage-reuse pattern for
//! regular loops that is legal under *every* schedule respecting the
//! loop's value dependences — so locality transformations like tiling
//! remain applicable after storage has been folded to near-minimal size.
//!
//! This facade re-exports the whole workspace:
//!
//! * [`isg`] — integer vectors, dependence stencils, iteration domains;
//! * [`core`] — DONE/DEAD sets, UOV membership (NP-complete; exact
//!   oracle), the branch-and-bound optimal-UOV search, the PARTITION
//!   reduction;
//! * [`storage`] — OV storage mappings (mapping vector, modterm,
//!   interleaved/blocked layouts) and liveness-based legality checking;
//! * [`schedule`] — lexicographic/interchange/skewed/wavefront/tiled
//!   schedules, legality checks, random topological orders;
//! * [`loopir`] — a perfect-nest IR with value-based dependence analysis,
//!   array region analysis and a reference interpreter;
//! * [`memsim`] — deterministic cache/TLB/memory models of the paper's
//!   three evaluation machines;
//! * [`kernels`] — the paper's two benchmark codes (5-point stencil,
//!   protein string matching) in every storage variant;
//! * [`service`] — a dependency-free planning server (framed binary
//!   protocol, canonicalizing plan cache, single-flight dedup, admission
//!   control) so one warm process answers for many compiler invocations;
//! * `bench` — the experiment harness regenerating every table and
//!   figure.
//!
//! # Quickstart
//!
//! ```
//! use uov::isg::{ivec, Stencil};
//! use uov::core::search::{find_best_uov, Objective, SearchConfig};
//! use uov::storage::{Layout, OvMap, StorageMap};
//! use uov::isg::RectDomain;
//!
//! // 1. Describe the loop's value dependences (Figure 1 of the paper).
//! let stencil = Stencil::new(vec![ivec![1, 0], ivec![0, 1], ivec![1, 1]])?;
//!
//! // 2. Find the optimal universal occupancy vector.
//! let best = find_best_uov(&stencil, Objective::ShortestVector, &SearchConfig::default())?;
//! assert_eq!(best.uov, ivec![1, 1]);
//!
//! // 3. Build the storage mapping: n+m+1 cells instead of n·m.
//! let domain = RectDomain::new(ivec![0, 0], ivec![100, 50]);
//! let map = OvMap::new(&domain, best.uov, Layout::Interleaved);
//! assert_eq!(map.size(), 151);
//!
//! // The mapping is safe under every legal schedule — that is what
//! // "universal" means, and what this workspace's tests verify.
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod driver;
pub mod error;

pub use error::Error;

pub use uov_bench as bench;
pub use uov_codegen as codegen;
pub use uov_core as core;
pub use uov_isg as isg;
pub use uov_kernels as kernels;
pub use uov_loopir as loopir;
pub use uov_memsim as memsim;
pub use uov_schedule as schedule;
pub use uov_service as service;
pub use uov_storage as storage;
