//! The compiler driver: from a loop nest to a complete storage plan.
//!
//! This is the end-to-end shape a production pass would take — the paper's
//! §2–§4 pipeline as one call:
//!
//! 1. **Eligibility** (§2): value-based dependence analysis extracts each
//!    statement's flow stencil; non-regular statements are reported, not
//!    silently skipped.
//! 2. **UOV selection** (§3): branch-and-bound per statement, using the
//!    known-bounds objective since the nest's domain is concrete. The
//!    search honours a caller-supplied [`Budget`]; when it runs out, the
//!    statement keeps the best legal UOV found (at worst `Σvᵢ`) and the
//!    plan records the [`Degradation`].
//! 3. **Mapping construction** (§4): an [`OvMap`] per statement, with the
//!    modterm layout chosen by the caller.
//! 4. **Schedule advice** (§2/§5): whether rectangular tiling is already
//!    legal, and if not, the 2-D skew factor that legalises it.
//! 5. **Code emission** (§4): the transformed pseudocode for inspection.
//!
//! # Example
//!
//! ```
//! use uov::driver::{plan, TransformPlan};
//! use uov::loopir::examples;
//! use uov::storage::Layout;
//!
//! let nest = examples::fig1_nest(32, 16);
//! let plan = plan(&nest, Layout::Interleaved)?;
//! let stmt = &plan.statements[0].as_ref().expect("regular statement");
//! assert_eq!(stmt.uov.to_string(), "(1, 1)");
//! assert!(stmt.degradation.is_none()); // search ran to completion
//! assert!(plan.rectangular_tiling_legal);
//! assert!(stmt.natural_cells > stmt.mapped_cells);
//! # Ok::<(), uov::Error>(())
//! ```

use uov_core::budget::{Budget, Degradation, Exhausted};
use uov_core::certify::{certify, Certificate};
use uov_core::checkpoint::CheckpointConfig;
use uov_core::search::{find_best_uov, Objective, SearchConfig};
use uov_core::search::{SearchResult, SearchStats};
use uov_isg::{IVec, IterationDomain as _, Stencil};
use uov_loopir::analysis::{flow_stencil, AnalysisError};
use uov_loopir::{codegen, LoopNest};
use uov_schedule::legality;
use uov_service::{
    DegradationCode, MeshClient, MeshConfig, ObjectiveSpec, PlanRequest, PlanResponse,
    ResilientClient, ResilientConfig, ServiceError,
};
use uov_storage::{Layout, OvMap, StorageMap as _};

use crate::error::Error;

/// Tunables for [`plan_with`].
#[derive(Debug, Clone)]
pub struct PlanConfig {
    /// Modterm layout for non-prime occupancy vectors.
    pub layout: Layout,
    /// Resource budget applied to each statement's UOV search. A deadline
    /// or cancellation token is global (every statement shares the same
    /// wall clock and flag); node and memo caps apply per statement.
    pub budget: Budget,
    /// Worker threads for each statement's branch-and-bound. `0` and `1`
    /// both mean sequential; the result is identical for every value (see
    /// [`uov_core::search`]'s determinism guarantee) — threads only buy
    /// wall-clock time.
    pub threads: usize,
    /// Re-validate every emitted UOV (including degraded fallbacks) with
    /// the independent checker before the plan is returned, attaching a
    /// [`Certificate`] to each statement. On by default; a rejected result
    /// aborts the plan with [`Error::Certify`] rather than emitting an
    /// unverified mapping.
    pub certify: bool,
    /// Crash-safe snapshotting for each statement's search. The statement
    /// index is appended to the configured path (`<path>.stmt0`,
    /// `<path>.stmt1`, …) so per-statement snapshots never collide.
    pub checkpoint: Option<CheckpointConfig>,
}

impl Default for PlanConfig {
    fn default() -> Self {
        PlanConfig {
            layout: Layout::default(),
            budget: Budget::unlimited(),
            threads: 1,
            certify: true,
            checkpoint: None,
        }
    }
}

/// The storage plan for one regular statement.
#[derive(Debug)]
pub struct StatementPlan {
    /// The statement's flow-dependence stencil.
    pub stencil: Stencil,
    /// The storage-minimal universal occupancy vector for this domain —
    /// or, if the budget ran out, the best legal UOV found in time.
    pub uov: IVec,
    /// The constructed mapping.
    pub map: OvMap,
    /// Cells of the natural (fully expanded) storage.
    pub natural_cells: u64,
    /// Cells of the OV-mapped storage.
    pub mapped_cells: u64,
    /// Present iff the UOV search was cut short by the budget; the UOV
    /// above is still universal, merely possibly non-optimal.
    pub degradation: Option<Degradation>,
    /// Independent re-validation of the UOV and its cost; present unless
    /// certification was disabled via [`PlanConfig::certify`].
    pub certificate: Option<Certificate>,
    /// Transformed pseudocode (2-D nests only; `None` otherwise).
    pub code: Option<String>,
}

/// The full plan for a nest.
#[derive(Debug)]
pub struct TransformPlan {
    /// Per-statement outcomes: `Ok` with a plan, or the analysis error
    /// explaining why the statement is not UOV-eligible.
    pub statements: Vec<Result<StatementPlan, AnalysisError>>,
    /// Whether rectangular tiling of the original space is already legal
    /// for the union of all regular statements' dependences.
    pub rectangular_tiling_legal: bool,
    /// The 2-D skew factor that legalises tiling, when one is needed and
    /// the nest is 2-deep.
    pub skew_factor: Option<i64>,
}

impl TransformPlan {
    /// Degradation records of every budget-truncated statement search.
    pub fn degradations(&self) -> Vec<&Degradation> {
        self.statements
            .iter()
            .filter_map(|s| s.as_ref().ok())
            .filter_map(|s| s.degradation.as_ref())
            .collect()
    }
}

/// Derive the complete schedule-independent storage plan for `nest` with
/// an unlimited budget.
///
/// Irregular statements never fail the whole plan — they surface as `Err`
/// entries in [`TransformPlan::statements`].
///
/// # Errors
///
/// Hard failures only: coordinates outside `i64` range anywhere in the
/// pipeline, a stencil too large for the search, or a mapping whose
/// allocation cannot be addressed.
pub fn plan(nest: &LoopNest, layout: Layout) -> Result<TransformPlan, Error> {
    plan_with(
        nest,
        &PlanConfig {
            layout,
            ..PlanConfig::default()
        },
    )
}

/// [`plan`] with an explicit [`PlanConfig`] (layout, search budget,
/// certification and checkpointing).
///
/// When the budget expires mid-search, the affected statements keep their
/// best incumbent UOV — at worst the always-legal initial UOV `Σvᵢ` — and
/// carry a [`Degradation`] record; this function still returns `Ok`.
/// Unless disabled, every emitted UOV (degraded ones included) is
/// re-validated by the independent certifier before the plan is returned.
///
/// # Errors
///
/// Same hard failures as [`plan`], plus [`Error::Certify`] if the
/// certifier rejects a search result — a rejected mapping is never
/// handed to the caller.
pub fn plan_with(nest: &LoopNest, config: &PlanConfig) -> Result<TransformPlan, Error> {
    let mut statements = Vec::with_capacity(nest.stmts().len());
    let mut union: Vec<IVec> = Vec::new();
    for stmt in 0..nest.stmts().len() {
        match flow_stencil(nest, stmt) {
            Err(e) => statements.push(Err(e)),
            Ok(stencil) => {
                union.extend(stencil.vectors().iter().cloned());
                let search_config = SearchConfig {
                    max_visits: None,
                    // Fresh node counter per statement; deadline and
                    // cancellation stay global through the clone.
                    budget: config.budget.clone(),
                    threads: config.threads.max(1),
                    checkpoint: config.checkpoint.as_ref().map(|c| {
                        let mut path = c.path.clone().into_os_string();
                        path.push(format!(".stmt{stmt}"));
                        CheckpointConfig {
                            path: path.into(),
                            interval: c.interval,
                        }
                    }),
                    bound_hint: None,
                };
                let objective = Objective::KnownBounds(nest.domain());
                let best = find_best_uov(&stencil, objective, &search_config)?;
                let certificate = if config.certify {
                    Some(certify(
                        &stencil,
                        &Objective::KnownBounds(nest.domain()),
                        &best,
                    )?)
                } else {
                    None
                };
                let map = OvMap::try_new(nest.domain(), best.uov.clone(), config.layout)?;
                let code = (nest.depth() == 2).then(|| codegen::emit_ov_mapped(nest, stmt, &map));
                statements.push(Ok(StatementPlan {
                    natural_cells: nest.domain().num_points(),
                    mapped_cells: map.size() as u64,
                    stencil,
                    uov: best.uov,
                    map,
                    degradation: best.degradation,
                    certificate,
                    code,
                }));
            }
        }
    }
    let (rectangular_tiling_legal, skew_factor) = tiling_advice(union);
    Ok(TransformPlan {
        statements,
        rectangular_tiling_legal,
        skew_factor,
    })
}

/// Tiling legality and skew advice for the union of all regular
/// statements' dependences.
fn tiling_advice(union: Vec<IVec>) -> (bool, Option<i64>) {
    match Stencil::new(union) {
        Ok(all_deps) => {
            let legal = legality::rectangular_tiling_legal(&all_deps);
            let skew = if legal {
                Some(0)
            } else {
                legality::skew_factor_for_tiling(&all_deps)
            };
            (legal, skew)
        }
        Err(_) => (true, Some(0)), // no carried dependences at all
    }
}

/// [`plan`], but with every per-statement UOV search delegated to a
/// running [`uov_service`] server instead of the in-process
/// branch-and-bound — so one warm server (and its canonicalizing plan
/// cache) can answer for many compiler invocations.
///
/// `endpoint` may be a single address or a comma-separated replica list
/// (`"127.0.0.1:7878,127.0.0.1:7879"`); either way requests go through a
/// [`ResilientClient`] with default fabric policy, so a bounced or
/// partitioned replica costs a retry, not the plan. Use
/// [`plan_via_replicas`] to tune the fabric, or [`plan_via_fabric`] to
/// own the client (and its decision log) outright.
///
/// The remote answer is *never trusted blind*: each statement's UOV is
/// re-certified locally, and the local certificate's transcript hash must
/// equal the hash the server computed. Mapping construction, tiling
/// legality and code emission all stay local, so the returned
/// [`TransformPlan`] is interchangeable with [`plan`]'s — the engine's
/// deterministic total order makes the two byte-identical for completed
/// searches.
///
/// `deadline_ms` is forwarded as the per-statement service budget
/// (`0` = unlimited); an expired deadline degrades to a legal UOV, it
/// does not error.
///
/// # Errors
///
/// [`Error::Service`] on transport failures, server rejections, or a
/// certificate-hash mismatch; otherwise the same hard failures as
/// [`plan`].
pub fn plan_via_service(
    nest: &LoopNest,
    layout: Layout,
    endpoint: &str,
    deadline_ms: u32,
) -> Result<TransformPlan, Error> {
    let endpoints: Vec<String> = endpoint
        .split(',')
        .map(|e| e.trim().to_string())
        .filter(|e| !e.is_empty())
        .collect();
    plan_via_replicas(
        nest,
        layout,
        &endpoints,
        deadline_ms,
        ResilientConfig::default(),
    )
}

/// [`plan_via_service`] with an explicit replica list and fabric policy
/// (timeouts, backoff, breaker thresholds, hedging, determinism seed).
///
/// # Errors
///
/// As [`plan_via_service`].
pub fn plan_via_replicas(
    nest: &LoopNest,
    layout: Layout,
    endpoints: &[String],
    deadline_ms: u32,
    config: ResilientConfig,
) -> Result<TransformPlan, Error> {
    let mut fabric =
        ResilientClient::new(endpoints, config).map_err(|e| Error::Service(e.to_string()))?;
    plan_via_fabric(nest, layout, &mut fabric, deadline_ms)
}

/// [`plan_via_service`] over a caller-owned [`ResilientClient`], so the
/// caller keeps the fabric's connections warm across nests and can
/// inspect its decision log ([`ResilientClient::events`]) afterwards —
/// the hook the chaos harness uses to diff two runs of the same seed.
///
/// # Errors
///
/// As [`plan_via_service`].
pub fn plan_via_fabric(
    nest: &LoopNest,
    layout: Layout,
    fabric: &mut ResilientClient,
    deadline_ms: u32,
) -> Result<TransformPlan, Error> {
    plan_remote(nest, layout, deadline_ms, |req| fabric.plan(req))
}

/// [`plan_via_service`] over a planning mesh: each statement's request
/// is routed by consistent hash to its home shard (failing over along
/// the ring when the home is down), and large searches are split across
/// the shards as re-dispatchable `UOVCKPT1` work units. The local
/// re-certification in [`plan_remote`]'s loop applies unchanged, so a
/// mesh answer is accepted only when it is byte-identical to a cold
/// in-process solve.
///
/// # Errors
///
/// As [`plan_via_service`], plus the mesh's own
/// [`ServiceError::FabricExhausted`] when a work unit runs out of live
/// replicas to try.
pub fn plan_via_mesh(
    nest: &LoopNest,
    layout: Layout,
    endpoints: &[String],
    deadline_ms: u32,
    config: MeshConfig,
) -> Result<TransformPlan, Error> {
    let mut mesh = MeshClient::new(endpoints, config).map_err(|e| Error::Service(e.to_string()))?;
    plan_remote(nest, layout, deadline_ms, |req| mesh.plan_distributed(req))
}

/// The shared remote-planning loop: per-statement stencil extraction,
/// one exchange via `exchange`, local re-certification against the
/// server's transcript hash, then local mapping/codegen/tiling — exactly
/// [`plan`]'s shape with the branch-and-bound swapped for a closure.
fn plan_remote(
    nest: &LoopNest,
    layout: Layout,
    deadline_ms: u32,
    mut exchange: impl FnMut(&PlanRequest) -> Result<PlanResponse, ServiceError>,
) -> Result<TransformPlan, Error> {
    let mut statements = Vec::with_capacity(nest.stmts().len());
    let mut union: Vec<IVec> = Vec::new();
    for stmt in 0..nest.stmts().len() {
        match flow_stencil(nest, stmt) {
            Err(e) => statements.push(Err(e)),
            Ok(stencil) => {
                union.extend(stencil.vectors().iter().cloned());
                let resp = exchange(&PlanRequest {
                    stencil: stencil.clone(),
                    objective: ObjectiveSpec::KnownBounds(nest.domain().clone()),
                    deadline_ms,
                    flags: 0,
                })
                .map_err(|e| Error::Service(e.to_string()))?;
                // The wire carries the degradation *reason*; node/memo
                // counters are search-internal and stay at zero here.
                let degradation = match resp.degradation {
                    DegradationCode::None => None,
                    code => Some(Degradation {
                        reason: match code {
                            DegradationCode::Deadline => Exhausted::Deadline,
                            DegradationCode::Nodes => Exhausted::Nodes,
                            DegradationCode::Memo => Exhausted::Memo,
                            _ => Exhausted::Cancelled,
                        },
                        nodes_at_stop: 0,
                        memo_entries_at_stop: 0,
                        fell_back_to_initial: false,
                    }),
                };
                let as_result = SearchResult {
                    uov: resp.uov.clone(),
                    cost: resp.cost,
                    stats: SearchStats::default(),
                    degradation,
                    checkpoint_error: None,
                };
                let certificate =
                    certify(&stencil, &Objective::KnownBounds(nest.domain()), &as_result)?;
                if certificate.transcript_hash != resp.certificate_hash {
                    return Err(Error::Service(format!(
                        "certificate mismatch for statement {stmt}: server {:#018x}, local {:#018x}",
                        resp.certificate_hash, certificate.transcript_hash
                    )));
                }
                let map = OvMap::try_new(nest.domain(), resp.uov.clone(), layout)?;
                let code = (nest.depth() == 2).then(|| codegen::emit_ov_mapped(nest, stmt, &map));
                statements.push(Ok(StatementPlan {
                    natural_cells: nest.domain().num_points(),
                    mapped_cells: map.size() as u64,
                    stencil,
                    uov: resp.uov,
                    map,
                    degradation: as_result.degradation,
                    certificate: Some(certificate),
                    code,
                }));
            }
        }
    }
    let (rectangular_tiling_legal, skew_factor) = tiling_advice(union);
    Ok(TransformPlan {
        statements,
        rectangular_tiling_legal,
        skew_factor,
    })
}

/// A planned kernel rendered as compilable source, ready for
/// [`uov_codegen::compile`] or the autotuner.
#[derive(Debug)]
pub struct EmittedKernel {
    /// The generation spec (nest + per-statement storage + schedule).
    pub spec: uov_codegen::KernelSpec,
    /// Standalone Rust program speaking the `TIME_NS`/`CHECK`/`OUT`
    /// protocol.
    pub rust_source: String,
    /// The C99 twin, bit-identical to the Rust program and the
    /// interpreter.
    pub c_source: String,
    /// The storage plan the spec was derived from.
    pub plan: TransformPlan,
}

/// Plan `nest` and lower the result to executable source in one call:
/// §2–§4 (stencils, UOVs, mappings) followed by §5 made runnable (tiled
/// loops over the mapped buffers).
///
/// Regular statements get their planned [`OvMap`]; statements the
/// analysis rejects keep natural (fully expanded) storage — the emitted
/// kernel still runs. With `tile = Some([t0, t1])` the loops are tiled in
/// the skewed space `(u, v) = (i, f·i + j)` using the plan's legalising
/// skew factor. Each statement's certificate transcript hash is stamped
/// into the generated sources' provenance header, so an artifact can be
/// traced back to the exact certified plan that produced it.
///
/// # Errors
///
/// Planning errors as in [`plan`]; [`Error::Codegen`] when tiling is
/// requested but no skew factor legalises it, or when the nest shape is
/// outside the generator's support (non-2-deep, non-uniform writes).
pub fn plan_and_emit(
    name: &str,
    nest: &LoopNest,
    layout: Layout,
    tile: Option<[i64; 2]>,
) -> Result<EmittedKernel, Error> {
    use uov_codegen::{emit_c, emit_rust, CodegenError, GenSchedule, KernelSpec};

    let plan = plan(nest, layout)?;
    let maps: Vec<Option<&OvMap>> = plan
        .statements
        .iter()
        .map(|s| s.as_ref().ok().map(|p| &p.map))
        .collect();
    let schedule = match tile {
        None => GenSchedule::Lex,
        Some(tile) => {
            let f = plan
                .skew_factor
                .ok_or_else(|| Error::from(CodegenError::TilingNotLegalized))?;
            GenSchedule::SkewTiled { f, tile }
        }
    };
    let mut provenance = vec![format!(
        "plan: {layout:?} layout, {} statement(s), skew {:?}",
        plan.statements.len(),
        plan.skew_factor
    )];
    for (s, st) in plan.statements.iter().enumerate() {
        match st {
            Ok(p) => {
                let cert = match &p.certificate {
                    Some(c) => format!("certificate {:016x}", c.transcript_hash),
                    None => "uncertified".to_string(),
                };
                provenance.push(format!(
                    "stmt {s}: uov {}, {} -> {} cells, {cert}",
                    p.uov, p.natural_cells, p.mapped_cells
                ));
            }
            Err(e) => provenance.push(format!("stmt {s}: natural storage ({e})")),
        }
    }
    let spec = KernelSpec::new(name, nest, &maps, schedule)?.with_provenance(provenance);
    Ok(EmittedKernel {
        rust_source: emit_rust(&spec),
        c_source: emit_c(&spec),
        spec,
        plan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use uov_core::budget::Exhausted;
    use uov_core::DoneOracle;
    use uov_loopir::examples;

    #[test]
    fn plan_and_emit_stamps_certificate_and_tiles() {
        let nest = examples::stencil5_nest(5, 16);
        let ek = plan_and_emit("stencil5", &nest, Layout::Interleaved, Some([2, 8])).unwrap();
        let hash = format!(
            "{:016x}",
            ek.plan.statements[0]
                .as_ref()
                .unwrap()
                .certificate
                .as_ref()
                .unwrap()
                .transcript_hash
        );
        assert!(
            ek.rust_source.contains(&hash),
            "certificate hash in Rust source"
        );
        assert!(ek.c_source.contains(&hash), "certificate hash in C source");
        assert!(ek.rust_source.contains("for tu in"), "tiled loops emitted");
        assert!(matches!(
            ek.spec.schedule,
            uov_codegen::GenSchedule::SkewTiled { f: 2, tile: [2, 8] }
        ));
    }

    #[test]
    fn plan_and_emit_rejects_tiling_without_skew() {
        // An untileable union has no legalising skew; emitting untiled
        // still works, tiling is a typed refusal.
        let nest = examples::stencil5_nest(4, 12);
        let ok = plan_and_emit("stencil5", &nest, Layout::Blocked, None).unwrap();
        assert!(ok.rust_source.contains("fn main"));
        assert!(!ok.rust_source.contains("for tu in"));
    }

    #[test]
    fn fig1_plan() {
        let nest = examples::fig1_nest(10, 6);
        let p = plan(&nest, Layout::Interleaved).unwrap();
        assert_eq!(p.statements.len(), 1);
        let s = p.statements[0].as_ref().unwrap();
        assert_eq!(s.uov, IVec::from([1, 1]));
        assert!(s.degradation.is_none());
        assert!(p.rectangular_tiling_legal);
        assert_eq!(p.skew_factor, Some(0));
        assert!(s
            .code
            .as_ref()
            .unwrap()
            .contains("for (i = 1; i <= 10; i++)"));
        assert!(s.mapped_cells < s.natural_cells);
    }

    #[test]
    fn stencil5_plan_needs_skew() {
        let nest = examples::stencil5_nest(6, 20);
        let p = plan(&nest, Layout::Blocked).unwrap();
        let s = p.statements[0].as_ref().unwrap();
        assert_eq!(s.uov[0], 2, "two time steps of reuse");
        assert!(!p.rectangular_tiling_legal);
        assert_eq!(p.skew_factor, Some(2));
    }

    #[test]
    fn psm_plan_has_two_statements() {
        let nest = examples::psm_nest(8, 8);
        let p = plan(&nest, Layout::Interleaved).unwrap();
        assert_eq!(p.statements.len(), 2);
        assert!(p.statements.iter().all(|s| s.is_ok()));
        // Rectangular tiling is legal for the combined dependences.
        assert!(p.rectangular_tiling_legal);
    }

    #[test]
    fn irregular_statement_reported_not_paniced() {
        use uov_loopir::{AffineExpr, ArrayDecl, Assign, Expr};
        // B[i,j] = A[i,j]: no carried dependence — reported as such.
        let full = vec![AffineExpr::index(2, 0), AffineExpr::index(2, 1)];
        let nest = LoopNest::new(
            uov_isg::RectDomain::grid(3, 3),
            vec![
                ArrayDecl {
                    name: "A".into(),
                    rank: 2,
                },
                ArrayDecl {
                    name: "B".into(),
                    rank: 2,
                },
            ],
            vec![Assign {
                array: 1,
                subscript: full.clone(),
                rhs: Expr::read(0, full),
            }],
        )
        .unwrap();
        let p = plan(&nest, Layout::Interleaved).unwrap();
        assert!(matches!(
            p.statements[0],
            Err(AnalysisError::NoCarriedDependence)
        ));
        assert!(p.rectangular_tiling_legal);
    }

    #[test]
    fn expired_deadline_degrades_to_legal_uov() {
        let nest = examples::stencil5_nest(6, 20);
        let config = PlanConfig {
            layout: Layout::Interleaved,
            budget: Budget::unlimited().with_deadline(Duration::ZERO),
            ..PlanConfig::default()
        };
        let p = plan_with(&nest, &config).unwrap();
        let s = p.statements[0].as_ref().unwrap();
        let d = s
            .degradation
            .as_ref()
            .expect("expired deadline must degrade");
        assert_eq!(d.reason, Exhausted::Deadline);
        assert_eq!(p.degradations().len(), 1);
        // The degraded UOV is still universal for the stencil.
        assert!(DoneOracle::new(&s.stencil).is_uov(&s.uov));
        // And the mapping realises it.
        assert_eq!(s.map.ov(), &s.uov);
    }

    #[test]
    fn threaded_plan_matches_sequential_plan() {
        for nest in [
            examples::fig1_nest(10, 6),
            examples::stencil5_nest(6, 20),
            examples::psm_nest(8, 8),
        ] {
            let seq = plan(&nest, Layout::Interleaved).unwrap();
            let config = PlanConfig {
                layout: Layout::Interleaved,
                threads: 4,
                ..PlanConfig::default()
            };
            let par = plan_with(&nest, &config).unwrap();
            for (s, p) in seq.statements.iter().zip(&par.statements) {
                let (s, p) = (s.as_ref().unwrap(), p.as_ref().unwrap());
                assert_eq!(s.uov, p.uov, "UOV must not depend on thread count");
                assert_eq!(s.mapped_cells, p.mapped_cells);
            }
        }
    }

    #[test]
    fn every_statement_carries_a_certificate_by_default() {
        let nest = examples::psm_nest(8, 8);
        let p = plan(&nest, Layout::Interleaved).unwrap();
        for s in &p.statements {
            let s = s.as_ref().unwrap();
            let cert = s.certificate.as_ref().expect("certify defaults to on");
            assert_eq!(cert.uov, s.uov);
            assert_eq!(cert.dependences_checked, s.stencil.len());
            assert!(!cert.degraded);
        }
    }

    #[test]
    fn degraded_statements_certify_as_degraded() {
        let nest = examples::stencil5_nest(6, 20);
        let config = PlanConfig {
            layout: Layout::Interleaved,
            budget: Budget::unlimited().with_max_nodes(1),
            ..PlanConfig::default()
        };
        let p = plan_with(&nest, &config).unwrap();
        let s = p.statements[0].as_ref().unwrap();
        assert!(s.degradation.is_some());
        let cert = s.certificate.as_ref().unwrap();
        assert!(cert.degraded, "Σvᵢ fallback certifies, flagged degraded");
        assert_eq!(cert.uov, s.uov);
    }

    #[test]
    fn certification_can_be_disabled() {
        let nest = examples::fig1_nest(10, 6);
        let config = PlanConfig {
            layout: Layout::Interleaved,
            certify: false,
            ..PlanConfig::default()
        };
        let p = plan_with(&nest, &config).unwrap();
        assert!(p.statements[0].as_ref().unwrap().certificate.is_none());
    }

    #[test]
    fn checkpointed_plan_writes_one_snapshot_per_statement() {
        use uov_core::checkpoint::CheckpointConfig;
        let nest = examples::psm_nest(8, 8);
        let mut base = std::env::temp_dir();
        base.push(format!("uov_driver_plan_{}.ckpt", std::process::id()));
        let config = PlanConfig {
            layout: Layout::Interleaved,
            checkpoint: Some(CheckpointConfig {
                path: base.clone(),
                interval: 8,
            }),
            ..PlanConfig::default()
        };
        let p = plan_with(&nest, &config).unwrap();
        assert_eq!(p.statements.len(), 2);
        for stmt in 0..2 {
            let mut path = base.clone().into_os_string();
            path.push(format!(".stmt{stmt}"));
            let path = std::path::PathBuf::from(path);
            let snap = uov_core::checkpoint::read_snapshot(&path)
                .expect("each statement search leaves a final snapshot");
            assert_eq!(
                snap.incumbent,
                p.statements[stmt].as_ref().unwrap().uov,
                "stmt{stmt}"
            );
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn service_backed_plan_matches_local_plan() {
        let server =
            uov_service::serve("127.0.0.1:0", uov_service::ServerConfig::default()).unwrap();
        for nest in [
            examples::fig1_nest(10, 6),
            examples::stencil5_nest(6, 20),
            examples::psm_nest(8, 8),
        ] {
            let local = plan(&nest, Layout::Interleaved).unwrap();
            let remote =
                plan_via_service(&nest, Layout::Interleaved, server.endpoint(), 0).unwrap();
            assert_eq!(local.statements.len(), remote.statements.len());
            for (l, r) in local.statements.iter().zip(&remote.statements) {
                let (l, r) = (l.as_ref().unwrap(), r.as_ref().unwrap());
                assert_eq!(l.uov, r.uov, "service and local plans must agree");
                assert_eq!(l.mapped_cells, r.mapped_cells);
                assert_eq!(l.code, r.code);
                // The remote certificate is recomputed locally and must
                // hash identically to the in-process plan's.
                assert_eq!(
                    l.certificate.as_ref().unwrap().transcript_hash,
                    r.certificate.as_ref().unwrap().transcript_hash
                );
            }
            assert_eq!(
                local.rectangular_tiling_legal,
                remote.rectangular_tiling_legal
            );
            assert_eq!(local.skew_factor, remote.skew_factor);
        }
        server.shutdown();
        server.join();
    }

    #[test]
    fn replica_list_plan_survives_a_dead_replica() {
        let server =
            uov_service::serve("127.0.0.1:0", uov_service::ServerConfig::default()).unwrap();
        // A dead first replica: bound, then immediately dropped, so the
        // fabric's first attempt is refused and it fails over.
        let dead = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            let ep = l.local_addr().unwrap().to_string();
            drop(l);
            ep
        };
        let list = format!("{dead},{}", server.endpoint());
        let nest = examples::fig1_nest(10, 6);
        let local = plan(&nest, Layout::Interleaved).unwrap();
        let remote = plan_via_service(&nest, Layout::Interleaved, &list, 0).unwrap();
        let (l, r) = (
            local.statements[0].as_ref().unwrap(),
            remote.statements[0].as_ref().unwrap(),
        );
        assert_eq!(l.uov, r.uov);
        assert_eq!(
            l.certificate.as_ref().unwrap().transcript_hash,
            r.certificate.as_ref().unwrap().transcript_hash
        );
        server.shutdown();
        server.join();
    }

    #[test]
    fn generous_budget_matches_unbudgeted_plan() {
        let nest = examples::fig1_nest(10, 6);
        let config = PlanConfig {
            layout: Layout::Interleaved,
            budget: Budget::unlimited()
                .with_deadline(Duration::from_secs(60))
                .with_max_nodes(10_000_000),
            ..PlanConfig::default()
        };
        let p = plan_with(&nest, &config).unwrap();
        let s = p.statements[0].as_ref().unwrap();
        assert_eq!(s.uov, IVec::from([1, 1]));
        assert!(s.degradation.is_none());
        assert!(p.degradations().is_empty());
    }
}
