//! The compiler driver: from a loop nest to a complete storage plan.
//!
//! This is the end-to-end shape a production pass would take — the paper's
//! §2–§4 pipeline as one call:
//!
//! 1. **Eligibility** (§2): value-based dependence analysis extracts each
//!    statement's flow stencil; non-regular statements are reported, not
//!    silently skipped.
//! 2. **UOV selection** (§3): branch-and-bound per statement, using the
//!    known-bounds objective since the nest's domain is concrete.
//! 3. **Mapping construction** (§4): an [`OvMap`] per statement, with the
//!    modterm layout chosen by the caller.
//! 4. **Schedule advice** (§2/§5): whether rectangular tiling is already
//!    legal, and if not, the 2-D skew factor that legalises it.
//! 5. **Code emission** (§4): the transformed pseudocode for inspection.
//!
//! # Example
//!
//! ```
//! use uov::driver::{plan, TransformPlan};
//! use uov::loopir::examples;
//! use uov::storage::Layout;
//!
//! let nest = examples::fig1_nest(32, 16);
//! let plan = plan(&nest, Layout::Interleaved);
//! let stmt = &plan.statements[0].as_ref().expect("regular statement");
//! assert_eq!(stmt.uov.to_string(), "(1, 1)");
//! assert!(plan.rectangular_tiling_legal);
//! assert!(stmt.natural_cells > stmt.mapped_cells);
//! ```

use uov_core::search::{find_best_uov, Objective, SearchConfig};
use uov_isg::{IVec, IterationDomain as _, Stencil};
use uov_loopir::analysis::{flow_stencil, AnalysisError};
use uov_loopir::{codegen, LoopNest};
use uov_schedule::legality;
use uov_storage::{Layout, OvMap, StorageMap as _};

/// The storage plan for one regular statement.
#[derive(Debug)]
pub struct StatementPlan {
    /// The statement's flow-dependence stencil.
    pub stencil: Stencil,
    /// The storage-minimal universal occupancy vector for this domain.
    pub uov: IVec,
    /// The constructed mapping.
    pub map: OvMap,
    /// Cells of the natural (fully expanded) storage.
    pub natural_cells: u64,
    /// Cells of the OV-mapped storage.
    pub mapped_cells: u64,
    /// Transformed pseudocode (2-D nests only; `None` otherwise).
    pub code: Option<String>,
}

/// The full plan for a nest.
#[derive(Debug)]
pub struct TransformPlan {
    /// Per-statement outcomes: `Ok` with a plan, or the analysis error
    /// explaining why the statement is not UOV-eligible.
    pub statements: Vec<Result<StatementPlan, AnalysisError>>,
    /// Whether rectangular tiling of the original space is already legal
    /// for the union of all regular statements' dependences.
    pub rectangular_tiling_legal: bool,
    /// The 2-D skew factor that legalises tiling, when one is needed and
    /// the nest is 2-deep.
    pub skew_factor: Option<i64>,
}

/// Derive the complete schedule-independent storage plan for `nest`.
///
/// Never panics on irregular statements — they surface as `Err` entries.
pub fn plan(nest: &LoopNest, layout: Layout) -> TransformPlan {
    let mut statements = Vec::with_capacity(nest.stmts().len());
    let mut union: Vec<IVec> = Vec::new();
    for stmt in 0..nest.stmts().len() {
        match flow_stencil(nest, stmt) {
            Err(e) => statements.push(Err(e)),
            Ok(stencil) => {
                union.extend(stencil.vectors().iter().cloned());
                let best = find_best_uov(
                    &stencil,
                    Objective::KnownBounds(nest.domain()),
                    &SearchConfig::default(),
                );
                let map = OvMap::new(nest.domain(), best.uov.clone(), layout);
                let code = (nest.depth() == 2)
                    .then(|| codegen::emit_ov_mapped(nest, stmt, &map));
                statements.push(Ok(StatementPlan {
                    natural_cells: nest.domain().num_points(),
                    mapped_cells: map.size() as u64,
                    stencil,
                    uov: best.uov,
                    map,
                    code,
                }));
            }
        }
    }
    let (rectangular_tiling_legal, skew_factor) = match Stencil::new(union) {
        Ok(all_deps) => {
            let legal = legality::rectangular_tiling_legal(&all_deps);
            let skew = if legal {
                Some(0)
            } else {
                legality::skew_factor_for_tiling(&all_deps)
            };
            (legal, skew)
        }
        Err(_) => (true, Some(0)), // no carried dependences at all
    };
    TransformPlan { statements, rectangular_tiling_legal, skew_factor }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uov_loopir::examples;

    #[test]
    fn fig1_plan() {
        let nest = examples::fig1_nest(10, 6);
        let p = plan(&nest, Layout::Interleaved);
        assert_eq!(p.statements.len(), 1);
        let s = p.statements[0].as_ref().unwrap();
        assert_eq!(s.uov, IVec::from([1, 1]));
        assert!(p.rectangular_tiling_legal);
        assert_eq!(p.skew_factor, Some(0));
        assert!(s.code.as_ref().unwrap().contains("for (i = 1; i <= 10; i++)"));
        assert!(s.mapped_cells < s.natural_cells);
    }

    #[test]
    fn stencil5_plan_needs_skew() {
        let nest = examples::stencil5_nest(6, 20);
        let p = plan(&nest, Layout::Blocked);
        let s = p.statements[0].as_ref().unwrap();
        assert_eq!(s.uov[0], 2, "two time steps of reuse");
        assert!(!p.rectangular_tiling_legal);
        assert_eq!(p.skew_factor, Some(2));
    }

    #[test]
    fn psm_plan_has_two_statements() {
        let nest = examples::psm_nest(8, 8);
        let p = plan(&nest, Layout::Interleaved);
        assert_eq!(p.statements.len(), 2);
        assert!(p.statements.iter().all(|s| s.is_ok()));
        // Rectangular tiling is legal for the combined dependences.
        assert!(p.rectangular_tiling_legal);
    }

    #[test]
    fn irregular_statement_reported_not_paniced() {
        use uov_loopir::{AffineExpr, ArrayDecl, Assign, Expr};
        // B[i,j] = A[i,j]: no carried dependence — reported as such.
        let full = vec![AffineExpr::index(2, 0), AffineExpr::index(2, 1)];
        let nest = LoopNest::new(
            uov_isg::RectDomain::grid(3, 3),
            vec![
                ArrayDecl { name: "A".into(), rank: 2 },
                ArrayDecl { name: "B".into(), rank: 2 },
            ],
            vec![Assign {
                array: 1,
                subscript: full.clone(),
                rhs: Expr::read(0, full),
            }],
        )
        .unwrap();
        let p = plan(&nest, Layout::Interleaved);
        assert!(matches!(
            p.statements[0],
            Err(AnalysisError::NoCarriedDependence)
        ));
        assert!(p.rectangular_tiling_legal);
    }
}
