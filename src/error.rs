//! The workspace-wide error type of the facade.

use std::fmt;

use uov_core::certify::CertifyError;
use uov_core::error::SearchError;
use uov_isg::IsgError;
use uov_loopir::analysis::AnalysisError;
use uov_storage::MappingError;

/// Any error the end-to-end pipeline can produce.
///
/// The driver reserves this for *hard* failures — inputs out of numeric
/// range, impossible mappings. Recoverable conditions degrade instead:
/// irregular statements surface as per-statement [`AnalysisError`]s inside
/// the plan, and budget exhaustion yields a legal-but-possibly-suboptimal
/// UOV carrying a [`Degradation`](uov_core::budget::Degradation) record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Dependence analysis failed for the whole nest (not per-statement).
    Analysis(AnalysisError),
    /// Lattice arithmetic overflowed on adversarial coordinates.
    Isg(IsgError),
    /// The UOV search rejected the instance (too many vectors, dimension
    /// mismatch, numeric range).
    Search(SearchError),
    /// Storage-mapping construction failed.
    Mapping(MappingError),
    /// The independent certifier rejected a search result — the driver
    /// refuses to emit a mapping it could not re-validate.
    Certify(CertifyError),
    /// A service-backed plan failed: transport error, server rejection,
    /// or a remote answer whose locally recomputed certificate did not
    /// match the server's transcript hash.
    Service(String),
    /// Executable code generation, compilation or autotuning failed.
    ///
    /// Carries the rendered [`uov_codegen::CodegenError`] (stringified so
    /// this enum stays `Clone + Eq`; the typed value is available from
    /// `uov_codegen` APIs directly).
    Codegen(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Analysis(e) => write!(f, "dependence analysis failed: {e}"),
            Error::Isg(e) => write!(f, "lattice arithmetic failed: {e}"),
            Error::Search(e) => write!(f, "UOV search failed: {e}"),
            Error::Mapping(e) => write!(f, "storage mapping failed: {e}"),
            Error::Certify(e) => write!(f, "result certification failed: {e}"),
            Error::Service(msg) => write!(f, "planning service failed: {msg}"),
            Error::Codegen(msg) => write!(f, "code generation failed: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Analysis(e) => Some(e),
            Error::Isg(e) => Some(e),
            Error::Search(e) => Some(e),
            Error::Mapping(e) => Some(e),
            Error::Certify(e) => Some(e),
            Error::Service(_) | Error::Codegen(_) => None,
        }
    }
}

impl From<AnalysisError> for Error {
    fn from(e: AnalysisError) -> Self {
        Error::Analysis(e)
    }
}

impl From<IsgError> for Error {
    fn from(e: IsgError) -> Self {
        Error::Isg(e)
    }
}

impl From<SearchError> for Error {
    fn from(e: SearchError) -> Self {
        // Flatten: an Isg failure inside the search is still an Isg failure.
        match e {
            SearchError::Isg(inner) => Error::Isg(inner),
            other => Error::Search(other),
        }
    }
}

impl From<CertifyError> for Error {
    fn from(e: CertifyError) -> Self {
        Error::Certify(e)
    }
}

impl From<uov_codegen::CodegenError> for Error {
    fn from(e: uov_codegen::CodegenError) -> Self {
        Error::Codegen(e.to_string())
    }
}

impl From<MappingError> for Error {
    fn from(e: MappingError) -> Self {
        match e {
            MappingError::Isg(inner) => Error::Isg(inner),
            other => Error::Mapping(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_flatten_isg_causes() {
        let e: Error = SearchError::Isg(IsgError::ZeroVector).into();
        assert!(matches!(e, Error::Isg(IsgError::ZeroVector)));
        let e: Error = MappingError::AllocationTooLarge.into();
        assert!(matches!(
            e,
            Error::Mapping(MappingError::AllocationTooLarge)
        ));
        let e: Error = SearchError::TooManyVectors(64).into();
        assert!(e.to_string().contains("64"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
