//! Integer vectors over `Z^d`.
//!
//! [`IVec`] is the workhorse type of the workspace: iteration points,
//! dependence distances, occupancy vectors and mapping vectors are all
//! integer vectors. The type is a thin, heap-allocated wrapper around
//! `Vec<i64>` with arithmetic, lexicographic ordering and lattice helpers.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

use crate::error::IsgError;
use crate::num::{checked_floor_mod, checked_gcd_slice, floor_mod, gcd_slice};

/// An integer vector in `Z^d`.
///
/// The derived [`Ord`] is the lexicographic order on components, which for
/// equal-dimension vectors is exactly the sequential execution order of loop
/// iterations — a dependence distance is legal for the original loop iff it
/// is lexicographically positive ([`IVec::is_lex_positive`]).
///
/// Arithmetic between vectors of different dimensions panics; mixing
/// dimensions is always a logic error in this domain.
///
/// # Examples
///
/// ```
/// use uov_isg::ivec;
///
/// let p = ivec![3, 4];
/// let v = ivec![1, 1];
/// assert_eq!(&p - &v, ivec![2, 3]);
/// assert_eq!(p.dot(&v), 7);
/// assert!(v.is_lex_positive());
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct IVec(Vec<i64>);

/// Convenience constructor for [`IVec`].
///
/// ```
/// use uov_isg::{ivec, IVec};
/// assert_eq!(ivec![1, -2, 3], IVec::from(vec![1, -2, 3]));
/// ```
#[macro_export]
macro_rules! ivec {
    ($($x:expr),* $(,)?) => {
        $crate::IVec::from(vec![$($x as i64),*])
    };
}

impl IVec {
    /// The zero vector of dimension `dim`.
    ///
    /// ```
    /// use uov_isg::{ivec, IVec};
    /// assert_eq!(IVec::zero(3), ivec![0, 0, 0]);
    /// ```
    pub fn zero(dim: usize) -> Self {
        IVec(vec![0; dim])
    }

    /// The `axis`-th standard basis vector of dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= dim`.
    ///
    /// ```
    /// use uov_isg::{ivec, IVec};
    /// assert_eq!(IVec::unit(3, 1), ivec![0, 1, 0]);
    /// ```
    pub fn unit(dim: usize, axis: usize) -> Self {
        assert!(axis < dim, "axis {axis} out of range for dimension {dim}");
        let mut v = vec![0; dim];
        v[axis] = 1;
        IVec(v)
    }

    /// Number of components.
    ///
    /// ```
    /// use uov_isg::ivec;
    /// assert_eq!(ivec![1, 2, 3].dim(), 3);
    /// ```
    pub fn dim(&self) -> usize {
        self.0.len()
    }

    /// Whether every component is zero.
    ///
    /// ```
    /// use uov_isg::{ivec, IVec};
    /// assert!(IVec::zero(2).is_zero());
    /// assert!(!ivec![0, 1].is_zero());
    /// ```
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&c| c == 0)
    }

    /// Whether the first non-zero component is positive (and the vector is
    /// non-zero). This is the legality condition for a dependence distance in
    /// a sequentially executed loop nest.
    ///
    /// ```
    /// use uov_isg::ivec;
    /// assert!(ivec![0, 1].is_lex_positive());
    /// assert!(ivec![1, -5].is_lex_positive());
    /// assert!(!ivec![0, 0].is_lex_positive());
    /// assert!(!ivec![-1, 9].is_lex_positive());
    /// ```
    pub fn is_lex_positive(&self) -> bool {
        for &c in &self.0 {
            if c != 0 {
                return c > 0;
            }
        }
        false
    }

    /// Dot product.
    ///
    /// Computed in `i128` and checked back into `i64`, so intermediate
    /// overflow cannot silently wrap.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ or the result exceeds `i64`.
    ///
    /// ```
    /// use uov_isg::ivec;
    /// assert_eq!(ivec![1, 2].dot(&ivec![3, 4]), 11);
    /// ```
    pub fn dot(&self, other: &IVec) -> i64 {
        match self.try_dot(other) {
            Ok(d) => d,
            Err(IsgError::DimMismatch { expected, found }) => {
                panic!("dot product of mismatched dimensions {expected} and {found}")
            }
            Err(_) => panic!("dot product overflows i64"),
        }
    }

    /// [`IVec::dot`] returning [`IsgError`] on dimension mismatch or when the
    /// result exceeds `i64`.
    ///
    /// The per-term products and their sum are exact in `i128` (`d · 2¹²⁶`
    /// cannot reach `i128::MAX` for any realistic dimension), so the only
    /// failure is the final narrowing.
    ///
    /// ```
    /// use uov_isg::{ivec, IsgError};
    /// assert_eq!(ivec![1, 2].try_dot(&ivec![3, 4]), Ok(11));
    /// assert!(matches!(
    ///     ivec![i64::MAX, i64::MAX].try_dot(&ivec![2, 2]),
    ///     Err(IsgError::Overflow(_))
    /// ));
    /// ```
    pub fn try_dot(&self, other: &IVec) -> Result<i64, IsgError> {
        if self.dim() != other.dim() {
            return Err(IsgError::DimMismatch {
                expected: self.dim(),
                found: other.dim(),
            });
        }
        let mut sum = 0i128;
        for (&a, &b) in self.0.iter().zip(&other.0) {
            let term = (a as i128)
                .checked_mul(b as i128)
                .ok_or(IsgError::Overflow("dot product term"))?;
            sum = sum
                .checked_add(term)
                .ok_or(IsgError::Overflow("dot product sum"))?;
        }
        i64::try_from(sum).map_err(|_| IsgError::Overflow("dot product"))
    }

    /// Dot product as `i128`, exact for all `i64` components.
    ///
    /// Used where the caller only needs the sign or an `i128` comparison and
    /// must not fail on magnitude (cone-membership tests, pruning bounds).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn dot_i128(&self, other: &IVec) -> i128 {
        assert_eq!(
            self.dim(),
            other.dim(),
            "dot product of mismatched dimensions {} and {}",
            self.dim(),
            other.dim()
        );
        // Each term is at most 2¹²⁶ in magnitude; i128 sums of realistic
        // dimensions (d ≤ hundreds) cannot wrap.
        self.0
            .iter()
            .zip(&other.0)
            .map(|(&a, &b)| a as i128 * b as i128)
            .sum()
    }

    /// Squared Euclidean length, in `i128` to avoid overflow.
    ///
    /// The branch-and-bound search compares candidate occupancy vectors by
    /// length (paper §3.2.1); comparing squared lengths avoids floating
    /// point entirely.
    ///
    /// ```
    /// use uov_isg::ivec;
    /// assert_eq!(ivec![3, 4].norm_sq(), 25);
    /// ```
    pub fn norm_sq(&self) -> i128 {
        // Each square is < 2¹²⁶; i128 accumulation cannot wrap for any
        // dimension this workspace handles (it would take ≥ 4 components at
        // i64::MIN to approach i128::MAX, and even that fits: 4·2¹²⁶ < 2¹²⁷).
        self.0.iter().map(|&c| c as i128 * c as i128).sum()
    }

    /// [`IVec::norm_sq`] with explicit overflow checking on the `i128`
    /// accumulation, for adversarial high-dimension input.
    pub fn try_norm_sq(&self) -> Result<i128, IsgError> {
        let mut sum = 0i128;
        for &c in &self.0 {
            let sq = (c as i128)
                .checked_mul(c as i128)
                .ok_or(IsgError::Overflow("norm_sq term"))?;
            sum = sum
                .checked_add(sq)
                .ok_or(IsgError::Overflow("norm_sq sum"))?;
        }
        Ok(sum)
    }

    /// Maximum absolute component value, as `u64` so `i64::MIN` is exact.
    ///
    /// ```
    /// use uov_isg::ivec;
    /// assert_eq!(ivec![3, -7].max_abs(), 7);
    /// assert_eq!(ivec![i64::MIN].max_abs(), 1 << 63);
    /// ```
    pub fn max_abs(&self) -> u64 {
        self.0.iter().map(|&c| c.unsigned_abs()).max().unwrap_or(0)
    }

    /// Non-negative gcd of all components (`0` for the zero vector).
    ///
    /// An occupancy vector is *prime* (paper §4.1) iff its content is 1.
    ///
    /// # Panics
    ///
    /// Panics iff the content is `2⁶³` (every component `0` or `i64::MIN`,
    /// at least one `i64::MIN`). Use [`IVec::try_content`] on untrusted
    /// input.
    ///
    /// ```
    /// use uov_isg::ivec;
    /// assert_eq!(ivec![2, 0].content(), 2);
    /// assert_eq!(ivec![-3, 1].content(), 1);
    /// ```
    pub fn content(&self) -> i64 {
        gcd_slice(&self.0)
    }

    /// [`IVec::content`] returning [`IsgError::Overflow`] when the gcd
    /// (`2⁶³`) does not fit in `i64`.
    pub fn try_content(&self) -> Result<i64, IsgError> {
        checked_gcd_slice(&self.0).ok_or(IsgError::Overflow("vector content"))
    }

    /// The primitive vector in the same direction: `self / self.content()`.
    ///
    /// # Panics
    ///
    /// Panics on the zero vector.
    ///
    /// ```
    /// use uov_isg::ivec;
    /// assert_eq!(ivec![4, -2].primitive(), ivec![2, -1]);
    /// ```
    pub fn primitive(&self) -> IVec {
        match self.try_primitive() {
            Ok(p) => p,
            Err(IsgError::ZeroVector) => panic!("the zero vector has no direction"),
            Err(e) => panic!("primitive failed: {e}"),
        }
    }

    /// [`IVec::primitive`] returning [`IsgError::ZeroVector`] on the zero
    /// vector and [`IsgError::Overflow`] on the `2⁶³`-content corner.
    pub fn try_primitive(&self) -> Result<IVec, IsgError> {
        if self.is_zero() {
            return Err(IsgError::ZeroVector);
        }
        let g = self.try_content()?;
        // g divides every component exactly; component/g never overflows
        // because |component/g| ≤ |component|, except i64::MIN / -1 which
        // cannot occur (g > 0).
        Ok(IVec(self.0.iter().map(|&c| c / g).collect()))
    }

    /// Component-wise floor modulus by a positive modulus.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn mod_components(&self, m: i64) -> IVec {
        IVec(self.0.iter().map(|&c| floor_mod(c, m)).collect())
    }

    /// [`IVec::mod_components`] returning [`IsgError`] for `m == 0`.
    pub fn try_mod_components(&self, m: i64) -> Result<IVec, IsgError> {
        self.0
            .iter()
            .map(|&c| checked_floor_mod(c, m).ok_or(IsgError::Overflow("floor_mod by zero")))
            .collect::<Result<Vec<_>, _>>()
            .map(IVec)
    }

    /// Checked component-wise addition.
    pub fn checked_add(&self, other: &IVec) -> Result<IVec, IsgError> {
        if self.dim() != other.dim() {
            return Err(IsgError::DimMismatch {
                expected: self.dim(),
                found: other.dim(),
            });
        }
        self.0
            .iter()
            .zip(&other.0)
            .map(|(&a, &b)| {
                a.checked_add(b)
                    .ok_or(IsgError::Overflow("vector addition"))
            })
            .collect::<Result<Vec<_>, _>>()
            .map(IVec)
    }

    /// Checked component-wise subtraction.
    pub fn checked_sub(&self, other: &IVec) -> Result<IVec, IsgError> {
        if self.dim() != other.dim() {
            return Err(IsgError::DimMismatch {
                expected: self.dim(),
                found: other.dim(),
            });
        }
        self.0
            .iter()
            .zip(&other.0)
            .map(|(&a, &b)| {
                a.checked_sub(b)
                    .ok_or(IsgError::Overflow("vector subtraction"))
            })
            .collect::<Result<Vec<_>, _>>()
            .map(IVec)
    }

    /// Components as a slice.
    pub fn as_slice(&self) -> &[i64] {
        &self.0
    }

    /// Iterate over components.
    pub fn iter(&self) -> std::slice::Iter<'_, i64> {
        self.0.iter()
    }

    /// Scale by an integer.
    ///
    /// ```
    /// use uov_isg::ivec;
    /// assert_eq!(ivec![1, -2].scaled(3), ivec![3, -6]);
    /// ```
    pub fn scaled(&self, k: i64) -> IVec {
        match self.checked_scaled(k) {
            Ok(v) => v,
            Err(e) => panic!("vector scaling failed: {e}"),
        }
    }

    /// [`IVec::scaled`] returning [`IsgError::Overflow`] when any component
    /// product exceeds `i64`.
    pub fn checked_scaled(&self, k: i64) -> Result<IVec, IsgError> {
        self.0
            .iter()
            .map(|&c| c.checked_mul(k).ok_or(IsgError::Overflow("vector scaling")))
            .collect::<Result<Vec<_>, _>>()
            .map(IVec)
    }

    /// Consume into the underlying `Vec<i64>`.
    pub fn into_inner(self) -> Vec<i64> {
        self.0
    }
}

impl From<Vec<i64>> for IVec {
    fn from(v: Vec<i64>) -> Self {
        IVec(v)
    }
}

impl From<&[i64]> for IVec {
    fn from(v: &[i64]) -> Self {
        IVec(v.to_vec())
    }
}

impl<const N: usize> From<[i64; N]> for IVec {
    fn from(v: [i64; N]) -> Self {
        IVec(v.to_vec())
    }
}

impl FromIterator<i64> for IVec {
    fn from_iter<T: IntoIterator<Item = i64>>(iter: T) -> Self {
        IVec(iter.into_iter().collect())
    }
}

impl AsRef<[i64]> for IVec {
    fn as_ref(&self) -> &[i64] {
        &self.0
    }
}

/// Lets `HashMap<IVec, _>` be probed with a borrowed `&[i64]` — no
/// allocation on lookup-heavy paths. Consistent with `Eq`/`Hash`: the
/// derived `Hash` forwards to the inner `Vec`, which hashes exactly like
/// its slice.
impl std::borrow::Borrow<[i64]> for IVec {
    fn borrow(&self) -> &[i64] {
        &self.0
    }
}

impl Index<usize> for IVec {
    type Output = i64;
    fn index(&self, i: usize) -> &i64 {
        &self.0[i]
    }
}

impl IndexMut<usize> for IVec {
    fn index_mut(&mut self, i: usize) -> &mut i64 {
        &mut self.0[i]
    }
}

impl fmt::Debug for IVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for IVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

macro_rules! binop {
    ($trait:ident, $method:ident, $checked:ident) => {
        impl $trait for &IVec {
            type Output = IVec;
            fn $method(self, rhs: &IVec) -> IVec {
                assert_eq!(
                    self.dim(),
                    rhs.dim(),
                    concat!(stringify!($method), " of mismatched dimensions")
                );
                // Overflow panics even in release builds (where the plain
                // operator would wrap silently).
                IVec(
                    self.0
                        .iter()
                        .zip(&rhs.0)
                        .map(|(&a, &b)| match a.$checked(b) {
                            Some(c) => c,
                            None => {
                                panic!(concat!("vector ", stringify!($method), " overflows i64"))
                            }
                        })
                        .collect(),
                )
            }
        }
        impl $trait for IVec {
            type Output = IVec;
            fn $method(self, rhs: IVec) -> IVec {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&IVec> for IVec {
            type Output = IVec;
            fn $method(self, rhs: &IVec) -> IVec {
                (&self).$method(rhs)
            }
        }
        impl $trait<IVec> for &IVec {
            type Output = IVec;
            fn $method(self, rhs: IVec) -> IVec {
                self.$method(&rhs)
            }
        }
    };
}

binop!(Add, add, checked_add);
binop!(Sub, sub, checked_sub);

impl Neg for &IVec {
    type Output = IVec;
    fn neg(self) -> IVec {
        IVec(
            self.0
                .iter()
                .map(|&c| match c.checked_neg() {
                    Some(n) => n,
                    None => panic!("vector negation overflows i64 (component i64::MIN)"),
                })
                .collect(),
        )
    }
}

impl Neg for IVec {
    type Output = IVec;
    fn neg(self) -> IVec {
        -&self
    }
}

impl Mul<i64> for &IVec {
    type Output = IVec;
    fn mul(self, k: i64) -> IVec {
        self.scaled(k)
    }
}

impl Mul<i64> for IVec {
    type Output = IVec;
    fn mul(self, k: i64) -> IVec {
        self.scaled(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_basics() {
        let v = ivec![1, -2, 3];
        assert_eq!(v.dim(), 3);
        assert_eq!(v[1], -2);
        assert_eq!(v.as_slice(), &[1, -2, 3]);
        assert_eq!(format!("{v}"), "(1, -2, 3)");
        assert_eq!(format!("{v:?}"), "(1, -2, 3)");
    }

    #[test]
    fn zero_and_unit() {
        assert!(IVec::zero(4).is_zero());
        assert_eq!(IVec::unit(2, 0), ivec![1, 0]);
        assert_eq!(IVec::unit(2, 1), ivec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "axis")]
    fn unit_out_of_range_panics() {
        let _ = IVec::unit(2, 2);
    }

    #[test]
    fn arithmetic() {
        let a = ivec![1, 2];
        let b = ivec![3, -4];
        assert_eq!(&a + &b, ivec![4, -2]);
        assert_eq!(&a - &b, ivec![-2, 6]);
        assert_eq!(-&a, ivec![-1, -2]);
        assert_eq!(&a * 5, ivec![5, 10]);
        // Owned variants too.
        assert_eq!(a.clone() + b.clone(), ivec![4, -2]);
        assert_eq!(a.clone() - b.clone(), ivec![-2, 6]);
    }

    #[test]
    #[should_panic(expected = "mismatched dimensions")]
    fn add_dim_mismatch_panics() {
        let _ = ivec![1] + ivec![1, 2];
    }

    #[test]
    fn dot_and_norm() {
        assert_eq!(ivec![1, 2, 3].dot(&ivec![4, 5, 6]), 32);
        assert_eq!(ivec![3, 4].norm_sq(), 25);
        assert_eq!(IVec::zero(2).norm_sq(), 0);
    }

    #[test]
    fn lex_positive() {
        assert!(ivec![1].is_lex_positive());
        assert!(ivec![0, 0, 1].is_lex_positive());
        assert!(ivec![0, 1, -100].is_lex_positive());
        assert!(!ivec![0, 0, 0].is_lex_positive());
        assert!(!ivec![0, -1, 100].is_lex_positive());
    }

    #[test]
    fn lex_ordering_matches_sequential_execution() {
        // Execution order of a 2-deep nest is lexicographic on (i, j).
        let mut points = vec![ivec![1, 2], ivec![0, 9], ivec![1, 0], ivec![0, 0]];
        points.sort();
        assert_eq!(
            points,
            vec![ivec![0, 0], ivec![0, 9], ivec![1, 0], ivec![1, 2]]
        );
    }

    #[test]
    fn content_and_primitive() {
        assert_eq!(ivec![2, 0].content(), 2);
        assert_eq!(ivec![6, -9].content(), 3);
        assert_eq!(ivec![6, -9].primitive(), ivec![2, -3]);
        assert_eq!(ivec![0, 0, 5].primitive(), ivec![0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "zero vector")]
    fn primitive_of_zero_panics() {
        let _ = IVec::zero(2).primitive();
    }

    #[test]
    fn max_abs_works() {
        assert_eq!(ivec![-9, 3].max_abs(), 9);
        assert_eq!(IVec::zero(3).max_abs(), 0);
    }

    #[test]
    fn collect_from_iterator() {
        let v: IVec = (0..3).map(|x| x * 2).collect();
        assert_eq!(v, ivec![0, 2, 4]);
    }

    #[test]
    fn checked_arithmetic_reports_overflow() {
        let big = ivec![i64::MAX, 1];
        let one = ivec![1, 1];
        assert!(matches!(big.checked_add(&one), Err(IsgError::Overflow(_))));
        assert_eq!(big.checked_sub(&one), Ok(ivec![i64::MAX - 1, 0]));
        let low = ivec![i64::MIN, 0];
        assert!(matches!(low.checked_sub(&one), Err(IsgError::Overflow(_))));
        assert!(matches!(
            big.checked_add(&ivec![1]),
            Err(IsgError::DimMismatch {
                expected: 2,
                found: 1
            })
        ));
        assert!(matches!(big.checked_scaled(3), Err(IsgError::Overflow(_))));
        assert_eq!(ivec![2, -3].checked_scaled(4), Ok(ivec![8, -12]));
    }

    #[test]
    fn try_dot_extremes() {
        assert_eq!(ivec![i64::MAX].try_dot(&ivec![1]), Ok(i64::MAX));
        assert!(matches!(
            ivec![i64::MAX, i64::MAX].try_dot(&ivec![1, 1]),
            Err(IsgError::Overflow(_))
        ));
        assert_eq!(
            ivec![i64::MAX, i64::MAX].dot_i128(&ivec![1, 1]),
            i64::MAX as i128 * 2
        );
        assert_eq!(
            ivec![i64::MIN].dot_i128(&ivec![i64::MIN]),
            (i64::MIN as i128).pow(2)
        );
    }

    #[test]
    fn try_norm_and_content_extremes() {
        assert_eq!(ivec![i64::MIN].try_norm_sq(), Ok((i64::MIN as i128).pow(2)));
        assert_eq!(ivec![i64::MIN].max_abs(), 1u64 << 63);
        assert!(matches!(
            ivec![i64::MIN, 0].try_content(),
            Err(IsgError::Overflow(_))
        ));
        assert_eq!(ivec![i64::MIN, 6].try_content(), Ok(2));
        assert!(matches!(
            IVec::zero(2).try_primitive(),
            Err(IsgError::ZeroVector)
        ));
        assert_eq!(
            ivec![i64::MIN, 0].try_primitive(),
            Err(IsgError::Overflow("vector content"))
        );
        assert_eq!(
            ivec![i64::MIN, 6].try_primitive(),
            Ok(ivec![i64::MIN / 2, 3])
        );
    }

    #[test]
    #[should_panic(expected = "overflows i64")]
    fn operator_add_panics_on_overflow() {
        let _ = ivec![i64::MAX] + ivec![1];
    }

    #[test]
    #[should_panic(expected = "negation overflows")]
    fn neg_panics_on_min() {
        let _ = -ivec![i64::MIN];
    }
}
