//! The crate-wide error type for lattice arithmetic and geometry.
//!
//! Everything in this crate operates on `i64` lattice coordinates, so every
//! non-trivial operation has an overflow failure mode on adversarial inputs
//! (coordinates near `i64::MAX`, huge positive-functional bases, …). The
//! `try_*`/`checked_*` variants across the crate return [`IsgError`] instead
//! of panicking; the panicking convenience wrappers remain for callers whose
//! inputs are known-small (tests, examples, fixtures).

use std::error::Error;
use std::fmt;

/// Error from lattice arithmetic or geometric construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsgError {
    /// An intermediate or final value does not fit the target integer type.
    /// The payload names the operation for diagnostics.
    Overflow(&'static str),
    /// The operation needs a non-zero vector (direction, occupancy vector).
    ZeroVector,
    /// Two operands must agree on dimension and do not.
    DimMismatch {
        /// Dimension of the first operand.
        expected: usize,
        /// Dimension of the offending operand.
        found: usize,
    },
    /// The operation needs a non-empty collection (forms, rows, vertices).
    Empty,
}

impl fmt::Display for IsgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsgError::Overflow(what) => write!(f, "integer overflow in {what}"),
            IsgError::ZeroVector => write!(f, "operation requires a non-zero vector"),
            IsgError::DimMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            IsgError::Empty => write!(f, "operation requires a non-empty input"),
        }
    }
}

impl Error for IsgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(IsgError::Overflow("dot product")
            .to_string()
            .contains("dot product"));
        assert!(IsgError::ZeroVector.to_string().contains("non-zero"));
        assert!(IsgError::DimMismatch {
            expected: 2,
            found: 3
        }
        .to_string()
        .contains("expected 2"));
        assert!(IsgError::Empty.to_string().contains("non-empty"));
    }
}
