//! Dependence stencils: the regular pattern of value flow in an ISG.
//!
//! The paper (§2) assumes every node of the iteration space graph has the
//! same pattern of incoming value dependences, called a *stencil* after
//! Reed, Adams and Patrick. A stencil vector `v` means: the value consumed
//! by iteration `q` was produced by iteration `q − v`.
//!
//! For a sequentially executable loop nest every flow-dependence distance is
//! lexicographically positive, and [`Stencil::new`] enforces exactly that —
//! it is the precondition for the DONE/DEAD machinery of `uov-core` to
//! terminate.

use std::error::Error;
use std::fmt;

use crate::error::IsgError;
use crate::vec::IVec;

/// A validated set of constant-distance value dependences.
///
/// Invariants (enforced at construction):
/// * non-empty,
/// * all vectors have the same dimension,
/// * every vector is lexicographically positive (hence non-zero),
/// * vectors are deduplicated and stored sorted.
///
/// # Examples
///
/// ```
/// use uov_isg::{ivec, Stencil};
///
/// // The 5-point stencil of the paper's §5: value at (t, x) flows to
/// // (t+1, x−2) … (t+1, x+2).
/// let s = Stencil::new(vec![
///     ivec![1, -2], ivec![1, -1], ivec![1, 0], ivec![1, 1], ivec![1, 2],
/// ])?;
/// assert_eq!(s.len(), 5);
/// assert_eq!(s.sum(), ivec![5, 0]);
/// # Ok::<(), uov_isg::StencilError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Stencil {
    vectors: Vec<IVec>,
    dim: usize,
}

/// Error constructing a [`Stencil`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StencilError {
    /// A stencil must contain at least one dependence vector.
    Empty,
    /// All dependence vectors must share one dimension.
    DimMismatch {
        /// Dimension of the first vector.
        expected: usize,
        /// Dimension of the offending vector.
        found: usize,
    },
    /// A dependence distance must be lexicographically positive to be
    /// realisable by any sequential loop nest.
    NotLexPositive(IVec),
}

impl fmt::Display for StencilError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StencilError::Empty => write!(f, "stencil has no dependence vectors"),
            StencilError::DimMismatch { expected, found } => write!(
                f,
                "stencil vectors have mismatched dimensions ({expected} vs {found})"
            ),
            StencilError::NotLexPositive(v) => write!(
                f,
                "dependence distance {v} is not lexicographically positive"
            ),
        }
    }
}

impl Error for StencilError {}

impl Stencil {
    /// Validate and build a stencil from flow-dependence distance vectors.
    ///
    /// Duplicates are removed and the vectors are stored in sorted order.
    ///
    /// # Errors
    ///
    /// Returns [`StencilError`] if the set is empty, dimensions differ, or a
    /// vector is not lexicographically positive.
    pub fn new(vectors: Vec<IVec>) -> Result<Self, StencilError> {
        let Some(first) = vectors.first() else {
            return Err(StencilError::Empty);
        };
        let dim = first.dim();
        for v in &vectors {
            if v.dim() != dim {
                return Err(StencilError::DimMismatch {
                    expected: dim,
                    found: v.dim(),
                });
            }
            if !v.is_lex_positive() {
                return Err(StencilError::NotLexPositive(v.clone()));
            }
        }
        let mut vectors = vectors;
        vectors.sort();
        vectors.dedup();
        Ok(Stencil { vectors, dim })
    }

    /// Dimensionality of the iteration space.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of (distinct) dependence vectors.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// A stencil is never empty; this exists for clippy/API symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The dependence vectors, sorted and deduplicated.
    pub fn vectors(&self) -> &[IVec] {
        &self.vectors
    }

    /// Iterate over dependence vectors.
    pub fn iter(&self) -> std::slice::Iter<'_, IVec> {
        self.vectors.iter()
    }

    /// Whether `v` is one of the stencil's dependence vectors.
    pub fn contains(&self, v: &IVec) -> bool {
        self.vectors.binary_search(v).is_ok()
    }

    /// Sum of all dependence vectors: the paper's trivially legal initial
    /// universal occupancy vector `ov₀ = Σ vᵢ` (§3.2.1).
    ///
    /// # Panics
    ///
    /// Panics if a component sum overflows `i64`. Use [`Stencil::try_sum`]
    /// on untrusted input.
    pub fn sum(&self) -> IVec {
        match self.try_sum() {
            Ok(s) => s,
            Err(e) => panic!("stencil sum failed: {e}"),
        }
    }

    /// [`Stencil::sum`] returning [`IsgError::Overflow`] when a component sum
    /// exceeds `i64`.
    pub fn try_sum(&self) -> Result<IVec, IsgError> {
        self.vectors
            .iter()
            .try_fold(IVec::zero(self.dim), |acc, v| acc.checked_add(v))
    }

    /// A linear functional `φ` with `φ · vᵢ ≥ 1` for every stencil vector.
    ///
    /// Existence follows from lexicographic positivity: take
    /// `φ = (M^{d−1}, …, M, 1)` with `M = d·c + 1` where `c` is the largest
    /// absolute component in the stencil. The functional certifies that
    /// non-negative integer combinations of stencil vectors have bounded
    /// coefficient sums (`Σaᵢ ≤ φ·w`), which makes the DONE-set decision
    /// procedure in `uov-core` a *complete* search.
    ///
    /// # Panics
    ///
    /// Panics if `M^{d−1}` overflows `i64` (possible for extreme
    /// dimension/magnitude combinations). Use
    /// [`Stencil::try_positive_functional`] on untrusted input.
    pub fn positive_functional(&self) -> IVec {
        match self.try_positive_functional() {
            Ok(phi) => phi,
            Err(e) => panic!("positive functional failed: {e}"),
        }
    }

    /// [`Stencil::positive_functional`] returning [`IsgError::Overflow`]
    /// when the functional's geometric components exceed `i64`.
    pub fn try_positive_functional(&self) -> Result<IVec, IsgError> {
        let c = self
            .vectors
            .iter()
            .map(|v| v.max_abs())
            .max()
            .unwrap_or(1) // a stencil is never empty by construction
            .max(1);
        let m = i64::try_from(c)
            .ok()
            .and_then(|c| c.checked_mul(self.dim as i64))
            .and_then(|x| x.checked_add(1))
            .ok_or(IsgError::Overflow("positive functional base"))?;
        let mut phi = vec![1i64; self.dim];
        for k in (0..self.dim.saturating_sub(1)).rev() {
            phi[k] = phi[k + 1]
                .checked_mul(m)
                .ok_or(IsgError::Overflow("positive functional component"))?;
        }
        let phi = IVec::from(phi);
        debug_assert!(self.vectors.iter().all(|v| phi.dot_i128(v) >= 1));
        Ok(phi)
    }

    /// The *extreme vectors* of the stencil: a subset whose cone of
    /// directions contains every stencil vector.
    ///
    /// Used to build the bounding parallelepiped of the branch-and-bound
    /// search (paper Fig. 4, citing Ramanujam & Sadayappan). In two
    /// dimensions this returns the two angular extremes; in other dimensions
    /// it conservatively returns all vectors (still a correct bound, merely
    /// not minimal).
    pub fn extreme_vectors(&self) -> Vec<IVec> {
        if self.dim != 2 || self.vectors.len() <= 2 {
            return self.vectors.clone();
        }
        // cross(a, b) > 0 ⟺ b is counter-clockwise from a.
        let cross = |a: &IVec, b: &IVec| -> i128 {
            a[0] as i128 * b[1] as i128 - a[1] as i128 * b[0] as i128
        };
        let mut lo = self.vectors[0].clone();
        let mut hi = self.vectors[0].clone();
        for v in &self.vectors[1..] {
            if cross(&lo, v) < 0 {
                lo = v.clone();
            }
            if cross(&hi, v) > 0 {
                hi = v.clone();
            }
        }
        if lo == hi {
            vec![lo]
        } else {
            vec![lo, hi]
        }
    }
}

impl fmt::Debug for Stencil {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Stencil{{")?;
        for (i, v) in self.vectors.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for Stencil {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

impl<'a> IntoIterator for &'a Stencil {
    type Item = &'a IVec;
    type IntoIter = std::slice::Iter<'a, IVec>;
    fn into_iter(self) -> Self::IntoIter {
        self.vectors.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ivec;

    fn fig1() -> Stencil {
        Stencil::new(vec![ivec![1, 0], ivec![0, 1], ivec![1, 1]]).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert_eq!(Stencil::new(vec![]).unwrap_err(), StencilError::Empty);
        assert_eq!(
            Stencil::new(vec![ivec![1], ivec![1, 2]]).unwrap_err(),
            StencilError::DimMismatch {
                expected: 1,
                found: 2
            }
        );
        assert_eq!(
            Stencil::new(vec![ivec![0, 0]]).unwrap_err(),
            StencilError::NotLexPositive(ivec![0, 0])
        );
        assert_eq!(
            Stencil::new(vec![ivec![1, 0], ivec![-1, 2]]).unwrap_err(),
            StencilError::NotLexPositive(ivec![-1, 2])
        );
    }

    #[test]
    fn dedup_and_sort() {
        let s = Stencil::new(vec![ivec![1, 1], ivec![1, 0], ivec![1, 1]]).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.vectors(), &[ivec![1, 0], ivec![1, 1]]);
        assert!(s.contains(&ivec![1, 1]));
        assert!(!s.contains(&ivec![0, 1]));
    }

    #[test]
    fn sum_is_initial_uov() {
        assert_eq!(fig1().sum(), ivec![2, 2]);
    }

    #[test]
    fn positive_functional_dominates() {
        for s in [
            fig1(),
            Stencil::new(vec![
                ivec![1, -2],
                ivec![1, -1],
                ivec![1, 0],
                ivec![1, 1],
                ivec![1, 2],
            ])
            .unwrap(),
            Stencil::new(vec![ivec![0, 0, 1], ivec![1, -5, -5]]).unwrap(),
        ] {
            let phi = s.positive_functional();
            for v in &s {
                assert!(phi.dot(v) >= 1, "phi={phi} fails on {v}");
            }
        }
    }

    #[test]
    fn extreme_vectors_2d() {
        let s = Stencil::new(vec![
            ivec![1, -2],
            ivec![1, -1],
            ivec![1, 0],
            ivec![1, 1],
            ivec![1, 2],
        ])
        .unwrap();
        let ext = s.extreme_vectors();
        assert_eq!(ext.len(), 2);
        assert!(ext.contains(&ivec![1, -2]));
        assert!(ext.contains(&ivec![1, 2]));
    }

    #[test]
    fn extreme_vectors_non_2d_returns_all() {
        let s = Stencil::new(vec![ivec![1, 0, 0], ivec![0, 1, 0], ivec![0, 0, 1]]).unwrap();
        assert_eq!(s.extreme_vectors().len(), 3);
    }

    #[test]
    fn extreme_vectors_collinear() {
        let s = Stencil::new(vec![ivec![1, 1], ivec![2, 2], ivec![3, 3]]).unwrap();
        let ext = s.extreme_vectors();
        // All directions coincide; a single extreme spans the cone.
        assert!(!ext.is_empty() && ext.len() <= 2);
    }

    #[test]
    fn display_nonempty() {
        assert!(format!("{:?}", fig1()).contains("(1, 1)"));
    }

    #[test]
    fn try_variants_report_overflow_instead_of_panicking() {
        // Near-i64::MAX coordinates: Σvᵢ and φ both overflow.
        let s = Stencil::new(vec![ivec![i64::MAX, 0], ivec![1, i64::MAX]]).unwrap();
        assert!(matches!(s.try_sum(), Err(IsgError::Overflow(_))));
        assert!(matches!(
            s.try_positive_functional(),
            Err(IsgError::Overflow(_))
        ));
        // A well-behaved stencil round-trips through the try_ paths.
        let f = fig1();
        assert_eq!(f.try_sum().unwrap(), f.sum());
        assert_eq!(
            f.try_positive_functional().unwrap(),
            f.positive_functional()
        );
    }
}
