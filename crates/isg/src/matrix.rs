//! Dense integer matrices and unimodular lattice transformations.
//!
//! The paper's §4 derives mapping vectors for two-dimensional loops by hand
//! (`(i,j) → (−j,i)`). The d-dimensional generalisation implemented in
//! `uov-storage` needs a *unimodular completion*: a change of basis `W` of
//! `Z^d` whose first coordinate runs along the occupancy vector, so the
//! remaining `d−1` coordinates enumerate the storage-equivalence classes.
//! [`IMat::lattice_reduction`] constructs exactly that `W`.

use std::fmt;
use std::ops::Mul;

use crate::error::IsgError;
use crate::num::checked_extended_gcd;
use crate::vec::IVec;

/// A dense `rows × cols` integer matrix, row-major.
///
/// # Examples
///
/// ```
/// use uov_isg::{ivec, IMat};
/// let m = IMat::from_rows(&[ivec![1, 2], ivec![3, 4]]);
/// assert_eq!(m.mul_vec(&ivec![1, 1]), ivec![3, 7]);
/// assert_eq!(m.det(), -2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct IMat {
    rows: usize,
    cols: usize,
    data: Vec<i64>,
}

impl IMat {
    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut data = vec![0; n * n];
        for i in 0..n {
            data[i * n + i] = 1;
        }
        IMat {
            rows: n,
            cols: n,
            data,
        }
    }

    /// Build a matrix from row vectors.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or the rows have differing dimensions.
    pub fn from_rows(rows: &[IVec]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].dim();
        assert!(
            rows.iter().all(|r| r.dim() == cols),
            "all rows must have the same dimension"
        );
        let data = rows.iter().flat_map(|r| r.iter().copied()).collect();
        IMat {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Entry at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn at(&self, r: usize, c: usize) -> i64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of range"
        );
        self.data[r * self.cols + c]
    }

    fn at_mut(&mut self, r: usize, c: usize) -> &mut i64 {
        &mut self.data[r * self.cols + c]
    }

    /// The `r`-th row as a vector.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> IVec {
        assert!(r < self.rows, "row {r} out of range");
        IVec::from(&self.data[r * self.cols..(r + 1) * self.cols])
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.dim() != self.cols()`.
    pub fn mul_vec(&self, v: &IVec) -> IVec {
        assert_eq!(v.dim(), self.cols, "vector dimension must match columns");
        (0..self.rows).map(|r| self.row(r).dot(v)).collect()
    }

    /// [`IMat::mul_vec`] returning [`IsgError`] on dimension mismatch or
    /// when a row product exceeds `i64`.
    pub fn try_mul_vec(&self, v: &IVec) -> Result<IVec, IsgError> {
        if v.dim() != self.cols {
            return Err(IsgError::DimMismatch {
                expected: self.cols,
                found: v.dim(),
            });
        }
        (0..self.rows).map(|r| self.row(r).try_dot(v)).collect()
    }

    /// Determinant by fraction-free (Bareiss) elimination, exact in `i128`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or the result/intermediates exceed
    /// the integer range. Use [`IMat::try_det`] on untrusted input.
    pub fn det(&self) -> i64 {
        match self.try_det() {
            Ok(d) => d,
            Err(e) => panic!("determinant failed: {e}"),
        }
    }

    /// [`IMat::det`] with every Bareiss intermediate overflow-checked in
    /// `i128`, returning [`IsgError::Overflow`] instead of wrapping or
    /// panicking on adversarial entries.
    ///
    /// # Panics
    ///
    /// Still panics if the matrix is not square — that is a logic error at
    /// the call site, not an input property.
    pub fn try_det(&self) -> Result<i64, IsgError> {
        assert_eq!(self.rows, self.cols, "determinant of non-square matrix");
        let n = self.rows;
        let mut a: Vec<i128> = self.data.iter().map(|&x| x as i128).collect();
        let mut sign = 1i128;
        let mut prev = 1i128;
        let err = IsgError::Overflow("determinant intermediate");
        for k in 0..n {
            // Pivot: find a non-zero entry in column k at or below row k.
            if a[k * n + k] == 0 {
                let Some(swap) = (k + 1..n).find(|&r| a[r * n + k] != 0) else {
                    return Ok(0);
                };
                for c in 0..n {
                    a.swap(k * n + c, swap * n + c);
                }
                sign = -sign;
            }
            for i in k + 1..n {
                for j in k + 1..n {
                    let num = a[i * n + j]
                        .checked_mul(a[k * n + k])
                        .and_then(|x| {
                            a[i * n + k]
                                .checked_mul(a[k * n + j])
                                .and_then(|y| x.checked_sub(y))
                        })
                        .ok_or(err.clone())?;
                    a[i * n + j] = num / prev;
                }
                a[i * n + k] = 0;
            }
            prev = a[k * n + k];
        }
        i64::try_from(sign * a[(n - 1) * n + (n - 1)])
            .map_err(|_| IsgError::Overflow("determinant"))
    }

    /// Whether the matrix is square with determinant `±1` — i.e. an
    /// automorphism of the lattice `Z^n`.
    pub fn is_unimodular(&self) -> bool {
        self.rows == self.cols && matches!(self.try_det(), Ok(1) | Ok(-1))
    }

    /// Compute a unimodular matrix `W` such that `W·v = (g, 0, …, 0)` where
    /// `g = v.content()`.
    ///
    /// Rows `1..d` of `W` are linear forms vanishing on `v`: they project an
    /// iteration point onto its storage-equivalence class for the occupancy
    /// vector `v` (two points `q` and `q' = q + k·v` get identical projected
    /// coordinates). Row `0` measures lattice position *along* `v`, which is
    /// what the `modterm` of a non-prime occupancy vector inspects
    /// (paper §4.2).
    ///
    /// For a primitive 2-D vector `(i, j)` the second row of `W` is `±(−j, i)`
    /// — exactly the paper's 2-D mapping vector.
    ///
    /// # Panics
    ///
    /// Panics if `v` is the zero vector, or on integer overflow for
    /// adversarial coordinates. Use [`IMat::try_lattice_reduction`] on
    /// untrusted input.
    ///
    /// # Examples
    ///
    /// ```
    /// use uov_isg::{ivec, IMat};
    /// let w = IMat::lattice_reduction(&ivec![2, 0]);
    /// assert!(w.is_unimodular());
    /// assert_eq!(w.mul_vec(&ivec![2, 0]), ivec![2, 0]); // content 2
    /// ```
    pub fn lattice_reduction(v: &IVec) -> IMat {
        match Self::try_lattice_reduction(v) {
            Ok(w) => w,
            Err(IsgError::ZeroVector) => panic!("cannot reduce the zero vector"),
            Err(e) => panic!("lattice reduction failed: {e}"),
        }
    }

    /// [`IMat::lattice_reduction`] returning [`IsgError::ZeroVector`] for
    /// the zero vector and [`IsgError::Overflow`] when a row operation's
    /// coefficients exceed `i64`.
    pub fn try_lattice_reduction(v: &IVec) -> Result<IMat, IsgError> {
        if v.is_zero() {
            return Err(IsgError::ZeroVector);
        }
        // A content of 2⁶³ (all components 0 or i64::MIN) cannot appear in
        // row 0 of the result; reject it before the elimination loop.
        v.try_content()?;
        let d = v.dim();
        let mut w = IMat::identity(d);
        let mut cur: Vec<i64> = v.as_slice().to_vec();
        for i in 1..d {
            let (a, b) = (cur[0], cur[i]);
            if b == 0 {
                continue;
            }
            let (g, x, y) =
                checked_extended_gcd(a, b).ok_or(IsgError::Overflow("lattice reduction gcd"))?;
            // Row op with determinant +1:
            //   row0' =  x·row0 + y·rowi
            //   rowi' = -(b/g)·row0 + (a/g)·rowi
            // g > 0 here (a or b non-zero), so b/g and a/g cannot hit the
            // i64::MIN / -1 overflow; the scalings and sums can.
            let row0 = w.row(0);
            let rowi = w.row(i);
            let neg_b_over_g = (b / g)
                .checked_neg()
                .ok_or(IsgError::Overflow("lattice reduction coefficient"))?;
            let new0 = row0
                .checked_scaled(x)?
                .checked_add(&rowi.checked_scaled(y)?)?;
            let newi = row0
                .checked_scaled(neg_b_over_g)?
                .checked_add(&rowi.checked_scaled(a / g)?)?;
            for c in 0..d {
                *w.at_mut(0, c) = new0[c];
                *w.at_mut(i, c) = newi[c];
            }
            cur[0] = g;
            cur[i] = 0;
        }
        // Pairwise gcd steps leave cur[0] = ±content; normalise the sign so
        // row 0 always measures position along +v.
        if cur[0] < 0 {
            for c in 0..d {
                let negated = w
                    .at(0, c)
                    .checked_neg()
                    .ok_or(IsgError::Overflow("row normalisation"))?;
                *w.at_mut(0, c) = negated;
            }
        }
        debug_assert_eq!(w.mul_vec(v)[0], v.content());
        debug_assert!(w.mul_vec(v).iter().skip(1).all(|&c| c == 0));
        Ok(w)
    }
}

impl Mul for &IMat {
    type Output = IMat;
    fn mul(self, rhs: &IMat) -> IMat {
        assert_eq!(self.cols, rhs.rows, "inner dimensions must match");
        let mut data = vec![0i64; self.rows * rhs.cols];
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.at(r, k);
                if a == 0 {
                    continue;
                }
                for c in 0..rhs.cols {
                    data[r * rhs.cols + c] += a * rhs.at(k, c);
                }
            }
        }
        IMat {
            rows: self.rows,
            cols: rhs.cols,
            data,
        }
    }
}

impl fmt::Debug for IMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "IMat {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            writeln!(f, "  {:?}", self.row(r))?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for IMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ivec;

    #[test]
    fn identity_works() {
        let id = IMat::identity(3);
        let v = ivec![1, -2, 3];
        assert_eq!(id.mul_vec(&v), v);
        assert_eq!(id.det(), 1);
        assert!(id.is_unimodular());
    }

    #[test]
    fn from_rows_and_access() {
        let m = IMat::from_rows(&[ivec![1, 2, 3], ivec![4, 5, 6]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.at(1, 2), 6);
        assert_eq!(m.row(0), ivec![1, 2, 3]);
    }

    #[test]
    fn matrix_product() {
        let a = IMat::from_rows(&[ivec![1, 2], ivec![3, 4]]);
        let b = IMat::from_rows(&[ivec![0, 1], ivec![1, 0]]);
        let ab = &a * &b;
        assert_eq!(ab.row(0), ivec![2, 1]);
        assert_eq!(ab.row(1), ivec![4, 3]);
    }

    #[test]
    fn det_2x2_and_3x3() {
        assert_eq!(IMat::from_rows(&[ivec![1, 2], ivec![3, 4]]).det(), -2);
        assert_eq!(
            IMat::from_rows(&[ivec![2, 0, 0], ivec![0, 3, 0], ivec![0, 0, 4]]).det(),
            24
        );
        assert_eq!(
            IMat::from_rows(&[ivec![1, 2, 3], ivec![4, 5, 6], ivec![7, 8, 9]]).det(),
            0
        );
        // A matrix needing a pivot swap.
        assert_eq!(IMat::from_rows(&[ivec![0, 1], ivec![1, 0]]).det(), -1);
    }

    #[test]
    fn lattice_reduction_2d_matches_paper_mapping_vector() {
        // For prime ov = (i, j), the paper chooses mv = (−j, i). Our row 1 is
        // a form vanishing on ov with primitive coefficients — same line.
        let ov = ivec![1, 1];
        let w = IMat::lattice_reduction(&ov);
        assert!(w.is_unimodular());
        assert_eq!(w.mul_vec(&ov), ivec![1, 0]);
        let mv = w.row(1);
        assert_eq!(mv.dot(&ov), 0);
        assert_eq!(mv.content(), 1);
    }

    #[test]
    fn lattice_reduction_non_prime() {
        let ov = ivec![3, 0];
        let w = IMat::lattice_reduction(&ov);
        assert!(w.is_unimodular());
        assert_eq!(w.mul_vec(&ov), ivec![3, 0]);
    }

    #[test]
    fn lattice_reduction_various_dims() {
        for v in [
            ivec![5],
            ivec![2, 3],
            ivec![-4, 6],
            ivec![1, -2, 3],
            ivec![6, 10, 15],
            ivec![0, 0, 7],
            ivec![2, 4, 6, 8],
            ivec![3, -1, 4, -1, 5],
        ] {
            let w = IMat::lattice_reduction(&v);
            assert!(w.is_unimodular(), "not unimodular for {v}");
            let wv = w.mul_vec(&v);
            assert_eq!(wv[0], v.content(), "content mismatch for {v}");
            assert!(
                wv.iter().skip(1).all(|&c| c == 0),
                "tail not annihilated for {v}: {wv}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "zero vector")]
    fn lattice_reduction_zero_panics() {
        let _ = IMat::lattice_reduction(&IVec::zero(2));
    }

    #[test]
    fn debug_is_nonempty() {
        let m = IMat::identity(2);
        assert!(!format!("{m:?}").is_empty());
    }

    #[test]
    fn try_det_reports_overflow() {
        let m = IMat::from_rows(&[ivec![i64::MAX, 1], ivec![1, i64::MAX]]);
        assert!(matches!(m.try_det(), Err(IsgError::Overflow(_))));
        assert_eq!(
            IMat::from_rows(&[ivec![1, 2], ivec![3, 4]]).try_det(),
            Ok(-2)
        );
    }

    #[test]
    fn try_lattice_reduction_extremes() {
        assert_eq!(
            IMat::try_lattice_reduction(&IVec::zero(3)),
            Err(IsgError::ZeroVector)
        );
        // Large but well-conditioned input succeeds.
        let v = ivec![i64::MAX, 0];
        let w = IMat::try_lattice_reduction(&v).unwrap();
        assert!(w.is_unimodular());
        assert_eq!(w.mul_vec(&v), ivec![i64::MAX, 0]);
        // i64::MIN components: the content (2^63) is unrepresentable.
        assert!(matches!(
            IMat::try_lattice_reduction(&ivec![i64::MIN, 0]),
            Err(IsgError::Overflow(_))
        ));
        // Mixed extreme coordinates still reduce (gcd is small).
        let v = ivec![i64::MIN, 3];
        if let Ok(w) = IMat::try_lattice_reduction(&v) {
            assert!(w.is_unimodular());
        }
    }

    #[test]
    fn try_mul_vec_checks() {
        let m = IMat::from_rows(&[ivec![i64::MAX, i64::MAX]]);
        assert!(matches!(
            m.try_mul_vec(&ivec![1, 1]),
            Err(IsgError::Overflow(_))
        ));
        assert!(matches!(
            m.try_mul_vec(&ivec![1]),
            Err(IsgError::DimMismatch {
                expected: 2,
                found: 1
            })
        ));
        assert_eq!(m.try_mul_vec(&ivec![1, 0]), Ok(ivec![i64::MAX]));
    }
}
