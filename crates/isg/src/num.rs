//! Elementary number theory used throughout the workspace.
//!
//! Occupancy-vector storage mappings lean on the Euclidean algorithm twice:
//! the greatest common divisor of an occupancy vector's components decides
//! whether it is *prime* (paper §4.1/§4.2), and Bézout coefficients prove
//! that prime mapping vectors touch consecutive storage locations.

/// Greatest common divisor of two integers, always non-negative.
///
/// `gcd(0, 0)` is defined as `0`.
///
/// # Examples
///
/// ```
/// use uov_isg::num::gcd;
/// assert_eq!(gcd(12, -18), 6);
/// assert_eq!(gcd(0, 5), 5);
/// assert_eq!(gcd(0, 0), 0);
/// ```
pub fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

/// Least common multiple of two integers, always non-negative.
///
/// `lcm(0, x)` is defined as `0`.
///
/// # Panics
///
/// Panics on overflow in debug builds (as any Rust integer arithmetic does).
///
/// # Examples
///
/// ```
/// use uov_isg::num::lcm;
/// assert_eq!(lcm(4, 6), 12);
/// assert_eq!(lcm(0, 7), 0);
/// ```
pub fn lcm(a: i64, b: i64) -> i64 {
    if a == 0 || b == 0 {
        0
    } else {
        (a / gcd(a, b)).abs() * b.abs()
    }
}

/// Extended Euclidean algorithm.
///
/// Returns `(g, x, y)` such that `a*x + b*y == g` and `g == gcd(a, b) >= 0`.
///
/// # Examples
///
/// ```
/// use uov_isg::num::extended_gcd;
/// let (g, x, y) = extended_gcd(240, 46);
/// assert_eq!(g, 2);
/// assert_eq!(240 * x + 46 * y, 2);
/// ```
pub fn extended_gcd(a: i64, b: i64) -> (i64, i64, i64) {
    // Invariants: old_r = a*old_s + b*old_t, r = a*s + b*t.
    let (mut old_r, mut r) = (a, b);
    let (mut old_s, mut s) = (1i64, 0i64);
    let (mut old_t, mut t) = (0i64, 1i64);
    while r != 0 {
        let q = old_r / r;
        (old_r, r) = (r, old_r - q * r);
        (old_s, s) = (s, old_s - q * s);
        (old_t, t) = (t, old_t - q * t);
    }
    if old_r < 0 {
        (-old_r, -old_s, -old_t)
    } else {
        (old_r, old_s, old_t)
    }
}

/// Greatest common divisor of a slice, always non-negative.
///
/// The gcd of the empty slice is `0`.
///
/// # Examples
///
/// ```
/// use uov_isg::num::gcd_slice;
/// assert_eq!(gcd_slice(&[6, -9, 15]), 3);
/// assert_eq!(gcd_slice(&[]), 0);
/// ```
pub fn gcd_slice(values: &[i64]) -> i64 {
    values.iter().fold(0, |acc, &v| gcd(acc, v))
}

/// Mathematical (floor) modulus: the result is always in `0..m.abs()`.
///
/// The `%` operator in Rust is a remainder that follows the sign of the
/// dividend; storage `modterm`s (paper §4.2) need the non-negative residue.
///
/// # Panics
///
/// Panics if `m == 0`.
///
/// # Examples
///
/// ```
/// use uov_isg::num::floor_mod;
/// assert_eq!(floor_mod(-1, 3), 2);
/// assert_eq!(floor_mod(7, 3), 1);
/// ```
pub fn floor_mod(a: i64, m: i64) -> i64 {
    let m = m.abs();
    let r = a % m;
    if r < 0 {
        r + m
    } else {
        r
    }
}

/// Floor division pairing with [`floor_mod`]: `a == floor_div(a,m)*m + floor_mod(a,m)`
/// for positive `m`.
///
/// # Panics
///
/// Panics if `m == 0`.
///
/// # Examples
///
/// ```
/// use uov_isg::num::floor_div;
/// assert_eq!(floor_div(-1, 3), -1);
/// assert_eq!(floor_div(7, 3), 2);
/// ```
pub fn floor_div(a: i64, m: i64) -> i64 {
    let q = a / m;
    if a % m != 0 && ((a < 0) != (m < 0)) {
        q - 1
    } else {
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basic() {
        assert_eq!(gcd(48, 18), 6);
        assert_eq!(gcd(-48, 18), 6);
        assert_eq!(gcd(48, -18), 6);
        assert_eq!(gcd(-48, -18), 6);
        assert_eq!(gcd(7, 0), 7);
        assert_eq!(gcd(0, 7), 7);
        assert_eq!(gcd(1, 1), 1);
    }

    #[test]
    fn gcd_coprime() {
        assert_eq!(gcd(17, 31), 1);
        assert_eq!(gcd(1, 1_000_000), 1);
    }

    #[test]
    fn lcm_basic() {
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(-4, 6), 12);
        assert_eq!(lcm(5, 5), 5);
        assert_eq!(lcm(0, 0), 0);
    }

    #[test]
    fn extended_gcd_bezout_holds() {
        for a in -30..30i64 {
            for b in -30..30i64 {
                let (g, x, y) = extended_gcd(a, b);
                assert_eq!(g, gcd(a, b), "gcd mismatch for ({a},{b})");
                assert_eq!(a * x + b * y, g, "Bezout fails for ({a},{b})");
            }
        }
    }

    #[test]
    fn gcd_slice_basic() {
        assert_eq!(gcd_slice(&[4]), 4);
        assert_eq!(gcd_slice(&[-4]), 4);
        assert_eq!(gcd_slice(&[2, 0, 4]), 2);
        assert_eq!(gcd_slice(&[3, 5]), 1);
    }

    #[test]
    fn floor_mod_div_agree() {
        for a in -50..50i64 {
            for m in 1..10i64 {
                let q = floor_div(a, m);
                let r = floor_mod(a, m);
                assert_eq!(q * m + r, a);
                assert!((0..m).contains(&r));
            }
        }
    }
}
