//! Elementary number theory used throughout the workspace.
//!
//! Occupancy-vector storage mappings lean on the Euclidean algorithm twice:
//! the greatest common divisor of an occupancy vector's components decides
//! whether it is *prime* (paper §4.1/§4.2), and Bézout coefficients prove
//! that prime mapping vectors touch consecutive storage locations.
//!
//! All functions here are exact over the full `i64` range, including
//! `i64::MIN` (whose absolute value does not fit in `i64`): internals run in
//! `u64`/`i128`. The one unrepresentable corner is a gcd of exactly `2⁶³`
//! (`gcd(i64::MIN, 0)`, `gcd(i64::MIN, i64::MIN)`): the `checked_*` variants
//! return `None` there and on `lcm`/`floor_div` overflow, while the plain
//! variants keep their documented panics for callers with known-small
//! inputs.

/// Greatest common divisor in `u64`, exact for all inputs.
fn gcd_u64(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

/// Greatest common divisor of two integers, always non-negative.
///
/// `gcd(0, 0)` is defined as `0`. Exact for every input pair except the
/// single unrepresentable corner where the mathematical gcd is `2⁶³`.
///
/// # Panics
///
/// Panics iff the result is `2⁶³` (only `gcd(i64::MIN, 0)` and
/// `gcd(i64::MIN, i64::MIN)`), which exceeds `i64::MAX`. Use
/// [`checked_gcd`] on untrusted input.
///
/// # Examples
///
/// ```
/// use uov_isg::num::gcd;
/// assert_eq!(gcd(12, -18), 6);
/// assert_eq!(gcd(0, 5), 5);
/// assert_eq!(gcd(0, 0), 0);
/// assert_eq!(gcd(i64::MIN, 3), 1);
/// assert_eq!(gcd(i64::MIN, 2), 2);
/// ```
pub fn gcd(a: i64, b: i64) -> i64 {
    match checked_gcd(a, b) {
        Some(g) => g,
        None => panic!("gcd({a}, {b}) is 2^63, which does not fit in i64"),
    }
}

/// [`gcd`] returning `None` when the result (`2⁶³`) does not fit in `i64`.
///
/// ```
/// use uov_isg::num::checked_gcd;
/// assert_eq!(checked_gcd(i64::MIN, 0), None);
/// assert_eq!(checked_gcd(i64::MIN, i64::MIN), None);
/// assert_eq!(checked_gcd(i64::MIN, 6), Some(2));
/// ```
pub fn checked_gcd(a: i64, b: i64) -> Option<i64> {
    i64::try_from(gcd_u64(a.unsigned_abs(), b.unsigned_abs())).ok()
}

/// Least common multiple of two integers, always non-negative.
///
/// `lcm(0, x)` is defined as `0`.
///
/// # Panics
///
/// Panics when the result exceeds `i64::MAX`. Use [`checked_lcm`] on
/// untrusted input.
///
/// # Examples
///
/// ```
/// use uov_isg::num::lcm;
/// assert_eq!(lcm(4, 6), 12);
/// assert_eq!(lcm(0, 7), 0);
/// ```
pub fn lcm(a: i64, b: i64) -> i64 {
    match checked_lcm(a, b) {
        Some(l) => l,
        None => panic!("lcm({a}, {b}) overflows i64"),
    }
}

/// [`lcm`] returning `None` on overflow.
///
/// ```
/// use uov_isg::num::checked_lcm;
/// assert_eq!(checked_lcm(4, 6), Some(12));
/// assert_eq!(checked_lcm(i64::MAX, i64::MAX - 1), None);
/// assert_eq!(checked_lcm(i64::MIN, 1), None); // |i64::MIN| itself overflows
/// ```
pub fn checked_lcm(a: i64, b: i64) -> Option<i64> {
    if a == 0 || b == 0 {
        return Some(0);
    }
    let g = gcd_u64(a.unsigned_abs(), b.unsigned_abs());
    let l = (a.unsigned_abs() / g).checked_mul(b.unsigned_abs())?;
    i64::try_from(l).ok()
}

/// Extended Euclidean algorithm.
///
/// Returns `(g, x, y)` such that `a*x + b*y == g` and `g == gcd(a, b) >= 0`.
/// Internals run in `i128`; for every representable gcd the Bézout
/// coefficients are bounded by `|b/(2g)|` and `|a/(2g)|`, so they always fit
/// in `i64`.
///
/// # Panics
///
/// Panics iff `gcd(a, b)` is `2⁶³` (see [`gcd`]). Use
/// [`checked_extended_gcd`] on untrusted input.
///
/// # Examples
///
/// ```
/// use uov_isg::num::extended_gcd;
/// let (g, x, y) = extended_gcd(240, 46);
/// assert_eq!(g, 2);
/// assert_eq!(240 * x + 46 * y, 2);
/// let (g, x, y) = extended_gcd(i64::MIN, 3);
/// assert_eq!(g, 1);
/// assert_eq!((i64::MIN as i128) * x as i128 + 3 * y as i128, 1);
/// ```
pub fn extended_gcd(a: i64, b: i64) -> (i64, i64, i64) {
    match checked_extended_gcd(a, b) {
        Some(t) => t,
        None => panic!("gcd({a}, {b}) is 2^63, which does not fit in i64"),
    }
}

/// [`extended_gcd`] returning `None` when the gcd (`2⁶³`) does not fit.
///
/// ```
/// use uov_isg::num::checked_extended_gcd;
/// assert_eq!(checked_extended_gcd(i64::MIN, 0), None);
/// assert!(checked_extended_gcd(i64::MIN, i64::MAX).is_some());
/// ```
pub fn checked_extended_gcd(a: i64, b: i64) -> Option<(i64, i64, i64)> {
    // Invariants: old_r = a*old_s + b*old_t, r = a*s + b*t. All values stay
    // within i128 comfortably: remainders shrink and coefficient magnitudes
    // are bounded by the starting operands.
    let (mut old_r, mut r) = (a as i128, b as i128);
    let (mut old_s, mut s) = (1i128, 0i128);
    let (mut old_t, mut t) = (0i128, 1i128);
    while r != 0 {
        let q = old_r / r;
        (old_r, r) = (r, old_r - q * r);
        (old_s, s) = (s, old_s - q * s);
        (old_t, t) = (t, old_t - q * t);
    }
    if old_r < 0 {
        (old_r, old_s, old_t) = (-old_r, -old_s, -old_t);
    }
    match (
        i64::try_from(old_r),
        i64::try_from(old_s),
        i64::try_from(old_t),
    ) {
        (Ok(g), Ok(x), Ok(y)) => Some((g, x, y)),
        _ => None,
    }
}

/// Greatest common divisor of a slice, always non-negative.
///
/// The gcd of the empty slice is `0`.
///
/// # Panics
///
/// Panics iff the result is `2⁶³` (every element is `0` or `i64::MIN`, with
/// at least one `i64::MIN`). Use [`checked_gcd_slice`] on untrusted input.
///
/// # Examples
///
/// ```
/// use uov_isg::num::gcd_slice;
/// assert_eq!(gcd_slice(&[6, -9, 15]), 3);
/// assert_eq!(gcd_slice(&[]), 0);
/// assert_eq!(gcd_slice(&[i64::MIN, 6]), 2);
/// ```
pub fn gcd_slice(values: &[i64]) -> i64 {
    match checked_gcd_slice(values) {
        Some(g) => g,
        None => panic!("gcd of {values:?} is 2^63, which does not fit in i64"),
    }
}

/// [`gcd_slice`] returning `None` when the result (`2⁶³`) does not fit.
///
/// ```
/// use uov_isg::num::checked_gcd_slice;
/// assert_eq!(checked_gcd_slice(&[i64::MIN, 0]), None);
/// assert_eq!(checked_gcd_slice(&[i64::MIN, 4]), Some(4));
/// ```
pub fn checked_gcd_slice(values: &[i64]) -> Option<i64> {
    let g = values
        .iter()
        .fold(0u64, |acc, &v| gcd_u64(acc, v.unsigned_abs()));
    i64::try_from(g).ok()
}

/// Mathematical (floor) modulus: the result is always in `0..m.abs()`.
///
/// The `%` operator in Rust is a remainder that follows the sign of the
/// dividend; storage `modterm`s (paper §4.2) need the non-negative residue.
/// Computed in `i128`, so it is exact for every `(a, m)` with `m != 0` —
/// the result is below `|m| ≤ 2⁶³`, hence representable.
///
/// # Panics
///
/// Panics if `m == 0`. Use [`checked_floor_mod`] on untrusted input.
///
/// # Examples
///
/// ```
/// use uov_isg::num::floor_mod;
/// assert_eq!(floor_mod(-1, 3), 2);
/// assert_eq!(floor_mod(7, 3), 1);
/// assert_eq!(floor_mod(i64::MIN, i64::MAX), i64::MAX - 1);
/// ```
pub fn floor_mod(a: i64, m: i64) -> i64 {
    match checked_floor_mod(a, m) {
        Some(r) => r,
        None => panic!("floor_mod by zero"),
    }
}

/// [`floor_mod`] returning `None` for `m == 0`.
pub fn checked_floor_mod(a: i64, m: i64) -> Option<i64> {
    if m == 0 {
        return None;
    }
    let r = (a as i128).rem_euclid((m as i128).abs());
    // r ∈ [0, |m|) ⊆ [0, 2⁶³), and 2⁶³ − 1 = i64::MAX, so this always fits.
    i64::try_from(r).ok()
}

/// Floor division pairing with [`floor_mod`]: `a == floor_div(a,m)*m + floor_mod(a,m)`
/// for positive `m`.
///
/// # Panics
///
/// Panics if `m == 0`, or for the single overflowing quotient
/// `floor_div(i64::MIN, -1)`. Use [`checked_floor_div`] on untrusted input.
///
/// # Examples
///
/// ```
/// use uov_isg::num::floor_div;
/// assert_eq!(floor_div(-1, 3), -1);
/// assert_eq!(floor_div(7, 3), 2);
/// ```
pub fn floor_div(a: i64, m: i64) -> i64 {
    match checked_floor_div(a, m) {
        Some(q) => q,
        None => panic!("floor_div({a}, {m}) is undefined or overflows i64"),
    }
}

/// [`floor_div`] returning `None` for `m == 0` or quotient overflow.
///
/// ```
/// use uov_isg::num::checked_floor_div;
/// assert_eq!(checked_floor_div(7, 0), None);
/// assert_eq!(checked_floor_div(i64::MIN, -1), None);
/// assert_eq!(checked_floor_div(i64::MIN, 2), Some(i64::MIN / 2));
/// ```
pub fn checked_floor_div(a: i64, m: i64) -> Option<i64> {
    if m == 0 {
        return None;
    }
    let q = (a as i128).div_euclid(m as i128);
    i64::try_from(q).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basic() {
        assert_eq!(gcd(48, 18), 6);
        assert_eq!(gcd(-48, 18), 6);
        assert_eq!(gcd(48, -18), 6);
        assert_eq!(gcd(-48, -18), 6);
        assert_eq!(gcd(7, 0), 7);
        assert_eq!(gcd(0, 7), 7);
        assert_eq!(gcd(1, 1), 1);
    }

    #[test]
    fn gcd_coprime() {
        assert_eq!(gcd(17, 31), 1);
        assert_eq!(gcd(1, 1_000_000), 1);
    }

    #[test]
    fn gcd_handles_i64_min() {
        // The historical bug: .abs() on i64::MIN overflows. Regression
        // coverage for the full corner-case matrix.
        assert_eq!(gcd(i64::MIN, 1), 1);
        assert_eq!(gcd(i64::MIN, 3), 1);
        assert_eq!(gcd(i64::MIN, 2), 2);
        assert_eq!(gcd(i64::MIN, 1024), 1024);
        assert_eq!(gcd(i64::MIN, i64::MAX), 1);
        assert_eq!(gcd(1, i64::MIN), 1);
        assert_eq!(checked_gcd(i64::MIN, 0), None);
        assert_eq!(checked_gcd(0, i64::MIN), None);
        assert_eq!(checked_gcd(i64::MIN, i64::MIN), None);
    }

    #[test]
    #[should_panic(expected = "2^63")]
    fn gcd_of_min_and_zero_panics() {
        let _ = gcd(i64::MIN, 0);
    }

    #[test]
    fn lcm_basic() {
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(-4, 6), 12);
        assert_eq!(lcm(5, 5), 5);
        assert_eq!(lcm(0, 0), 0);
    }

    #[test]
    fn lcm_extremes() {
        assert_eq!(checked_lcm(i64::MAX, i64::MAX), Some(i64::MAX));
        assert_eq!(checked_lcm(i64::MAX, 2), None);
        assert_eq!(checked_lcm(i64::MIN, 1), None);
        assert_eq!(checked_lcm(i64::MIN, 0), Some(0));
        assert_eq!(checked_lcm(i64::MIN / 2, 2), Some(1i64 << 62));
    }

    #[test]
    fn extended_gcd_bezout_holds() {
        for a in -30..30i64 {
            for b in -30..30i64 {
                let (g, x, y) = extended_gcd(a, b);
                assert_eq!(g, gcd(a, b), "gcd mismatch for ({a},{b})");
                assert_eq!(a * x + b * y, g, "Bezout fails for ({a},{b})");
            }
        }
    }

    #[test]
    fn extended_gcd_extremes() {
        // Bézout identity checked in i128 to avoid overflow in the test
        // itself.
        for (a, b) in [
            (i64::MIN, 1),
            (i64::MIN, 3),
            (i64::MIN, i64::MAX),
            (i64::MAX, i64::MIN),
            (i64::MAX, i64::MAX - 1),
            (i64::MIN, 2),
            (i64::MIN + 1, i64::MAX),
            (1, i64::MIN),
        ] {
            let (g, x, y) = extended_gcd(a, b);
            assert!(g >= 0);
            assert_eq!(g, gcd(a, b), "gcd mismatch for ({a},{b})");
            assert_eq!(
                a as i128 * x as i128 + b as i128 * y as i128,
                g as i128,
                "Bezout fails for ({a},{b})"
            );
        }
        assert_eq!(checked_extended_gcd(i64::MIN, 0), None);
        assert_eq!(checked_extended_gcd(i64::MIN, i64::MIN), None);
    }

    #[test]
    fn gcd_slice_basic() {
        assert_eq!(gcd_slice(&[4]), 4);
        assert_eq!(gcd_slice(&[-4]), 4);
        assert_eq!(gcd_slice(&[2, 0, 4]), 2);
        assert_eq!(gcd_slice(&[3, 5]), 1);
        assert_eq!(gcd_slice(&[i64::MIN, 6]), 2);
        assert_eq!(checked_gcd_slice(&[i64::MIN]), None);
        assert_eq!(checked_gcd_slice(&[i64::MIN, 0, i64::MIN]), None);
    }

    #[test]
    fn floor_mod_div_agree() {
        for a in -50..50i64 {
            for m in 1..10i64 {
                let q = floor_div(a, m);
                let r = floor_mod(a, m);
                assert_eq!(q * m + r, a);
                assert!((0..m).contains(&r));
            }
        }
    }

    #[test]
    fn floor_mod_div_extremes() {
        assert_eq!(floor_mod(i64::MIN, i64::MAX), i64::MAX - 1);
        assert_eq!(floor_mod(i64::MIN, -1), 0);
        assert_eq!(floor_mod(i64::MIN, i64::MIN), 0);
        assert_eq!(floor_mod(i64::MAX, i64::MIN), i64::MAX);
        assert_eq!(checked_floor_mod(5, 0), None);
        assert_eq!(checked_floor_div(i64::MIN, -1), None);
        assert_eq!(checked_floor_div(i64::MIN, 1), Some(i64::MIN));
        assert_eq!(checked_floor_div(i64::MAX, -1), Some(-i64::MAX));
        // The pairing identity on representable extreme quotients, in i128.
        for (a, m) in [(i64::MIN, 3), (i64::MAX, -7), (i64::MIN, i64::MAX)] {
            let q = floor_div(a, m) as i128;
            let r = floor_mod(a, m) as i128;
            let m_abs = (m as i128).abs();
            // div_euclid/rem_euclid pair on |m|: a = q·|m|·sign… verify via
            // the defining property of rem_euclid against |m|.
            assert_eq!((a as i128).rem_euclid(m_abs), r);
            assert_eq!((a as i128).div_euclid(m as i128), q);
        }
    }
}
