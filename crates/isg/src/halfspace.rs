//! Halfspace-represented 2-D iteration domains.
//!
//! The paper defines the ISG as "the set of integer solutions to a system
//! of linear inequalities defined by the loop bounds, `A·i ≤ b`"
//! (§4.3, footnote 6). [`HalfspaceDomain2`] is that definition, verbatim,
//! for two-dimensional nests — covering triangular and trapezoidal loop
//! nests (`for i { for j in 0..=i }`) that the rectangular and
//! vertex-listed domains cannot express directly.
//!
//! The bounding box comes from rational constraint-pair intersections;
//! extreme points are the exact convex hull of the domain's *lattice*
//! points (monotone chain), so projection spans — and therefore storage
//! counts — are exact even when the rational vertices are non-integral.

use std::fmt;

use crate::domain::IterationDomain;
use crate::vec::IVec;

/// A bounded 2-D domain `{ p | aᵢ·p ≤ bᵢ for every constraint i }`.
///
/// # Examples
///
/// ```
/// use uov_isg::{ivec, HalfspaceDomain2, IterationDomain};
///
/// // The triangular nest: 0 ≤ j ≤ i ≤ 4.
/// let tri = HalfspaceDomain2::new(vec![
///     (ivec![-1, 0], 0),  // -i ≤ 0
///     (ivec![1, 0], 4),   //  i ≤ 4
///     (ivec![0, -1], 0),  // -j ≤ 0
///     (ivec![-1, 1], 0),  //  j − i ≤ 0
/// ])?;
/// assert_eq!(tri.num_points(), 15); // 1+2+3+4+5
/// assert!(tri.contains(&ivec![3, 2]));
/// assert!(!tri.contains(&ivec![2, 3]));
/// # Ok::<(), uov_isg::halfspace::HalfspaceError>(())
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct HalfspaceDomain2 {
    constraints: Vec<(IVec, i64)>,
    bbox: ((i64, i64), (i64, i64)),
}

/// Error constructing a [`HalfspaceDomain2`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HalfspaceError {
    /// Fewer than three constraints can never bound a 2-D region.
    TooFewConstraints(usize),
    /// A constraint vector is not 2-dimensional or is zero.
    BadConstraint(IVec),
    /// The region is unbounded (no finite bounding box exists).
    Unbounded,
    /// The region contains no integer point.
    Empty,
}

impl fmt::Display for HalfspaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HalfspaceError::TooFewConstraints(n) => {
                write!(f, "{n} constraints cannot bound a 2-D region (need ≥ 3)")
            }
            HalfspaceError::BadConstraint(v) => write!(f, "bad constraint normal {v}"),
            HalfspaceError::Unbounded => write!(f, "constraint system is unbounded"),
            HalfspaceError::Empty => write!(f, "constraint system has no integer solution"),
        }
    }
}

impl std::error::Error for HalfspaceError {}

impl HalfspaceDomain2 {
    /// Build the domain of integer points satisfying every `a·p ≤ b`.
    ///
    /// # Errors
    ///
    /// Returns [`HalfspaceError`] for malformed, unbounded, or empty
    /// systems.
    pub fn new(constraints: Vec<(IVec, i64)>) -> Result<Self, HalfspaceError> {
        if constraints.len() < 3 {
            return Err(HalfspaceError::TooFewConstraints(constraints.len()));
        }
        for (a, _) in &constraints {
            if a.dim() != 2 || a.is_zero() {
                return Err(HalfspaceError::BadConstraint(a.clone()));
            }
        }
        if !Self::is_bounded(&constraints) {
            return Err(HalfspaceError::Unbounded);
        }
        let Some(bbox) = Self::bounding_box_of(&constraints) else {
            return Err(HalfspaceError::Empty); // bounded but infeasible
        };
        let dom = HalfspaceDomain2 { constraints, bbox };
        if dom.points().next().is_none() {
            return Err(HalfspaceError::Empty);
        }
        Ok(dom)
    }

    /// Bounded ⟺ the recession cone `{d | a·d ≤ 0 ∀ constraints}` is {0}.
    /// In 2-D any non-trivial recession cone has a boundary ray
    /// perpendicular to some constraint normal, so checking the rotated
    /// normals is complete.
    fn is_bounded(constraints: &[(IVec, i64)]) -> bool {
        for (a, _) in constraints {
            for d in [IVec::from([-a[1], a[0]]), IVec::from([a[1], -a[0]])] {
                if constraints.iter().all(|(n, _)| n.dot(&d) <= 0) {
                    return false;
                }
            }
        }
        true
    }

    /// The triangular nest `lo ≤ j ≤ i ≤ hi` (a classic lower-triangular
    /// loop).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn lower_triangle(lo: i64, hi: i64) -> Self {
        assert!(lo <= hi, "empty triangle");
        match HalfspaceDomain2::new(vec![
            (IVec::from([-1, 0]), -lo),
            (IVec::from([1, 0]), hi),
            (IVec::from([0, -1]), -lo),
            (IVec::from([-1, 1]), 0),
        ]) {
            Ok(d) => d,
            Err(e) => panic!("triangle construction failed: {e}"),
        }
    }

    /// Rational vertex enumeration → conservative integer bounding box.
    fn bounding_box_of(constraints: &[(IVec, i64)]) -> Option<((i64, i64), (i64, i64))> {
        // Intersect every pair of constraint lines; keep feasible
        // intersection points (rational), then take floor/ceil bounds.
        let mut any = false;
        let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
        let n = constraints.len();
        for i in 0..n {
            for j in i + 1..n {
                let (a1, b1) = (&constraints[i].0, constraints[i].1);
                let (a2, b2) = (&constraints[j].0, constraints[j].1);
                let det = a1[0] * a2[1] - a1[1] * a2[0];
                if det == 0 {
                    continue;
                }
                let x = (b1 * a2[1] - b2 * a1[1]) as f64 / det as f64;
                let y = (a1[0] * b2 - a2[0] * b1) as f64 / det as f64;
                // Feasible within a small tolerance?
                let feasible = constraints
                    .iter()
                    .all(|(a, b)| a[0] as f64 * x + a[1] as f64 * y <= *b as f64 + 1e-9);
                if feasible {
                    any = true;
                    min_x = min_x.min(x);
                    max_x = max_x.max(x);
                    min_y = min_y.min(y);
                    max_y = max_y.max(y);
                }
            }
        }
        if !any || !min_x.is_finite() || !max_x.is_finite() {
            return None;
        }
        Some((
            (min_x.floor() as i64, min_y.floor() as i64),
            (max_x.ceil() as i64, max_y.ceil() as i64),
        ))
    }
}

impl IterationDomain for HalfspaceDomain2 {
    fn dim(&self) -> usize {
        2
    }

    fn contains(&self, p: &IVec) -> bool {
        assert_eq!(p.dim(), 2, "HalfspaceDomain2 holds 2-D points");
        self.constraints.iter().all(|(a, b)| a.dot(p) <= *b)
    }

    fn extreme_points(&self) -> Vec<IVec> {
        // Integer corner points of the bounding box clipped to the
        // feasible lattice: for projection spans we return, per bounding
        // box corner direction, the lattice point extremising x±y — a
        // superset-of-hull heuristic is not sound for arbitrary forms, so
        // enumerate the true lattice hull instead (domains used here are
        // small enough).
        let pts: Vec<IVec> = self.points().collect();
        convex_hull_2d(&pts)
    }

    fn points(&self) -> Box<dyn Iterator<Item = IVec> + '_> {
        let ((min_x, min_y), (max_x, max_y)) = self.bbox;
        Box::new(
            (min_x..=max_x)
                .flat_map(move |x| (min_y..=max_y).map(move |y| IVec::from([x, y])))
                .filter(|p| self.contains(p)),
        )
    }
}

/// Andrew's monotone-chain convex hull over integer points (CCW, no
/// collinear interior points).
fn convex_hull_2d(points: &[IVec]) -> Vec<IVec> {
    let mut pts: Vec<(i64, i64)> = points.iter().map(|p| (p[0], p[1])).collect();
    pts.sort();
    pts.dedup();
    if pts.len() <= 2 {
        return pts.into_iter().map(|(x, y)| IVec::from([x, y])).collect();
    }
    let cross = |o: (i64, i64), a: (i64, i64), b: (i64, i64)| -> i128 {
        (a.0 - o.0) as i128 * (b.1 - o.1) as i128 - (a.1 - o.1) as i128 * (b.0 - o.0) as i128
    };
    let mut lower: Vec<(i64, i64)> = Vec::new();
    for &p in &pts {
        while lower.len() >= 2 && cross(lower[lower.len() - 2], lower[lower.len() - 1], p) <= 0 {
            lower.pop();
        }
        lower.push(p);
    }
    let mut upper: Vec<(i64, i64)> = Vec::new();
    for &p in pts.iter().rev() {
        while upper.len() >= 2 && cross(upper[upper.len() - 2], upper[upper.len() - 1], p) <= 0 {
            upper.pop();
        }
        upper.push(p);
    }
    lower.pop();
    upper.pop();
    lower
        .into_iter()
        .chain(upper)
        .map(|(x, y)| IVec::from([x, y]))
        .collect()
}

impl fmt::Debug for HalfspaceDomain2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "HalfspaceDomain2{{")?;
        for (i, (a, b)) in self.constraints.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}·p ≤ {b}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ivec;

    #[test]
    fn triangle_counts() {
        let tri = HalfspaceDomain2::lower_triangle(0, 4);
        assert_eq!(tri.num_points(), 15);
        assert_eq!(tri.dim(), 2);
    }

    #[test]
    fn box_as_halfspaces_matches_rect() {
        use crate::domain::RectDomain;
        let hs = HalfspaceDomain2::new(vec![
            (ivec![-1, 0], -1),
            (ivec![1, 0], 3),
            (ivec![0, -1], -1),
            (ivec![0, 1], 5),
        ])
        .unwrap();
        let rect = RectDomain::grid(3, 5);
        assert_eq!(hs.num_points(), rect.num_points());
        for p in rect.points() {
            assert!(hs.contains(&p));
        }
    }

    #[test]
    fn extreme_points_of_triangle() {
        let tri = HalfspaceDomain2::lower_triangle(0, 4);
        let ext = tri.extreme_points();
        assert!(ext.contains(&ivec![0, 0]));
        assert!(ext.contains(&ivec![4, 0]));
        assert!(ext.contains(&ivec![4, 4]));
        assert!(
            ext.len() <= 4,
            "triangle hull has ≤ 4 lattice vertices: {ext:?}"
        );
    }

    #[test]
    fn unbounded_rejected() {
        assert_eq!(
            HalfspaceDomain2::new(vec![(ivec![-1, 0], 0), (ivec![0, -1], 0), (ivec![0, 1], 5),])
                .unwrap_err(),
            HalfspaceError::Unbounded
        );
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(
            HalfspaceDomain2::new(vec![
                (ivec![1, 0], -1),
                (ivec![-1, 0], 0),
                (ivec![0, 1], 5),
                (ivec![0, -1], 0),
            ])
            .unwrap_err(),
            HalfspaceError::Empty
        );
    }

    #[test]
    fn validation_of_constraints() {
        assert!(matches!(
            HalfspaceDomain2::new(vec![(ivec![1, 0], 1)]).unwrap_err(),
            HalfspaceError::TooFewConstraints(1)
        ));
        assert!(matches!(
            HalfspaceDomain2::new(vec![(ivec![0, 0], 1), (ivec![1, 0], 1), (ivec![0, 1], 1),])
                .unwrap_err(),
            HalfspaceError::BadConstraint(_)
        ));
    }

    #[test]
    fn projection_spans_on_triangle() {
        use crate::project::form_span;
        let tri = HalfspaceDomain2::lower_triangle(0, 6);
        // i − j spans 0..6 on the lower triangle.
        assert_eq!(form_span(&tri, &ivec![1, -1]), 7);
        // i + j spans 0..12.
        assert_eq!(form_span(&tri, &ivec![1, 1]), 13);
    }
}
