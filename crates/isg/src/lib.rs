//! Integer-lattice mathematics and iteration-space geometry.
//!
//! This crate is the substrate shared by every other crate in the UOV
//! workspace. It models the objects of Strout et al., *Schedule-Independent
//! Storage Mapping for Loops* (ASPLOS 1998):
//!
//! * [`IVec`] — small integer vectors: iteration points, dependence
//!   distances, occupancy vectors and mapping vectors all live in `Z^d`.
//! * [`Stencil`] — the regular pattern of value dependences carried by every
//!   point of an iteration space graph (ISG).
//! * [`RectDomain`] / [`Polygon2`] — iteration domains (the set of ISG
//!   nodes), with extreme-point enumeration used for storage counting when
//!   loop bounds are known at compile time (paper §3.2, Fig. 3 and Fig. 6).
//! * [`IMat`] — dense integer matrices, including the unimodular completion
//!   used to build d-dimensional storage mappings (paper §4 generalised).
//! * number theory helpers ([`num`]) — gcd / extended gcd / lcm, which drive
//!   mapping-vector construction for prime and non-prime occupancy vectors.
//!
//! # Example
//!
//! ```
//! use uov_isg::{ivec, Stencil};
//!
//! // The stencil of Figure 1 of the paper: A[i,j] reads A[i-1,j], A[i,j-1]
//! // and A[i-1,j-1], so values flow along (1,0), (0,1) and (1,1).
//! let stencil = Stencil::new(vec![ivec![1, 0], ivec![0, 1], ivec![1, 1]])?;
//! assert_eq!(stencil.sum(), ivec![2, 2]); // the trivially legal UOV
//! # Ok::<(), uov_isg::StencilError>(())
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod domain;
pub mod error;
pub mod halfspace;
pub mod matrix;
pub mod num;
pub mod poly;
pub mod project;
pub mod stencil;
pub mod vec;

pub use domain::{IterationDomain, RectDomain};
pub use error::IsgError;
pub use halfspace::HalfspaceDomain2;
pub use matrix::IMat;
pub use poly::Polygon2;
pub use stencil::{Stencil, StencilError};
pub use vec::IVec;
