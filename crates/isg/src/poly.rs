//! Two-dimensional convex polygonal iteration domains.
//!
//! Figure 3 of the paper compares storage requirements of two occupancy
//! vectors on a skewed quadrilateral ISG — the shorter vector needs *more*
//! storage because the ISG's projection on the perpendicular hyperplane is
//! wider. [`Polygon2`] models such domains exactly.

use std::fmt;

use crate::domain::IterationDomain;
use crate::vec::IVec;

/// A convex lattice polygon in `Z²`, defined by its vertices.
///
/// Vertices must be given in counter-clockwise order (in standard `(x, y)`
/// orientation) and must form a convex polygon; both properties are
/// validated at construction. Collinear intermediate vertices are allowed.
///
/// # Examples
///
/// ```
/// use uov_isg::{ivec, IterationDomain, Polygon2};
///
/// // The Fig. 3 ISG: parallelogram (1,1), (10,4), (10,9), (1,6).
/// let isg = Polygon2::new(vec![(1, 1), (10, 4), (10, 9), (1, 6)])?;
/// assert!(isg.contains(&ivec![5, 4]));
/// assert!(!isg.contains(&ivec![5, 1]));
/// # Ok::<(), uov_isg::poly::PolygonError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Polygon2 {
    vertices: Vec<(i64, i64)>,
}

/// Error constructing a [`Polygon2`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolygonError {
    /// At least three vertices are required.
    TooFewVertices(usize),
    /// The vertex sequence turns clockwise somewhere: not convex/CCW.
    NotConvexCcw {
        /// Index of the vertex at which the right turn happens.
        at: usize,
    },
}

impl fmt::Display for PolygonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolygonError::TooFewVertices(n) => {
                write!(f, "polygon needs at least 3 vertices, got {n}")
            }
            PolygonError::NotConvexCcw { at } => {
                write!(
                    f,
                    "vertex sequence is not convex counter-clockwise at index {at}"
                )
            }
        }
    }
}

impl std::error::Error for PolygonError {}

fn cross(o: (i64, i64), a: (i64, i64), b: (i64, i64)) -> i128 {
    let (ax, ay) = (a.0 - o.0, a.1 - o.1);
    let (bx, by) = (b.0 - o.0, b.1 - o.1);
    ax as i128 * by as i128 - ay as i128 * bx as i128
}

impl Polygon2 {
    /// Build a convex CCW polygon from its vertices.
    ///
    /// # Errors
    ///
    /// Returns [`PolygonError`] if fewer than three vertices are supplied or
    /// the boundary makes a clockwise turn.
    pub fn new(vertices: Vec<(i64, i64)>) -> Result<Self, PolygonError> {
        if vertices.len() < 3 {
            return Err(PolygonError::TooFewVertices(vertices.len()));
        }
        let n = vertices.len();
        for i in 0..n {
            let o = vertices[i];
            let a = vertices[(i + 1) % n];
            let b = vertices[(i + 2) % n];
            if cross(o, a, b) < 0 {
                return Err(PolygonError::NotConvexCcw { at: (i + 1) % n });
            }
        }
        Ok(Polygon2 { vertices })
    }

    /// The quadrilateral ISG of the paper's Figure 3.
    ///
    /// The figure labels three corners — (1,1), (1,6) and (10,9); the fourth
    /// corner (10,4) completes the parallelogram on which ov₁ = (3,1) needs
    /// 16 storage locations and ov₂ = (3,0) needs 27.
    pub fn fig3_isg() -> Self {
        // Known-good fixture; constructed directly so the panic-free clippy
        // gate holds (Polygon2::new on these vertices cannot fail — the
        // validation tests cover it).
        Polygon2 {
            vertices: vec![(1, 1), (10, 4), (10, 9), (1, 6)],
        }
    }

    /// The vertices, counter-clockwise.
    pub fn vertices(&self) -> &[(i64, i64)] {
        &self.vertices
    }

    /// Axis-aligned bounding box as `((min_x, min_y), (max_x, max_y))`.
    pub fn bounding_box(&self) -> ((i64, i64), (i64, i64)) {
        // The constructor guarantees ≥ 3 vertices; fold from the first so
        // no unwrap/expect is needed.
        let first = self.vertices[0];
        self.vertices
            .iter()
            .skip(1)
            .fold((first, first), |((lx, ly), (hx, hy)), &(x, y)| {
                ((lx.min(x), ly.min(y)), (hx.max(x), hy.max(y)))
            })
    }
}

impl IterationDomain for Polygon2 {
    fn dim(&self) -> usize {
        2
    }

    fn contains(&self, p: &IVec) -> bool {
        assert_eq!(p.dim(), 2, "Polygon2 contains 2-D points only");
        let q = (p[0], p[1]);
        let n = self.vertices.len();
        (0..n).all(|i| cross(self.vertices[i], self.vertices[(i + 1) % n], q) >= 0)
    }

    fn extreme_points(&self) -> Vec<IVec> {
        self.vertices
            .iter()
            .map(|&(x, y)| IVec::from([x, y]))
            .collect()
    }

    fn points(&self) -> Box<dyn Iterator<Item = IVec> + '_> {
        let ((min_x, min_y), (max_x, max_y)) = self.bounding_box();
        Box::new(
            (min_x..=max_x)
                .flat_map(move |x| (min_y..=max_y).map(move |y| IVec::from([x, y])))
                .filter(|p| self.contains(p)),
        )
    }
}

impl fmt::Debug for Polygon2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Polygon2{:?}", self.vertices)
    }
}

impl fmt::Display for Polygon2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ivec;

    #[test]
    fn triangle_membership() {
        let t = Polygon2::new(vec![(0, 0), (4, 0), (0, 4)]).unwrap();
        assert!(t.contains(&ivec![0, 0]));
        assert!(t.contains(&ivec![1, 1]));
        assert!(t.contains(&ivec![2, 2])); // on the hypotenuse
        assert!(!t.contains(&ivec![3, 2]));
        assert!(!t.contains(&ivec![-1, 0]));
    }

    #[test]
    fn validation_rejects_bad_input() {
        assert_eq!(
            Polygon2::new(vec![(0, 0), (1, 1)]).unwrap_err(),
            PolygonError::TooFewVertices(2)
        );
        // Clockwise square.
        assert!(matches!(
            Polygon2::new(vec![(0, 0), (0, 2), (2, 2), (2, 0)]).unwrap_err(),
            PolygonError::NotConvexCcw { .. }
        ));
        // Non-convex (dart).
        assert!(matches!(
            Polygon2::new(vec![(0, 0), (4, 0), (1, 1), (0, 4)]).unwrap_err(),
            PolygonError::NotConvexCcw { .. }
        ));
    }

    #[test]
    fn unit_square_points() {
        let s = Polygon2::new(vec![(0, 0), (1, 0), (1, 1), (0, 1)]).unwrap();
        let pts: Vec<_> = s.points().collect();
        assert_eq!(pts.len(), 4);
        assert_eq!(s.num_points(), 4);
    }

    #[test]
    fn triangle_point_count_matches_picks_theorem() {
        // Right triangle with legs 4: Pick's theorem gives
        // A = 8, B = 12, I = A − B/2 + 1 = 3; total = I + B = 15.
        let t = Polygon2::new(vec![(0, 0), (4, 0), (0, 4)]).unwrap();
        assert_eq!(t.num_points(), 15);
    }

    #[test]
    fn fig3_isg_shape() {
        let p = Polygon2::fig3_isg();
        // The direct construction in fig3_isg must satisfy the validated
        // constructor's invariants.
        assert_eq!(Polygon2::new(p.vertices().to_vec()).unwrap(), p);
        assert_eq!(p.extreme_points().len(), 4);
        assert!(p.contains(&ivec![1, 1]));
        assert!(p.contains(&ivec![10, 9]));
        assert!(p.contains(&ivec![1, 6]));
        assert!(p.contains(&ivec![10, 4]));
        assert!(!p.contains(&ivec![10, 3]));
        assert!(!p.contains(&ivec![2, 8]));
        // Columns where the slanted edges pass through lattice points hold 6
        // points; the others hold 5 (edges have slope 1/3).
        assert_eq!(p.points().filter(|q| q[0] == 1).count(), 6);
        assert_eq!(p.points().filter(|q| q[0] == 5).count(), 5);
        assert_eq!(p.num_points(), 54);
    }

    #[test]
    fn collinear_intermediate_vertices_allowed() {
        let p = Polygon2::new(vec![(0, 0), (2, 0), (4, 0), (4, 4), (0, 4)]).unwrap();
        assert!(p.contains(&ivec![3, 0]));
    }
}
