//! Iteration domains: the node sets of iteration space graphs.
//!
//! The paper's ISG is "the set of integer solutions to a system of linear
//! inequalities defined by the loop bounds" (§4.3, footnote 6). Storage
//! counting with known bounds projects the domain's *extreme points* along
//! the mapping vector. Most loops in the paper have rectangular domains;
//! Figure 3 uses a skewed quadrilateral, covered by [`crate::Polygon2`].

use std::fmt;

use crate::vec::IVec;

/// A finite set of integer iteration points, convex, with known extreme
/// points.
///
/// The trait is object-safe so analyses can work over mixed domain shapes.
pub trait IterationDomain: fmt::Debug {
    /// Dimensionality of the iteration space.
    fn dim(&self) -> usize;

    /// Whether `p` is an iteration of the domain.
    ///
    /// # Panics
    ///
    /// May panic if `p.dim() != self.dim()`.
    fn contains(&self, p: &IVec) -> bool;

    /// The extreme points (vertices) of the convex hull of the domain.
    fn extreme_points(&self) -> Vec<IVec>;

    /// All integer points, in lexicographic order.
    fn points(&self) -> Box<dyn Iterator<Item = IVec> + '_>;

    /// Number of integer points.
    fn num_points(&self) -> u64 {
        self.points().count() as u64
    }
}

/// An axis-aligned box of iterations: `lo[k] <= p[k] <= hi[k]` for every
/// axis `k` (bounds inclusive).
///
/// # Examples
///
/// ```
/// use uov_isg::{ivec, IterationDomain, RectDomain};
///
/// // for i = 1..=2 { for j = 1..=3 { ... } }
/// let d = RectDomain::new(ivec![1, 1], ivec![2, 3]);
/// assert_eq!(d.num_points(), 6);
/// assert!(d.contains(&ivec![2, 1]));
/// assert!(!d.contains(&ivec![0, 1]));
/// assert_eq!(d.extreme_points().len(), 4);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct RectDomain {
    lo: IVec,
    hi: IVec,
}

impl RectDomain {
    /// Build the box `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ, dimension is zero, or `lo[k] > hi[k]`
    /// for some axis (empty domains are rejected: an ISG always has at
    /// least one iteration).
    pub fn new(lo: IVec, hi: IVec) -> Self {
        assert_eq!(lo.dim(), hi.dim(), "bound dimensions differ");
        assert!(lo.dim() > 0, "domain must have at least one dimension");
        for k in 0..lo.dim() {
            assert!(
                lo[k] <= hi[k],
                "empty domain: lo[{k}] = {} > hi[{k}] = {}",
                lo[k],
                hi[k]
            );
        }
        RectDomain { lo, hi }
    }

    /// The `n × m` grid `(1,1) ..= (n,m)` used by the paper's running
    /// example (Fig. 1 and Fig. 6).
    ///
    /// # Panics
    ///
    /// Panics if `n < 1` or `m < 1`.
    pub fn grid(n: i64, m: i64) -> Self {
        RectDomain::new(IVec::from([1, 1]), IVec::from([n, m]))
    }

    /// Inclusive lower bounds.
    pub fn lo(&self) -> &IVec {
        &self.lo
    }

    /// Inclusive upper bounds.
    pub fn hi(&self) -> &IVec {
        &self.hi
    }

    /// Extent along axis `k`: number of integer values, saturating at
    /// `i64::MAX` for adversarially wide boxes.
    ///
    /// # Panics
    ///
    /// Panics if `k >= self.dim()`.
    pub fn extent(&self, k: usize) -> i64 {
        self.hi[k]
            .checked_sub(self.lo[k])
            .and_then(|w| w.checked_add(1))
            .unwrap_or(i64::MAX)
    }
}

impl IterationDomain for RectDomain {
    fn dim(&self) -> usize {
        self.lo.dim()
    }

    fn contains(&self, p: &IVec) -> bool {
        assert_eq!(p.dim(), self.dim(), "point dimension mismatch");
        (0..self.dim()).all(|k| self.lo[k] <= p[k] && p[k] <= self.hi[k])
    }

    fn extreme_points(&self) -> Vec<IVec> {
        let d = self.dim();
        (0..(1u64 << d))
            .map(|mask| {
                (0..d)
                    .map(|k| {
                        if mask & (1 << k) != 0 {
                            self.hi[k]
                        } else {
                            self.lo[k]
                        }
                    })
                    .collect()
            })
            .collect()
    }

    fn points(&self) -> Box<dyn Iterator<Item = IVec> + '_> {
        Box::new(RectPoints {
            dom: self,
            cur: Some(self.lo.clone()),
        })
    }

    fn num_points(&self) -> u64 {
        // Saturating: a count beyond u64::MAX only ever feeds caps and
        // cost estimates, where "absurdly many" is answer enough.
        (0..self.dim())
            .map(|k| self.extent(k) as u64)
            .fold(1u64, u64::saturating_mul)
    }
}

struct RectPoints<'a> {
    dom: &'a RectDomain,
    cur: Option<IVec>,
}

impl Iterator for RectPoints<'_> {
    type Item = IVec;

    fn next(&mut self) -> Option<IVec> {
        let cur = self.cur.take()?;
        // Advance like an odometer, innermost axis fastest.
        let mut next = cur.clone();
        let mut k = self.dom.dim();
        loop {
            if k == 0 {
                // Wrapped past the outermost axis: iteration is finished.
                self.cur = None;
                break;
            }
            k -= 1;
            if next[k] < self.dom.hi[k] {
                next[k] += 1;
                self.cur = Some(next);
                break;
            }
            next[k] = self.dom.lo[k];
        }
        Some(cur)
    }
}

impl fmt::Debug for RectDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RectDomain[{} ..= {}]", self.lo, self.hi)
    }
}

impl fmt::Display for RectDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ivec;

    #[test]
    fn grid_counts_points() {
        let d = RectDomain::grid(4, 5);
        assert_eq!(d.num_points(), 20);
        assert_eq!(d.points().count(), 20);
        assert_eq!(d.extent(0), 4);
        assert_eq!(d.extent(1), 5);
    }

    #[test]
    fn points_are_lexicographic_and_unique() {
        let d = RectDomain::new(ivec![0, -1], ivec![1, 1]);
        let pts: Vec<_> = d.points().collect();
        assert_eq!(pts.len(), 6);
        let mut sorted = pts.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(pts, sorted, "points must come out sorted and unique");
        assert_eq!(pts[0], ivec![0, -1]);
        assert_eq!(pts[5], ivec![1, 1]);
    }

    #[test]
    fn one_dimensional_domain() {
        let d = RectDomain::new(ivec![3], ivec![7]);
        assert_eq!(d.num_points(), 5);
        assert_eq!(d.extreme_points(), vec![ivec![3], ivec![7]]);
    }

    #[test]
    fn three_dimensional_domain() {
        let d = RectDomain::new(ivec![0, 0, 0], ivec![1, 2, 3]);
        assert_eq!(d.num_points(), 2 * 3 * 4);
        assert_eq!(d.extreme_points().len(), 8);
        assert_eq!(d.points().count() as u64, d.num_points());
    }

    #[test]
    fn contains_checks_all_axes() {
        let d = RectDomain::grid(3, 3);
        assert!(d.contains(&ivec![1, 1]));
        assert!(d.contains(&ivec![3, 3]));
        assert!(!d.contains(&ivec![4, 1]));
        assert!(!d.contains(&ivec![1, 0]));
    }

    #[test]
    #[should_panic(expected = "empty domain")]
    fn empty_domain_rejected() {
        let _ = RectDomain::new(ivec![2], ivec![1]);
    }

    #[test]
    fn single_point_domain() {
        let d = RectDomain::new(ivec![5, 5], ivec![5, 5]);
        assert_eq!(d.num_points(), 1);
        assert_eq!(d.points().collect::<Vec<_>>(), vec![ivec![5, 5]]);
    }
}
