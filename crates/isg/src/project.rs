//! Projections of iteration domains onto linear forms.
//!
//! Storage counting with known loop bounds (paper §3.2, §4.3) reduces to:
//! apply the mapping vector to the domain's extreme points and count the
//! integer values spanned. These helpers compute such spans for arbitrary
//! linear forms.

use crate::domain::IterationDomain;
use crate::error::IsgError;
use crate::vec::IVec;

/// Minimum and maximum of the linear form `form · p` over the extreme
/// points of `domain`.
///
/// For a convex domain the extremes of a linear form are attained at
/// vertices, so this equals the min/max over the whole domain.
///
/// # Panics
///
/// Panics if `form.dim() != domain.dim()`.
///
/// # Examples
///
/// ```
/// use uov_isg::{ivec, project::form_range, RectDomain};
///
/// let d = RectDomain::grid(4, 6);
/// assert_eq!(form_range(&d, &ivec![-1, 1]), (-3, 5));
/// ```
pub fn form_range(domain: &dyn IterationDomain, form: &IVec) -> (i64, i64) {
    match try_form_range(domain, form) {
        Ok(r) => r,
        Err(e) => panic!("form range failed: {e}"),
    }
}

/// [`form_range`] returning [`IsgError`] on dimension mismatch, an empty
/// extreme-point set, or dot-product overflow.
pub fn try_form_range(domain: &dyn IterationDomain, form: &IVec) -> Result<(i64, i64), IsgError> {
    if form.dim() != domain.dim() {
        return Err(IsgError::DimMismatch {
            expected: domain.dim(),
            found: form.dim(),
        });
    }
    let mut range: Option<(i64, i64)> = None;
    for p in domain.extreme_points() {
        let v = form.try_dot(&p)?;
        range = Some(match range {
            None => (v, v),
            Some((lo, hi)) => (lo.min(v), hi.max(v)),
        });
    }
    range.ok_or(IsgError::Empty)
}

/// Number of integer values the linear form `form · p` spans over the
/// domain: `max − min + 1` evaluated at the extreme points.
///
/// With a *primitive* `form` and the convex lattice domains used in this
/// workspace, every integer in the range is attained, so this is exactly
/// the paper's "number of integer points in the projection" (§4.3, Fig. 6).
///
/// # Panics
///
/// Panics if `form.dim() != domain.dim()`.
pub fn form_span(domain: &dyn IterationDomain, form: &IVec) -> i64 {
    match try_form_span(domain, form) {
        Ok(s) => s,
        Err(e) => panic!("form span failed: {e}"),
    }
}

/// [`form_span`] returning [`IsgError`] when the range computation fails or
/// `hi − lo + 1` overflows `i64`.
pub fn try_form_span(domain: &dyn IterationDomain, form: &IVec) -> Result<i64, IsgError> {
    let (lo, hi) = try_form_range(domain, form)?;
    hi.checked_sub(lo)
        .and_then(|w| w.checked_add(1))
        .ok_or(IsgError::Overflow("form span"))
}

/// The minimum projection `P_M` of the domain over a set of candidate
/// primitive forms: the smallest [`form_span`] among them.
///
/// §3.2.1 bounds the known-bounds search with `P_ovo·|ovo| / P_M`; for a
/// rectangle `P_M` "corresponds to the side with the shortest length"
/// (footnote 4), i.e. the minimum over the axis forms. Callers choose the
/// candidate set; [`axis_forms`] provides the axis-aligned ones.
///
/// # Panics
///
/// Panics if `forms` is empty or dimensions mismatch.
pub fn min_projection(domain: &dyn IterationDomain, forms: &[IVec]) -> i64 {
    match try_min_projection(domain, forms) {
        Ok(m) => m,
        Err(IsgError::Empty) => panic!("need at least one candidate form"),
        Err(e) => panic!("min projection failed: {e}"),
    }
}

/// [`min_projection`] returning [`IsgError::Empty`] for an empty candidate
/// set and propagating span failures.
pub fn try_min_projection(domain: &dyn IterationDomain, forms: &[IVec]) -> Result<i64, IsgError> {
    let mut best: Option<i64> = None;
    for f in forms {
        let span = try_form_span(domain, f)?;
        best = Some(best.map_or(span, |b| b.min(span)));
    }
    best.ok_or(IsgError::Empty)
}

/// The `d` axis-aligned unit forms of a `d`-dimensional space.
pub fn axis_forms(dim: usize) -> Vec<IVec> {
    (0..dim).map(|k| IVec::unit(dim, k)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::RectDomain;
    use crate::ivec;
    use crate::poly::Polygon2;

    #[test]
    fn axis_spans_match_extents() {
        let d = RectDomain::grid(4, 6);
        assert_eq!(form_span(&d, &ivec![1, 0]), 4);
        assert_eq!(form_span(&d, &ivec![0, 1]), 6);
    }

    #[test]
    fn diagonal_form_on_grid() {
        // The Fig. 6 computation: mv = (−1, 1) on the n × m grid spans
        // n + m − 1 values over (1,1)..=(n,m) — with the paper's border
        // points included the storage mapping allocates n + m + 1 (checked
        // in uov-storage).
        let d = RectDomain::grid(5, 7);
        assert_eq!(form_span(&d, &ivec![-1, 1]), 5 + 7 - 1);
    }

    #[test]
    fn fig3_projection_spans() {
        let isg = Polygon2::fig3_isg();
        // Perpendicular to ov1 = (3,1): mv = (−1, 3).
        assert_eq!(form_span(&isg, &ivec![-1, 3]), 16);
        // Perpendicular to ov2 = (3,0) (primitive direction (1,0)): mv = (0,1).
        assert_eq!(form_span(&isg, &ivec![0, 1]), 9);
    }

    #[test]
    fn min_projection_picks_shortest_side() {
        let d = RectDomain::grid(4, 9);
        assert_eq!(min_projection(&d, &axis_forms(2)), 4);
    }

    #[test]
    fn try_variants_report_errors() {
        let d = RectDomain::grid(4, 6);
        assert!(matches!(
            try_form_range(&d, &ivec![1]),
            Err(IsgError::DimMismatch {
                expected: 2,
                found: 1
            })
        ));
        assert_eq!(try_form_range(&d, &ivec![-1, 1]), Ok((-3, 5)));
        assert!(matches!(
            try_form_span(&d, &ivec![i64::MAX, i64::MAX]),
            Err(IsgError::Overflow(_))
        ));
        assert_eq!(try_min_projection(&d, &[]), Err(IsgError::Empty));
        assert_eq!(try_min_projection(&d, &axis_forms(2)), Ok(4));
    }

    #[test]
    fn form_span_exactness_vs_enumeration() {
        // For primitive forms on small convex domains the span equals the
        // exact count of attained values.
        let isg = Polygon2::fig3_isg();
        for form in [
            ivec![1, 0],
            ivec![0, 1],
            ivec![-1, 3],
            ivec![1, 1],
            ivec![-1, 1],
        ] {
            let mut values: Vec<i64> = isg.points().map(|p| form.dot(&p)).collect();
            values.sort();
            values.dedup();
            assert_eq!(
                values.len() as i64,
                form_span(&isg, &form),
                "span mismatch for form {form}"
            );
        }
    }
}
