//! Property-based tests for the integer-lattice substrate.

use proptest::prelude::*;
use uov_isg::num::{extended_gcd, floor_div, floor_mod, gcd, gcd_slice, lcm};
use uov_isg::{IMat, IVec, IterationDomain, RectDomain, Stencil};

fn small_vec(dim: usize) -> impl Strategy<Value = IVec> {
    prop::collection::vec(-20i64..=20, dim).prop_map(IVec::from)
}

fn lex_positive_vec(dim: usize) -> impl Strategy<Value = IVec> {
    small_vec(dim).prop_filter("lexicographically positive", |v| v.is_lex_positive())
}

proptest! {
    #[test]
    fn gcd_divides_both(a in -1000i64..1000, b in -1000i64..1000) {
        let g = gcd(a, b);
        if g != 0 {
            prop_assert_eq!(a % g, 0);
            prop_assert_eq!(b % g, 0);
        } else {
            prop_assert_eq!((a, b), (0, 0));
        }
    }

    #[test]
    fn extended_gcd_is_bezout(a in -10_000i64..10_000, b in -10_000i64..10_000) {
        let (g, x, y) = extended_gcd(a, b);
        prop_assert_eq!(g, gcd(a, b));
        prop_assert_eq!(a * x + b * y, g);
    }

    #[test]
    fn lcm_gcd_product(a in -500i64..500, b in -500i64..500) {
        prop_assert_eq!(lcm(a, b) * gcd(a, b), (a * b).abs());
    }

    #[test]
    fn floor_mod_in_range(a in -10_000i64..10_000, m in 1i64..100) {
        let r = floor_mod(a, m);
        prop_assert!((0..m).contains(&r));
        prop_assert_eq!(floor_div(a, m) * m + r, a);
    }

    #[test]
    fn vector_addition_commutes(a in small_vec(3), b in small_vec(3)) {
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&(&a + &b) - &b, a);
    }

    #[test]
    fn dot_is_bilinear(a in small_vec(3), b in small_vec(3), c in small_vec(3), k in -5i64..5) {
        prop_assert_eq!((&a + &b).dot(&c), a.dot(&c) + b.dot(&c));
        prop_assert_eq!(a.scaled(k).dot(&b), k * a.dot(&b));
    }

    #[test]
    fn primitive_has_content_one(v in small_vec(3).prop_filter("nonzero", |v| !v.is_zero())) {
        let p = v.primitive();
        prop_assert_eq!(p.content(), 1);
        prop_assert_eq!(p.scaled(v.content()), v);
    }

    #[test]
    fn gcd_slice_divides_all(xs in prop::collection::vec(-100i64..100, 1..6)) {
        let g = gcd_slice(&xs);
        if g != 0 {
            for &x in &xs {
                prop_assert_eq!(x % g, 0);
            }
        }
    }

    #[test]
    fn lattice_reduction_is_unimodular_and_annihilates(
        v in small_vec(3).prop_filter("nonzero", |v| !v.is_zero())
    ) {
        let w = IMat::lattice_reduction(&v);
        prop_assert!(w.is_unimodular());
        let wv = w.mul_vec(&v);
        prop_assert_eq!(wv[0], v.content());
        prop_assert_eq!(wv[1], 0);
        prop_assert_eq!(wv[2], 0);
    }

    #[test]
    fn lattice_reduction_injective_on_classes(
        v in small_vec(2).prop_filter("nonzero", |v| !v.is_zero()),
        p in small_vec(2),
        k in -4i64..4,
    ) {
        // Points differing by k·v agree on all rows but differ in row 0 by
        // k·content — the storage-equivalence structure of the paper.
        let w = IMat::lattice_reduction(&v);
        let q = &p + &v.scaled(k);
        let wp = w.mul_vec(&p);
        let wq = w.mul_vec(&q);
        prop_assert_eq!(wq[1], wp[1]);
        prop_assert_eq!(wq[0] - wp[0], k * v.content());
    }

    #[test]
    fn rect_domain_points_count_and_membership(
        lo in prop::collection::vec(-3i64..3, 2),
        extent in prop::collection::vec(0i64..4, 2),
    ) {
        let lo = IVec::from(lo);
        let hi: IVec = lo.iter().zip(&extent).map(|(&l, &e)| l + e).collect();
        let d = RectDomain::new(lo, hi);
        let pts: Vec<IVec> = d.points().collect();
        prop_assert_eq!(pts.len() as u64, d.num_points());
        for p in &pts {
            prop_assert!(d.contains(p));
        }
    }

    #[test]
    fn stencil_sum_dominates_each_vector_under_functional(
        vs in prop::collection::vec(lex_positive_vec(2), 1..5)
    ) {
        let s = Stencil::new(vs).expect("validated lex-positive");
        let phi = s.positive_functional();
        let total: i64 = s.iter().map(|v| phi.dot(v)).sum();
        prop_assert_eq!(phi.dot(&s.sum()), total);
        for v in &s {
            prop_assert!(phi.dot(v) >= 1);
        }
    }
}

fn halfspace_of_rect(lo: &IVec, hi: &IVec) -> uov_isg::HalfspaceDomain2 {
    uov_isg::HalfspaceDomain2::new(vec![
        (IVec::from([-1, 0]), -lo[0]),
        (IVec::from([1, 0]), hi[0]),
        (IVec::from([0, -1]), -lo[1]),
        (IVec::from([0, 1]), hi[1]),
    ])
    .expect("boxes are bounded and non-empty")
}

proptest! {
    #[test]
    fn halfspace_boxes_agree_with_rect_domains(
        lo in prop::collection::vec(-4i64..4, 2),
        extent in prop::collection::vec(0i64..5, 2),
    ) {
        let lo = IVec::from(lo);
        let hi: IVec = lo.iter().zip(&extent).map(|(&l, &e)| l + e).collect();
        let rect = RectDomain::new(lo.clone(), hi.clone());
        let hs = halfspace_of_rect(&lo, &hi);
        prop_assert_eq!(hs.num_points(), rect.num_points());
        for p in rect.points() {
            prop_assert!(hs.contains(&p));
        }
        // Spans of arbitrary primitive forms agree, so storage counts do.
        for form in [IVec::from([1, 1]), IVec::from([-1, 1]), IVec::from([2, 1])] {
            prop_assert_eq!(
                uov_isg::project::form_range(&hs, &form),
                uov_isg::project::form_range(&rect, &form),
                "form {} disagrees", form
            );
        }
    }

    #[test]
    fn triangle_hull_is_minimal_and_covering(hi in 1i64..12) {
        let tri = uov_isg::HalfspaceDomain2::lower_triangle(0, hi);
        let hull = tri.extreme_points();
        // Hull points are domain points…
        for p in &hull {
            prop_assert!(tri.contains(p));
        }
        // …and every domain point's coordinates are bounded by hull spans.
        for form in [IVec::from([1, 0]), IVec::from([0, 1]), IVec::from([1, -1])] {
            let (lo, hi_v) = uov_isg::project::form_range(&tri, &form);
            for p in tri.points() {
                let v = form.dot(&p);
                prop_assert!(lo <= v && v <= hi_v);
            }
        }
    }
}
