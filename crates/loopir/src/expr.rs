//! Expressions of the loop-nest IR.

use std::fmt;

use uov_isg::IVec;

/// An affine function of the loop indices: `Σ coeffs[k]·i_k + constant`.
///
/// Array subscripts in the IR are vectors of affine expressions. The UOV
/// technique needs *uniform* subscripts — identity coefficients plus a
/// constant offset — and [`AffineExpr::index_offset`] recognises exactly
/// that shape.
///
/// # Examples
///
/// ```
/// use uov_isg::ivec;
/// use uov_loopir::AffineExpr;
///
/// // "i - 1" in a 2-deep nest.
/// let e = AffineExpr::index(2, 0) + (-1);
/// assert_eq!(e.eval(&ivec![5, 3]), 4);
/// assert_eq!(e.index_offset(), Some((0, -1)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AffineExpr {
    coeffs: Vec<i64>,
    constant: i64,
}

impl AffineExpr {
    /// The constant expression `c` in a `depth`-deep nest.
    pub fn constant(depth: usize, c: i64) -> Self {
        AffineExpr {
            coeffs: vec![0; depth],
            constant: c,
        }
    }

    /// The loop index `i_k` in a `depth`-deep nest.
    ///
    /// # Panics
    ///
    /// Panics if `k >= depth`.
    pub fn index(depth: usize, k: usize) -> Self {
        assert!(k < depth, "index {k} out of range for depth {depth}");
        let mut coeffs = vec![0; depth];
        coeffs[k] = 1;
        AffineExpr {
            coeffs,
            constant: 0,
        }
    }

    /// Build `Σ coeffs[k]·i_k + constant` directly.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs` is empty.
    ///
    /// ```
    /// use uov_isg::ivec;
    /// use uov_loopir::AffineExpr;
    /// let e = AffineExpr::from_parts(vec![2, -1], 3);
    /// assert_eq!(e.eval(&ivec![5, 4]), 9);
    /// ```
    pub fn from_parts(coeffs: Vec<i64>, constant: i64) -> Self {
        assert!(!coeffs.is_empty(), "expression needs at least one index");
        AffineExpr { coeffs, constant }
    }

    /// `self + k·other`, the linear combination used when composing
    /// storage-mapping forms with subscripts.
    ///
    /// # Panics
    ///
    /// Panics if depths differ.
    pub fn add_scaled(&self, other: &AffineExpr, k: i64) -> AffineExpr {
        assert_eq!(self.depth(), other.depth(), "depth mismatch");
        AffineExpr {
            coeffs: self
                .coeffs
                .iter()
                .zip(&other.coeffs)
                .map(|(&a, &b)| a + k * b)
                .collect(),
            constant: self.constant + k * other.constant,
        }
    }

    /// Number of loop indices this expression ranges over.
    pub fn depth(&self) -> usize {
        self.coeffs.len()
    }

    /// Coefficients of the loop indices.
    pub fn coeffs(&self) -> &[i64] {
        &self.coeffs
    }

    /// The constant term.
    pub fn constant_term(&self) -> i64 {
        self.constant
    }

    /// Evaluate at an iteration point.
    ///
    /// # Panics
    ///
    /// Panics if `p.dim() != self.depth()`.
    pub fn eval(&self, p: &IVec) -> i64 {
        assert_eq!(p.dim(), self.coeffs.len(), "iteration dimension mismatch");
        self.constant
            + self
                .coeffs
                .iter()
                .zip(p.iter())
                .map(|(&c, &i)| c * i)
                .sum::<i64>()
    }

    /// If this expression is `i_k + c` for a single index `k`, return
    /// `(k, c)` — the *uniform subscript* shape required by the UOV
    /// technique.
    pub fn index_offset(&self) -> Option<(usize, i64)> {
        let mut hit = None;
        for (k, &c) in self.coeffs.iter().enumerate() {
            match c {
                0 => {}
                1 if hit.is_none() => hit = Some(k),
                _ => return None,
            }
        }
        hit.map(|k| (k, self.constant))
    }
}

impl std::ops::Add<i64> for AffineExpr {
    type Output = AffineExpr;
    fn add(mut self, c: i64) -> AffineExpr {
        self.constant += c;
        self
    }
}

impl fmt::Display for AffineExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (k, &c) in self.coeffs.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if !first {
                write!(f, " + ")?;
            }
            if c == 1 {
                write!(f, "i{k}")?;
            } else {
                write!(f, "{c}·i{k}")?;
            }
            first = false;
        }
        if self.constant != 0 || first {
            if !first {
                write!(f, " + ")?;
            }
            write!(f, "{}", self.constant)?;
        }
        Ok(())
    }
}

/// A scalar expression over array reads, loop indices and constants.
///
/// Deliberately small: enough to express the paper's two kernels (weighted
/// stencil averages; max/plus dynamic programming) plus the Fig-1 example.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Read `array[subscript]`.
    Read {
        /// Index into the nest's array table.
        array: usize,
        /// One affine expression per array dimension.
        subscript: Vec<AffineExpr>,
    },
    /// A floating-point literal.
    Const(f64),
    /// The value of loop index `k` as a float (for data-dependent weights).
    Index(usize),
    /// Sum.
    Add(Box<Expr>, Box<Expr>),
    /// Difference.
    Sub(Box<Expr>, Box<Expr>),
    /// Product.
    Mul(Box<Expr>, Box<Expr>),
    /// Maximum (for dynamic-programming kernels).
    Max(Box<Expr>, Box<Expr>),
}

#[allow(clippy::should_implement_trait)] // builder helpers, not operators
impl Expr {
    /// Convenience: `a + b`.
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::Add(Box::new(a), Box::new(b))
    }

    /// Convenience: `a - b`.
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::Sub(Box::new(a), Box::new(b))
    }

    /// Convenience: `a * b`.
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::Mul(Box::new(a), Box::new(b))
    }

    /// Convenience: `max(a, b)`.
    pub fn max(a: Expr, b: Expr) -> Expr {
        Expr::Max(Box::new(a), Box::new(b))
    }

    /// Convenience: a read with the given subscripts.
    pub fn read(array: usize, subscript: Vec<AffineExpr>) -> Expr {
        Expr::Read { array, subscript }
    }

    /// Collect every read in the expression tree (array id + subscript).
    pub fn reads(&self) -> Vec<(usize, &[AffineExpr])> {
        let mut out = Vec::new();
        self.collect_reads(&mut out);
        out
    }

    fn collect_reads<'a>(&'a self, out: &mut Vec<(usize, &'a [AffineExpr])>) {
        match self {
            Expr::Read { array, subscript } => out.push((*array, subscript)),
            Expr::Const(_) | Expr::Index(_) => {}
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Max(a, b) => {
                a.collect_reads(out);
                b.collect_reads(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uov_isg::ivec;

    #[test]
    fn affine_eval() {
        let e = AffineExpr::index(3, 1) + 4;
        assert_eq!(e.eval(&ivec![7, 2, 9]), 6);
        let c = AffineExpr::constant(3, -2);
        assert_eq!(c.eval(&ivec![7, 2, 9]), -2);
    }

    #[test]
    fn index_offset_recognition() {
        assert_eq!((AffineExpr::index(2, 0) + -1).index_offset(), Some((0, -1)));
        assert_eq!(AffineExpr::index(2, 1).index_offset(), Some((1, 0)));
        assert_eq!(AffineExpr::constant(2, 5).index_offset(), None);
        // 2·i is not uniform.
        let mut skew = AffineExpr::index(2, 0);
        skew = AffineExpr {
            coeffs: skew.coeffs().iter().map(|&c| c * 2).collect(),
            constant: 0,
        };
        assert_eq!(skew.index_offset(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", AffineExpr::index(2, 0) + -1), "i0 + -1");
        assert_eq!(format!("{}", AffineExpr::constant(2, 0)), "0");
    }

    #[test]
    fn reads_are_collected() {
        let e = Expr::max(
            Expr::read(0, vec![AffineExpr::index(2, 0)]),
            Expr::add(
                Expr::read(1, vec![AffineExpr::index(2, 1)]),
                Expr::Const(1.0),
            ),
        );
        let reads = e.reads();
        assert_eq!(reads.len(), 2);
        assert_eq!(reads[0].0, 0);
        assert_eq!(reads[1].0, 1);
    }
}
