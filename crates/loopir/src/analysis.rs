//! Value-based dependence analysis and array region analysis for the
//! uniform single-assignment case.
//!
//! The paper cites Feautrier-style dataflow analysis \[13, 20, 21\] and the
//! array region analysis of Creusillet & Irigoin \[11\] as the machinery that
//! establishes a loop's eligibility for UOV mapping. For the *regular*
//! loops the UOV targets — uniform subscripts, one assignment per array,
//! each element written once — both analyses collapse to constant-offset
//! arithmetic, implemented exactly here:
//!
//! * a read `A[i + c_r]` in a loop whose single write is `A[i + c_w]` reads
//!   the value produced `c_w − c_r` iterations earlier when that distance
//!   is lexicographically positive, and an *imported* (pre-loop) value
//!   otherwise;
//! * the imported region is the read footprint minus the written region;
//!   temporaries are written elements outside a declared live-out region.

use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

use uov_isg::{IVec, IterationDomain, Stencil, StencilError};

use crate::expr::AffineExpr;
use crate::nest::LoopNest;

/// Why a statement fails to be a *regular* (UOV-eligible) assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalysisError {
    /// The statement index is out of range.
    NoSuchStatement(usize),
    /// A subscript is not of the uniform `i_k + c` form.
    NonUniformSubscript(String),
    /// Two subscript positions use the same loop index, or a loop index is
    /// missing: the write must be a bijection between iterations and
    /// elements.
    NonInjectiveWrite,
    /// Another statement writes the same array: value-based analysis for
    /// multiple writers is out of scope (the paper treats one assignment at
    /// a time with disjoint storage, §3).
    MultipleWriters(usize),
    /// The statement has no self-carried flow dependence: there is nothing
    /// for an occupancy vector to map (every value is either imported or
    /// exported).
    NoCarriedDependence,
    /// The carried distances do not form a valid stencil.
    BadStencil(StencilError),
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::NoSuchStatement(s) => write!(f, "no statement {s}"),
            AnalysisError::NonUniformSubscript(e) => {
                write!(f, "subscript `{e}` is not of the form i_k + c")
            }
            AnalysisError::NonInjectiveWrite => {
                write!(
                    f,
                    "write subscript is not a permutation of the loop indices"
                )
            }
            AnalysisError::MultipleWriters(a) => {
                write!(f, "array {a} is written by more than one statement")
            }
            AnalysisError::NoCarriedDependence => {
                write!(f, "statement carries no flow dependence")
            }
            AnalysisError::BadStencil(e) => write!(f, "invalid stencil: {e}"),
        }
    }
}

impl Error for AnalysisError {}

/// Decompose a uniform subscript vector into `(index permutation, offset)`.
///
/// For `A[i+c0, j+c1]` in a 2-deep nest this is `([0, 1], (c0, c1))`.
fn uniform_shape(
    subscript: &[AffineExpr],
    depth: usize,
) -> Result<(Vec<usize>, IVec), AnalysisError> {
    let mut perm = Vec::with_capacity(subscript.len());
    let mut offset = Vec::with_capacity(subscript.len());
    for e in subscript {
        let (k, c) = e
            .index_offset()
            .ok_or_else(|| AnalysisError::NonUniformSubscript(e.to_string()))?;
        perm.push(k);
        offset.push(c);
    }
    let mut seen = vec![false; depth];
    for &k in &perm {
        if seen[k] {
            return Err(AnalysisError::NonInjectiveWrite);
        }
        seen[k] = true;
    }
    Ok((perm, IVec::from(offset)))
}

/// Value-based flow-dependence analysis for statement `stmt` of `nest`:
/// the dependence stencil of values the statement produces and itself
/// consumes.
///
/// For the uniform single-assignment case the last-write analysis is
/// exact: iteration `q` reading `A[q∘σ + c_r]` consumes the value written
/// by iteration `q + d` with `d∘σ = c_r − c_w`... equivalently, the value
/// of iteration `q − v` with `v∘σ = c_w − c_r`, whenever `v` is
/// lexicographically positive (otherwise the read sees a pre-loop value —
/// an imported element, not a dependence).
///
/// # Errors
///
/// Returns [`AnalysisError`] when the statement is not a regular
/// assignment in the paper's sense.
///
/// # Examples
///
/// ```
/// use uov_isg::ivec;
/// use uov_loopir::{analysis::flow_stencil, examples};
///
/// let nest = examples::fig1_nest(5, 5);
/// let s = flow_stencil(&nest, 0)?;
/// assert_eq!(s.vectors(), &[ivec![0, 1], ivec![1, 0], ivec![1, 1]]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn flow_stencil(nest: &LoopNest, stmt: usize) -> Result<Stencil, AnalysisError> {
    let depth = nest.depth();
    let s = nest
        .stmts()
        .get(stmt)
        .ok_or(AnalysisError::NoSuchStatement(stmt))?;
    // One writer per array.
    for (i, other) in nest.stmts().iter().enumerate() {
        if i != stmt && other.array == s.array {
            return Err(AnalysisError::MultipleWriters(s.array));
        }
    }
    let (write_perm, write_off) = uniform_shape(&s.subscript, depth)?;
    if write_perm.len() != depth {
        // The write must cover all loop indices for iteration↔element
        // bijection (e.g. A[i,j] in a 2-deep nest, not A[i]).
        return Err(AnalysisError::NonInjectiveWrite);
    }

    let mut distances = Vec::new();
    for (array, subscript) in s.rhs.reads() {
        if array != s.array {
            continue; // reads of other arrays are imported by definition
        }
        let (read_perm, read_off) = uniform_shape(subscript, depth)?;
        if read_perm != write_perm {
            return Err(AnalysisError::NonUniformSubscript(format!(
                "read permutes indices differently from the write ({read_perm:?} vs {write_perm:?})"
            )));
        }
        // Element read at q: E_r(q) = q∘σ + c_r. Its producer p satisfies
        // E_w(p) = E_r(q):  p∘σ + c_w = q∘σ + c_r  ⇒  (q − p)∘σ = c_w − c_r.
        // Undo the permutation to get the iteration-space distance.
        let elem_diff = &write_off - &read_off;
        let mut v = vec![0i64; depth];
        for (pos, &k) in write_perm.iter().enumerate() {
            v[k] = elem_diff[pos];
        }
        let v = IVec::from(v);
        if v.is_lex_positive() {
            distances.push(v);
        }
        // Non-positive distances read imported values; region analysis
        // accounts for them.
    }
    if distances.is_empty() {
        return Err(AnalysisError::NoCarriedDependence);
    }
    Stencil::new(distances).map_err(AnalysisError::BadStencil)
}

/// Array region analysis for one statement's array (paper §2, after
/// Creusillet & Irigoin): which elements are imported into the loop, which
/// are written, and which of the written ones are temporaries given a
/// declared live-out region.
///
/// Regions are enumerated explicitly, so this is meant for the moderate
/// domains of analyses and tests, not for multi-million-point kernels.
#[derive(Debug, Clone)]
pub struct RegionAnalysis {
    /// Elements read before being written inside the loop (loop inputs).
    pub imported: BTreeSet<IVec>,
    /// Elements written by the statement.
    pub written: BTreeSet<IVec>,
}

impl RegionAnalysis {
    /// Run the analysis for statement `stmt` of `nest`.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError`] under the same conditions as
    /// [`flow_stencil`], minus the carried-dependence requirement.
    pub fn run(nest: &LoopNest, stmt: usize) -> Result<Self, AnalysisError> {
        let depth = nest.depth();
        let s = nest
            .stmts()
            .get(stmt)
            .ok_or(AnalysisError::NoSuchStatement(stmt))?;
        let (_, _) = uniform_shape(&s.subscript, depth)?;
        let mut written = BTreeSet::new();
        for p in nest.domain().points() {
            written.insert(nest.write_element(stmt, &p));
        }
        let mut imported = BTreeSet::new();
        for p in nest.domain().points() {
            for (array, subscript) in s.rhs.reads() {
                if array != s.array {
                    continue;
                }
                let elem: IVec = subscript.iter().map(|e| e.eval(&p)).collect();
                if !written.contains(&elem) {
                    imported.insert(elem);
                }
            }
        }
        Ok(RegionAnalysis { imported, written })
    }

    /// The temporaries: written elements not in the declared live-out set.
    ///
    /// In the paper's Fig-1 example only the last row is live-out, so all
    /// other written elements are temporaries — the storage the UOV
    /// mapping is allowed to fold.
    pub fn temporaries(&self, live_out: &BTreeSet<IVec>) -> BTreeSet<IVec> {
        self.written.difference(live_out).cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples;
    use uov_isg::ivec;

    #[test]
    fn fig1_stencil_extracted() {
        let nest = examples::fig1_nest(6, 4);
        let s = flow_stencil(&nest, 0).unwrap();
        assert_eq!(s.vectors(), &[ivec![0, 1], ivec![1, 0], ivec![1, 1]]);
    }

    #[test]
    fn stencil5_extracted() {
        let nest = examples::stencil5_nest(6, 10);
        let s = flow_stencil(&nest, 0).unwrap();
        assert_eq!(
            s.vectors(),
            &[
                ivec![1, -2],
                ivec![1, -1],
                ivec![1, 0],
                ivec![1, 1],
                ivec![1, 2]
            ]
        );
    }

    #[test]
    fn fig1_regions() {
        // Domain (1,1)..(n,m); reads A[i-1,j], A[i,j-1], A[i-1,j-1]:
        // imported = row 0 and column 0.
        let nest = examples::fig1_nest(4, 3);
        let r = RegionAnalysis::run(&nest, 0).unwrap();
        assert_eq!(r.written.len(), 12);
        assert!(r.imported.contains(&ivec![0, 0]));
        assert!(r.imported.contains(&ivec![0, 3]));
        assert!(r.imported.contains(&ivec![4, 0]));
        assert!(!r.imported.contains(&ivec![1, 1]));
        assert_eq!(r.imported.len(), 4 + 3 + 1); // row 0 (m+1 wide) + col 0
    }

    #[test]
    fn fig1_temporaries_exclude_live_out_row() {
        let nest = examples::fig1_nest(4, 3);
        let r = RegionAnalysis::run(&nest, 0).unwrap();
        let live_out: BTreeSet<IVec> = (1..=3).map(|j| ivec![4, j]).collect();
        let temps = r.temporaries(&live_out);
        assert_eq!(temps.len(), 12 - 3);
        assert!(!temps.contains(&ivec![4, 1]));
        assert!(temps.contains(&ivec![1, 1]));
    }

    #[test]
    fn rejects_scaled_subscripts() {
        use crate::expr::{AffineExpr, Expr};
        use crate::nest::{ArrayDecl, Assign, LoopNest};
        use uov_isg::RectDomain;
        // A[1, j] = … — a constant subscript position is non-uniform.
        let stmt = Assign {
            array: 0,
            subscript: vec![AffineExpr::constant(2, 1), AffineExpr::index(2, 1)],
            rhs: Expr::Const(0.0),
        };
        let nest = LoopNest::new(
            RectDomain::grid(3, 3),
            vec![ArrayDecl {
                name: "A".into(),
                rank: 2,
            }],
            vec![stmt],
        )
        .unwrap();
        assert!(matches!(
            flow_stencil(&nest, 0),
            Err(AnalysisError::NonUniformSubscript(_))
        ));
    }

    #[test]
    fn rejects_multiple_writers() {
        use crate::expr::{AffineExpr, Expr};
        use crate::nest::{ArrayDecl, Assign, LoopNest};
        use uov_isg::RectDomain;
        let full = vec![AffineExpr::index(2, 0), AffineExpr::index(2, 1)];
        let stmt = Assign {
            array: 0,
            subscript: full.clone(),
            rhs: Expr::Const(0.0),
        };
        let nest = LoopNest::new(
            RectDomain::grid(3, 3),
            vec![ArrayDecl {
                name: "A".into(),
                rank: 2,
            }],
            vec![stmt.clone(), stmt],
        )
        .unwrap();
        assert!(matches!(
            flow_stencil(&nest, 0),
            Err(AnalysisError::MultipleWriters(0))
        ));
    }

    #[test]
    fn no_carried_dependence_detected() {
        use crate::expr::{AffineExpr, Expr};
        use crate::nest::{ArrayDecl, Assign, LoopNest};
        use uov_isg::RectDomain;
        // B[i,j] = A[i,j] + 1: no self-flow.
        let full = vec![AffineExpr::index(2, 0), AffineExpr::index(2, 1)];
        let stmt = Assign {
            array: 1,
            subscript: full.clone(),
            rhs: Expr::add(Expr::read(0, full), Expr::Const(1.0)),
        };
        let nest = LoopNest::new(
            RectDomain::grid(3, 3),
            vec![
                ArrayDecl {
                    name: "A".into(),
                    rank: 2,
                },
                ArrayDecl {
                    name: "B".into(),
                    rank: 2,
                },
            ],
            vec![stmt],
        )
        .unwrap();
        assert!(matches!(
            flow_stencil(&nest, 0),
            Err(AnalysisError::NoCarriedDependence)
        ));
    }

    #[test]
    fn psm_nest_two_statements_disjoint_stencils() {
        let nest = examples::psm_nest(4, 5);
        // Statement 0 (H): stencil {(1,0),(0,1),(1,1)}.
        let h = flow_stencil(&nest, 0).unwrap();
        assert_eq!(h.vectors(), &[ivec![0, 1], ivec![1, 0], ivec![1, 1]]);
        // Statement 1 (E): stencil {(1,0)}.
        let e = flow_stencil(&nest, 1).unwrap();
        assert_eq!(e.vectors(), &[ivec![1, 0]]);
    }
}
