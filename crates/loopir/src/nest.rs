//! The loop-nest IR: perfectly nested loops over a rectangular domain.

use std::error::Error;
use std::fmt;

use uov_isg::{IVec, IterationDomain as _, RectDomain};

use crate::expr::{AffineExpr, Expr};

/// Declaration of an array used by the nest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayDecl {
    /// Human-readable name (for diagnostics and experiment output).
    pub name: String,
    /// Number of dimensions.
    pub rank: usize,
}

/// One assignment statement `array[subscript] = rhs` in the nest body.
#[derive(Debug, Clone, PartialEq)]
pub struct Assign {
    /// Index into [`LoopNest::arrays`] of the written array.
    pub array: usize,
    /// Subscript of the write, one affine expression per array dimension.
    pub subscript: Vec<AffineExpr>,
    /// Right-hand side.
    pub rhs: Expr,
}

/// A perfect loop nest with constant rectangular bounds.
///
/// Built with [`LoopNest::new`], which validates the structural rules of
/// the IR (ranks and depths line up). Whether the nest is *regular* in the
/// paper's sense — uniform subscripts, one assignment per array — is a
/// separate, analysis-level question answered by
/// [`crate::analysis::flow_stencil`].
///
/// # Examples
///
/// ```
/// use uov_loopir::examples;
/// let nest = examples::fig1_nest(4, 4);
/// assert_eq!(nest.depth(), 2);
/// assert_eq!(nest.arrays().len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LoopNest {
    domain: RectDomain,
    arrays: Vec<ArrayDecl>,
    stmts: Vec<Assign>,
}

/// Structural error building a [`LoopNest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NestError {
    /// The nest must contain at least one statement.
    NoStatements,
    /// A statement writes an array id that is not declared.
    UnknownArray(usize),
    /// A subscript's length does not match the array's rank.
    RankMismatch {
        /// The offending array id.
        array: usize,
        /// The array's declared rank.
        rank: usize,
        /// The subscript length found.
        found: usize,
    },
    /// An affine expression ranges over the wrong number of loop indices.
    DepthMismatch {
        /// The nest depth.
        depth: usize,
        /// The depth found in the expression.
        found: usize,
    },
}

impl fmt::Display for NestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NestError::NoStatements => write!(f, "loop nest has no statements"),
            NestError::UnknownArray(a) => write!(f, "statement references undeclared array {a}"),
            NestError::RankMismatch { array, rank, found } => write!(
                f,
                "array {array} has rank {rank} but a subscript of length {found}"
            ),
            NestError::DepthMismatch { depth, found } => write!(
                f,
                "nest depth is {depth} but an expression ranges over {found} indices"
            ),
        }
    }
}

impl Error for NestError {}

impl LoopNest {
    /// Validate and build a nest.
    ///
    /// # Errors
    ///
    /// Returns [`NestError`] when statements reference undeclared arrays or
    /// subscript/expression shapes do not line up.
    pub fn new(
        domain: RectDomain,
        arrays: Vec<ArrayDecl>,
        stmts: Vec<Assign>,
    ) -> Result<Self, NestError> {
        if stmts.is_empty() {
            return Err(NestError::NoStatements);
        }
        let depth = domain.dim();
        let check_subscript = |array: usize, subscript: &[AffineExpr]| -> Result<(), NestError> {
            let decl = arrays.get(array).ok_or(NestError::UnknownArray(array))?;
            if subscript.len() != decl.rank {
                return Err(NestError::RankMismatch {
                    array,
                    rank: decl.rank,
                    found: subscript.len(),
                });
            }
            for e in subscript {
                if e.depth() != depth {
                    return Err(NestError::DepthMismatch {
                        depth,
                        found: e.depth(),
                    });
                }
            }
            Ok(())
        };
        for stmt in &stmts {
            check_subscript(stmt.array, &stmt.subscript)?;
            for (array, subscript) in stmt.rhs.reads() {
                check_subscript(array, subscript)?;
            }
        }
        Ok(LoopNest {
            domain,
            arrays,
            stmts,
        })
    }

    /// The iteration domain.
    pub fn domain(&self) -> &RectDomain {
        &self.domain
    }

    /// Nest depth (number of loops).
    pub fn depth(&self) -> usize {
        self.domain.dim()
    }

    /// Declared arrays.
    pub fn arrays(&self) -> &[ArrayDecl] {
        &self.arrays
    }

    /// Body statements, in program order.
    pub fn stmts(&self) -> &[Assign] {
        &self.stmts
    }

    /// Evaluate the write subscript of statement `stmt` at iteration `p`.
    ///
    /// # Panics
    ///
    /// Panics if `stmt` is out of range.
    pub fn write_element(&self, stmt: usize, p: &IVec) -> IVec {
        self.stmts[stmt]
            .subscript
            .iter()
            .map(|e| e.eval(p))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples;
    use uov_isg::ivec;

    #[test]
    fn fig1_nest_is_well_formed() {
        let nest = examples::fig1_nest(5, 3);
        assert_eq!(nest.depth(), 2);
        assert_eq!(nest.stmts().len(), 1);
        assert_eq!(nest.write_element(0, &ivec![2, 3]), ivec![2, 3]);
    }

    #[test]
    fn rejects_empty_body() {
        let err = LoopNest::new(RectDomain::grid(2, 2), vec![], vec![]).unwrap_err();
        assert_eq!(err, NestError::NoStatements);
    }

    #[test]
    fn rejects_unknown_array() {
        let stmt = Assign {
            array: 3,
            subscript: vec![AffineExpr::index(2, 0), AffineExpr::index(2, 1)],
            rhs: Expr::Const(0.0),
        };
        let err = LoopNest::new(
            RectDomain::grid(2, 2),
            vec![ArrayDecl {
                name: "A".into(),
                rank: 2,
            }],
            vec![stmt],
        )
        .unwrap_err();
        assert_eq!(err, NestError::UnknownArray(3));
    }

    #[test]
    fn rejects_rank_mismatch() {
        let stmt = Assign {
            array: 0,
            subscript: vec![AffineExpr::index(2, 0)],
            rhs: Expr::Const(0.0),
        };
        let err = LoopNest::new(
            RectDomain::grid(2, 2),
            vec![ArrayDecl {
                name: "A".into(),
                rank: 2,
            }],
            vec![stmt],
        )
        .unwrap_err();
        assert!(matches!(
            err,
            NestError::RankMismatch {
                array: 0,
                rank: 2,
                found: 1
            }
        ));
    }

    #[test]
    fn rejects_depth_mismatch_in_reads() {
        let stmt = Assign {
            array: 0,
            subscript: vec![AffineExpr::index(2, 0), AffineExpr::index(2, 1)],
            rhs: Expr::read(0, vec![AffineExpr::index(3, 0), AffineExpr::index(3, 1)]),
        };
        let err = LoopNest::new(
            RectDomain::grid(2, 2),
            vec![ArrayDecl {
                name: "A".into(),
                rank: 2,
            }],
            vec![stmt],
        )
        .unwrap_err();
        assert!(matches!(
            err,
            NestError::DepthMismatch { depth: 2, found: 3 }
        ));
    }
}
