//! C-like pseudocode emission for a nest under a storage mapping.
//!
//! §4 of the paper: "After selecting an occupancy vector … we must
//! determine a storage mapping **in order to generate code**." This module
//! renders the transformed loop the way the paper's Figure 1(b) does —
//! the 2-D array access rewritten into a one-dimensional buffer indexed
//! by `mv·q + shift + modterm` — so the storage transformation can be
//! inspected (and pasted into a C file) rather than only executed.

use std::fmt::Write as _;

use uov_isg::{IVec, IterationDomain as _};
use uov_storage::{Layout, OvMap, StorageMap as _};

use crate::expr::{AffineExpr, Expr};
use crate::nest::LoopNest;

/// Index-variable names used for emitted loops (`i0`, `i1`, … beyond 3).
fn index_name(k: usize) -> String {
    match k {
        0 => "i".to_string(),
        1 => "j".to_string(),
        2 => "k".to_string(),
        _ => format!("i{k}"),
    }
}

fn affine_to_c(e: &AffineExpr) -> String {
    let mut out = String::new();
    let mut first = true;
    for (k, &c) in e.coeffs().iter().enumerate() {
        if c == 0 {
            continue;
        }
        match (first, c) {
            (true, 1) => out.push_str(&index_name(k)),
            (true, -1) => {
                out.push('-');
                out.push_str(&index_name(k));
            }
            (true, c) => {
                let _ = write!(out, "{c}*{}", index_name(k));
            }
            (false, 1) => {
                let _ = write!(out, " + {}", index_name(k));
            }
            (false, -1) => {
                let _ = write!(out, " - {}", index_name(k));
            }
            (false, c) if c > 0 => {
                let _ = write!(out, " + {c}*{}", index_name(k));
            }
            (false, c) => {
                let _ = write!(out, " - {}*{}", -c, index_name(k));
            }
        }
        first = false;
    }
    let c = e.constant_term();
    if first {
        let _ = write!(out, "{c}");
    } else if c > 0 {
        let _ = write!(out, " + {c}");
    } else if c < 0 {
        let _ = write!(out, " - {}", -c);
    }
    out
}

fn expr_to_c(e: &Expr, nest: &LoopNest, mapped: Option<(usize, &OvMapCode)>) -> String {
    match e {
        Expr::Const(c) => format!("{c:?}f"),
        Expr::Index(k) => format!("(float){}", index_name(*k)),
        Expr::Add(a, b) => format!(
            "({} + {})",
            expr_to_c(a, nest, mapped),
            expr_to_c(b, nest, mapped)
        ),
        Expr::Sub(a, b) => format!(
            "({} - {})",
            expr_to_c(a, nest, mapped),
            expr_to_c(b, nest, mapped)
        ),
        Expr::Mul(a, b) => format!(
            "({} * {})",
            expr_to_c(a, nest, mapped),
            expr_to_c(b, nest, mapped)
        ),
        Expr::Max(a, b) => format!(
            "fmaxf({}, {})",
            expr_to_c(a, nest, mapped),
            expr_to_c(b, nest, mapped)
        ),
        Expr::Read { array, subscript } => access_to_c(nest, *array, subscript, mapped),
    }
}

fn access_to_c(
    nest: &LoopNest,
    array: usize,
    subscript: &[AffineExpr],
    mapped: Option<(usize, &OvMapCode)>,
) -> String {
    let name = &nest.arrays()[array].name;
    if let Some((mapped_array, code)) = mapped {
        if array == mapped_array {
            // The producing iteration of A[s(i)] is p = s(i) − c_w for the
            // uniform write A[i + c_w]; apply SMov to p.
            return code.apply(name, subscript);
        }
    }
    let idx: Vec<String> = subscript.iter().map(affine_to_c).collect();
    format!("{name}[{}]", idx.join("]["))
}

/// Precomputed symbolic pieces of an OV mapping `SMov(q) = mv·q + shift
/// (+ modterm)` for emission.
struct OvMapCode {
    mv: IVec,
    shift: i64,
    g: i64,
    position_form: IVec,
    layout: Layout,
    block: i64,
    /// Constant offset turning a read subscript into its producer
    /// iteration (the write offset `c_w`, negated per dimension).
    write_offset: IVec,
}

impl OvMapCode {
    fn apply(&self, name: &str, subscript: &[AffineExpr]) -> String {
        // Producer iteration p_k = subscript_k − c_w[k]; then index =
        // Σ mv[k]·p_k + shift (+ modterm from position_form·p mod g).
        let mut linear = AffineExpr::constant(subscript[0].depth(), self.shift);
        let mut position = AffineExpr::constant(subscript[0].depth(), 0);
        for (k, sub) in subscript.iter().enumerate() {
            let p_k = sub.clone() + -self.write_offset[k];
            linear = linear.add_scaled(&p_k, self.mv[k]);
            position = position.add_scaled(&p_k, self.position_form[k]);
        }
        if self.g <= 1 {
            return format!("{name}[{}]", affine_to_c(&linear));
        }
        match self.layout {
            Layout::Interleaved => {
                // class·g + residue with class = mv·p − lo: scale the
                // whole linear form (whose constant already folds −lo in
                // via `shift`) by g.
                let scaled =
                    AffineExpr::constant(subscript[0].depth(), 0).add_scaled(&linear, self.g);
                format!(
                    "{name}[{} + mod({}, {})]",
                    affine_to_c(&scaled),
                    affine_to_c(&position),
                    self.g
                )
            }
            Layout::Blocked => format!(
                "{name}[{} + mod({}, {})*{}]",
                affine_to_c(&linear),
                affine_to_c(&position),
                self.g,
                self.block
            ),
        }
    }
}

/// Emit C-like pseudocode for the nest with natural array storage.
///
/// # Examples
///
/// ```
/// use uov_loopir::{codegen, examples};
/// let nest = examples::fig1_nest(8, 8);
/// let code = codegen::emit_natural(&nest);
/// assert!(code.contains("for (i = 1; i <= 8; i++)"));
/// assert!(code.contains("A[i][j]"));
/// ```
pub fn emit_natural(nest: &LoopNest) -> String {
    emit(nest, None)
}

/// Emit C-like pseudocode with statement `stmt`'s array folded through
/// the given OV mapping — the Figure-1(b) transformation.
///
/// The emitted index is the paper's `SMov(q) = mv·q + shift + modterm`
/// applied to each access's *producing* iteration.
///
/// # Panics
///
/// Panics if the statement's subscripts are not uniform (`i_k + c`).
pub fn emit_ov_mapped(nest: &LoopNest, stmt: usize, map: &OvMap) -> String {
    let write = &nest.stmts()[stmt].subscript;
    let depth = nest.depth();
    let mut write_offset = vec![0i64; write.len()];
    for (pos, e) in write.iter().enumerate() {
        let Some((_, c)) = e.index_offset() else {
            panic!("write subscript {pos} of statement {stmt} is not uniform (i_k + c)")
        };
        write_offset[pos] = c;
    }
    // Reconstruct the symbolic pieces from the mapping.
    let Some(mv) = map.mapping_vector_2d() else {
        panic!(
            "codegen currently supports 2-D mappings; got ov {}",
            map.ov()
        )
    };
    let dom = nest.domain();
    // Domains are non-empty by construction; an empty hull needs no shift.
    let shift = -(dom
        .extreme_points()
        .iter()
        .map(|p| mv.dot(p))
        .min()
        .unwrap_or(0));
    let g = map.ov().content();
    let code = OvMapCode {
        shift,
        g,
        position_form: position_form_of(map, depth),
        layout: map.layout(),
        block: (map.size() as i64) / g.max(1),
        mv,
        write_offset: IVec::from(write_offset),
    };
    emit(nest, Some((nest.stmts()[stmt].array, &code)))
}

fn position_form_of(map: &OvMap, _depth: usize) -> IVec {
    // The position row of the reduction: reconstruct from the OV — any
    // form with form·ov = g works for the modterm; use the one the map
    // itself uses via residue probing on unit vectors.
    let d = map.ov().dim();
    let zero = IVec::zero(d);
    let base = map.residue(&zero);
    (0..d)
        .map(|k| {
            let r = map.residue(&IVec::unit(d, k)) - base;
            r.rem_euclid(map.ov().content().max(1))
        })
        .collect()
}

fn emit(nest: &LoopNest, mapped: Option<(usize, &OvMapCode)>) -> String {
    let mut out = String::new();
    let dom = nest.domain();
    for k in 0..nest.depth() {
        let _ = writeln!(
            out,
            "{:indent$}for ({name} = {lo}; {name} <= {hi}; {name}++) {{",
            "",
            indent = k * 2,
            name = index_name(k),
            lo = dom.lo()[k],
            hi = dom.hi()[k],
        );
    }
    let body_indent = nest.depth() * 2;
    for stmt in nest.stmts() {
        let lhs = access_to_c(nest, stmt.array, &stmt.subscript, mapped);
        let rhs = expr_to_c(&stmt.rhs, nest, mapped);
        let _ = writeln!(out, "{:indent$}{lhs} = {rhs};", "", indent = body_indent);
    }
    for k in (0..nest.depth()).rev() {
        let _ = writeln!(out, "{:indent$}}}", "", indent = k * 2);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples;
    use uov_isg::ivec;
    use uov_storage::Layout;

    #[test]
    fn natural_fig1_shape() {
        let nest = examples::fig1_nest(4, 3);
        let code = emit_natural(&nest);
        assert!(code.contains("for (i = 1; i <= 4; i++) {"));
        assert!(code.contains("  for (j = 1; j <= 3; j++) {"));
        assert!(code.contains("A[i][j] ="));
        assert!(code.contains("A[i - 1][j]"));
        assert!(code.contains("A[i - 1][j - 1]"));
    }

    #[test]
    fn ov_mapped_fig1_matches_paper_form() {
        // Figure 1(b): A[n-i+j] = f(A[n-(i-1)+j], A[n-i+(j-1)], …) — our
        // form is j - i + n with n = 4.
        let nest = examples::fig1_nest(4, 3);
        let map = OvMap::new(nest.domain(), ivec![1, 1], Layout::Interleaved);
        let code = emit_ov_mapped(&nest, 0, &map);
        // Writes and reads collapse to the 1-D diagonal index.
        assert!(
            code.contains("A[-i + j + 3]") || code.contains("A[i - j + 2]"),
            "unexpected mapped index:\n{code}"
        );
        // No 2-D access survives.
        assert!(!code.contains("]["), "2-D access leaked:\n{code}");
    }

    #[test]
    fn ov_mapped_code_indices_agree_with_map() {
        // The emitted affine index must equal OvMap::map at every point.
        use uov_isg::IterationDomain as _;
        let nest = examples::fig1_nest(5, 4);
        let map = OvMap::new(nest.domain(), ivec![1, 1], Layout::Interleaved);
        let mv = map.mapping_vector_2d().unwrap();
        let shift = -nest
            .domain()
            .extreme_points()
            .iter()
            .map(|p| mv.dot(p))
            .min()
            .unwrap();
        for q in nest.domain().points() {
            assert_eq!(map.map(&q) as i64, mv.dot(&q) + shift, "at {q}");
        }
    }

    #[test]
    fn stencil5_nest_emits() {
        let nest = examples::stencil5_nest(3, 8);
        let code = emit_natural(&nest);
        assert!(code.contains("A[i - 1][j + 2]"));
        assert!(code.contains("A[i - 1][j - 2]"));
    }
}

#[cfg(test)]
mod blocked_layout_tests {
    use super::*;
    use crate::examples;
    use uov_isg::ivec;
    use uov_storage::Layout;

    #[test]
    fn blocked_modterm_emits_block_offset() {
        // UOV (2,0) blocked: index = class + mod(position, 2)·L.
        let nest = examples::stencil5_nest(4, 8);
        let map = OvMap::new(nest.domain(), ivec![2, 0], Layout::Blocked);
        let code = emit_ov_mapped(&nest, 0, &map);
        assert!(
            code.contains("mod("),
            "blocked code needs a modterm:\n{code}"
        );
        assert!(code.contains("*8"), "block offset L = 8 expected:\n{code}");
    }

    #[test]
    fn prime_uov_needs_no_modterm() {
        let nest = examples::fig1_nest(5, 5);
        let map = OvMap::new(nest.domain(), ivec![1, 1], Layout::Blocked);
        let code = emit_ov_mapped(&nest, 0, &map);
        assert!(
            !code.contains("mod("),
            "prime OV emits a pure affine index:\n{code}"
        );
    }

    #[test]
    fn psm_second_statement_maps_independently() {
        // Emit with statement 1 (E) mapped while H stays 2-D.
        let nest = examples::psm_nest(4, 6);
        let map = OvMap::new(nest.domain(), ivec![1, 0], Layout::Interleaved);
        let code = emit_ov_mapped(&nest, 1, &map);
        assert!(code.contains("H[i - 1][j]"), "H stays natural:\n{code}");
        assert!(!code.contains("E[i"), "E is folded to 1-D:\n{code}");
    }
}
