//! C-like pseudocode emission for a nest under a storage mapping.
//!
//! §4 of the paper: "After selecting an occupancy vector … we must
//! determine a storage mapping **in order to generate code**." This module
//! renders the transformed loop the way the paper's Figure 1(b) does —
//! the 2-D array access rewritten into a one-dimensional buffer indexed
//! by `mv·q + shift + modterm` — so the storage transformation can be
//! inspected (and pasted into a C file) rather than only executed.
//!
//! The index algebra itself (producer-iteration reconstruction, mapping
//! vector, shift, modterm) lives in [`crate::emit`], shared with the
//! executable source generation of `uov-codegen`; this module only decides
//! pseudocode surface syntax.

use std::fmt::Write as _;

use uov_storage::OvMap;

use crate::emit::{index_name, render_affine, MappedIndex, OvAccess};
use crate::expr::{AffineExpr, Expr};
use crate::nest::LoopNest;

fn expr_to_c(e: &Expr, nest: &LoopNest, mapped: Option<&OvAccess>) -> String {
    match e {
        Expr::Const(c) => format!("{c:?}f"),
        Expr::Index(k) => format!("(float){}", index_name(*k)),
        Expr::Add(a, b) => format!(
            "({} + {})",
            expr_to_c(a, nest, mapped),
            expr_to_c(b, nest, mapped)
        ),
        Expr::Sub(a, b) => format!(
            "({} - {})",
            expr_to_c(a, nest, mapped),
            expr_to_c(b, nest, mapped)
        ),
        Expr::Mul(a, b) => format!(
            "({} * {})",
            expr_to_c(a, nest, mapped),
            expr_to_c(b, nest, mapped)
        ),
        Expr::Max(a, b) => format!(
            "fmaxf({}, {})",
            expr_to_c(a, nest, mapped),
            expr_to_c(b, nest, mapped)
        ),
        Expr::Read { array, subscript } => access_to_c(nest, *array, subscript, mapped),
    }
}

fn access_to_c(
    nest: &LoopNest,
    array: usize,
    subscript: &[AffineExpr],
    mapped: Option<&OvAccess>,
) -> String {
    let name = &nest.arrays()[array].name;
    if let Some(acc) = mapped {
        if array == acc.array() {
            return mapped_index_to_c(name, &acc.index_of(subscript));
        }
    }
    let idx: Vec<String> = subscript.iter().map(render_affine).collect();
    format!("{name}[{}]", idx.join("]["))
}

/// Render a [`MappedIndex`] as a pseudocode access, `mod(x, g)` denoting
/// the mathematical (non-negative) modulus.
fn mapped_index_to_c(name: &str, idx: &MappedIndex) -> String {
    match idx {
        MappedIndex::Affine(e) => format!("{name}[{}]", render_affine(e)),
        MappedIndex::Mod {
            base,
            position,
            g,
            scale: 1,
        } => format!(
            "{name}[{} + mod({}, {g})]",
            render_affine(base),
            render_affine(position)
        ),
        MappedIndex::Mod {
            base,
            position,
            g,
            scale,
        } => format!(
            "{name}[{} + mod({}, {g})*{scale}]",
            render_affine(base),
            render_affine(position)
        ),
    }
}

/// Emit C-like pseudocode for the nest with natural array storage.
///
/// # Examples
///
/// ```
/// use uov_loopir::{codegen, examples};
/// let nest = examples::fig1_nest(8, 8);
/// let code = codegen::emit_natural(&nest);
/// assert!(code.contains("for (i = 1; i <= 8; i++)"));
/// assert!(code.contains("A[i][j]"));
/// ```
pub fn emit_natural(nest: &LoopNest) -> String {
    emit(nest, None)
}

/// Emit C-like pseudocode with statement `stmt`'s array folded through
/// the given OV mapping — the Figure-1(b) transformation.
///
/// The emitted index is the paper's `SMov(q) = mv·q + shift + modterm`
/// applied to each access's *producing* iteration.
///
/// # Panics
///
/// Panics if the statement's subscripts are not uniform (`i_k + c`) or the
/// mapping is not 2-D; [`OvAccess::new`] is the non-panicking entry point.
pub fn emit_ov_mapped(nest: &LoopNest, stmt: usize, map: &OvMap) -> String {
    let acc = match OvAccess::new(nest, stmt, map) {
        Ok(acc) => acc,
        Err(e) => panic!("{e}"),
    };
    emit(nest, Some(&acc))
}

fn emit(nest: &LoopNest, mapped: Option<&OvAccess>) -> String {
    let mut out = String::new();
    let dom = nest.domain();
    for k in 0..nest.depth() {
        let _ = writeln!(
            out,
            "{:indent$}for ({name} = {lo}; {name} <= {hi}; {name}++) {{",
            "",
            indent = k * 2,
            name = index_name(k),
            lo = dom.lo()[k],
            hi = dom.hi()[k],
        );
    }
    let body_indent = nest.depth() * 2;
    for stmt in nest.stmts() {
        let lhs = access_to_c(nest, stmt.array, &stmt.subscript, mapped);
        let rhs = expr_to_c(&stmt.rhs, nest, mapped);
        let _ = writeln!(out, "{:indent$}{lhs} = {rhs};", "", indent = body_indent);
    }
    for k in (0..nest.depth()).rev() {
        let _ = writeln!(out, "{:indent$}}}", "", indent = k * 2);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples;
    use uov_isg::ivec;
    use uov_storage::Layout;

    #[test]
    fn natural_fig1_shape() {
        let nest = examples::fig1_nest(4, 3);
        let code = emit_natural(&nest);
        assert!(code.contains("for (i = 1; i <= 4; i++) {"));
        assert!(code.contains("  for (j = 1; j <= 3; j++) {"));
        assert!(code.contains("A[i][j] ="));
        assert!(code.contains("A[i - 1][j]"));
        assert!(code.contains("A[i - 1][j - 1]"));
    }

    #[test]
    fn ov_mapped_fig1_matches_paper_form() {
        // Figure 1(b): A[n-i+j] = f(A[n-(i-1)+j], A[n-i+(j-1)], …) — our
        // form is j - i + n with n = 4.
        let nest = examples::fig1_nest(4, 3);
        let map = OvMap::new(nest.domain(), ivec![1, 1], Layout::Interleaved);
        let code = emit_ov_mapped(&nest, 0, &map);
        // Writes and reads collapse to the 1-D diagonal index.
        assert!(
            code.contains("A[-i + j + 3]") || code.contains("A[i - j + 2]"),
            "unexpected mapped index:\n{code}"
        );
        // No 2-D access survives.
        assert!(!code.contains("]["), "2-D access leaked:\n{code}");
    }

    #[test]
    fn ov_mapped_code_indices_agree_with_map() {
        // The emitted affine index must equal OvMap::map at every point.
        use uov_isg::IterationDomain as _;
        use uov_storage::StorageMap as _;
        let nest = examples::fig1_nest(5, 4);
        let map = OvMap::new(nest.domain(), ivec![1, 1], Layout::Interleaved);
        let mv = map.mapping_vector_2d().unwrap();
        let shift = -nest
            .domain()
            .extreme_points()
            .iter()
            .map(|p| mv.dot(p))
            .min()
            .unwrap();
        for q in nest.domain().points() {
            assert_eq!(map.map(&q) as i64, mv.dot(&q) + shift, "at {q}");
        }
    }

    #[test]
    fn stencil5_nest_emits() {
        let nest = examples::stencil5_nest(3, 8);
        let code = emit_natural(&nest);
        assert!(code.contains("A[i - 1][j + 2]"));
        assert!(code.contains("A[i - 1][j - 2]"));
    }
}

#[cfg(test)]
mod blocked_layout_tests {
    use super::*;
    use crate::examples;
    use uov_isg::ivec;
    use uov_storage::Layout;

    #[test]
    fn blocked_modterm_emits_block_offset() {
        // UOV (2,0) blocked: index = class + mod(position, 2)·L.
        let nest = examples::stencil5_nest(4, 8);
        let map = OvMap::new(nest.domain(), ivec![2, 0], Layout::Blocked);
        let code = emit_ov_mapped(&nest, 0, &map);
        assert!(
            code.contains("mod("),
            "blocked code needs a modterm:\n{code}"
        );
        assert!(code.contains("*8"), "block offset L = 8 expected:\n{code}");
    }

    #[test]
    fn prime_uov_needs_no_modterm() {
        let nest = examples::fig1_nest(5, 5);
        let map = OvMap::new(nest.domain(), ivec![1, 1], Layout::Blocked);
        let code = emit_ov_mapped(&nest, 0, &map);
        assert!(
            !code.contains("mod("),
            "prime OV emits a pure affine index:\n{code}"
        );
    }

    #[test]
    fn psm_second_statement_maps_independently() {
        // Emit with statement 1 (E) mapped while H stays 2-D.
        let nest = examples::psm_nest(4, 6);
        let map = OvMap::new(nest.domain(), ivec![1, 0], Layout::Interleaved);
        let code = emit_ov_mapped(&nest, 1, &map);
        assert!(code.contains("H[i - 1][j]"), "H stays natural:\n{code}");
        assert!(!code.contains("E[i"), "E is folded to 1-D:\n{code}");
    }
}
