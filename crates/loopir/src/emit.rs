//! The shared emitter backend: symbolic lowering of storage-mapped
//! accesses, used by both the C-like pseudocode of [`crate::codegen`] and
//! the executable source generation of `uov-codegen`.
//!
//! §4 of the paper reduces an occupancy vector to the storage mapping
//! `SMov(q) = mv·q + shift (+ modterm)`. This module performs that
//! reduction *symbolically*: given a statement's (uniform) write subscript
//! and an [`OvMap`], it turns any access subscript into a [`MappedIndex`] —
//! either a pure affine expression over the loop indices, or an affine
//! base plus a `(position mod g) · scale` term for non-prime OVs. Renderers
//! (pseudocode, Rust, C) then only decide surface syntax; the index
//! algebra lives here once.

use std::fmt;
use std::fmt::Write as _;

use uov_isg::{IVec, IterationDomain as _};
use uov_storage::{Layout, OvMap, StorageMap as _};

use crate::expr::AffineExpr;
use crate::nest::LoopNest;

/// Index-variable names used for emitted loops (`i`, `j`, `k`, then `i3`,
/// `i4`, … beyond depth 3). Shared by every emitter so generated sources
/// and pseudocode agree on naming.
pub fn index_name(k: usize) -> String {
    match k {
        0 => "i".to_string(),
        1 => "j".to_string(),
        2 => "k".to_string(),
        _ => format!("i{k}"),
    }
}

/// Render an affine expression as infix source (`-i + 2*j + 3`), valid in
/// both C and Rust. This is the one affine printer of the workspace.
pub fn render_affine(e: &AffineExpr) -> String {
    let mut out = String::new();
    let mut first = true;
    for (k, &c) in e.coeffs().iter().enumerate() {
        if c == 0 {
            continue;
        }
        match (first, c) {
            (true, 1) => out.push_str(&index_name(k)),
            (true, -1) => {
                out.push('-');
                out.push_str(&index_name(k));
            }
            (true, c) => {
                let _ = write!(out, "{c}*{}", index_name(k));
            }
            (false, 1) => {
                let _ = write!(out, " + {}", index_name(k));
            }
            (false, -1) => {
                let _ = write!(out, " - {}", index_name(k));
            }
            (false, c) if c > 0 => {
                let _ = write!(out, " + {c}*{}", index_name(k));
            }
            (false, c) => {
                let _ = write!(out, " - {}*{}", -c, index_name(k));
            }
        }
        first = false;
    }
    let c = e.constant_term();
    if first {
        let _ = write!(out, "{c}");
    } else if c > 0 {
        let _ = write!(out, " + {c}");
    } else if c < 0 {
        let _ = write!(out, " - {}", -c);
    }
    out
}

/// A storage-mapped buffer index, symbolically: either a pure affine
/// function of the loop indices (prime OVs), or `base + (position mod g)
/// · scale` (non-prime OVs; `scale` is `1` for [`Layout::Interleaved`],
/// the block length for [`Layout::Blocked`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MappedIndex {
    /// A pure affine index (prime OV: no modterm needed).
    Affine(AffineExpr),
    /// `base + (position mod g) * scale`.
    Mod {
        /// The affine part of the address.
        base: AffineExpr,
        /// The position form whose residue mod `g` separates the storage
        /// equivalence classes.
        position: AffineExpr,
        /// The OV's content (number of residue classes), `> 1` here.
        g: i64,
        /// Multiplier on the residue: `1` interleaved, block length
        /// blocked.
        scale: i64,
    },
}

/// Error lowering a statement's accesses through an OV mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmitError {
    /// The statement's write subscript is not uniform (`i_k + c`) at the
    /// given position, so producer iterations cannot be reconstructed.
    NonUniformWrite {
        /// The statement index.
        stmt: usize,
        /// The offending subscript position.
        pos: usize,
    },
    /// Symbolic lowering currently supports 2-D mappings only.
    UnsupportedDim(usize),
}

impl fmt::Display for EmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmitError::NonUniformWrite { stmt, pos } => write!(
                f,
                "write subscript {pos} of statement {stmt} is not uniform (i_k + c)"
            ),
            EmitError::UnsupportedDim(d) => {
                write!(f, "symbolic OV lowering supports 2-D mappings, got {d}-D")
            }
        }
    }
}

impl std::error::Error for EmitError {}

/// Precomputed symbolic pieces of an OV mapping `SMov(q) = mv·q + shift
/// (+ modterm)` for one statement: turns access subscripts into
/// [`MappedIndex`] expressions over the loop indices.
#[derive(Debug, Clone)]
pub struct OvAccess {
    array: usize,
    mv: IVec,
    shift: i64,
    g: i64,
    position_form: IVec,
    layout: Layout,
    block: i64,
    /// Constant offset turning a read subscript into its producer
    /// iteration (the write offset `c_w`, per dimension).
    write_offset: IVec,
}

impl OvAccess {
    /// Build the symbolic access lowering for statement `stmt` of `nest`
    /// under `map`.
    ///
    /// # Errors
    ///
    /// [`EmitError::NonUniformWrite`] when the statement's write subscript
    /// is not uniform, [`EmitError::UnsupportedDim`] for non-2-D mappings.
    ///
    /// # Panics
    ///
    /// Panics if `stmt` is out of range.
    pub fn new(nest: &LoopNest, stmt: usize, map: &OvMap) -> Result<Self, EmitError> {
        let write = &nest.stmts()[stmt].subscript;
        let mut write_offset = vec![0i64; write.len()];
        for (pos, e) in write.iter().enumerate() {
            let Some((_, c)) = e.index_offset() else {
                return Err(EmitError::NonUniformWrite { stmt, pos });
            };
            write_offset[pos] = c;
        }
        let Some(mv) = map.mapping_vector_2d() else {
            return Err(EmitError::UnsupportedDim(map.ov().dim()));
        };
        let dom = nest.domain();
        // Domains are non-empty by construction; an empty hull needs no
        // shift.
        let shift = -(dom
            .extreme_points()
            .iter()
            .map(|p| mv.dot(p))
            .min()
            .unwrap_or(0));
        let g = map.ov().content();
        Ok(OvAccess {
            array: nest.stmts()[stmt].array,
            shift,
            g,
            position_form: position_form_of(map),
            layout: map.layout(),
            block: (map.size() as i64) / g.max(1),
            mv,
            write_offset: IVec::from(write_offset),
        })
    }

    /// The array this statement writes (accesses of which are folded).
    pub fn array(&self) -> usize {
        self.array
    }

    /// The write offset `c_w` reconstructing producer iterations from
    /// element subscripts (`p = elem − c_w`).
    pub fn write_offset(&self) -> &IVec {
        &self.write_offset
    }

    /// Lower an access subscript (read or write, in *element* space) to
    /// the 1-D buffer index of its producing iteration.
    ///
    /// The producing iteration of `A[s(i)]` is `p = s(i) − c_w` for the
    /// uniform write `A[i + c_w]`; the index is then
    /// `Σ mv[k]·p_k + shift (+ modterm)`.
    ///
    /// # Panics
    ///
    /// Panics if the subscript is empty or its depth disagrees with the
    /// statement's.
    pub fn index_of(&self, subscript: &[AffineExpr]) -> MappedIndex {
        let mut linear = AffineExpr::constant(subscript[0].depth(), self.shift);
        let mut position = AffineExpr::constant(subscript[0].depth(), 0);
        for (k, sub) in subscript.iter().enumerate() {
            let p_k = sub.clone() + -self.write_offset[k];
            linear = linear.add_scaled(&p_k, self.mv[k]);
            position = position.add_scaled(&p_k, self.position_form[k]);
        }
        if self.g <= 1 {
            return MappedIndex::Affine(linear);
        }
        match self.layout {
            Layout::Interleaved => {
                // class·g + residue with class = mv·p − lo: scale the
                // whole linear form (whose constant already folds −lo in
                // via `shift`) by g.
                let base =
                    AffineExpr::constant(subscript[0].depth(), 0).add_scaled(&linear, self.g);
                MappedIndex::Mod {
                    base,
                    position,
                    g: self.g,
                    scale: 1,
                }
            }
            Layout::Blocked => MappedIndex::Mod {
                base: linear,
                position,
                g: self.g,
                scale: self.block,
            },
        }
    }
}

fn position_form_of(map: &OvMap) -> IVec {
    // The position row of the reduction: reconstruct from the OV — any
    // form with form·ov = g works for the modterm; use the one the map
    // itself uses via residue probing on unit vectors.
    let d = map.ov().dim();
    let zero = IVec::zero(d);
    let base = map.residue(&zero);
    (0..d)
        .map(|k| {
            let r = map.residue(&IVec::unit(d, k)) - base;
            r.rem_euclid(map.ov().content().max(1))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples;
    use uov_isg::ivec;

    #[test]
    fn render_affine_forms() {
        let e = AffineExpr::from_parts(vec![-1, 1], 3);
        assert_eq!(render_affine(&e), "-i + j + 3");
        let c = AffineExpr::constant(2, -2);
        assert_eq!(render_affine(&c), "-2");
        let m = AffineExpr::from_parts(vec![2, -3], 0);
        assert_eq!(render_affine(&m), "2*i - 3*j");
    }

    #[test]
    fn prime_ov_lowers_to_pure_affine() {
        let nest = examples::fig1_nest(4, 3);
        let map = OvMap::new(nest.domain(), ivec![1, 1], Layout::Interleaved);
        let acc = OvAccess::new(&nest, 0, &map).unwrap();
        let idx = acc.index_of(&nest.stmts()[0].subscript);
        let MappedIndex::Affine(e) = idx else {
            panic!("prime OV must need no modterm: {idx:?}")
        };
        // The symbolic index agrees with OvMap::map at every point.
        use uov_isg::IterationDomain as _;
        for q in nest.domain().points() {
            assert_eq!(e.eval(&q), map.map(&q) as i64, "at {q}");
        }
    }

    #[test]
    fn nonprime_ov_lowers_with_modterm() {
        let nest = examples::stencil5_nest(4, 8);
        for layout in [Layout::Interleaved, Layout::Blocked] {
            let map = OvMap::new(nest.domain(), ivec![2, 0], layout);
            let acc = OvAccess::new(&nest, 0, &map).unwrap();
            let idx = acc.index_of(&nest.stmts()[0].subscript);
            let MappedIndex::Mod {
                base,
                position,
                g,
                scale,
            } = idx
            else {
                panic!("non-prime OV needs a modterm: {idx:?}")
            };
            assert_eq!(g, 2);
            use uov_isg::IterationDomain as _;
            for q in nest.domain().points() {
                let addr = base.eval(&q) + position.eval(&q).rem_euclid(g) * scale;
                assert_eq!(addr, map.map(&q) as i64, "at {q} ({layout:?})");
            }
        }
    }

    #[test]
    fn non_uniform_write_is_typed() {
        use crate::{ArrayDecl, Assign, Expr, LoopNest};
        let sub = AffineExpr::from_parts(vec![2, 0], 0);
        let nest = LoopNest::new(
            uov_isg::RectDomain::grid(3, 3),
            vec![ArrayDecl {
                name: "A".into(),
                rank: 2,
            }],
            vec![Assign {
                array: 0,
                subscript: vec![sub, AffineExpr::index(2, 1)],
                rhs: Expr::Const(0.0),
            }],
        )
        .unwrap();
        let map = OvMap::new(nest.domain(), ivec![1, 1], Layout::Interleaved);
        assert_eq!(
            OvAccess::new(&nest, 0, &map).unwrap_err(),
            EmitError::NonUniformWrite { stmt: 0, pos: 0 }
        );
    }
}
