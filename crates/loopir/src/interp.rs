//! Reference interpreter: execute a nest under any order, natural or
//! OV-mapped.
//!
//! The interpreter is the semantic ground truth for the whole workspace:
//! running a nest with full array storage and running it with a designated
//! statement's array folded through a
//! [`uov_storage::StorageMap`] must produce identical live-out
//! values for every legal execution order — that is what "the mapping
//! introduces no further dependences" *means* operationally.

use std::collections::HashMap;

use uov_isg::{IVec, IterationDomain, Stencil};
use uov_storage::StorageMap;

use crate::expr::{AffineExpr, Expr};
use crate::nest::LoopNest;

/// Values produced by a run: `(statement index, element) → value` for
/// every element each statement wrote.
pub type Outputs = HashMap<(usize, IVec), f64>;

/// How a statement's array is stored during interpretation.
enum Backing<'a> {
    /// One cell per element (array expansion).
    Natural(HashMap<IVec, f64>),
    /// Cells shared according to a storage mapping over producing
    /// iterations.
    Mapped {
        map: &'a dyn StorageMap,
        cells: Vec<f64>,
    },
}

/// Execute `nest` in the given `order`.
///
/// * `maps[s]`, when present, folds statement `s`'s array through the
///   given storage mapping (addresses are producer iterations); `None`
///   uses natural per-element storage. `maps` may be shorter than the
///   statement list; missing entries mean natural storage.
/// * `input(array, element)` supplies imported values — elements read but
///   never written inside the loop (the halo/borders).
/// * `live_out` values are captured *as they are produced* (the paper's
///   kernels stream results to an output array), so reuse never destroys a
///   result.
///
/// Returns the values of all written elements for natural statements, and
/// of `live_out ∩ written` for mapped statements.
///
/// # Panics
///
/// Panics if the order reads an in-loop element before it is written
/// (i.e. the order is not a topological extension of the value
/// dependences), or if points lie outside the nest domain.
///
/// # Examples
///
/// ```
/// use uov_isg::IterationDomain;
/// use uov_loopir::{examples, interp};
///
/// let nest = examples::fig1_nest(4, 4);
/// let order: Vec<_> = nest.domain().points().collect();
/// let out = interp::run(&nest, &order, &[], &|_, e| e[1] as f64, &[]);
/// assert_eq!(out.len(), 16);
/// ```
pub fn run(
    nest: &LoopNest,
    order: &[IVec],
    maps: &[Option<&dyn StorageMap>],
    input: &dyn Fn(usize, &IVec) -> f64,
    live_out: &[(usize, IVec)],
) -> Outputs {
    let nstmts = nest.stmts().len();
    // Which statement writes each array (validated: at most one for mapped
    // use; natural arrays tolerate multiple writers by last-write-wins in
    // order, matching sequential semantics).
    let mut writer_of: HashMap<usize, usize> = HashMap::new();
    for (s, stmt) in nest.stmts().iter().enumerate() {
        writer_of.entry(stmt.array).or_insert(s);
    }

    let mut backing: Vec<Backing<'_>> = (0..nstmts)
        .map(|s| match maps.get(s).copied().flatten() {
            Some(map) => Backing::Mapped {
                map,
                cells: vec![0.0; map.size()],
            },
            None => Backing::Natural(HashMap::new()),
        })
        .collect();

    // Written regions per statement, to distinguish "imported" from
    // "not yet written" on reads.
    let written_region: Vec<std::collections::HashSet<IVec>> = (0..nstmts)
        .map(|s| {
            nest.domain()
                .points()
                .map(|p| nest.write_element(s, &p))
                .collect()
        })
        .collect();

    let mut outputs: Outputs = HashMap::new();
    let live_out_set: std::collections::HashSet<&(usize, IVec)> = live_out.iter().collect();

    for q in order {
        assert!(nest.domain().contains(q), "order leaves the domain at {q}");
        for (s, stmt) in nest.stmts().iter().enumerate() {
            let value = eval(
                &stmt.rhs,
                q,
                nest,
                &backing,
                &writer_of,
                &written_region,
                input,
            );
            let elem = nest.write_element(s, q);
            match &mut backing[s] {
                Backing::Natural(store) => {
                    store.insert(elem.clone(), value);
                    outputs.insert((s, elem), value);
                }
                Backing::Mapped { map, cells } => {
                    cells[map.map(q)] = value;
                    if live_out_set.contains(&(s, elem.clone())) {
                        outputs.insert((s, elem), value);
                    }
                }
            }
        }
    }
    outputs
}

#[allow(clippy::too_many_arguments)]
fn eval(
    expr: &Expr,
    q: &IVec,
    nest: &LoopNest,
    backing: &[Backing<'_>],
    writer_of: &HashMap<usize, usize>,
    written_region: &[std::collections::HashSet<IVec>],
    input: &dyn Fn(usize, &IVec) -> f64,
) -> f64 {
    match expr {
        Expr::Const(c) => *c,
        Expr::Index(k) => q[*k] as f64,
        Expr::Add(a, b) => {
            eval(a, q, nest, backing, writer_of, written_region, input)
                + eval(b, q, nest, backing, writer_of, written_region, input)
        }
        Expr::Sub(a, b) => {
            eval(a, q, nest, backing, writer_of, written_region, input)
                - eval(b, q, nest, backing, writer_of, written_region, input)
        }
        Expr::Mul(a, b) => {
            eval(a, q, nest, backing, writer_of, written_region, input)
                * eval(b, q, nest, backing, writer_of, written_region, input)
        }
        Expr::Max(a, b) => eval(a, q, nest, backing, writer_of, written_region, input).max(eval(
            b,
            q,
            nest,
            backing,
            writer_of,
            written_region,
            input,
        )),
        Expr::Read { array, subscript } => {
            let elem: IVec = subscript.iter().map(|e| e.eval(q)).collect();
            let Some(&s) = writer_of.get(array) else {
                return input(*array, &elem); // array never written: pure input
            };
            if !written_region[s].contains(&elem) {
                return input(*array, &elem); // imported halo element
            }
            match &backing[s] {
                Backing::Natural(store) => *store.get(&elem).unwrap_or_else(|| {
                    panic!("read of {elem} before it was written: illegal order")
                }),
                Backing::Mapped { map, cells } => {
                    let producer = producing_iteration(nest, s, &elem);
                    cells[map.map(&producer)]
                }
            }
        }
    }
}

/// Invert a uniform write subscript: the iteration that writes `elem`.
fn producing_iteration(nest: &LoopNest, stmt: usize, elem: &IVec) -> IVec {
    let subscript: &[AffineExpr] = &nest.stmts()[stmt].subscript;
    let depth = nest.depth();
    let mut p = vec![0i64; depth];
    for (pos, e) in subscript.iter().enumerate() {
        let Some((k, c)) = e.index_offset() else {
            panic!("mapped statement {stmt} has a non-uniform subscript {pos}")
        };
        p[k] = elem[pos] - c;
    }
    IVec::from(p)
}

/// Convenience for tests and examples: run in lexicographic order with
/// natural storage everywhere.
pub fn run_natural(nest: &LoopNest, input: &dyn Fn(usize, &IVec) -> f64) -> Outputs {
    let order: Vec<IVec> = nest.domain().points().collect();
    run(nest, &order, &[], input, &[])
}

/// Differential harness: assert that folding statement `stmt` through
/// `map` preserves every `live_out` value under the given order, against a
/// natural lexicographic reference run. Returns the mapped outputs.
///
/// # Panics
///
/// Panics (with a descriptive message) if any live-out value differs —
/// this is the semantics-preservation oracle used across the workspace's
/// integration tests.
pub fn assert_mapping_preserves_semantics(
    nest: &LoopNest,
    stmt: usize,
    map: &dyn StorageMap,
    order: &[IVec],
    input: &dyn Fn(usize, &IVec) -> f64,
    live_out: &[(usize, IVec)],
) -> Outputs {
    let reference = run_natural(nest, input);
    let mut maps: Vec<Option<&dyn StorageMap>> = vec![None; nest.stmts().len()];
    maps[stmt] = Some(map);
    let mapped = run(nest, order, &maps, input, live_out);
    for key in live_out {
        let want = reference
            .get(key)
            .unwrap_or_else(|| panic!("live-out {key:?} was never produced"));
        let got = mapped
            .get(key)
            .unwrap_or_else(|| panic!("mapped run lost live-out {key:?}"));
        assert!(
            (want - got).abs() <= 1e-9 * want.abs().max(1.0),
            "live-out {key:?} differs: natural {want} vs mapped {got} ({})",
            map.describe()
        );
    }
    mapped
}

/// The flow stencil of a statement, re-exported here for harness
/// ergonomics (see [`crate::analysis::flow_stencil`]).
pub fn stencil_of(nest: &LoopNest, stmt: usize) -> Stencil {
    match crate::analysis::flow_stencil(nest, stmt) {
        Ok(s) => s,
        Err(e) => panic!("statement {stmt} has no regular flow stencil: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples;
    use uov_isg::ivec;
    use uov_storage::{Layout, NaturalMap, OvMap};

    fn border_input(_array: usize, e: &IVec) -> f64 {
        // Deterministic, varied border values.
        (e[0] * 31 + e[1] * 7) as f64 * 0.01 + 1.0
    }

    #[test]
    fn natural_run_is_order_independent_across_legal_orders() {
        let nest = examples::fig1_nest(5, 5);
        let s = stencil_of(&nest, 0);
        let lex = run_natural(&nest, &border_input);
        for seed in 0..8 {
            let order = uov_schedule::random_topological_order(nest.domain(), &s, seed);
            let out = run(&nest, &order, &[], &border_input, &[]);
            assert_eq!(out.len(), lex.len());
            for (k, v) in &lex {
                assert!(
                    (out[k] - v).abs() < 1e-12,
                    "divergence at {k:?} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn fig1_ov_mapping_preserves_semantics() {
        let nest = examples::fig1_nest(6, 5);
        let s = stencil_of(&nest, 0);
        let map = OvMap::new(nest.domain(), ivec![1, 1], Layout::Interleaved);
        let live_out: Vec<(usize, IVec)> = (1..=5).map(|j| (0usize, ivec![6, j])).collect();
        for seed in 0..12 {
            let order = uov_schedule::random_topological_order(nest.domain(), &s, seed);
            assert_mapping_preserves_semantics(&nest, 0, &map, &order, &border_input, &live_out);
        }
    }

    #[test]
    fn stencil5_ov_mapping_preserves_semantics_under_skewed_tiling() {
        let nest = examples::stencil5_nest(6, 12);
        let map = OvMap::new(nest.domain(), ivec![2, 0], Layout::Interleaved);
        let blocked = OvMap::new(nest.domain(), ivec![2, 0], Layout::Blocked);
        let live_out: Vec<(usize, IVec)> = (0..12).map(|x| (0usize, ivec![6, x])).collect();
        let order = uov_schedule::LoopSchedule::skewed_tiled_2d(2, vec![3, 4]).order(nest.domain());
        assert_mapping_preserves_semantics(&nest, 0, &map, &order, &border_input, &live_out);
        assert_mapping_preserves_semantics(&nest, 0, &blocked, &order, &border_input, &live_out);
    }

    #[test]
    fn natural_map_through_mapped_path_matches() {
        // Folding through NaturalMap on producer iterations is just another
        // bijection — outputs must match the plain natural run.
        let nest = examples::fig1_nest(4, 4);
        let map = NaturalMap::new(nest.domain());
        let live_out: Vec<(usize, IVec)> = (1..=4).map(|j| (0usize, ivec![4, j])).collect();
        let order: Vec<IVec> = nest.domain().points().collect();
        assert_mapping_preserves_semantics(&nest, 0, &map, &order, &border_input, &live_out);
    }

    #[test]
    #[should_panic(expected = "differs")]
    fn broken_mapping_is_detected() {
        // (1,0) is not a UOV for Fig-1; under an interchanged order the
        // diagonal read sees clobbered data and the harness must catch it.
        let nest = examples::fig1_nest(5, 5);
        let map = OvMap::new(nest.domain(), ivec![1, 0], Layout::Interleaved);
        let live_out: Vec<(usize, IVec)> = (1..=5).map(|j| (0usize, ivec![5, j])).collect();
        let order = uov_schedule::LoopSchedule::Interchange(vec![1, 0]).order(nest.domain());
        assert_mapping_preserves_semantics(&nest, 0, &map, &order, &border_input, &live_out);
    }

    #[test]
    fn psm_two_statement_run() {
        let nest = examples::psm_nest(4, 4);
        let out = run_natural(&nest, &|_, _| 0.0);
        // Both statements produce 16 elements each.
        assert_eq!(out.len(), 32);
        // H values grow with i (pseudo-weights favour larger i).
        assert!(out[&(0, ivec![4, 4])] > out[&(0, ivec![1, 1])]);
    }
}
