//! A small perfect-loop-nest IR with the analyses the paper presumes.
//!
//! §1–2 of the paper: "We can determine whether our assumptions are valid
//! for a given loop nest by applying array region analysis and value-based
//! dependence analysis." This crate supplies working (deliberately
//! restricted) versions of both, over an explicit IR:
//!
//! * [`LoopNest`] — a perfectly nested loop with constant bounds whose body
//!   is a sequence of array assignments with *uniform* (identity + constant
//!   offset) subscripts — exactly the "regular loops" the UOV technique
//!   targets;
//! * [`analysis::flow_stencil`] — value-based dependence analysis for the
//!   uniform single-assignment case, producing the dependence [`Stencil`]
//!   consumed by `uov-core`;
//! * [`analysis::RegionAnalysis`] — array region analysis classifying
//!   elements as imported, written, and temporary with respect to a
//!   declared live-out region;
//! * [`interp`] — a reference interpreter that can run the
//!   nest under any execution order and, crucially, through any
//!   [`uov_storage::StorageMap`] — the end-to-end proof that an OV mapping
//!   preserves semantics.
//!
//! [`Stencil`]: uov_isg::Stencil
//!
//! # Example
//!
//! ```
//! use uov_loopir::{analysis, examples};
//!
//! // The paper's Figure-1 loop as IR.
//! let nest = examples::fig1_nest(6, 4);
//! let stencil = analysis::flow_stencil(&nest, 0)?;
//! assert_eq!(stencil.len(), 3); // (1,0), (0,1), (1,1)
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod analysis;
pub mod codegen;
pub mod emit;
pub mod examples;
pub mod expr;
pub mod interp;
pub mod nest;

pub use emit::{EmitError, MappedIndex, OvAccess};
pub use expr::{AffineExpr, Expr};
pub use nest::{ArrayDecl, Assign, LoopNest, NestError};
