//! The paper's loops, expressed in the IR.

use uov_isg::RectDomain;

use crate::expr::{AffineExpr, Expr};
use crate::nest::{ArrayDecl, Assign, LoopNest};

fn idx(depth: usize, k: usize, off: i64) -> AffineExpr {
    AffineExpr::index(depth, k) + off
}

/// Figure 1(a): `A[i,j] = f(A[i-1,j], A[i,j-1], A[i-1,j-1])` over the
/// `n × m` grid, with `f` a fixed convex combination (so values stay
/// bounded and runs are deterministic).
///
/// # Panics
///
/// Panics if `n < 1` or `m < 1`.
pub fn fig1_nest(n: i64, m: i64) -> LoopNest {
    let d = 2;
    let f = Expr::add(
        Expr::mul(
            Expr::Const(0.5),
            Expr::read(0, vec![idx(d, 0, -1), idx(d, 1, 0)]),
        ),
        Expr::add(
            Expr::mul(
                Expr::Const(0.3),
                Expr::read(0, vec![idx(d, 0, 0), idx(d, 1, -1)]),
            ),
            Expr::mul(
                Expr::Const(0.2),
                Expr::read(0, vec![idx(d, 0, -1), idx(d, 1, -1)]),
            ),
        ),
    );
    LoopNest::new(
        RectDomain::grid(n, m),
        vec![ArrayDecl {
            name: "A".into(),
            rank: 2,
        }],
        vec![Assign {
            array: 0,
            subscript: vec![idx(d, 0, 0), idx(d, 1, 0)],
            rhs: f,
        }],
    )
    .unwrap_or_else(|e| panic!("fig1 nest is well-formed: {e}"))
}

/// The §5 5-point stencil: `A[t,x] = Σ w_k · A[t-1, x+k]` for
/// `k ∈ {-2,…,2}`, over `t ∈ 1..=T`, `x ∈ 0..=L-1` (reads at `x±2` touch
/// the imported halo).
///
/// # Panics
///
/// Panics if `t_steps < 1` or `len < 1`.
pub fn stencil5_nest(t_steps: i64, len: i64) -> LoopNest {
    let d = 2;
    let weights = [0.1, 0.2, 0.4, 0.2, 0.1];
    let mut rhs = Expr::Const(0.0);
    for (k, w) in (-2i64..=2).zip(weights) {
        rhs = Expr::add(
            rhs,
            Expr::mul(
                Expr::Const(w),
                Expr::read(0, vec![idx(d, 0, -1), idx(d, 1, k)]),
            ),
        );
    }
    LoopNest::new(
        RectDomain::new(
            uov_isg::IVec::from([1, 0]),
            uov_isg::IVec::from([t_steps, len - 1]),
        ),
        vec![ArrayDecl {
            name: "A".into(),
            rank: 2,
        }],
        vec![Assign {
            array: 0,
            subscript: vec![idx(d, 0, 0), idx(d, 1, 0)],
            rhs,
        }],
    )
    .unwrap_or_else(|e| panic!("stencil5 nest is well-formed: {e}"))
}

/// A deep-time 1-D stencil: `A[t,x] = Σ_{k=1..8} w_k · A[t-k, x]` over
/// `t ∈ 1..=T`, `x ∈ 0..=L-1` (reads below `t = 1` touch the imported
/// halo). All eight flow dependences are collinear `(k, 0)` vectors, so
/// the UOV is `(8, 0)` and rectangular tiling is already legal — but the
/// *storage* cost of schedule independence is eight live rows, which makes
/// this the zoo's bandwidth-bound kernel: an untiled sweep re-streams the
/// whole `8·L`-cell mapped buffer every time step, while a time-tiled band
/// keeps its window resident across the tile's rows.
///
/// # Panics
///
/// Panics if `t_steps < 1` or `len < 1`.
pub fn deep8_nest(t_steps: i64, len: i64) -> LoopNest {
    let d = 2;
    let mut rhs = Expr::Const(0.0);
    for k in 1i64..=8 {
        rhs = Expr::add(
            rhs,
            Expr::mul(
                Expr::Const(0.125),
                Expr::read(0, vec![idx(d, 0, -k), idx(d, 1, 0)]),
            ),
        );
    }
    LoopNest::new(
        RectDomain::new(
            uov_isg::IVec::from([1, 0]),
            uov_isg::IVec::from([t_steps, len - 1]),
        ),
        vec![ArrayDecl {
            name: "A".into(),
            rank: 2,
        }],
        vec![Assign {
            array: 0,
            subscript: vec![idx(d, 0, 0), idx(d, 1, 0)],
            rhs,
        }],
    )
    .unwrap_or_else(|e| panic!("deep8 nest is well-formed: {e}"))
}

/// Protein string matching as IR: a linear-gap local-alignment score `H`
/// plus a vertical-gap helper `E` — two assignments whose temporaries get
/// *disjoint* OV-mapped storage (paper §3, first paragraph).
///
/// The full affine-gap kernel (with the 23×23 weight table) lives in
/// `uov-kernels`; this IR version exists for the analyses and for
/// semantics-preservation tests, so its "weights" are a deterministic
/// function of the iteration point.
///
/// # Panics
///
/// Panics if `n1 < 1` or `n0 < 1`.
pub fn psm_nest(n1: i64, n0: i64) -> LoopNest {
    let d = 2;
    // Pseudo-weight w(i,j) = 0.25·i − 0.125·j (stands in for W[s1[i]][s0[j]]).
    let w = Expr::sub(
        Expr::mul(Expr::Const(0.25), Expr::Index(0)),
        Expr::mul(Expr::Const(0.125), Expr::Index(1)),
    );
    let h = Assign {
        array: 0,
        subscript: vec![idx(d, 0, 0), idx(d, 1, 0)],
        rhs: Expr::max(
            Expr::add(Expr::read(0, vec![idx(d, 0, -1), idx(d, 1, -1)]), w),
            Expr::max(
                Expr::sub(
                    Expr::read(0, vec![idx(d, 0, -1), idx(d, 1, 0)]),
                    Expr::Const(1.0),
                ),
                Expr::sub(
                    Expr::read(0, vec![idx(d, 0, 0), idx(d, 1, -1)]),
                    Expr::Const(1.0),
                ),
            ),
        ),
    };
    let e = Assign {
        array: 1,
        subscript: vec![idx(d, 0, 0), idx(d, 1, 0)],
        rhs: Expr::max(
            Expr::sub(
                Expr::read(1, vec![idx(d, 0, -1), idx(d, 1, 0)]),
                Expr::Const(0.5),
            ),
            Expr::read(0, vec![idx(d, 0, -1), idx(d, 1, 0)]),
        ),
    };
    LoopNest::new(
        RectDomain::grid(n1, n0),
        vec![
            ArrayDecl {
                name: "H".into(),
                rank: 2,
            },
            ArrayDecl {
                name: "E".into(),
                rank: 2,
            },
        ],
        vec![h, e],
    )
    .unwrap_or_else(|e| panic!("psm nest is well-formed: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nests_build() {
        assert_eq!(fig1_nest(3, 3).stmts().len(), 1);
        assert_eq!(stencil5_nest(4, 16).depth(), 2);
        assert_eq!(psm_nest(3, 4).arrays().len(), 2);
        assert_eq!(deep8_nest(10, 16).stmts().len(), 1);
    }
}
