//! The PR-10 experiment: the event-driven service core under heavy
//! traffic, and the `BENCH_pr10.json` artifact.
//!
//! Three figures, all against one live server per scenario:
//!
//! 1. **Connection scaling** — closed-loop throughput as the number of
//!    concurrent connections grows; the readiness loop must hold
//!    throughput roughly flat per connection instead of degrading with
//!    thread-per-connection overheads.
//! 2. **Batch amortization** — the same entry stream as singleton
//!    `REQ_PLAN` frames vs `REQ_BATCH` frames of 16: per-entry wire
//!    latency must drop when framing is amortized.
//! 3. **Hog isolation** — an open-loop compliant tenant with and
//!    without a 10×-quota hog tenant alongside: compliant availability
//!    must stay 1.0, and its p50/p99 shift is the cost of sharing.
//!
//! The artifact carries `"scale"`/`"build"` markers like every
//! `BENCH_*.json` before it and is only written at full scale, so
//! quick/debug runs can never clobber a full/release measurement.

use std::collections::HashMap;
use std::time::Instant;

use uov_isg::{ivec, Stencil};
use uov_service::{
    run_loadgen, run_open_loop, serve, BatchRequest, Client, LoadGenConfig, ObjectiveSpec,
    OpenLoopConfig, PlanRequest, QuotaConfig, ServerConfig, ServerHandle, TenantQuota,
};

use crate::report::Table;
use crate::Scale;

use super::perf::build_marker;

const HOG: u32 = 9;

/// Run the overload experiment and (at full scale) write
/// `BENCH_pr10.json`.
pub fn all(scale: Scale) -> Vec<Table> {
    let conn = connection_scaling(scale);
    let batch = batch_amortization(scale);
    let hog = hog_isolation(scale);

    let mut t = Table::new(
        "overload — BENCH_pr10.json",
        vec!["path".into(), "ok".into()],
    );
    match scale {
        // Quick runs (the test suite, smoke passes) must never clobber
        // the committed artifact with reduced-scale figures.
        Scale::Quick => t.push(vec!["(skipped at quick scale)".into(), "true".into()]),
        Scale::Full => {
            let json = render_json(&conn, &batch, &hog);
            let path = bench_json_path("BENCH_pr10.json");
            match std::fs::write(&path, &json) {
                Ok(()) => t.push(vec![path.display().to_string(), "true".into()]),
                Err(e) => t.push(vec![path.display().to_string(), format!("error: {e}")]),
            }
        }
    }
    vec![conn.table, batch.table, hog.table, t]
}

/// `BENCH_pr*.json` artifacts live at the repository root, next to
/// EXPERIMENTS.md.
fn bench_json_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(name)
}

fn overload_server(quotas: Option<QuotaConfig>) -> Result<ServerHandle, String> {
    serve(
        "127.0.0.1:0",
        ServerConfig {
            workers: 4,
            queue_depth: 256,
            degrade_watermark: 64,
            quotas,
            ..ServerConfig::default()
        },
    )
    .map_err(|e| e.to_string())
}

fn failed(title: &str, e: String) -> Table {
    let mut t = Table::new(format!("{title} — failed"), vec!["error".into()]);
    t.push(vec![e]);
    t
}

struct ConnFigures {
    /// `(connections, completed, throughput_rps, p50_us, p99_us)` rows.
    points: Vec<(usize, u64, f64, u64, u64)>,
    table: Table,
}

/// Closed-loop throughput as connections grow: every connection is one
/// registered socket in the readiness loop, never a dedicated thread.
fn connection_scaling(scale: Scale) -> ConnFigures {
    let (counts, per_client): (Vec<usize>, usize) = match scale {
        Scale::Quick => (vec![2, 8], 20),
        Scale::Full => (vec![4, 16, 64, 128], 100),
    };
    let mut table = Table::new(
        "overload — connection scaling (closed loop, warm cache)",
        vec![
            "connections".into(),
            "completed".into(),
            "errors".into(),
            "throughput (req/s)".into(),
            "p50 (µs)".into(),
            "p99 (µs)".into(),
        ],
    );
    let mut points = Vec::new();
    let server = match overload_server(None) {
        Ok(s) => s,
        Err(e) => {
            return ConnFigures {
                points,
                table: failed("overload — connection scaling", e),
            }
        }
    };
    let endpoint = server.endpoint().to_string();
    for &clients in &counts {
        let cfg = LoadGenConfig {
            clients,
            requests_per_client: per_client,
            distinct_stencils: 8,
            permute: true,
            ..LoadGenConfig::default()
        };
        match run_loadgen(&endpoint, &cfg) {
            Ok(r) => {
                table.push(vec![
                    format!("{clients}"),
                    format!("{}", r.completed),
                    format!("{}", r.errors),
                    format!("{:.1}", r.throughput_rps),
                    format!("{}", r.p50_us),
                    format!("{}", r.p99_us),
                ]);
                points.push((clients, r.completed, r.throughput_rps, r.p50_us, r.p99_us));
            }
            Err(e) => table.push(vec![
                format!("{clients}"),
                e.to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]),
        }
    }
    server.shutdown();
    server.join();
    ConnFigures { points, table }
}

struct BatchFigures {
    entries: u64,
    singleton_us_per_entry: f64,
    batch_us_per_entry: f64,
    amortization: f64,
    table: Table,
}

/// The same warmed entry stream as singletons vs 16-entry batches: the
/// per-entry round-trip cost must drop when framing is amortized.
fn batch_amortization(scale: Scale) -> BatchFigures {
    let entries: usize = match scale {
        Scale::Quick => 64,
        Scale::Full => 2048,
    };
    let batch_size = 16usize;
    let mut table = Table::new(
        "overload — batch amortization (warm cache)",
        vec![
            "mode".into(),
            "entries".into(),
            "frames".into(),
            "elapsed (ms)".into(),
            "per-entry (µs)".into(),
        ],
    );
    let empty = BatchFigures {
        entries: entries as u64,
        singleton_us_per_entry: 0.0,
        batch_us_per_entry: 0.0,
        amortization: 0.0,
        table: Table::new(
            "overload — batch amortization — failed",
            vec!["error".into()],
        ),
    };
    let server = match overload_server(None) {
        Ok(s) => s,
        Err(e) => {
            return BatchFigures {
                table: failed("overload — batch amortization", e),
                ..empty
            }
        }
    };
    let stencil = Stencil::new(vec![ivec![1, 0], ivec![0, 1], ivec![1, 1]]).expect("valid");
    let req = PlanRequest {
        stencil,
        objective: ObjectiveSpec::ShortestVector,
        deadline_ms: 0,
        flags: 0,
    };
    let run = || -> Result<(f64, f64), String> {
        let mut client = Client::connect(server.endpoint()).map_err(|e| e.to_string())?;
        // Warm the cache so both modes measure wire cost, not search.
        client.plan(&req).map_err(|e| e.to_string())?;
        let t0 = Instant::now();
        for _ in 0..entries {
            client.plan(&req).map_err(|e| e.to_string())?;
        }
        let singleton = t0.elapsed();
        let t1 = Instant::now();
        for _ in 0..entries / batch_size {
            let b = BatchRequest {
                entries: vec![req.clone(); batch_size],
            };
            let resp = client.plan_batch(&b).map_err(|e| e.to_string())?;
            if resp.entries.iter().any(|e| e.is_err()) {
                return Err("batch entry failed".into());
            }
        }
        let batched = t1.elapsed();
        Ok((
            singleton.as_secs_f64() * 1e6 / entries as f64,
            batched.as_secs_f64() * 1e6 / entries as f64,
        ))
    };
    let out = run();
    server.shutdown();
    server.join();
    match out {
        Ok((singleton_us, batch_us)) => {
            table.push(vec![
                "singleton REQ_PLAN".into(),
                format!("{entries}"),
                format!("{entries}"),
                format!("{:.1}", singleton_us * entries as f64 / 1e3),
                format!("{singleton_us:.2}"),
            ]);
            table.push(vec![
                format!("REQ_BATCH × {batch_size}"),
                format!("{entries}"),
                format!("{}", entries / batch_size),
                format!("{:.1}", batch_us * entries as f64 / 1e3),
                format!("{batch_us:.2}"),
            ]);
            BatchFigures {
                entries: entries as u64,
                singleton_us_per_entry: singleton_us,
                batch_us_per_entry: batch_us,
                amortization: if batch_us > 0.0 {
                    singleton_us / batch_us
                } else {
                    0.0
                },
                table,
            }
        }
        Err(e) => BatchFigures {
            table: failed("overload — batch amortization", e),
            ..empty
        },
    }
}

struct HogFigures {
    baseline_p50_us: u64,
    baseline_p99_us: u64,
    hogged_p50_us: u64,
    hogged_p99_us: u64,
    compliant_availability: f64,
    hog_availability: f64,
    hog_shed: u64,
    table: Table,
}

/// Open-loop compliant tenants with and without a hog offering 10× its
/// quota: availability must hold at 1.0 and the latency shift is the
/// whole cost of sharing the server.
fn hog_isolation(scale: Scale) -> HogFigures {
    let (rps, duration_ms): (u64, u64) = match scale {
        Scale::Quick => (20, 800),
        Scale::Full => (50, 4000),
    };
    let mut table = Table::new(
        "overload — compliant tenant with/without a 10×-quota hog (open loop)",
        vec![
            "scenario".into(),
            "tenant".into(),
            "offered".into(),
            "completed".into(),
            "shed".into(),
            "availability".into(),
            "p50 (µs)".into(),
            "p99 (µs)".into(),
        ],
    );
    let empty = HogFigures {
        baseline_p50_us: 0,
        baseline_p99_us: 0,
        hogged_p50_us: 0,
        hogged_p99_us: 0,
        compliant_availability: 0.0,
        hog_availability: 0.0,
        hog_shed: 0,
        table: Table::new("overload — hog isolation — failed", vec!["error".into()]),
    };
    // The hog's quota admits ~1/10 of its offered rate; compliant
    // tenants keep the generous default.
    let mut tenants = HashMap::new();
    tenants.insert(
        HOG,
        TenantQuota {
            tokens_per_sec: rps,
            burst: rps / 2 + 1,
            max_inflight: 8,
            weight: 1,
        },
    );
    let quotas = QuotaConfig {
        default: TenantQuota::default(),
        tenants,
    };
    let base_cfg = OpenLoopConfig {
        arrival_rps: rps,
        duration_ms,
        tenants: 2,
        hog_tenant: None,
        hog_multiplier: 10,
        distinct_stencils: 8,
        deadline_ms: 0,
        batch: 1,
        conns_per_tenant: 2,
        ..OpenLoopConfig::default()
    };
    let scenario = |hog: Option<u32>| -> Result<uov_service::OpenLoopReport, String> {
        let server = overload_server(Some(quotas.clone()))?;
        let cfg = OpenLoopConfig {
            hog_tenant: hog,
            ..base_cfg.clone()
        };
        let out = run_open_loop(server.endpoint(), &cfg).map_err(|e| e.to_string());
        server.shutdown();
        server.join();
        out
    };
    let baseline = match scenario(None) {
        Ok(r) => r,
        Err(e) => {
            return HogFigures {
                table: failed("overload — hog isolation", e),
                ..empty
            }
        }
    };
    let hogged = match scenario(Some(HOG)) {
        Ok(r) => r,
        Err(e) => {
            return HogFigures {
                table: failed("overload — hog isolation", e),
                ..empty
            }
        }
    };
    for (name, report) in [("no hog", &baseline), ("with 10× hog", &hogged)] {
        for t in &report.tenants {
            table.push(vec![
                name.into(),
                format!("{}", t.tenant),
                format!("{}", t.offered),
                format!("{}", t.completed),
                format!("{}", t.shed),
                format!("{:.4}", t.availability()),
                format!("{}", t.p50_us),
                format!("{}", t.p99_us),
            ]);
        }
    }
    let worst = |r: &uov_service::OpenLoopReport, pick: fn(&uov_service::TenantLoad) -> u64| {
        r.tenants
            .iter()
            .filter(|t| t.tenant != HOG)
            .map(pick)
            .max()
            .unwrap_or(0)
    };
    HogFigures {
        baseline_p50_us: worst(&baseline, |t| t.p50_us),
        baseline_p99_us: worst(&baseline, |t| t.p99_us),
        hogged_p50_us: worst(&hogged, |t| t.p50_us),
        hogged_p99_us: worst(&hogged, |t| t.p99_us),
        compliant_availability: hogged.compliant_availability(Some(HOG)),
        hog_availability: hogged.tenant(HOG).map_or(0.0, |t| t.availability()),
        hog_shed: hogged.tenant(HOG).map_or(0, |t| t.shed),
        table,
    }
}

/// Hand-rolled JSON with a fixed key order, like every `BENCH_pr*.json`
/// before it. Carries no `nodes_per_sec` figure — it measures the
/// service layer, not the search engine — so the `bench-check` gate
/// reports it without scoring it.
fn render_json(conn: &ConnFigures, batch: &BatchFigures, hog: &HogFigures) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"uov-bench-pr10-v1\",\n");
    s.push_str("  \"scale\": \"full\",\n");
    s.push_str(&format!("  \"build\": \"{}\",\n", build_marker()));
    s.push_str("  \"connection_scaling\": [\n");
    for (i, (clients, completed, rps, p50, p99)) in conn.points.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"connections\": {clients}, \"completed\": {completed}, \"throughput_rps\": {rps:.1}, \"p50_us\": {p50}, \"p99_us\": {p99}}}{}\n",
            if i + 1 < conn.points.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"batch\": {\n");
    s.push_str(&format!("    \"entries\": {},\n", batch.entries));
    s.push_str(&format!(
        "    \"singleton_us_per_entry\": {:.2},\n",
        batch.singleton_us_per_entry
    ));
    s.push_str(&format!(
        "    \"batch_us_per_entry\": {:.2},\n",
        batch.batch_us_per_entry
    ));
    s.push_str(&format!(
        "    \"amortization\": {:.3}\n",
        batch.amortization
    ));
    s.push_str("  },\n");
    s.push_str("  \"hog_isolation\": {\n");
    s.push_str(&format!(
        "    \"baseline_p50_us\": {},\n",
        hog.baseline_p50_us
    ));
    s.push_str(&format!(
        "    \"baseline_p99_us\": {},\n",
        hog.baseline_p99_us
    ));
    s.push_str(&format!("    \"hogged_p50_us\": {},\n", hog.hogged_p50_us));
    s.push_str(&format!("    \"hogged_p99_us\": {},\n", hog.hogged_p99_us));
    s.push_str(&format!(
        "    \"compliant_availability\": {:.4},\n",
        hog.compliant_availability
    ));
    s.push_str(&format!(
        "    \"hog_availability\": {:.4},\n",
        hog.hog_availability
    ));
    s.push_str(&format!("    \"hog_shed\": {}\n", hog.hog_shed));
    s.push_str("  }\n");
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The JSON renderer emits the fixed schema keys in order with the
    /// required scale/build markers.
    #[test]
    fn rendered_json_carries_schema_and_markers() {
        let conn = ConnFigures {
            points: vec![(2, 10, 100.0, 50, 90)],
            table: Table::new("t", vec!["c".into()]),
        };
        let batch = BatchFigures {
            entries: 64,
            singleton_us_per_entry: 10.0,
            batch_us_per_entry: 5.0,
            amortization: 2.0,
            table: Table::new("t", vec!["c".into()]),
        };
        let hog = HogFigures {
            baseline_p50_us: 1,
            baseline_p99_us: 2,
            hogged_p50_us: 3,
            hogged_p99_us: 4,
            compliant_availability: 1.0,
            hog_availability: 0.1,
            hog_shed: 100,
            table: Table::new("t", vec!["c".into()]),
        };
        let json = render_json(&conn, &batch, &hog);
        assert!(json.contains("\"schema\": \"uov-bench-pr10-v1\""));
        assert!(json.contains("\"scale\": \"full\""));
        assert!(json.contains("\"build\""));
        assert!(json.contains("\"compliant_availability\": 1.0000"));
        assert!(json.contains("\"amortization\": 2.000"));
    }
}
