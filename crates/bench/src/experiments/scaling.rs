//! Scaling experiments (Figures 9–14): cycles per iteration as problem
//! sizes sweep from cache-resident to out-of-memory, for every storage
//! variant, on all three machine models.

use uov_kernels::{psm, stencil5};
use uov_memsim::{machines, Machine};

use crate::experiments::overhead::{psm_cpi, stencil5_cpi};
use crate::report::{fmt_f64, Table};
use crate::Scale;

fn machine(idx: usize) -> Machine {
    match idx {
        0 => machines::pentium_pro(),
        1 => machines::ultra_2(),
        2 => machines::alpha_21164(),
        _ => panic!("machine index must be 0..3"),
    }
}

/// Time steps for the stencil sweeps: enough for reuse to matter, small
/// enough that natural storage (`T·L`) stays hostable.
const STENCIL_T: usize = 4;

/// Array lengths swept by Figures 9–11.
///
/// At the top of the full sweep the paper's fall-out-of-memory *order*
/// appears: natural (`T·L`) dies first (4 M), OV-mapped (`2L`) next
/// (16 M), storage-optimized (`L`) last — "OV-mapped codes fall out of
/// memory at smaller problem sizes than storage mapped codes, but at much
/// larger problem sizes than natural codes" (§5.2).
pub fn stencil5_lengths(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Quick => vec![1_000, 10_000, 100_000],
        // 4 M floats ⇒ natural storage 4·4M·4 B = 64 MB: past the Pentium
        // Pro's memory, at the Ultra 2's limit. 16 M ⇒ OV storage 128 MB:
        // past every machine's memory.
        Scale::Full => vec![1_000, 10_000, 100_000, 1_000_000, 4_000_000, 16_000_000],
    }
}

/// The natural variants allocate `T·L` floats; past this length they no
/// longer fit the *host*, mirroring the paper's curves that simply end
/// when a version stops being runnable.
const NATURAL_MAX_LEN: usize = 4_000_000;

/// Figures 9 (Pentium Pro), 10 (Ultra 2), 11 (Alpha): the 5-point stencil,
/// seven series over a length sweep.
pub fn stencil5_scaling(machine_idx: usize, scale: Scale) -> Table {
    let lengths = stencil5_lengths(scale);
    let name = machine(machine_idx).name().to_string();
    let fig = 9 + machine_idx;
    let mut t = Table::new(
        format!("Figure {fig} — 5-pt stencil on the {name}, cycles/iter (T={STENCIL_T})"),
        std::iter::once("version".to_string())
            .chain(lengths.iter().map(|l| format!("L={l}")))
            .collect(),
    );
    for v in stencil5::Variant::all() {
        let mut row = vec![v.label().to_string()];
        // The lengths of one series are independent simulations: fan them
        // out across the host cores (order-preserving, so the table is
        // identical to the sequential sweep).
        row.extend(crate::par_map(&lengths, crate::sweep_threads(), |&len| {
            let natural = matches!(
                v,
                stencil5::Variant::Natural | stencil5::Variant::NaturalTiled
            );
            if natural && len > NATURAL_MAX_LEN {
                "oom".to_string()
            } else {
                fmt_f64(stencil5_cpi(machine(machine_idx), v, len, STENCIL_T, None))
            }
        }));
        t.push(row);
    }
    t
}

/// String lengths swept by Figures 12–14 (`problem size = n²` in the
/// paper's axis terms).
pub fn psm_lengths(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Quick => vec![32, 100, 316],
        // n = 5000 ⇒ natural H 100 MB: past the Pentium Pro's and the
        // Alpha's memory.
        Scale::Full => vec![100, 316, 1_000, 2_000, 5_000],
    }
}

/// Figures 12 (Pentium Pro), 13 (Ultra 2), 14 (Alpha): protein string
/// matching, five series over a size sweep.
pub fn psm_scaling(machine_idx: usize, scale: Scale) -> Table {
    let lengths = psm_lengths(scale);
    let name = machine(machine_idx).name().to_string();
    let fig = 12 + machine_idx;
    let mut t = Table::new(
        format!("Figure {fig} — protein string matching on the {name}, cycles/iter"),
        std::iter::once("version".to_string())
            .chain(lengths.iter().map(|n| format!("n={n}")))
            .collect(),
    );
    for v in psm::Variant::all() {
        let mut row = vec![v.label().to_string()];
        row.extend(crate::par_map(&lengths, crate::sweep_threads(), |&n| {
            fmt_f64(psm_cpi(machine(machine_idx), v, n, n, None))
        }));
        t.push(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(t: &Table, label: &str, col: usize) -> f64 {
        t.rows()
            .iter()
            .find(|r| r[0] == label)
            .unwrap_or_else(|| panic!("no series {label}"))[col]
            .parse()
            .unwrap()
    }

    #[test]
    fn stencil5_quick_shapes() {
        // Quick sweep on the Pentium Pro model: at L = 100k (larger than
        // L2) the tiled OV versions must beat the untiled natural version,
        // and storage-optimized (untileable) must beat untiled natural.
        let t = stencil5_scaling(0, Scale::Quick);
        let last = 3; // L = 100,000
        let nat = col(&t, "Natural", last);
        let ov_tiled = col(&t, "OV-Mapped Tiled", last);
        let opt = col(&t, "Storage Optimized", last);
        assert!(
            ov_tiled < nat,
            "tiled OV ({ov_tiled}) must beat natural ({nat})"
        );
        assert!(
            opt < nat,
            "storage-optimized ({opt}) must beat natural ({nat})"
        );
    }

    #[test]
    fn psm_quick_shapes() {
        // At n = 316 (H ≈ 400 KB, larger than the PPro L2) OV-mapped must
        // beat natural on the Pentium Pro.
        let t = psm_scaling(0, Scale::Quick);
        let last = 3;
        let nat = col(&t, "Natural", last);
        let ov = col(&t, "OV-Mapped", last);
        assert!(ov < nat, "OV ({ov}) must beat natural ({nat}) out of cache");
    }

    #[test]
    fn psm_branch_plateau_on_ultra2() {
        // The Ultra 2's branch cost dominates: tiling must change PSM
        // cycles per iteration by only a small factor (the paper's §5.2
        // observation), in contrast to the Pentium Pro.
        let t = psm_scaling(1, Scale::Quick);
        let last = 3;
        let nat = col(&t, "Natural", last);
        let nat_tiled = col(&t, "Natural Tiled", last);
        let ratio = nat / nat_tiled;
        assert!(
            (0.5..2.0).contains(&ratio),
            "tiling should not change Ultra 2 PSM by more than 2x (ratio {ratio})"
        );
    }
}
