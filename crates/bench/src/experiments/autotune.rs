//! The PR-9 experiment: generated-code autotuning and the
//! `BENCH_pr9.json` artifact.
//!
//! Runs the `uov-codegen` tile-size autotuner on the deep8 zoo kernel
//! with its UOV `(8,0)` mapping: every `(t0, t1)` candidate is ranked on
//! the scaled-down memsim proxy, the top K are compiled (`rustc`,
//! out-of-process, hard timeouts) and wall-clock timed against the
//! *untiled UOV-mapped* baseline — the paper's §5 claim, on real silicon,
//! from generated source.
//!
//! deep8 is the zoo's bandwidth-bound entry: schedule independence costs
//! eight live rows, so at [`Scale::Full`] the mapped buffer (`8·L`
//! doubles, ~256 MB) far exceeds the last-level cache and the untiled
//! sweep re-streams all of it every time step, while a time-tiled band
//! keeps its window resident across the tile's rows — which is where
//! tiling's wall-clock win comes from. The
//! artifact carries `"scale"`/`"build"` markers like every `BENCH_*.json`
//! before it and is only written at full scale, so quick/debug runs can
//! never clobber a full/release measurement; `bench-check` additionally
//! fails any artifact that reports a `tiled_speedup` from a non-full,
//! non-release run.

use uov_codegen::{autotune, AutotuneConfig, AutotuneReport, CandidateStatus};
use uov_kernels::zoo;
use uov_storage::{Layout, OvMap};

use crate::report::Table;
use crate::Scale;

use super::perf::build_marker;

/// Run the autotune experiment and (at full scale, in release builds)
/// write `BENCH_pr9.json`.
pub fn all(scale: Scale) -> Vec<Table> {
    let (entry, cfg) = match scale {
        // Quick: a few thousand points, unoptimised candidate builds —
        // exercises the whole ladder in seconds.
        Scale::Quick => (
            zoo::deep8(6, 2048),
            AutotuneConfig {
                tiles0: vec![2, 4],
                tiles1: vec![64, 256],
                top_k: 2,
                seed: 42,
                reps: 1,
                optimize: false,
                ..AutotuneConfig::default()
            },
        ),
        // Full: T=32 time steps over L=2^22 elements. The UOV (8,0)
        // mapped buffer is 8·L doubles (~256 MB) — far beyond any LLC —
        // so the untiled baseline re-streams it 32 times while a tiled
        // band's window stays cache-resident across the band's rows.
        Scale::Full => (
            zoo::deep8(32, 1 << 22),
            AutotuneConfig {
                tiles0: vec![8, 16, 32],
                tiles1: vec![1 << 11, 1 << 13, 1 << 15],
                top_k: 3,
                seed: 42,
                reps: 3,
                optimize: true,
                ..AutotuneConfig::default()
            },
        ),
    };
    let maps = entry.maps(Layout::Interleaved);
    let map_refs: Vec<Option<&OvMap>> = maps.iter().map(|m| m.as_ref()).collect();

    let report = match autotune(entry.name, &entry.nest, &map_refs, entry.skew_f, &cfg) {
        Ok(r) => r,
        Err(e) => {
            let mut t = Table::new("autotune — failed", vec!["error".into()]);
            t.push(vec![e.to_string()]);
            return vec![t];
        }
    };

    let mut cand = Table::new(
        format!(
            "autotune — {} (skew f={}, seed {}), memsim rank order",
            report.kernel, report.skew_f, report.seed
        ),
        vec![
            "tile (u×v)".into(),
            "memsim cycles (proxy)".into(),
            "wall-clock ns".into(),
            "status".into(),
        ],
    );
    for c in &report.candidates {
        cand.push(vec![
            format!("{}x{}", c.tile[0], c.tile[1]),
            format!("{}", c.memsim_cycles),
            c.wall_ns.map_or("-".into(), |ns| format!("{ns}")),
            status_label(&c.status),
        ]);
    }

    let mut summary = Table::new(
        "autotune — tiled vs untiled UOV-mapped (generated, compiled code)",
        vec![
            "baseline (untiled) ns".into(),
            "best tile".into(),
            "best ns".into(),
            "speedup".into(),
        ],
    );
    match (report.baseline_wall_ns, report.best, report.best_speedup()) {
        (Some(base), Some(bi), Some(s)) => {
            let b = &report.candidates[bi];
            summary.push(vec![
                format!("{base}"),
                format!("{}x{}", b.tile[0], b.tile[1]),
                b.wall_ns.map_or("-".into(), |ns| format!("{ns}")),
                format!("{s:.2}x"),
            ]);
        }
        _ => summary.push(vec![
            report
                .degraded
                .as_ref()
                .map_or("unavailable".into(), |d| format!("degraded: {d:?}")),
            "-".into(),
            "-".into(),
            "- (memsim ranking only)".into(),
        ]),
    }

    let mut wrote = Table::new(
        "autotune — BENCH_pr9.json",
        vec!["path".into(), "ok".into()],
    );
    match scale {
        // Quick runs must never clobber the committed full-scale artifact.
        Scale::Quick => wrote.push(vec!["(skipped at quick scale)".into(), "true".into()]),
        Scale::Full => {
            let json = render_json(&report);
            let path = super::perf::repo_root_dir().join("BENCH_pr9.json");
            match std::fs::write(&path, &json) {
                Ok(()) => wrote.push(vec![path.display().to_string(), "true".into()]),
                Err(e) => wrote.push(vec![path.display().to_string(), format!("error: {e}")]),
            }
        }
    }

    vec![cand, summary, wrote]
}

fn status_label(s: &CandidateStatus) -> String {
    match s {
        CandidateStatus::Ranked => "ranked".into(),
        CandidateStatus::Timed => "timed".into(),
        CandidateStatus::CompileFailed(why) => format!("compile failed: {why}"),
        CandidateStatus::RunFailed(why) => format!("run failed: {why}"),
        CandidateStatus::TimedOut => "timed out".into(),
    }
}

/// Hand-rolled JSON with a fixed key order, like every `BENCH_*.json`
/// before it. The `"scale"`/`"build"` markers come first so the
/// `bench-check` classifier reads them without a JSON parser.
fn render_json(report: &AutotuneReport) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"pr\": 9,\n");
    s.push_str("  \"experiment\": \"autotune\",\n");
    s.push_str("  \"scale\": \"full\",\n");
    s.push_str(&format!("  \"build\": \"{}\",\n", build_marker()));
    s.push_str(&format!("  \"kernel\": \"{}\",\n", report.kernel));
    s.push_str(&format!("  \"seed\": {},\n", report.seed));
    s.push_str(&format!("  \"skew_f\": {},\n", report.skew_f));
    if let Some(base) = report.baseline_wall_ns {
        s.push_str(&format!("  \"baseline_wall_ns\": {base},\n"));
    }
    if let (Some(bi), Some(speedup)) = (report.best, report.best_speedup()) {
        let b = &report.candidates[bi];
        s.push_str(&format!(
            "  \"best_tile\": \"{}x{}\",\n",
            b.tile[0], b.tile[1]
        ));
        if let Some(ns) = b.wall_ns {
            s.push_str(&format!("  \"best_wall_ns\": {ns},\n"));
        }
        s.push_str(&format!("  \"tiled_speedup\": {speedup:.4},\n"));
    }
    s.push_str("  \"candidates\": [\n");
    for (i, c) in report.candidates.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"tile\": \"{}x{}\", \"memsim_cycles\": {}, \"wall_ns\": {}, \"status\": \"{}\"}}{}\n",
            c.tile[0],
            c.tile[1],
            c.memsim_cycles,
            c.wall_ns.map_or("null".to_string(), |ns| ns.to_string()),
            status_label(&c.status).replace('"', "'"),
            if i + 1 < report.candidates.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use uov_codegen::CandidateReport;

    #[test]
    fn json_carries_markers_and_speedup() {
        let report = AutotuneReport {
            kernel: "stencil5".into(),
            seed: 42,
            skew_f: 2,
            baseline_wall_ns: Some(3_000),
            candidates: vec![CandidateReport {
                tile: [8, 4096],
                memsim_cycles: 123,
                wall_ns: Some(2_000),
                status: CandidateStatus::Timed,
            }],
            best: Some(0),
            degraded: None,
        };
        let json = render_json(&report);
        assert!(json.contains("\"scale\": \"full\""));
        assert!(json.contains("\"build\": "));
        assert!(json.contains("\"tiled_speedup\": 1.5000"));
        assert!(json.contains("\"best_tile\": \"8x4096\""));
    }

    #[test]
    fn degraded_report_renders_without_speedup() {
        let report = AutotuneReport {
            kernel: "stencil5".into(),
            seed: 42,
            skew_f: 2,
            baseline_wall_ns: None,
            candidates: vec![],
            best: None,
            degraded: None,
        };
        let json = render_json(&report);
        assert!(!json.contains("tiled_speedup"));
        assert!(json.contains("\"candidates\": ["));
    }
}
