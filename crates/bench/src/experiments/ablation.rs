//! Ablation of the branch-and-bound search (paper §3.2): how much work
//! the search does on a zoo of stencils, and what the objective choice
//! (shortest vector vs known bounds) changes.

use std::time::Duration;

use uov_core::budget::{Budget, Exhausted};
use uov_core::search::{exhaustive_best_uov, find_best_uov, Objective, SearchConfig};
use uov_isg::{IVec, Polygon2, RectDomain, Stencil};

use crate::report::Table;
use crate::Scale;

fn zoo() -> Vec<(&'static str, Stencil)> {
    let v = |coords: &[[i64; 2]]| -> Vec<IVec> { coords.iter().map(|&c| IVec::from(c)).collect() };
    vec![
        (
            "fig1 (3-pt)",
            Stencil::new(v(&[[1, 0], [0, 1], [1, 1]])).unwrap(),
        ),
        (
            "5-pt stencil",
            Stencil::new(v(&[[1, -2], [1, -1], [1, 0], [1, 1], [1, 2]])).unwrap(),
        ),
        (
            "fig2 (wedge)",
            Stencil::new(v(&[[1, -1], [1, 0], [1, 1]])).unwrap(),
        ),
        ("skewed pair", Stencil::new(v(&[[2, 1], [1, 3]])).unwrap()),
        (
            "wide fan",
            Stencil::new(v(&[[1, -3], [1, 0], [1, 3]])).unwrap(),
        ),
        (
            "9-pt stencil",
            Stencil::new(v(&[
                [1, -4],
                [1, -3],
                [1, -2],
                [1, -1],
                [1, 0],
                [1, 1],
                [1, 2],
                [1, 3],
                [1, 4],
            ]))
            .unwrap(),
        ),
    ]
}

/// Search statistics per stencil: visits, pushes, prunes, and the found
/// optimum vs exhaustive enumeration.
pub fn search_stats(scale: Scale) -> Table {
    let mut t = Table::new(
        "§3.2 ablation — branch-and-bound search statistics (shortest-vector objective)",
        vec![
            "stencil".into(),
            "|V|".into(),
            "initial Σvᵢ".into(),
            "best UOV".into(),
            "visited".into(),
            "pushed".into(),
            "pruned".into(),
            "matches exhaustive".into(),
        ],
    );
    for (name, s) in zoo() {
        let res = find_best_uov(&s, Objective::ShortestVector, &SearchConfig::default())
            .expect("zoo stencils are in range");
        let verified = if scale == Scale::Full || s.len() <= 5 {
            let radius = i64::try_from(s.sum().max_abs()).expect("zoo stencils are small") + 1;
            exhaustive_best_uov(&s, Objective::ShortestVector, radius)
                .map(|ex| ex.cost == res.cost)
                .unwrap_or(false)
                .to_string()
        } else {
            "(skipped)".to_string()
        };
        t.push(vec![
            name.into(),
            s.len().to_string(),
            s.sum().to_string(),
            res.uov.to_string(),
            res.stats.visited.to_string(),
            res.stats.pushed.to_string(),
            res.stats.pruned.to_string(),
            verified,
        ]);
    }
    t
}

/// Objective comparison: the same stencil optimised for length vs for
/// storage on two domains (the Figure-3 lesson, quantified).
pub fn objective_comparison() -> Table {
    let s = Stencil::new(vec![
        IVec::from([1, -1]),
        IVec::from([1, 0]),
        IVec::from([1, 1]),
        IVec::from([0, 1]),
    ])
    .unwrap();
    let fig3 = Polygon2::fig3_isg();
    let square = RectDomain::grid(10, 10);
    let mut t = Table::new(
        "§3.2 ablation — shortest-vector vs known-bounds objective",
        vec![
            "domain".into(),
            "shortest UOV".into(),
            "its storage".into(),
            "storage-optimal UOV".into(),
            "its storage".into(),
        ],
    );
    let shortest = find_best_uov(&s, Objective::ShortestVector, &SearchConfig::default())
        .expect("fig3 stencil is in range");
    for (name, domain) in [
        (
            "fig3 skewed ISG",
            &fig3 as &(dyn uov_isg::IterationDomain + Sync),
        ),
        (
            "10x10 grid",
            &square as &(dyn uov_isg::IterationDomain + Sync),
        ),
    ] {
        let best = find_best_uov(&s, Objective::KnownBounds(domain), &SearchConfig::default())
            .expect("fig3 stencil is in range");
        let shortest_storage = uov_core::objective::storage_class_count(domain, &shortest.uov);
        t.push(vec![
            name.into(),
            shortest.uov.to_string(),
            shortest_storage.to_string(),
            best.uov.to_string(),
            best.cost.to_string(),
        ]);
    }
    t
}

/// Search-budget truncation: quality of the answer under shrinking
/// `max_visits` (the paper: "take the best answer found so far").
pub fn budget_truncation() -> Table {
    let s = Stencil::new(vec![
        IVec::from([1, -2]),
        IVec::from([1, -1]),
        IVec::from([1, 0]),
        IVec::from([1, 1]),
        IVec::from([1, 2]),
    ])
    .unwrap();
    let mut t = Table::new(
        "§3.2 ablation — answer quality vs search budget (5-pt stencil)",
        vec![
            "max visits".into(),
            "best UOV".into(),
            "cost (len²)".into(),
            "complete".into(),
        ],
    );
    for budget in [1u64, 2, 4, 8, 16, 64, u64::MAX] {
        let res = find_best_uov(
            &s,
            Objective::ShortestVector,
            &SearchConfig {
                max_visits: (budget != u64::MAX).then_some(budget),
                ..SearchConfig::default()
            },
        )
        .expect("5-pt stencil is in range");
        t.push(vec![
            if budget == u64::MAX {
                "∞".into()
            } else {
                budget.to_string()
            },
            res.uov.to_string(),
            res.cost.to_string(),
            res.stats.complete.to_string(),
        ]);
    }
    t
}

/// Graceful-degradation statistics: the zoo under deliberately tiny
/// resource budgets. Every run still yields a legal UOV (at worst the
/// initial `Σvᵢ`); the table records which resource ran out, whether the
/// answer fell back to `Σvᵢ`, and the memo size at truncation.
pub fn degradation_stats() -> Table {
    let mut t = Table::new(
        "§3.2 ablation — graceful degradation under tiny budgets",
        vec![
            "stencil".into(),
            "budget".into(),
            "UOV kept".into(),
            "fallback to Σvᵢ".into(),
            "exhausted by".into(),
            "memo at cutoff".into(),
        ],
    );
    let budgets: Vec<(&str, Budget)> = vec![
        (
            "deadline 0ns",
            Budget::unlimited().with_deadline(Duration::ZERO),
        ),
        ("4 nodes", Budget::unlimited().with_max_nodes(4)),
        ("memo 2", Budget::unlimited().with_max_memo_entries(2)),
    ];
    let mut deadline_hits = 0u64;
    let mut fallbacks = 0u64;
    let mut runs = 0u64;
    for (name, s) in zoo() {
        for (bname, budget) in &budgets {
            let res = find_best_uov(
                &s,
                Objective::ShortestVector,
                &SearchConfig {
                    max_visits: None,
                    budget: budget.clone(),
                    threads: 1,
                    checkpoint: None,
                    bound_hint: None,
                },
            )
            .expect("zoo stencils are in range even under a tiny budget");
            runs += 1;
            let fell_back = res.uov == s.sum();
            fallbacks += u64::from(fell_back);
            let (reason, memo) = match &res.degradation {
                Some(d) => {
                    deadline_hits += u64::from(d.reason == Exhausted::Deadline);
                    (d.reason.to_string(), d.memo_entries_at_stop.to_string())
                }
                None => ("-".into(), "-".into()),
            };
            t.push(vec![
                name.into(),
                (*bname).into(),
                res.uov.to_string(),
                fell_back.to_string(),
                reason,
                memo,
            ]);
        }
    }
    t.push(vec![
        "TOTAL".into(),
        format!("{runs} runs"),
        String::new(),
        format!("{fallbacks} fallbacks"),
        format!("{deadline_hits} deadline hits"),
        String::new(),
    ]);
    t
}

/// All ablation tables.
/// A 13-vector 3-D stencil — the parallel-speedup workload. Big enough
/// (2^13 PATHSETs over a 3-D offset lattice) that the branch-and-bound
/// has real work to distribute.
pub fn stencil_3d() -> Stencil {
    let mut vs = Vec::new();
    for a in -1i64..=1 {
        for b in -1i64..=1 {
            vs.push(IVec::from([1, a, b]));
        }
    }
    for (a, b) in [(-2i64, 0i64), (2, 0), (0, -2), (0, 2)] {
        vs.push(IVec::from([1, a, b]));
    }
    Stencil::new(vs).expect("all vectors lex-positive")
}

/// Thread-count sweep on the 3-D stencil: wall-clock per thread count and
/// the returned `(UOV, cost)` — which must be identical in every row (the
/// determinism guarantee made observable). Speedup is only expected on
/// multi-core hosts; the *consistency* columns hold everywhere.
pub fn parallel_consistency(scale: Scale) -> Table {
    let s = stencil_3d();
    let ncores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut counts = match scale {
        Scale::Quick => vec![1, 2, ncores.max(2)],
        Scale::Full => vec![1, 2, 4, 8, ncores.max(2)],
    };
    counts.sort_unstable();
    counts.dedup();
    let mut t = Table::new(
        "parallel search — thread sweep on the 13-vector 3-D stencil",
        vec![
            "threads".into(),
            "wall ms".into(),
            "UOV".into(),
            "cost".into(),
            "visited".into(),
        ],
    );
    for threads in counts {
        let config = SearchConfig {
            threads,
            ..SearchConfig::default()
        };
        let start = std::time::Instant::now();
        let res =
            find_best_uov(&s, Objective::ShortestVector, &config).expect("3-D stencil is in range");
        let ms = start.elapsed().as_secs_f64() * 1e3;
        t.push(vec![
            threads.to_string(),
            format!("{ms:.2}"),
            res.uov.to_string(),
            res.cost.to_string(),
            res.stats.visited.to_string(),
        ]);
    }
    t
}

/// Every ablation table at the given scale.
pub fn all(scale: Scale) -> Vec<Table> {
    vec![
        search_stats(scale),
        objective_comparison(),
        budget_truncation(),
        degradation_stats(),
        parallel_consistency(scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_always_matches_exhaustive_where_checked() {
        let t = search_stats(Scale::Full);
        for row in t.rows() {
            assert_eq!(row[7], "true", "exhaustive mismatch in {row:?}");
        }
    }

    #[test]
    fn fig3_objective_difference_shows() {
        let t = objective_comparison();
        let fig3_row = &t.rows()[0];
        let shortest_storage: u64 = fig3_row[2].parse().unwrap();
        let best_storage: u64 = fig3_row[4].parse().unwrap();
        assert!(best_storage <= shortest_storage);
    }

    #[test]
    fn degradation_stats_always_keep_a_legal_uov() {
        use uov_core::DoneOracle;
        let t = degradation_stats();
        let zoo_by_name: std::collections::HashMap<_, _> = zoo().into_iter().collect();
        for row in t.rows() {
            if row[0] == "TOTAL" {
                continue;
            }
            let s = &zoo_by_name[row[0].as_str()];
            let uov: IVec = row[2]
                .trim_matches(|c| c == '(' || c == ')')
                .split(", ")
                .map(|c| c.parse::<i64>().unwrap())
                .collect();
            assert!(
                DoneOracle::new(s).is_uov(&uov),
                "degraded answer must stay legal: {row:?}"
            );
        }
        // The zero deadline rows must all report a deadline degradation.
        let total = t.rows().last().unwrap().clone();
        assert!(total[4].starts_with(&zoo().len().to_string()), "{total:?}");
    }

    #[test]
    fn parallel_consistency_rows_agree() {
        let t = parallel_consistency(Scale::Quick);
        let rows = t.rows();
        assert!(rows.len() >= 2, "need at least two thread counts");
        for row in rows {
            assert_eq!(row[2], rows[0][2], "UOV changed with thread count");
            assert_eq!(row[3], rows[0][3], "cost changed with thread count");
        }
    }

    #[test]
    fn budget_is_monotone() {
        let t = budget_truncation();
        let costs: Vec<u128> = t.rows().iter().map(|r| r[2].parse().unwrap()).collect();
        for w in costs.windows(2) {
            assert!(w[1] <= w[0], "more budget must never worsen the answer");
        }
        assert_eq!(*costs.last().unwrap(), 4, "unbounded search finds (2,0)");
    }
}
