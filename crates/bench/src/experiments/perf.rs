//! Performance trajectory: the `BENCH_pr7.json` artifact and the
//! `bench-check` regression gate.
//!
//! The `perf` experiment re-measures the workloads behind the committed
//! `BENCH_pr6.json` baseline — the same search family via the same
//! [`mesh::search_throughput`] code, the same closed-loop service
//! latency — on the current engine, and writes `BENCH_pr7.json` next to
//! the baseline with the speedup computed side-by-side. The JSON is
//! hand-rolled with a fixed key order, like every `BENCH_*.json` before
//! it, so a five-line scanner parses the whole trajectory.
//!
//! `bench-check` is the gate: it walks every `BENCH_pr*.json` at the
//! repository root in PR order and fails (non-zero exit through the
//! `experiments` binary) when search nodes/sec drops more than 20%
//! between *comparable* artifacts. Comparable means the same
//! `(scale, build)` marker class — a quick-scale debug measurement
//! (`BENCH_pr6.json`) must never gate a full-scale release one; each
//! artifact is judged against the newest earlier artifact of its own
//! class, and artifacts that carry no search figure at all (availability
//! artifacts like `BENCH_pr8.json`) are reported but not scored.
//! Committed artifacts make the trajectory reviewable; the gate makes
//! silently regressing it a CI failure instead of a forensic exercise.

use std::path::{Path, PathBuf};

use crate::report::Table;
use crate::Scale;

use super::mesh;

/// Maximum tolerated drop in search nodes/sec between consecutive
/// `BENCH_pr*.json` artifacts: 20%.
const MAX_REGRESSION: f64 = 0.20;

/// The repository root, where every `BENCH_pr*.json` artifact lives.
pub(crate) fn repo_root_dir() -> PathBuf {
    repo_root()
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Run the perf measurements, write `BENCH_pr7.json`, and render the
/// side-by-side comparison against the committed `BENCH_pr6.json`.
pub fn all(scale: Scale) -> Vec<Table> {
    let search = mesh::search_throughput(scale);
    let service = mesh::service_latency(scale);

    let root = repo_root();
    let baseline_path = root.join("BENCH_pr6.json");
    let baseline = std::fs::read_to_string(&baseline_path)
        .ok()
        .and_then(|text| extract_f64(&text, "nodes_per_sec"));

    let mut cmp = Table::new(
        "perf — search nodes/sec vs BENCH_pr6.json baseline",
        vec![
            "baseline nodes/s".into(),
            "current nodes/s".into(),
            "speedup".into(),
        ],
    );
    let speedup = match baseline {
        Some(base) if base > 0.0 => {
            let s = search.nodes_per_sec / base;
            cmp.push(vec![
                format!("{base:.0}"),
                format!("{:.0}", search.nodes_per_sec),
                format!("{s:.2}x"),
            ]);
            s
        }
        _ => {
            cmp.push(vec![
                "unavailable".into(),
                format!("{:.0}", search.nodes_per_sec),
                "-".into(),
            ]);
            0.0
        }
    };

    let mut wrote = Table::new("perf — BENCH_pr7.json", vec!["path".into(), "ok".into()]);
    match scale {
        // Quick runs (the test suite, smoke passes) must never clobber the
        // committed artifact with reduced-scale figures — the bench-check
        // gate compares committed BENCH_pr*.json files across PRs.
        Scale::Quick => wrote.push(vec!["(skipped at quick scale)".into(), "true".into()]),
        Scale::Full => {
            let json = render_json(&search, &service, baseline, speedup);
            let path = root.join("BENCH_pr7.json");
            match std::fs::write(&path, &json) {
                Ok(()) => wrote.push(vec![path.display().to_string(), "true".into()]),
                Err(e) => wrote.push(vec![path.display().to_string(), format!("error: {e}")]),
            }
        }
    }

    vec![search.table, service.table, cmp, wrote]
}

/// The regression gate: compare search nodes/sec across every committed
/// `BENCH_pr*.json`, oldest to newest. Returns the report table and
/// whether the trajectory is within tolerance (the `experiments` binary
/// turns `false` into a non-zero exit).
pub fn bench_check() -> (Table, bool) {
    bench_check_in(&repo_root())
}

/// [`bench_check`] against an explicit artifact directory (testable).
pub fn bench_check_in(root: &Path) -> (Table, bool) {
    let mut t = Table::new(
        "bench-check — nodes/sec trajectory across BENCH_pr*.json",
        vec![
            "artifact".into(),
            "class".into(),
            "nodes/s".into(),
            "vs previous".into(),
            "verdict".into(),
        ],
    );
    let mut artifacts = bench_artifacts(root);
    artifacts.sort_by_key(|(pr, _)| *pr);
    if artifacts.is_empty() {
        t.push(vec![
            "0 artifact(s) found".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            "ok (nothing to compare)".into(),
        ]);
        return (t, true);
    }
    let mut ok = true;
    // Newest rate seen per (scale, build) marker class: like is only
    // ever gated against like.
    let mut prev: std::collections::HashMap<(String, String), (u64, f64)> =
        std::collections::HashMap::new();
    for (pr, path) in artifacts {
        let Ok(text) = std::fs::read_to_string(&path) else {
            t.push(vec![
                format!("BENCH_pr{pr}.json"),
                "-".into(),
                "unreadable".into(),
                "-".into(),
                "FAIL".into(),
            ]);
            ok = false;
            continue;
        };
        let class = artifact_class(&text);
        let class_label = format!("{}/{}", class.0, class.1);
        // Artifacts reporting a generated-code tiled speedup (PR 9's
        // autotune) are only meaningful from full-scale release runs —
        // a quick/debug measurement must fail the gate, not pollute the
        // trajectory.
        if extract_f64(&text, "tiled_speedup").is_some()
            && class != ("full".to_string(), "release".to_string())
        {
            t.push(vec![
                format!("BENCH_pr{pr}.json"),
                class_label.clone(),
                "-".into(),
                "-".into(),
                "FAIL (tiled_speedup from non-full/release run)".into(),
            ]);
            ok = false;
            continue;
        }
        let Some(rate) = extract_f64(&text, "nodes_per_sec") else {
            // Not every artifact measures search throughput (the
            // partition-availability artifact doesn't): report, don't
            // score.
            t.push(vec![
                format!("BENCH_pr{pr}.json"),
                class_label,
                "-".into(),
                "-".into(),
                "ok (no search figure)".into(),
            ]);
            continue;
        };
        let (delta, verdict) = match prev.get(&class) {
            None => ("-".to_string(), "ok (first of its class)".to_string()),
            Some(&(prev_pr, prev_rate)) if prev_rate > 0.0 => {
                let ratio = rate / prev_rate;
                let delta = format!("{:+.1}% vs pr{prev_pr}", (ratio - 1.0) * 100.0);
                if ratio < 1.0 - MAX_REGRESSION {
                    ok = false;
                    (
                        delta,
                        format!("REGRESSION (> {:.0}%)", MAX_REGRESSION * 100.0),
                    )
                } else {
                    (delta, "ok".to_string())
                }
            }
            Some(_) => ("-".to_string(), "ok (previous rate zero)".to_string()),
        };
        t.push(vec![
            format!("BENCH_pr{pr}.json"),
            class_label,
            format!("{rate:.0}"),
            delta,
            verdict,
        ]);
        prev.insert(class, (pr, rate));
    }
    (t, ok)
}

/// The artifact's comparability class: its `"scale"` and `"build"`
/// markers. Artifacts predating the markers form their own `unmarked`
/// class and keep comparing against each other.
fn artifact_class(text: &str) -> (String, String) {
    (
        extract_str(text, "scale").unwrap_or_else(|| "unmarked".into()),
        extract_str(text, "build").unwrap_or_else(|| "unmarked".into()),
    )
}

/// Every `BENCH_pr<N>.json` in `root` with its PR number.
fn bench_artifacts(root: &Path) -> Vec<(u64, PathBuf)> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(root) else {
        return out;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name
            .strip_prefix("BENCH_pr")
            .and_then(|rest| rest.strip_suffix(".json"))
        else {
            continue;
        };
        if let Ok(pr) = stem.parse::<u64>() {
            out.push((pr, entry.path()));
        }
    }
    out
}

/// First `"key": "value"` occurrence in hand-rolled bench JSON.
fn extract_str(text: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start().strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// First `"key": <number>` occurrence in hand-rolled bench JSON. All
/// `BENCH_*.json` artifacts put the search block first, so the first
/// `nodes_per_sec` is the search figure.
fn extract_f64(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The build half of the artifact's comparability class.
pub(crate) fn build_marker() -> &'static str {
    if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    }
}

/// Hand-rolled JSON with a fixed key order, like `BENCH_pr6.json`.
fn render_json(
    search: &mesh::SearchFigures,
    service: &mesh::ServiceFigures,
    baseline: Option<f64>,
    speedup: f64,
) -> String {
    format!(
        concat!(
            "{{\n",
            "  \"schema\": \"uov-bench-pr7-v1\",\n",
            "  \"scale\": \"full\",\n",
            "  \"build\": \"{}\",\n",
            "  \"search\": {{\n",
            "    \"nodes\": {},\n",
            "    \"elapsed_ms\": {:.3},\n",
            "    \"nodes_per_sec\": {:.1}\n",
            "  }},\n",
            "  \"service\": {{\n",
            "    \"cold_p50_us\": {},\n",
            "    \"cold_p99_us\": {},\n",
            "    \"warm_p50_us\": {},\n",
            "    \"warm_p99_us\": {},\n",
            "    \"cache_hit_p50_us\": {},\n",
            "    \"warm_hit_rate\": {:.4}\n",
            "  }},\n",
            "  \"baseline\": {{\n",
            "    \"file\": \"BENCH_pr6.json\",\n",
            "    \"nodes_per_sec\": {:.1},\n",
            "    \"speedup\": {:.3}\n",
            "  }}\n",
            "}}\n",
        ),
        build_marker(),
        search.nodes,
        search.elapsed_ms,
        search.nodes_per_sec,
        service.cold_p50_us,
        service.cold_p99_us,
        service.warm_p50_us,
        service.warm_p99_us,
        service.warm_p50_us,
        service.warm_hit_rate,
        baseline.unwrap_or(0.0),
        speedup,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extract_f64_reads_handrolled_json() {
        let text =
            "{\n  \"search\": {\n    \"nodes\": 1974,\n    \"nodes_per_sec\": 2040396.5\n  }\n}";
        assert_eq!(extract_f64(text, "nodes_per_sec"), Some(2040396.5));
        assert_eq!(extract_f64(text, "nodes"), Some(1974.0));
        assert_eq!(extract_f64(text, "missing"), None);
    }

    fn write_artifact(dir: &Path, pr: u64, rate: f64) {
        let body = format!(
            "{{\n  \"search\": {{\n    \"nodes\": 1,\n    \"nodes_per_sec\": {rate:.1}\n  }}\n}}\n"
        );
        std::fs::write(dir.join(format!("BENCH_pr{pr}.json")), body).unwrap();
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("uov_bench_check_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn bench_check_passes_monotone_and_small_dips() {
        let dir = tmp_dir("pass");
        write_artifact(&dir, 6, 1_000_000.0);
        write_artifact(&dir, 7, 900_000.0); // -10%: within tolerance
        write_artifact(&dir, 8, 3_000_000.0);
        let (_, ok) = bench_check_in(&dir);
        assert!(ok);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bench_check_fails_on_large_regression() {
        let dir = tmp_dir("fail");
        write_artifact(&dir, 6, 1_000_000.0);
        write_artifact(&dir, 7, 700_000.0); // -30%: over the 20% line
        let (table, ok) = bench_check_in(&dir);
        assert!(!ok);
        assert!(table.to_markdown().contains("REGRESSION"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bench_check_orders_by_pr_number_not_lexicographically() {
        let dir = tmp_dir("order");
        // Lexicographic order would put pr10 before pr9 and flag a fake
        // regression; PR-number order must not.
        write_artifact(&dir, 9, 2_000_000.0);
        write_artifact(&dir, 10, 2_100_000.0);
        let (_, ok) = bench_check_in(&dir);
        assert!(ok);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bench_check_tolerates_missing_artifacts() {
        let dir = tmp_dir("empty");
        let (_, ok) = bench_check_in(&dir);
        assert!(ok, "nothing to compare is not a failure");
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn write_marked_artifact(dir: &Path, pr: u64, scale: &str, build: &str, rate: f64) {
        let body = format!(
            concat!(
                "{{\n  \"scale\": \"{}\",\n  \"build\": \"{}\",\n",
                "  \"search\": {{\n    \"nodes\": 1,\n    \"nodes_per_sec\": {:.1}\n  }}\n}}\n"
            ),
            scale, build, rate
        );
        std::fs::write(dir.join(format!("BENCH_pr{pr}.json")), body).unwrap();
    }

    /// The like-for-like rule: a quick-scale debug figure neither gates
    /// nor is gated by a full-scale release one; each class compares
    /// against the newest earlier artifact of its own class, skipping
    /// over artifacts of other classes in between.
    #[test]
    fn bench_check_compares_only_like_for_like_classes() {
        let dir = tmp_dir("classes");
        write_marked_artifact(&dir, 6, "quick", "debug", 171_180.0);
        // 24x "speedup" over pr6 is a measurement-condition change, not
        // a regression baseline — and the later full/release dip of 7%
        // is judged against pr7, not pr8's unrelated class.
        write_marked_artifact(&dir, 7, "full", "release", 4_179_624.0);
        write_marked_artifact(&dir, 8, "quick", "debug", 165_000.0);
        write_marked_artifact(&dir, 9, "full", "release", 3_900_000.0);
        let (table, ok) = bench_check_in(&dir);
        let rendered = table.to_markdown();
        assert!(ok, "cross-class comparisons must not fire:\n{rendered}");
        assert!(rendered.contains("vs pr7"), "pr9 must compare to pr7");
        assert!(rendered.contains("vs pr6"), "pr8 must compare to pr6");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A big drop *within* a class still fails, even with other classes
    /// interleaved.
    #[test]
    fn bench_check_still_fails_within_a_class() {
        let dir = tmp_dir("class_fail");
        write_marked_artifact(&dir, 6, "quick", "debug", 171_180.0);
        write_marked_artifact(&dir, 7, "full", "release", 4_179_624.0);
        write_marked_artifact(&dir, 8, "full", "release", 2_000_000.0); // -52%
        let (table, ok) = bench_check_in(&dir);
        assert!(!ok);
        assert!(table.to_markdown().contains("REGRESSION"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// An artifact with no search figure at all (the partition
    /// availability artifact) is reported but never scored or treated
    /// as unreadable.
    #[test]
    fn bench_check_skips_artifacts_without_search_figures() {
        let dir = tmp_dir("no_search");
        write_marked_artifact(&dir, 7, "full", "release", 4_179_624.0);
        std::fs::write(
            dir.join("BENCH_pr8.json"),
            concat!(
                "{\n  \"scale\": \"full\",\n  \"build\": \"release\",\n",
                "  \"partition\": {\n    \"availability\": 1.0\n  }\n}\n"
            ),
        )
        .unwrap();
        write_marked_artifact(&dir, 9, "full", "release", 4_000_000.0);
        let (table, ok) = bench_check_in(&dir);
        let rendered = table.to_markdown();
        assert!(
            ok,
            "a metric-free artifact must not fail the gate:\n{rendered}"
        );
        assert!(rendered.contains("no search figure"));
        assert!(rendered.contains("vs pr7"), "pr9 must skip over pr8");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn extract_str_reads_markers() {
        let text = "{\n  \"scale\": \"quick\",\n  \"build\": \"debug\"\n}";
        assert_eq!(extract_str(text, "scale").as_deref(), Some("quick"));
        assert_eq!(extract_str(text, "build").as_deref(), Some("debug"));
        assert_eq!(extract_str(text, "missing"), None);
        assert_eq!(extract_str("{\"scale\": 3}", "scale"), None);
    }
}
