//! Resilience harness: checkpoint/resume round-trips and result
//! certification, measured on the ablation zoo.
//!
//! Not a paper figure — this validates the robustness layer added around
//! the search: every interrupted-then-resumed run must land on the exact
//! `(uov, cost)` of an uninterrupted run, every emitted result must pass
//! the independent certifier, and the snapshot machinery's overhead must
//! stay a rounding error at realistic intervals.

use uov_core::budget::Budget;
use uov_core::certify::certify;
use uov_core::checkpoint::CheckpointConfig;
use uov_core::search::{find_best_uov, search_resume, Objective, SearchConfig};
use uov_isg::{IVec, Stencil};

use crate::report::Table;
use crate::Scale;

fn zoo() -> Vec<(&'static str, Stencil)> {
    let v = |coords: &[[i64; 2]]| -> Vec<IVec> { coords.iter().map(|&c| IVec::from(c)).collect() };
    vec![
        (
            "fig1 (3-pt)",
            Stencil::new(v(&[[1, 0], [0, 1], [1, 1]])).unwrap(),
        ),
        (
            "5-pt stencil",
            Stencil::new(v(&[[1, -2], [1, -1], [1, 0], [1, 1], [1, 2]])).unwrap(),
        ),
        ("skewed pair", Stencil::new(v(&[[2, 1], [1, 3]])).unwrap()),
        (
            "wide fan",
            Stencil::new(v(&[[1, -3], [1, 0], [1, 3]])).unwrap(),
        ),
    ]
}

fn scratch(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "uov_bench_resilience_{name}_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&p);
    p
}

/// Interrupt each zoo search at several node cuts, resume from the
/// snapshot, and report whether the round-trip reproduced the reference
/// answer exactly and whether the certifier accepted it.
pub fn checkpoint_roundtrip(scale: Scale) -> Table {
    let mut t = Table::new(
        "resilience — interrupt/resume round-trip and certification",
        vec![
            "stencil".into(),
            "threads".into(),
            "cut (nodes)".into(),
            "resumed = clean".into(),
            "certified".into(),
            "transcript".into(),
        ],
    );
    let cuts: &[u64] = match scale {
        Scale::Quick => &[2, 8],
        Scale::Full => &[1, 2, 4, 8, 16, 32],
    };
    for (name, s) in zoo() {
        for threads in [1usize, 4] {
            let reference = find_best_uov(
                &s,
                Objective::ShortestVector,
                &SearchConfig {
                    threads,
                    ..SearchConfig::default()
                },
            )
            .expect("zoo stencils are in range");
            for &cut in cuts {
                let path = scratch(&format!("{}_{threads}_{cut}", name.replace(' ', "_")));
                let interrupted = SearchConfig {
                    threads,
                    budget: Budget::unlimited().with_max_nodes(cut),
                    checkpoint: Some(CheckpointConfig {
                        path: path.clone(),
                        interval: 1,
                    }),
                    ..SearchConfig::default()
                };
                let partial = find_best_uov(&s, Objective::ShortestVector, &interrupted)
                    .expect("a node cap never errors a valid instance");
                assert!(
                    partial.checkpoint_error.is_none(),
                    "snapshot write failed for {name}"
                );
                let resumed = search_resume(
                    &path,
                    &s,
                    Objective::ShortestVector,
                    &SearchConfig {
                        threads,
                        ..SearchConfig::default()
                    },
                )
                .expect("a clean snapshot must resume");
                let identical = resumed.uov == reference.uov && resumed.cost == reference.cost;
                let cert = certify(&s, &Objective::ShortestVector, &resumed);
                t.push(vec![
                    name.into(),
                    threads.to_string(),
                    cut.to_string(),
                    identical.to_string(),
                    cert.is_ok().to_string(),
                    cert.map(|c| format!("{:#018x}", c.transcript_hash))
                        .unwrap_or_else(|e| e.to_string()),
                ]);
                let _ = std::fs::remove_file(&path);
            }
        }
    }
    t
}

/// Snapshot overhead: wall-clock of the same search with checkpointing
/// off, coarse (every 1024 nodes) and aggressive (every 64 nodes).
pub fn checkpoint_overhead() -> Table {
    let mut t = Table::new(
        "resilience — snapshot overhead (shortest-vector objective)",
        vec![
            "stencil".into(),
            "no ckpt (µs)".into(),
            "interval 1024 (µs)".into(),
            "interval 64 (µs)".into(),
            "snapshot bytes".into(),
        ],
    );
    for (name, s) in zoo() {
        let mut timings = Vec::new();
        let mut snap_bytes = 0u64;
        for interval in [0u64, 1024, 64] {
            let path = scratch(&format!("ovh_{}_{interval}", name.replace(' ', "_")));
            let config = SearchConfig {
                checkpoint: (interval > 0).then(|| CheckpointConfig {
                    path: path.clone(),
                    interval,
                }),
                ..SearchConfig::default()
            };
            let start = std::time::Instant::now();
            let res = find_best_uov(&s, Objective::ShortestVector, &config)
                .expect("zoo stencils are in range");
            timings.push(start.elapsed().as_micros().to_string());
            assert!(res.checkpoint_error.is_none());
            if interval > 0 {
                snap_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                let _ = std::fs::remove_file(&path);
            }
        }
        let mut row = vec![name.to_string()];
        row.extend(timings);
        row.push(snap_bytes.to_string());
        t.push(row);
    }
    t
}

/// Both resilience tables.
pub fn all(scale: Scale) -> Vec<Table> {
    vec![checkpoint_roundtrip(scale), checkpoint_overhead()]
}
