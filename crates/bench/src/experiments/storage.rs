//! Analytic experiments: storage requirements and worked examples
//! (Figures 1–6, Tables 1–2).

use uov_core::objective::storage_class_count;
use uov_core::search::{find_best_uov, Objective, SearchConfig};
use uov_core::DoneOracle;
use uov_isg::{IVec, Polygon2, RectDomain, Stencil};
use uov_kernels::{fig1, psm, stencil5};

use crate::report::Table;

fn stencil5_stencil() -> Stencil {
    Stencil::new(vec![
        IVec::from([1, -2]),
        IVec::from([1, -1]),
        IVec::from([1, 0]),
        IVec::from([1, 1]),
        IVec::from([1, 2]),
    ])
    .expect("5-point stencil")
}

/// Figure 1: storage of the three versions of the running example, for a
/// few instance sizes, with the derived UOV.
pub fn fig1() -> Table {
    let mut t = Table::new(
        "Figure 1 — storage requirements of the running example (derived UOV shown)",
        vec![
            "n".into(),
            "m".into(),
            "uov".into(),
            "natural (nm)".into(),
            "ov-mapped (n+m+1)".into(),
            "storage-optimized (m+2)".into(),
        ],
    );
    for (n, m) in [(8i64, 8i64), (64, 32), (1000, 1000)] {
        let pipe = fig1::pipeline(n.min(64), m.min(64)); // pipeline checks small sizes
        let (nat, ov, opt) = fig1::storage_cells(n as u64, m as u64);
        t.push(vec![
            n.to_string(),
            m.to_string(),
            pipe.uov.to_string(),
            nat.to_string(),
            ov.to_string(),
            opt.to_string(),
        ]);
    }
    t
}

/// Figure 2: sizes of the DONE and DEAD sets in a window behind a point,
/// for the figure's 3-vector stencil.
pub fn fig2() -> Table {
    let stencil = Stencil::new(vec![
        IVec::from([1, -1]),
        IVec::from([1, 0]),
        IVec::from([1, 1]),
    ])
    .expect("fig2 stencil");
    let oracle = DoneOracle::new(&stencil);
    let mut t = Table::new(
        "Figure 2 — DONE and DEAD sets within a k×k window behind q",
        vec!["window".into(), "|DONE|".into(), "|DEAD|".into()],
    );
    for k in [4i64, 6, 8] {
        let q = IVec::from([k, 0]);
        let dom = RectDomain::new(IVec::from([0, -k]), IVec::from([k, k]));
        let done = oracle.done_points(&q, &dom).len();
        let dead = oracle.dead_points(&q, &dom).len();
        t.push(vec![
            format!("{k}x{}", 2 * k + 1),
            done.to_string(),
            dead.to_string(),
        ]);
    }
    t
}

/// Figure 3: on the skewed ISG the shorter OV (3,0) needs 27 cells while
/// the longer (3,1) needs 16; the known-bounds search must prefer the
/// longer one.
pub fn fig3() -> Table {
    let isg = Polygon2::fig3_isg();
    let mut t = Table::new(
        "Figure 3 — storage of candidate OVs on the skewed ISG (paper: 16 vs 27)",
        vec!["ov".into(), "length^2".into(), "storage cells".into()],
    );
    for ov in [
        IVec::from([3, 1]),
        IVec::from([3, 0]),
        IVec::from([1, 1]),
        IVec::from([2, 1]),
    ] {
        t.push(vec![
            ov.to_string(),
            ov.norm_sq().to_string(),
            storage_class_count(&isg, &ov).to_string(),
        ]);
    }
    t
}

/// Figure 5: the branch-and-bound search finds UOV (2,0) for the 5-point
/// stencil; show the candidates it rejects.
pub fn fig5() -> Table {
    let s = stencil5_stencil();
    let oracle = DoneOracle::new(&s);
    let best = find_best_uov(&s, Objective::ShortestVector, &SearchConfig::default())
        .expect("stencil is in range");
    let mut t = Table::new(
        "Figure 5 — UOV of the 5-point stencil (paper: (2,0), non-prime)",
        vec!["vector".into(), "is UOV".into(), "note".into()],
    );
    for (v, note) in [
        (IVec::from([1, 0]), "one time step: not universal"),
        (IVec::from([1, 2]), "one step diagonal: not universal"),
        (IVec::from([2, 0]), "the paper's UOV"),
        (s.sum(), "initial UOV Σvᵢ"),
    ] {
        t.push(vec![
            v.to_string(),
            oracle.is_uov(&v).to_string(),
            note.into(),
        ]);
    }
    t.push(vec![
        best.uov.to_string(),
        "true".into(),
        "branch-and-bound optimum".into(),
    ]);
    t
}

/// Figure 6: allocation for ov = (1,1) on the bordered grid is n+m+1.
pub fn fig6() -> Table {
    let mut t = Table::new(
        "Figure 6 — allocation via extreme-point projection, ov = (1,1)",
        vec!["n".into(), "m".into(), "allocated".into(), "n+m+1".into()],
    );
    for (n, m) in [(4i64, 6i64), (10, 10), (100, 50)] {
        let dom = RectDomain::new(IVec::from([0, 0]), IVec::from([n, m]));
        let cells = storage_class_count(&dom, &IVec::from([1, 1]));
        t.push(vec![
            n.to_string(),
            m.to_string(),
            cells.to_string(),
            (n + m + 1).to_string(),
        ]);
    }
    t
}

/// Table 1: 5-point stencil temporary storage.
pub fn table1() -> Table {
    let mut t = Table::new(
        "Table 1 — 5-point stencil temporary storage (L = array length, T = time steps)",
        vec!["version".into(), "formula".into(), "L=10000, T=100".into()],
    );
    let rows: [(stencil5::Variant, &str); 3] = [
        (stencil5::Variant::Natural, "T*L"),
        (stencil5::Variant::OvBlocked, "2L"),
        (stencil5::Variant::StorageOptimized, "L+3"),
    ];
    for (v, formula) in rows {
        t.push(vec![
            v.label().into(),
            formula.into(),
            stencil5::storage_cells(v, 10_000, 100).to_string(),
        ]);
    }
    t
}

/// Table 2: protein string matching temporary storage.
pub fn table2() -> Table {
    let mut t = Table::new(
        "Table 2 — protein string matching temporary storage",
        vec!["version".into(), "formula".into(), "n0=n1=1000".into()],
    );
    let rows: [(psm::Variant, &str); 3] = [
        (psm::Variant::Natural, "n0*n1 + n0 + n1"),
        (psm::Variant::OvMapped, "2n0 + 2n1 + 1"),
        (psm::Variant::StorageOptimized, "2n0 + 3"),
    ];
    for (v, formula) in rows {
        t.push(vec![
            v.label().into(),
            formula.into(),
            psm::storage_cells(v, 1000, 1000).to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_reproduces_paper_numbers() {
        let t = fig3();
        let row31 = &t.rows()[0];
        let row30 = &t.rows()[1];
        assert_eq!(row31[2], "16");
        assert_eq!(row30[2], "27");
    }

    #[test]
    fn fig5_confirms_2_0() {
        let t = fig5();
        let last = t.rows().last().unwrap();
        assert_eq!(last[0], "(2, 0)");
    }

    #[test]
    fn fig6_matches_formula() {
        for row in fig6().rows() {
            assert_eq!(row[2], row[3], "allocation must equal n+m+1");
        }
    }

    #[test]
    fn tables_have_paper_values() {
        let t1 = table1();
        assert_eq!(t1.rows()[0][2], "1000000");
        assert_eq!(t1.rows()[1][2], "20000");
        assert_eq!(t1.rows()[2][2], "10003");
        let t2 = table2();
        assert_eq!(t2.rows()[0][2], "1002000");
        assert_eq!(t2.rows()[1][2], "4001");
        assert_eq!(t2.rows()[2][2], "2003");
    }

    #[test]
    fn fig2_dead_subset_of_done() {
        for row in fig2().rows() {
            let done: usize = row[1].parse().unwrap();
            let dead: usize = row[2].parse().unwrap();
            assert!(dead <= done);
            assert!(dead > 0);
        }
    }

    #[test]
    fn fig1_uov_column() {
        for row in fig1().rows() {
            assert_eq!(row[2], "(1, 1)");
        }
    }
}
