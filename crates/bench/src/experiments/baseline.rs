//! The abstract's storage comparison, quantified: *"OV-mapped code
//! requires less storage than full array expansion and only slightly more
//! storage than schedule-dependent minimal storage."*
//!
//! For each schedule of the Figure-1 loop we report the renaming floor
//! (max-live), the best schedule-*specific* occupancy vector's storage,
//! and the schedule-*independent* UOV's storage — one number valid for
//! the whole column.

use uov_isg::{IVec, IterationDomain as _, RectDomain, Stencil};
use uov_schedule::{random_topological_order, LoopSchedule};
use uov_storage::baseline::{max_live, min_ov_for_schedule};
use uov_storage::{Layout, OvMap, StorageMap as _};

use crate::report::Table;
use crate::Scale;

/// Storage across schedules for the Figure-1 loop on an `n×m` grid.
pub fn storage_vs_schedule(scale: Scale) -> Table {
    let stencil = Stencil::new(vec![
        IVec::from([1, 0]),
        IVec::from([0, 1]),
        IVec::from([1, 1]),
    ])
    .expect("fig1 stencil");
    table_for(scale, "Fig-1 loop", &stencil, IVec::from([1, 1]))
}

/// The contrast case: without the diagonal dependence, fixed schedules
/// admit genuinely shorter OVs than the UOV — the storage premium paid
/// for schedule independence becomes visible.
pub fn storage_vs_schedule_no_diag(scale: Scale) -> Table {
    let stencil =
        Stencil::new(vec![IVec::from([1, 0]), IVec::from([0, 1])]).expect("no-diagonal stencil");
    table_for(scale, "no-diagonal loop", &stencil, IVec::from([1, 1]))
}

fn table_for(scale: Scale, label: &str, stencil: &Stencil, uov: IVec) -> Table {
    let (n, m) = match scale {
        Scale::Quick => (10i64, 8i64),
        Scale::Full => (24, 16),
    };
    let dom = RectDomain::new(IVec::from([0, 0]), IVec::from([n, m]));
    let natural = dom.num_points();
    let uov_cells = OvMap::new(&dom, uov.clone(), Layout::Interleaved).size();

    let mut t = Table::new(
        format!(
            "Abstract's claim — storage across schedules, {label} {n}×{m} \
             (natural = {natural}, UOV {uov} = {uov_cells} for every row)"
        ),
        vec![
            "schedule".into(),
            "max-live (renaming floor)".into(),
            "best fixed-schedule OV".into(),
            "its storage".into(),
            "UOV storage".into(),
        ],
    );

    let mut schedules: Vec<(String, Vec<IVec>)> = vec![
        ("lexicographic".into(), dom.points().collect()),
        (
            "interchange".into(),
            LoopSchedule::Interchange(vec![1, 0]).order(&dom),
        ),
        (
            "tiled 4x4".into(),
            LoopSchedule::tiled(vec![4, 4]).order(&dom),
        ),
        (
            "wavefront".into(),
            LoopSchedule::Wavefront(IVec::from([1, 1])).order(&dom),
        ),
    ];
    for seed in [7u64, 42] {
        schedules.push((
            format!("random topological (seed {seed})"),
            random_topological_order(&dom, stencil, seed),
        ));
    }

    for (name, order) in schedules {
        let floor = max_live(&order, &dom, stencil);
        let (ov, cells) = min_ov_for_schedule(&order, &dom, stencil, 3)
            .expect("radius covers the UOV, so a legal OV always exists");
        t.push(vec![
            name,
            floor.to_string(),
            ov.to_string(),
            cells.to_string(),
            uov_cells.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uov_storage_bounds_hold_for_every_schedule() {
        let t = storage_vs_schedule(Scale::Quick);
        // Quick scale: 11×9 bordered grid.
        let natural = 11 * 9;
        for row in t.rows() {
            let floor: usize = row[1].parse().unwrap();
            let fixed: usize = row[3].parse().unwrap();
            let uov: usize = row[4].parse().unwrap();
            assert!(
                floor <= fixed,
                "renaming floor must lower-bound any OV: {row:?}"
            );
            assert!(
                fixed <= uov,
                "fixed-schedule OV can never need more than the UOV: {row:?}"
            );
            assert!(uov < natural, "UOV must beat full expansion: {row:?}");
        }
    }

    #[test]
    fn no_diag_shows_a_real_premium() {
        let t = storage_vs_schedule_no_diag(Scale::Quick);
        // The lexicographic row's fixed-schedule OV must be strictly
        // cheaper than the UOV here.
        let lex = &t.rows()[0];
        let fixed: usize = lex[3].parse().unwrap();
        let uov: usize = lex[4].parse().unwrap();
        assert!(
            fixed < uov,
            "without the diagonal the premium is real: {lex:?}"
        );
    }

    #[test]
    fn uov_premium_is_modest() {
        // "Only slightly more storage": the UOV never costs more than ~2×
        // the best fixed-schedule OV on these schedules.
        let t = storage_vs_schedule(Scale::Quick);
        for row in t.rows() {
            let fixed: f64 = row[3].parse().unwrap();
            let uov: f64 = row[4].parse().unwrap();
            assert!(
                uov <= 2.5 * fixed,
                "UOV premium too large ({uov} vs {fixed}): {row:?}"
            );
        }
    }
}
