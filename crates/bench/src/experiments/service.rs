//! Service benchmark: the planning server under a deterministic
//! closed-loop load.
//!
//! Not a paper figure — this measures the PR-introduced `uov-service`
//! subsystem: throughput and latency percentiles of the framed protocol,
//! the canonicalizing plan cache's hit rate on a repeated-stencil
//! workload, single-flight coalescing under a synchronized burst, and
//! (the property everything hinges on) that every cached answer carries
//! a certificate hash identical to a cold solve's.

use uov_service::{
    loadgen, serve, Client, LoadGenConfig, ObjectiveSpec, PlanRequest, ServerConfig, FLAG_NO_CACHE,
};

use crate::report::Table;
use crate::Scale;

/// All service tables.
pub fn all(scale: Scale) -> Vec<Table> {
    // One server for the whole benchmark, as in production: the warm
    // phases measure exactly the cache the cold phase populated.
    let server = match serve("127.0.0.1:0", ServerConfig::default()) {
        Ok(s) => s,
        Err(e) => {
            let mut t = Table::new("service — unavailable", vec!["error".into()]);
            t.push(vec![e.to_string()]);
            return vec![t];
        }
    };
    let endpoint = server.endpoint().to_string();
    let tables = vec![
        closed_loop(&endpoint, scale),
        coalescing_burst(&endpoint),
        certificate_identity(&endpoint),
    ];
    server.shutdown();
    server.join();
    tables
}

/// Closed-loop load: a cold pass populating the cache, then a warm pass
/// over the same deterministic request streams. The warm pass must see a
/// >90% hit rate — the acceptance bar for the repeated-stencil workload.
fn closed_loop(endpoint: &str, scale: Scale) -> Table {
    let mut t = Table::new(
        "service — closed-loop load (deterministic seed)",
        vec![
            "phase".into(),
            "clients".into(),
            "requests".into(),
            "errors".into(),
            "throughput (req/s)".into(),
            "p50 (µs)".into(),
            "p99 (µs)".into(),
            "hits".into(),
            "misses".into(),
            "coalesced".into(),
            "hit rate".into(),
        ],
    );
    let cfg = LoadGenConfig {
        clients: 4,
        requests_per_client: match scale {
            Scale::Quick => 25,
            Scale::Full => 250,
        },
        distinct_stencils: 6,
        permute: true,
        ..LoadGenConfig::default()
    };
    for phase in ["cold", "warm"] {
        match loadgen::run(endpoint, &cfg) {
            Ok(r) => t.push(vec![
                phase.into(),
                cfg.clients.to_string(),
                r.completed.to_string(),
                r.errors.to_string(),
                format!("{:.0}", r.throughput_rps),
                r.p50_us.to_string(),
                r.p99_us.to_string(),
                r.hits.to_string(),
                r.misses.to_string(),
                r.coalesced.to_string(),
                format!("{:.1}%", r.hit_rate() * 100.0),
            ]),
            Err(e) => t.push(vec![
                phase.into(),
                cfg.clients.to_string(),
                "0".into(),
                e.to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]),
        }
    }
    t
}

/// Fire a barrier-synchronized burst of identical requests at a stencil
/// the cache has never seen: exactly one search may run; the rest must
/// park on its flight and receive the identical answer.
///
/// Timing is made deterministic with the protocol's own budget: the
/// burst problem (a 4-D cross whose branch-and-bound runs far past any
/// deadline) carries a 300 ms deadline, so the flight provably stays
/// open for 300 ms — every waiter scheduled inside that window
/// coalesces, on any machine, single-core included. The leader degrades
/// to a legal UOV at the deadline and publishes it to all waiters.
fn coalescing_burst(endpoint: &str) -> Table {
    let mut t = Table::new(
        "service — single-flight dedup (synchronized identical burst)",
        vec![
            "burst size".into(),
            "distinct answers".into(),
            "misses".into(),
            "coalesced".into(),
            "hits".into(),
            "coalesced ≥ 1".into(),
        ],
    );
    // One request per default worker, so the whole burst lands in a
    // single flight round (a degraded answer is never cached, and a
    // second round would therefore search again).
    let n = ServerConfig::default().workers;
    match loadgen::coalescing_burst(endpoint, n, 300) {
        Ok(r) => t.push(vec![
            r.burst.to_string(),
            r.distinct_answers.to_string(),
            r.misses.to_string(),
            r.coalesced.to_string(),
            r.hits.to_string(),
            (r.coalesced >= 1).to_string(),
        ]),
        Err(e) => t.push(vec![
            n.to_string(),
            e.to_string(),
            "-".into(),
            "-".into(),
            "-".into(),
            "false".into(),
        ]),
    }
    t
}

/// Cold solve (`FLAG_NO_CACHE`) vs cached answer, per pool stencil: the
/// certificate transcript hashes must be identical — the cache serves
/// *certified replays*, not merely equal vectors.
fn certificate_identity(endpoint: &str) -> Table {
    let mut t = Table::new(
        "service — cached answers are certificate-identical to cold solves",
        vec![
            "stencil".into(),
            "uov".into(),
            "cost".into(),
            "cached = cold".into(),
        ],
    );
    let mut client = match Client::connect(endpoint) {
        Ok(c) => c,
        Err(e) => {
            t.push(vec![e.to_string(), "-".into(), "-".into(), "-".into()]);
            return t;
        }
    };
    for stencil in loadgen::stencil_pool(6) {
        let req = |flags| PlanRequest {
            stencil: stencil.clone(),
            objective: ObjectiveSpec::ShortestVector,
            deadline_ms: 0,
            flags,
        };
        let (cold, cached) = match (client.plan(&req(FLAG_NO_CACHE)), client.plan(&req(0))) {
            (Ok(a), Ok(b)) => (a, b),
            (a, b) => {
                t.push(vec![
                    format!("{stencil:?}"),
                    "-".into(),
                    "-".into(),
                    format!("error: {:?} / {:?}", a.err(), b.err()),
                ]);
                continue;
            }
        };
        let identical = cold.uov == cached.uov
            && cold.cost == cached.cost
            && cold.certificate_hash == cached.certificate_hash;
        t.push(vec![
            stencil
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(" "),
            cached.uov.to_string(),
            cached.cost.to_string(),
            identical.to_string(),
        ]);
    }
    t
}
