//! Extensions beyond the paper's evaluation: the d-dimensional
//! generalisation (2-D Jacobi over time = 3-D ISG) and the tile-size
//! sweep behind "we tiled for L1 cache" (§5).

use uov_core::search::{find_best_uov, Objective, SearchConfig};
use uov_isg::{IVec, Stencil};
use uov_kernels::mem::TracedMemory;
use uov_kernels::{jacobi2d, stencil5, workloads};
use uov_memsim::machines;

use crate::experiments::overhead::stencil5_cpi;
use crate::report::{fmt_f64, Table};
use crate::Scale;

/// 2-D Jacobi (3-D iteration space): derive the UOV `(2,0,0)` — double
/// buffering — and measure all variants across the machine models.
pub fn jacobi(scale: Scale) -> Table {
    // Derivation first: the 3-D search must find (2,0,0).
    let stencil = Stencil::new(vec![
        IVec::from([1, 0, 0]),
        IVec::from([1, 1, 0]),
        IVec::from([1, -1, 0]),
        IVec::from([1, 0, 1]),
        IVec::from([1, 0, -1]),
    ])
    .expect("jacobi stencil");
    let best = find_best_uov(
        &stencil,
        Objective::ShortestVector,
        &SearchConfig::default(),
    )
    .expect("3-D stencil is in range");
    assert_eq!(best.uov, IVec::from([2, 0, 0]), "double buffering, derived");

    let (n, t_steps) = match scale {
        Scale::Quick => (96usize, 4usize),
        // 512² plane = 1 MB: outside every L1/L2 except the Ultra 2's L2.
        Scale::Full => (512, 4),
    };
    let input = workloads::random_f32(n * n, 23);
    let cfg = jacobi2d::Jacobi2dConfig {
        n,
        time_steps: t_steps,
        tile: None,
        pad: 0,
    };

    let mut t = Table::new(
        format!(
            "Extension — 2-D Jacobi (3-D ISG), UOV {} derived by search; N={n}, T={t_steps}, cycles/iter",
            best.uov
        ),
        std::iter::once("version".to_string())
            .chain(machines::all().iter().map(|m| m.name().to_string()))
            .chain(std::iter::once("storage cells".to_string()))
            .collect(),
    );
    for variant in jacobi2d::Variant::all() {
        let mut row = vec![variant.label().to_string()];
        for machine in machines::all() {
            let mut mem = TracedMemory::new(machine);
            let _ = jacobi2d::run(&mut mem, variant, &cfg, &input);
            row.push(fmt_f64(
                mem.machine().cycles() as f64 / (n * n * t_steps) as f64,
            ));
        }
        row.push(jacobi2d::storage_cells(variant, n as u64, t_steps as u64).to_string());
        t.push(row);
    }
    // §4's padding remark, demonstrated: power-of-two planes alias in the
    // Ultra 2's direct-mapped L2; padding by a few cache lines removes it.
    let padded = jacobi2d::Jacobi2dConfig {
        n,
        time_steps: t_steps,
        tile: None,
        pad: 128,
    };
    let mut row = vec!["OV-Mapped (padded)".to_string()];
    for machine in machines::all() {
        let mut mem = TracedMemory::new(machine);
        let _ = jacobi2d::run(&mut mem, jacobi2d::Variant::Ov, &padded, &input);
        row.push(fmt_f64(
            mem.machine().cycles() as f64 / (n * n * t_steps) as f64,
        ));
    }
    row.push((2 * (n * n + 128)).to_string());
    t.push(row);
    t
}

/// Tile-size sweep for the OV-mapped tiled 5-pt stencil on the Pentium
/// Pro model: the best tile width sits near the L1 capacity, as the
/// paper's "we tiled for L1 cache" presumes.
pub fn tile_sweep(scale: Scale) -> Table {
    let (len, t_steps) = match scale {
        Scale::Quick => (50_000usize, 4usize),
        Scale::Full => (1_000_000, 8),
    };
    let widths: &[usize] = match scale {
        Scale::Quick => &[256, 1024, 65536],
        Scale::Full => &[64, 256, 1024, 4096, 16384, 65536],
    };
    let mut t = Table::new(
        format!("Extension — tile-width sweep, OV-Mapped Tiled 5-pt stencil (L={len}, T={t_steps}, Pentium Pro), cycles/iter"),
        std::iter::once("tile height".to_string())
            .chain(widths.iter().map(|w| format!("u={w}")))
            .collect(),
    );
    let heights: &[usize] = match scale {
        Scale::Quick => &[4],
        Scale::Full => &[2, 4, 8],
    };
    for &height in heights {
        let mut row = vec![height.to_string()];
        for &w in widths {
            row.push(fmt_f64(stencil5_cpi(
                machines::pentium_pro(),
                stencil5::Variant::OvBlockedTiled,
                len,
                t_steps,
                Some((height, w)),
            )));
        }
        t.push(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jacobi_table_has_all_variants() {
        let t = jacobi(Scale::Quick);
        assert_eq!(t.rows().len(), 5); // 4 variants + the padded OV row
                                       // Storage ordering: natural > OV > optimized.
        let cells: Vec<u64> = t.rows().iter().map(|r| r[4].parse().unwrap()).collect();
        let nat = cells[1];
        let ov = cells[2];
        let opt = cells[0];
        assert!(nat > ov && ov > opt);
    }

    #[test]
    fn tile_sweep_has_a_sweet_spot() {
        let t = tile_sweep(Scale::Quick);
        for row in t.rows() {
            let cpis: Vec<f64> = row[1..].iter().map(|c| c.parse().unwrap()).collect();
            // The largest tile (bigger than L2) must not beat the best
            // cache-sized tile.
            let best = cpis.iter().cloned().fold(f64::MAX, f64::min);
            assert!(
                *cpis.last().unwrap() >= best,
                "oversized tiles should not win: {cpis:?}"
            );
        }
    }
}
