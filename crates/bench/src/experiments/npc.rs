//! The NP-completeness reduction in action (paper §3.1 theorem).
//!
//! Solves PARTITION instances two ways — subset-sum DP and UOV-membership
//! on the reduced stencil — and reports agreement plus the size of the
//! oracle's memoised search, illustrating both the reduction's correctness
//! and the exponential flavour of the membership problem.

use uov_core::npc::PartitionInstance;
use uov_core::DoneOracle;

use crate::report::Table;
use crate::Scale;

/// Run the reduction demo over a family of instances.
pub fn reduction_demo(scale: Scale) -> Table {
    let mut instances: Vec<Vec<i64>> = vec![
        vec![1, 1],
        vec![1, 3],
        vec![3, 1, 2, 2],
        vec![2, 2, 2],
        vec![5, 5, 4, 3, 2, 1],
        vec![9, 2, 2, 1],
    ];
    if scale == Scale::Full {
        instances.push(vec![7, 3, 5, 4, 2, 1, 6]);
        instances.push(vec![8, 7, 6, 5, 4, 3, 2, 1]);
        instances.push(vec![11, 7, 6, 5, 4, 3, 2, 1, 3]);
    }
    let mut t = Table::new(
        "§3.1 theorem — PARTITION via UOV membership (must agree with DP)",
        vec![
            "instance".into(),
            "stencil size".into(),
            "DP answer".into(),
            "UOV answer".into(),
            "cone queries memoised".into(),
        ],
    );
    for values in instances {
        let inst = PartitionInstance::new(values.clone()).expect("valid instance");
        let dp = inst.solve_brute();
        let (stencil_size, uov, cache) = match inst.reduce() {
            Ok((stencil, w)) => {
                let oracle = DoneOracle::new(&stencil);
                let ans = oracle.is_uov(&w);
                (stencil.len(), ans, oracle.cache_len())
            }
            Err(_) => (0, false, 0), // odd sum: trivially unsolvable
        };
        assert_eq!(dp, uov, "reduction disagreed on {values:?}");
        t.push(vec![
            format!("{values:?}"),
            stencil_size.to_string(),
            dp.to_string(),
            uov.to_string(),
            cache.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_runs_and_agrees() {
        let t = reduction_demo(Scale::Quick);
        assert!(t.rows().len() >= 6);
        for row in t.rows() {
            assert_eq!(row[2], row[3], "DP and UOV answers must agree: {row:?}");
        }
    }
}
