//! Chaos benchmark: the resilient fabric under escalating seeded fault
//! rates.
//!
//! Not a paper figure — this measures the PR-introduced resilience
//! fabric. Three replicas sit behind fault-injecting proxies; a
//! [`ResilientClient`] runs a fixed request schedule at each fault tier
//! and the table reports what the faults cost (attempts, failovers,
//! breaker trips, wall time) and what they did **not** cost:
//! correctness. Every answer at every tier is checked byte-identical to
//! a direct in-process solve, and the `verified` column records it.

use std::time::{Duration, Instant};

use uov_core::certify::certify;
use uov_core::search::{find_best_uov, Objective, SearchConfig};
use uov_isg::{ivec, Stencil};
use uov_service::{
    ChaosConfig, ChaosProxy, FabricEvent, ObjectiveSpec, PlanRequest, ReplicaSet, ResilientClient,
    ResilientConfig, ServerConfig,
};

use crate::report::Table;
use crate::Scale;

fn problems() -> Vec<Stencil> {
    (1..=6i64)
        .map(|k| Stencil::new(vec![ivec![1, 0], ivec![0, 1], ivec![1, k]]).expect("valid stencil"))
        .collect()
}

/// All chaos tables.
pub fn all(scale: Scale) -> Vec<Table> {
    vec![fault_escalation(scale), kill_restart_availability(scale)]
}

/// One row per fault tier: what the chaos injected, what the fabric
/// spent absorbing it, and whether every answer stayed byte-identical.
fn fault_escalation(scale: Scale) -> Table {
    let mut t = Table::new(
        "chaos — fabric under escalating fault rates (seed 7)",
        vec![
            "tier".into(),
            "fault ‰/frame".into(),
            "requests".into(),
            "completed".into(),
            "attempts".into(),
            "failures".into(),
            "breaker trips".into(),
            "resets+flips+cuts".into(),
            "elapsed (ms)".into(),
            "verified".into(),
        ],
    );
    let passes = match scale {
        Scale::Quick => 2,
        Scale::Full => 8,
    };
    let problems = problems();
    let truths: Vec<_> = problems
        .iter()
        .map(|s| {
            let r = find_best_uov(s, Objective::ShortestVector, &SearchConfig::default())
                .expect("local search");
            let cert = certify(s, &Objective::ShortestVector, &r).expect("local certification");
            (r.uov.clone(), r.cost, cert.transcript_hash)
        })
        .collect();

    for (tier, per_mille) in [
        ("clean", 0u32),
        ("light", 30),
        ("moderate", 80),
        ("heavy", 150),
    ] {
        let set = match ReplicaSet::start(3, ServerConfig::default()) {
            Ok(s) => s,
            Err(e) => {
                t.push(vec![tier.into(), e.to_string()]);
                continue;
            }
        };
        let chaos = ChaosConfig {
            seed: 7,
            reset_per_mille: per_mille / 3,
            truncate_per_mille: per_mille / 3,
            flip_per_mille: per_mille - 2 * (per_mille / 3),
            delay_per_mille: 60,
            delay_ms: 2,
            ..ChaosConfig::default()
        };
        let proxies: Vec<ChaosProxy> = set
            .endpoints()
            .iter()
            .filter_map(|ep| ChaosProxy::start(ep, chaos).ok())
            .collect();
        let endpoints: Vec<String> = proxies.iter().map(|p| p.endpoint().to_string()).collect();
        let mut fabric = match ResilientClient::new(&endpoints, fabric_config()) {
            Ok(f) => f,
            Err(e) => {
                t.push(vec![tier.into(), e.to_string()]);
                continue;
            }
        };

        let started = Instant::now();
        let mut completed = 0u64;
        let mut verified = true;
        let total = passes * problems.len();
        for step in 0..total {
            let p = step % problems.len();
            match fabric.plan(&plan_request(&problems[p])) {
                Ok(resp) => {
                    completed += 1;
                    let (uov, cost, hash) = &truths[p];
                    verified &=
                        &resp.uov == uov && &resp.cost == cost && &resp.certificate_hash == hash;
                }
                Err(_) => verified = false,
            }
        }
        let elapsed = started.elapsed();
        let events = fabric.take_events();
        let attempts = events
            .iter()
            .filter(|e| matches!(e, FabricEvent::Attempt { .. }))
            .count();
        let failures = events
            .iter()
            .filter(|e| matches!(e, FabricEvent::Failure { .. }))
            .count();
        let trips = events
            .iter()
            .filter(|e| matches!(e, FabricEvent::BreakerOpened { .. }))
            .count();
        let injected: u64 = proxies
            .into_iter()
            .map(|p| {
                let s = p.stop();
                s.resets + s.bit_flips + s.truncations
            })
            .sum();
        set.shutdown_all();

        t.push(vec![
            tier.into(),
            per_mille.to_string(),
            total.to_string(),
            completed.to_string(),
            attempts.to_string(),
            failures.to_string(),
            trips.to_string(),
            injected.to_string(),
            elapsed.as_millis().to_string(),
            if verified && completed == total as u64 {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }
    t
}

/// Availability through kill/restart cycles: no proxies, just replicas
/// dying and coming back while the schedule runs.
fn kill_restart_availability(scale: Scale) -> Table {
    let mut t = Table::new(
        "chaos — availability through replica kill/restart cycles",
        vec![
            "kill cycles".into(),
            "requests".into(),
            "completed".into(),
            "attempts".into(),
            "breaker trips".into(),
            "verified".into(),
        ],
    );
    let cycles = match scale {
        Scale::Quick => 2usize,
        Scale::Full => 6,
    };
    let mut set = match ReplicaSet::start(3, ServerConfig::default()) {
        Ok(s) => s,
        Err(e) => {
            t.push(vec![e.to_string()]);
            return t;
        }
    };
    let endpoints: Vec<String> = set.endpoints().to_vec();
    let mut fabric = match ResilientClient::new(&endpoints, fabric_config()) {
        Ok(f) => f,
        Err(e) => {
            t.push(vec![e.to_string()]);
            return t;
        }
    };
    let problems = problems();
    let truths: Vec<_> = problems
        .iter()
        .map(|s| {
            let r = find_best_uov(s, Objective::ShortestVector, &SearchConfig::default())
                .expect("local search");
            let cert = certify(s, &Objective::ShortestVector, &r).expect("local certification");
            (r.uov.clone(), r.cost, cert.transcript_hash)
        })
        .collect();

    let mut completed = 0u64;
    let mut verified = true;
    let mut total = 0usize;
    for cycle in 0..cycles {
        let victim = cycle % 3;
        set.kill(victim);
        for (p, stencil) in problems.iter().enumerate() {
            total += 1;
            match fabric.plan(&plan_request(stencil)) {
                Ok(resp) => {
                    completed += 1;
                    let (uov, cost, hash) = &truths[p];
                    verified &=
                        &resp.uov == uov && &resp.cost == cost && &resp.certificate_hash == hash;
                }
                Err(_) => verified = false,
            }
        }
        if set.restart(victim).is_err() {
            verified = false;
        }
    }
    let events = fabric.take_events();
    let attempts = events
        .iter()
        .filter(|e| matches!(e, FabricEvent::Attempt { .. }))
        .count();
    let trips = events
        .iter()
        .filter(|e| matches!(e, FabricEvent::BreakerOpened { .. }))
        .count();
    set.shutdown_all();

    t.push(vec![
        cycles.to_string(),
        total.to_string(),
        completed.to_string(),
        attempts.to_string(),
        trips.to_string(),
        if verified && completed == total as u64 {
            "yes".into()
        } else {
            "NO".into()
        },
    ]);
    t
}

fn fabric_config() -> ResilientConfig {
    ResilientConfig {
        attempt_timeout: Duration::from_millis(500),
        max_attempts: 40,
        backoff_base: Duration::from_millis(1),
        backoff_max: Duration::from_millis(4),
        seed: 7,
        ..ResilientConfig::default()
    }
}

fn plan_request(stencil: &Stencil) -> PlanRequest {
    PlanRequest {
        stencil: stencil.clone(),
        objective: ObjectiveSpec::ShortestVector,
        deadline_ms: 0,
        flags: 0,
    }
}
