//! Mesh benchmark: the fault-tolerant planning mesh under a
//! kill/restart schedule, plus the machine-readable `BENCH_pr6.json`
//! artifact CI archives.
//!
//! Four measurements, one JSON file:
//!
//! * **search** — raw branch-and-bound throughput (nodes visited per
//!   second) of a direct in-process solve, the baseline everything else
//!   is overhead on top of;
//! * **service** — closed-loop p50/p99 latency through the framed
//!   protocol, cold (every request searches) and warm (cache hits), so
//!   the cache-hit floor is visible next to the solve ceiling;
//! * **mesh availability** — a routed request schedule across three
//!   shards while shards are killed and restarted mid-schedule: the
//!   fraction of requests answered (with certificate-identical answers)
//!   despite the faults;
//! * **distributed** — one distributed search with a mid-search home
//!   shard kill, byte-compared against the direct solve.
//!
//! The JSON is hand-rolled with a fixed key order — no serialization
//! dependency, and byte-stable structure across runs (values are
//! measurements; keys and shape never move), so downstream diffing
//! tools can parse it with a five-line script.

use std::time::{Duration, Instant};

use uov_core::certify::certify;
use uov_core::search::{find_best_uov, Objective, SearchConfig};
use uov_isg::{ivec, Stencil};
use uov_service::{
    loadgen, serve, CacheOutcome, ChaosConfig, ChaosProxy, LoadGenConfig, MeshClient, MeshConfig,
    ObjectiveSpec, PlanRequest, ReplicaSet, ServerConfig,
};

use super::perf;
use crate::report::Table;
use crate::Scale;

/// All mesh tables, with the `BENCH_pr6.json` and `BENCH_pr8.json`
/// side effects.
pub fn all(scale: Scale) -> Vec<Table> {
    let search = search_throughput(scale);
    let service = service_latency(scale);
    let mesh = mesh_availability(scale);
    let distributed = distributed_differential();

    let mut t = Table::new("mesh — BENCH_pr6.json", vec!["path".into(), "ok".into()]);
    match scale {
        // Quick runs (the test suite, smoke passes) must never clobber the
        // committed artifact with reduced-scale figures — the bench-check
        // gate compares committed BENCH_pr*.json files across PRs.
        Scale::Quick => t.push(vec!["(skipped at quick scale)".into(), "true".into()]),
        Scale::Full => {
            let json = render_json(&search, &service, &mesh, &distributed);
            let path = bench_json_path("BENCH_pr6.json");
            match std::fs::write(&path, &json) {
                Ok(()) => t.push(vec![path.display().to_string(), "true".into()]),
                Err(e) => t.push(vec![path.display().to_string(), format!("error: {e}")]),
            }
        }
    }

    let mut out = vec![
        search.table,
        service.table,
        mesh.table,
        distributed.table,
        t,
    ];
    out.extend(partition(scale));
    out
}

/// The partition experiment on its own: availability and warm-failover
/// hit rate with replicas behind partitioning chaos proxies, plus the
/// `BENCH_pr8.json` side effect at full scale.
pub fn partition(scale: Scale) -> Vec<Table> {
    let figures = partition_availability(scale);
    let mut t = Table::new("mesh — BENCH_pr8.json", vec!["path".into(), "ok".into()]);
    match scale {
        // Same rule as BENCH_pr6.json: quick figures never clobber the
        // committed full-scale artifact.
        Scale::Quick => t.push(vec!["(skipped at quick scale)".into(), "true".into()]),
        Scale::Full => {
            let json = render_pr8_json(&figures);
            let path = bench_json_path("BENCH_pr8.json");
            match std::fs::write(&path, &json) {
                Ok(()) => t.push(vec![path.display().to_string(), "true".into()]),
                Err(e) => t.push(vec![path.display().to_string(), format!("error: {e}")]),
            }
        }
    }
    vec![figures.table, t]
}

/// `BENCH_pr*.json` artifacts live at the repository root, next to
/// EXPERIMENTS.md.
fn bench_json_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(name)
}

pub(crate) struct SearchFigures {
    pub(crate) nodes: u64,
    pub(crate) elapsed_ms: f64,
    pub(crate) nodes_per_sec: f64,
    pub(crate) table: Table,
}

/// Direct in-process branch-and-bound throughput on a fixed problem
/// family: the baseline solve rate in nodes (queue pops) per second.
/// Shared with the `perf` experiment so `BENCH_pr7.json` measures the
/// identical workload as the `BENCH_pr6.json` baseline.
pub(crate) fn search_throughput(scale: Scale) -> SearchFigures {
    let mut t = Table::new(
        "mesh — direct search throughput",
        vec![
            "problem".into(),
            "nodes".into(),
            "elapsed (ms)".into(),
            "nodes/s".into(),
        ],
    );
    let reps = match scale {
        Scale::Quick => 3,
        Scale::Full => 20,
    };
    // A moderately hard shortest-vector family; identical every run.
    let problems: Vec<Stencil> = (3..=6i64)
        .map(|k| Stencil::new(vec![ivec![1, 0], ivec![0, 1], ivec![1, k]]).expect("valid"))
        .collect();
    let mut nodes = 0u64;
    let start = Instant::now();
    for _ in 0..reps {
        for stencil in &problems {
            let result =
                find_best_uov(stencil, Objective::ShortestVector, &SearchConfig::default())
                    .expect("direct search");
            nodes += result.stats.visited;
        }
    }
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
    let nodes_per_sec = if elapsed_ms > 0.0 {
        nodes as f64 / (elapsed_ms / 1e3)
    } else {
        0.0
    };
    t.push(vec![
        format!("(1,0)(0,1)(1,k) k=3..6 ×{reps}"),
        nodes.to_string(),
        format!("{elapsed_ms:.2}"),
        format!("{nodes_per_sec:.0}"),
    ]);
    SearchFigures {
        nodes,
        elapsed_ms,
        nodes_per_sec,
        table: t,
    }
}

pub(crate) struct ServiceFigures {
    pub(crate) cold_p50_us: u64,
    pub(crate) cold_p99_us: u64,
    pub(crate) warm_p50_us: u64,
    pub(crate) warm_p99_us: u64,
    pub(crate) warm_hit_rate: f64,
    pub(crate) table: Table,
}

/// Closed-loop latency through one server: the cold pass measures the
/// solve path, the warm pass the cache-hit path (its p50 is the
/// cache-hit latency figure in the JSON).
pub(crate) fn service_latency(scale: Scale) -> ServiceFigures {
    let mut t = Table::new(
        "mesh — service latency (cold solve vs cache hit)",
        vec![
            "phase".into(),
            "completed".into(),
            "errors".into(),
            "p50 (µs)".into(),
            "p99 (µs)".into(),
            "hit rate".into(),
        ],
    );
    let mut figures = ServiceFigures {
        cold_p50_us: 0,
        cold_p99_us: 0,
        warm_p50_us: 0,
        warm_p99_us: 0,
        warm_hit_rate: 0.0,
        table: Table::new("placeholder", vec![]),
    };
    let server = match serve("127.0.0.1:0", ServerConfig::default()) {
        Ok(s) => s,
        Err(e) => {
            t.push(vec![
                "unavailable".into(),
                "0".into(),
                e.to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
            figures.table = t;
            return figures;
        }
    };
    let endpoint = server.endpoint().to_string();
    let cfg = LoadGenConfig {
        clients: 4,
        requests_per_client: match scale {
            Scale::Quick => 25,
            Scale::Full => 250,
        },
        distinct_stencils: 6,
        permute: true,
        ..LoadGenConfig::default()
    };
    for phase in ["cold", "warm"] {
        match loadgen::run(&endpoint, &cfg) {
            Ok(r) => {
                if phase == "cold" {
                    figures.cold_p50_us = r.p50_us;
                    figures.cold_p99_us = r.p99_us;
                } else {
                    figures.warm_p50_us = r.p50_us;
                    figures.warm_p99_us = r.p99_us;
                    figures.warm_hit_rate = r.hit_rate();
                }
                t.push(vec![
                    phase.into(),
                    r.completed.to_string(),
                    r.errors.to_string(),
                    r.p50_us.to_string(),
                    r.p99_us.to_string(),
                    format!("{:.1}%", r.hit_rate() * 100.0),
                ]);
            }
            Err(e) => t.push(vec![
                phase.into(),
                "0".into(),
                e.to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]),
        }
    }
    server.shutdown();
    server.join();
    figures.table = t;
    figures
}

struct MeshFigures {
    requests: u64,
    completed: u64,
    identical: u64,
    failovers: u64,
    availability: f64,
    table: Table,
}

/// Routed requests across three shards under a kill/restart schedule:
/// availability is the completed fraction, and every completed answer
/// must be certificate-identical to the direct solve.
fn mesh_availability(scale: Scale) -> MeshFigures {
    let mut t = Table::new(
        "mesh — availability under kill/restart",
        vec![
            "requests".into(),
            "completed".into(),
            "identical".into(),
            "failovers".into(),
            "availability".into(),
        ],
    );
    let passes = match scale {
        Scale::Quick => 2,
        Scale::Full => 10,
    };
    let problems: Vec<Stencil> = (1..=6i64)
        .map(|k| Stencil::new(vec![ivec![1, 0], ivec![0, 1], ivec![1, k]]).expect("valid"))
        .collect();
    let truths: Vec<(uov_isg::IVec, u128, u64)> = problems
        .iter()
        .map(|s| {
            let r = find_best_uov(s, Objective::ShortestVector, &SearchConfig::default())
                .expect("direct search");
            let c = certify(s, &Objective::ShortestVector, &r).expect("certify");
            (r.uov.clone(), r.cost, c.transcript_hash)
        })
        .collect();

    let mut figures = MeshFigures {
        requests: 0,
        completed: 0,
        identical: 0,
        failovers: 0,
        availability: 0.0,
        table: Table::new("placeholder", vec![]),
    };
    let mut set = match ReplicaSet::start(3, ServerConfig::default()) {
        Ok(s) => s,
        Err(e) => {
            t.push(vec![
                "0".into(),
                "0".into(),
                "0".into(),
                e.to_string(),
                "0".into(),
            ]);
            figures.table = t;
            return figures;
        }
    };
    let endpoints: Vec<String> = set.endpoints().to_vec();
    let mut mesh = match MeshClient::new(
        &endpoints,
        MeshConfig {
            backoff_base: std::time::Duration::from_millis(1),
            backoff_max: std::time::Duration::from_millis(4),
            ..MeshConfig::default()
        },
    ) {
        Ok(m) => m,
        Err(e) => {
            t.push(vec![
                "0".into(),
                "0".into(),
                "0".into(),
                e.to_string(),
                "0".into(),
            ]);
            figures.table = t;
            return figures;
        }
    };

    // Kill a rotating shard every pass; restart it the following pass.
    let mut down: Option<usize> = None;
    for pass in 0..passes {
        if let Some(i) = down.take() {
            let _ = set.restart(i);
        }
        let victim = pass % 3;
        set.kill(victim);
        down = Some(victim);
        for (i, stencil) in problems.iter().enumerate() {
            figures.requests += 1;
            let req = PlanRequest {
                stencil: stencil.clone(),
                objective: ObjectiveSpec::ShortestVector,
                deadline_ms: 0,
                flags: 0,
            };
            if let Ok(resp) = mesh.plan(&req) {
                figures.completed += 1;
                let (uov, cost, hash) = &truths[i];
                if &resp.uov == uov && &resp.cost == cost && &resp.certificate_hash == hash {
                    figures.identical += 1;
                }
            }
        }
    }
    figures.failovers = mesh.stats().failovers;
    figures.availability = if figures.requests > 0 {
        figures.completed as f64 / figures.requests as f64
    } else {
        0.0
    };
    set.shutdown_all();
    t.push(vec![
        figures.requests.to_string(),
        figures.completed.to_string(),
        figures.identical.to_string(),
        figures.failovers.to_string(),
        format!("{:.3}", figures.availability),
    ]);
    figures.table = t;
    figures
}

struct DistributedFigures {
    redispatches: u64,
    rounds: u64,
    matches_direct: bool,
    table: Table,
}

/// One distributed search with the home shard killed at round 0:
/// byte-compared to the direct solve, re-dispatch count recorded.
fn distributed_differential() -> DistributedFigures {
    let mut t = Table::new(
        "mesh — distributed search, home shard killed mid-search",
        vec![
            "rounds".into(),
            "redispatches".into(),
            "matches direct".into(),
        ],
    );
    let mut figures = DistributedFigures {
        redispatches: 0,
        rounds: 0,
        matches_direct: false,
        table: Table::new("placeholder", vec![]),
    };
    let stencil = Stencil::new(vec![ivec![1, 0], ivec![0, 1], ivec![1, 5]]).expect("valid");
    let direct = find_best_uov(
        &stencil,
        Objective::ShortestVector,
        &SearchConfig::default(),
    )
    .expect("direct search");
    let cert = certify(&stencil, &Objective::ShortestVector, &direct).expect("certify");

    let Ok(mut set) = ReplicaSet::start(3, ServerConfig::default()) else {
        t.push(vec!["-".into(), "-".into(), "replicas unavailable".into()]);
        figures.table = t;
        return figures;
    };
    let endpoints: Vec<String> = set.endpoints().to_vec();
    let Ok(mut mesh) = MeshClient::new(
        &endpoints,
        MeshConfig {
            local_prefix_nodes: 4,
            unit_node_budget: 12,
            ..MeshConfig::default()
        },
    ) else {
        t.push(vec!["-".into(), "-".into(), "mesh unavailable".into()]);
        figures.table = t;
        return figures;
    };
    let req = PlanRequest {
        stencil,
        objective: ObjectiveSpec::ShortestVector,
        deadline_ms: 0,
        flags: 0,
    };
    let home = mesh.ring().route(MeshClient::routing_key(&req));
    let resp = mesh.plan_distributed_hooked(&req, &mut |round| {
        if round == 0 {
            set.kill(home);
        }
    });
    figures.redispatches = mesh.stats().redispatches;
    figures.rounds = mesh.stats().rounds;
    figures.matches_direct = resp.is_ok_and(|r| {
        r.uov == direct.uov && r.cost == direct.cost && r.certificate_hash == cert.transcript_hash
    });
    set.shutdown_all();
    t.push(vec![
        figures.rounds.to_string(),
        figures.redispatches.to_string(),
        figures.matches_direct.to_string(),
    ]);
    figures.table = t;
    figures
}

struct PartitionFigures {
    requests: u64,
    completed: u64,
    identical: u64,
    failovers: u64,
    partitioned_requests: u64,
    warm_failover_hits: u64,
    warm_failover_hit_rate: f64,
    stale_epoch_rejections: u64,
    distributed_matches: bool,
    availability: f64,
    table: Table,
}

/// Routed requests across three shards, each behind a chaos proxy,
/// under a rotating partition-and-heal schedule. A warm pass first lets
/// the home shards solve and replicate to their ring successors; then
/// each pass partitions one shard symmetrically and serves the full
/// stream through the cut. Availability is the completed fraction, the
/// warm-failover hit rate is the fraction of partitioned-home requests
/// served from a neighbor's replicated cache, and a final
/// asymmetric-partition distributed solve (responses held, then healed)
/// exercises the lease fence so stale-epoch rejections are measured too.
fn partition_availability(scale: Scale) -> PartitionFigures {
    let mut t = Table::new(
        "mesh — availability under partition-and-heal",
        vec![
            "requests".into(),
            "completed".into(),
            "identical".into(),
            "failovers".into(),
            "warm failover hits".into(),
            "warm failover rate".into(),
            "stale epochs".into(),
            "availability".into(),
        ],
    );
    let mut figures = PartitionFigures {
        requests: 0,
        completed: 0,
        identical: 0,
        failovers: 0,
        partitioned_requests: 0,
        warm_failover_hits: 0,
        warm_failover_hit_rate: 0.0,
        stale_epoch_rejections: 0,
        distributed_matches: false,
        availability: 0.0,
        table: Table::new("placeholder", vec![]),
    };
    let fail = |t: &mut Table, figures: &mut PartitionFigures, e: String| {
        t.push(vec![
            "0".into(),
            "0".into(),
            "0".into(),
            e,
            "-".into(),
            "-".into(),
            "-".into(),
            "0".into(),
        ]);
        figures.table = std::mem::replace(t, Table::new("moved", vec![]));
    };

    let passes = match scale {
        Scale::Quick => 2,
        Scale::Full => 6,
    };
    let problems: Vec<Stencil> = (1..=6i64)
        .map(|k| Stencil::new(vec![ivec![1, 0], ivec![0, 1], ivec![1, k]]).expect("valid"))
        .collect();
    let truths: Vec<(uov_isg::IVec, u128, u64)> = problems
        .iter()
        .map(|s| {
            let r = find_best_uov(s, Objective::ShortestVector, &SearchConfig::default())
                .expect("direct search");
            let c = certify(s, &Objective::ShortestVector, &r).expect("certify");
            (r.uov.clone(), r.cost, c.transcript_hash)
        })
        .collect();

    let set = match ReplicaSet::start(3, ServerConfig::default()) {
        Ok(s) => s,
        Err(e) => {
            fail(&mut t, &mut figures, e.to_string());
            return figures;
        }
    };
    let proxies: Vec<ChaosProxy> = match set
        .endpoints()
        .iter()
        .map(|ep| {
            ChaosProxy::start(
                ep,
                ChaosConfig {
                    seed: 7,
                    ..ChaosConfig::default()
                },
            )
        })
        .collect::<Result<_, _>>()
    {
        Ok(p) => p,
        Err(e) => {
            fail(&mut t, &mut figures, e.to_string());
            return figures;
        }
    };
    let proxy_endpoints: Vec<String> = proxies.iter().map(|p| p.endpoint().to_string()).collect();
    let cfg = MeshConfig {
        attempt_timeout: Duration::from_secs(1),
        failure_threshold: 1,
        backoff_base: Duration::from_millis(1),
        backoff_max: Duration::from_millis(4),
        seed: 7,
        ..MeshConfig::default()
    };
    let mut mesh = match MeshClient::new(&proxy_endpoints, cfg.clone()) {
        Ok(m) => m,
        Err(e) => {
            fail(&mut t, &mut figures, e.to_string());
            return figures;
        }
    };

    let serve_stream =
        |mesh: &mut MeshClient, figures: &mut PartitionFigures, partitioned: Option<usize>| {
            for (i, stencil) in problems.iter().enumerate() {
                let req = PlanRequest {
                    stencil: stencil.clone(),
                    objective: ObjectiveSpec::ShortestVector,
                    deadline_ms: 0,
                    flags: 0,
                };
                let home = mesh.ring().route(MeshClient::routing_key(&req));
                let home_cut = partitioned == Some(home);
                figures.requests += 1;
                if home_cut {
                    figures.partitioned_requests += 1;
                }
                if let Ok(resp) = mesh.plan(&req) {
                    figures.completed += 1;
                    let (uov, cost, hash) = &truths[i];
                    if &resp.uov == uov && &resp.cost == cost && &resp.certificate_hash == hash {
                        figures.identical += 1;
                    }
                    if home_cut && resp.cache == CacheOutcome::Hit {
                        figures.warm_failover_hits += 1;
                    }
                }
            }
        };

    // Warm pass: every home solves its problems and replicates the
    // certified entries to its ring successor, undisturbed.
    serve_stream(&mut mesh, &mut figures, None);
    // Partition passes: cut one shard per pass, serve the full stream
    // through the cut, heal, rotate.
    for pass in 0..passes {
        let victim = pass % 3;
        proxies[victim].partition_symmetric();
        serve_stream(&mut mesh, &mut figures, Some(victim));
        proxies[victim].heal();
    }
    figures.failovers = mesh.stats().failovers;

    // Distributed solve through an asymmetric partition (requests pass,
    // responses held) that heals mid-search: the held completion comes
    // back under a superseded lease and must be fenced by epoch.
    let stencil = Stencil::new(vec![ivec![1, 0], ivec![0, 1], ivec![1, 5]]).expect("valid");
    let direct = find_best_uov(
        &stencil,
        Objective::ShortestVector,
        &SearchConfig::default(),
    )
    .expect("direct search");
    let cert = certify(&stencil, &Objective::ShortestVector, &direct).expect("certify");
    let mut dmesh = match MeshClient::new(
        &proxy_endpoints,
        MeshConfig {
            local_prefix_nodes: 4,
            unit_node_budget: 12,
            gossip: false,
            ..cfg
        },
    ) {
        Ok(m) => m,
        Err(e) => {
            fail(&mut t, &mut figures, e.to_string());
            return figures;
        }
    };
    let req = PlanRequest {
        stencil,
        objective: ObjectiveSpec::ShortestVector,
        deadline_ms: 0,
        flags: 0,
    };
    let home = dmesh.ring().route(MeshClient::routing_key(&req));
    let resp = dmesh.plan_distributed_hooked(&req, &mut |round| match round {
        0 => proxies[home].partition_asymmetric(false, true),
        1 => proxies[home].heal(),
        _ => {}
    });
    proxies[home].heal();
    figures.stale_epoch_rejections = dmesh.stats().stale_epoch_rejections;
    figures.distributed_matches = resp.is_ok_and(|r| {
        r.uov == direct.uov && r.cost == direct.cost && r.certificate_hash == cert.transcript_hash
    });

    figures.availability = if figures.requests > 0 {
        figures.completed as f64 / figures.requests as f64
    } else {
        0.0
    };
    figures.warm_failover_hit_rate = if figures.partitioned_requests > 0 {
        figures.warm_failover_hits as f64 / figures.partitioned_requests as f64
    } else {
        0.0
    };
    for p in proxies {
        p.stop();
    }
    set.shutdown_all();
    t.push(vec![
        figures.requests.to_string(),
        figures.completed.to_string(),
        figures.identical.to_string(),
        figures.failovers.to_string(),
        figures.warm_failover_hits.to_string(),
        format!("{:.3}", figures.warm_failover_hit_rate),
        figures.stale_epoch_rejections.to_string(),
        format!("{:.3}", figures.availability),
    ]);
    figures.table = t;
    figures
}

/// Hand-rolled JSON with a fixed key order; all floats are finite by
/// construction, so the output is always valid JSON.
fn render_json(
    search: &SearchFigures,
    service: &ServiceFigures,
    mesh: &MeshFigures,
    distributed: &DistributedFigures,
) -> String {
    format!(
        concat!(
            "{{\n",
            "  \"schema\": \"uov-bench-pr6-v1\",\n",
            "  \"scale\": \"full\",\n",
            "  \"build\": \"{}\",\n",
            "  \"search\": {{\n",
            "    \"nodes\": {},\n",
            "    \"elapsed_ms\": {:.3},\n",
            "    \"nodes_per_sec\": {:.1}\n",
            "  }},\n",
            "  \"service\": {{\n",
            "    \"cold_p50_us\": {},\n",
            "    \"cold_p99_us\": {},\n",
            "    \"warm_p50_us\": {},\n",
            "    \"warm_p99_us\": {},\n",
            "    \"cache_hit_p50_us\": {},\n",
            "    \"warm_hit_rate\": {:.4}\n",
            "  }},\n",
            "  \"mesh\": {{\n",
            "    \"requests\": {},\n",
            "    \"completed\": {},\n",
            "    \"identical\": {},\n",
            "    \"failovers\": {},\n",
            "    \"availability\": {:.4}\n",
            "  }},\n",
            "  \"distributed\": {{\n",
            "    \"rounds\": {},\n",
            "    \"redispatches\": {},\n",
            "    \"matches_direct\": {}\n",
            "  }}\n",
            "}}\n",
        ),
        perf::build_marker(),
        search.nodes,
        search.elapsed_ms,
        search.nodes_per_sec,
        service.cold_p50_us,
        service.cold_p99_us,
        service.warm_p50_us,
        service.warm_p99_us,
        service.warm_p50_us,
        service.warm_hit_rate,
        mesh.requests,
        mesh.completed,
        mesh.identical,
        mesh.failovers,
        mesh.availability,
        distributed.rounds,
        distributed.redispatches,
        distributed.matches_direct,
    )
}

/// The `BENCH_pr8.json` artifact: availability and warm-failover hit
/// rate under the partition schedule. Deliberately carries no
/// `nodes_per_sec` figure — it measures availability, not throughput —
/// so the `bench-check` gate reports it without scoring it.
fn render_pr8_json(p: &PartitionFigures) -> String {
    format!(
        concat!(
            "{{\n",
            "  \"schema\": \"uov-bench-pr8-v1\",\n",
            "  \"scale\": \"full\",\n",
            "  \"build\": \"{}\",\n",
            "  \"partition\": {{\n",
            "    \"requests\": {},\n",
            "    \"completed\": {},\n",
            "    \"identical\": {},\n",
            "    \"failovers\": {},\n",
            "    \"partitioned_requests\": {},\n",
            "    \"warm_failover_hits\": {},\n",
            "    \"warm_failover_hit_rate\": {:.4},\n",
            "    \"stale_epoch_rejections\": {},\n",
            "    \"distributed_matches_direct\": {},\n",
            "    \"availability\": {:.4}\n",
            "  }}\n",
            "}}\n",
        ),
        perf::build_marker(),
        p.requests,
        p.completed,
        p.identical,
        p.failovers,
        p.partitioned_requests,
        p.warm_failover_hits,
        p.warm_failover_hit_rate,
        p.stale_epoch_rejections,
        p.distributed_matches,
        p.availability,
    )
}
