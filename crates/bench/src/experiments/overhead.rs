//! Overhead experiments (Figures 7 and 8): cycles per iteration on
//! problem sizes that fit in cache, comparing the indexing overhead of
//! the storage variants.

use uov_kernels::mem::TracedMemory;
use uov_kernels::{psm, stencil5, workloads};
use uov_memsim::{machines, Machine};

use crate::report::{fmt_f64, Table};
use crate::Scale;

/// Cycles per iteration of a stencil-5 run on `machine`.
pub fn stencil5_cpi(
    machine: Machine,
    variant: stencil5::Variant,
    len: usize,
    time_steps: usize,
    tile: Option<(usize, usize)>,
) -> f64 {
    let input = workloads::random_f32(len, 7);
    let cfg = stencil5::Stencil5Config {
        len,
        time_steps,
        tile,
    };
    let mut mem = TracedMemory::new(machine);
    let _ = stencil5::run(&mut mem, variant, &cfg, &input);
    mem.machine().cycles() as f64 / (len * time_steps) as f64
}

/// Cycles per iteration of a PSM run on `machine`.
pub fn psm_cpi(
    machine: Machine,
    variant: psm::Variant,
    n0: usize,
    n1: usize,
    tile: Option<(usize, usize)>,
) -> f64 {
    let s0 = workloads::random_protein(n0, 31);
    let s1 = workloads::random_protein(n1, 41);
    let table = workloads::WeightTable::synthetic(5);
    let cfg = psm::PsmConfig { n0, n1, tile };
    let mut mem = TracedMemory::new(machine);
    let _ = psm::run(&mut mem, variant, &cfg, &s0, &s1, &table);
    mem.machine().cycles() as f64 / (n0 * n1) as f64
}

/// Figure 7: 5-point stencil overhead with an in-L1 working set
/// (four untiled versions × three machines).
pub fn fig7(scale: Scale) -> Table {
    // 2L floats must fit the smallest L1 (8 KB = 2048 floats): L = 512.
    // Many time steps amortise the cold start.
    let (len, t_steps) = match scale {
        Scale::Quick => (512, 32),
        Scale::Full => (512, 256),
    };
    let versions = [
        stencil5::Variant::StorageOptimized,
        stencil5::Variant::Natural,
        stencil5::Variant::OvInterleaved,
        stencil5::Variant::OvBlocked,
    ];
    let mut t = Table::new(
        format!("Figure 7 — 5-pt stencil overhead, in-cache (L={len}, T={t_steps}), cycles/iter"),
        std::iter::once("version".to_string())
            .chain(machines::all().iter().map(|m| m.name().to_string()))
            .collect(),
    );
    for v in versions {
        let mut row = vec![v.label().to_string()];
        for m in machines::all() {
            row.push(fmt_f64(stencil5_cpi(m, v, len, t_steps, None)));
        }
        t.push(row);
    }
    t
}

/// Figure 8: protein string matching overhead with an in-cache working
/// set (three untiled versions × three machines).
pub fn fig8(scale: Scale) -> Table {
    // Natural H (n+1)² floats ≈ 6.6 KB at n = 40 — inside every L1.
    let n = match scale {
        Scale::Quick => 40,
        Scale::Full => 40,
    };
    let reps = match scale {
        Scale::Quick => 4,
        Scale::Full => 16,
    };
    let versions = [
        psm::Variant::StorageOptimized,
        psm::Variant::Natural,
        psm::Variant::OvMapped,
    ];
    let mut t = Table::new(
        format!(
            "Figure 8 — PSM overhead, in-cache (n0=n1={n}, {reps} warm repetitions), cycles/iter"
        ),
        std::iter::once("version".to_string())
            .chain(machines::all().iter().map(|m| m.name().to_string()))
            .collect(),
    );
    let s0 = workloads::random_protein(n, 31);
    let s1 = workloads::random_protein(n, 41);
    let table = workloads::WeightTable::synthetic(5);
    let cfg = psm::PsmConfig {
        n0: n,
        n1: n,
        tile: None,
    };
    for v in versions {
        let mut row = vec![v.label().to_string()];
        for machine in machines::all() {
            let mut mem = TracedMemory::new(machine);
            for _ in 0..reps {
                let _ = psm::run(&mut mem, v, &cfg, &s0, &s1, &table);
            }
            row.push(fmt_f64(
                mem.machine().cycles() as f64 / (n * n * reps) as f64,
            ));
        }
        t.push(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_shape_overheads_are_comparable() {
        // In cache, all versions must be within a small factor of each
        // other on every machine (the paper's point: OV overhead is
        // negligible).
        let t = fig7(Scale::Quick);
        for col in 1..=3 {
            let cpis: Vec<f64> = t
                .rows()
                .iter()
                .map(|r| r[col].parse::<f64>().unwrap())
                .collect();
            let (min, max) = cpis
                .iter()
                .fold((f64::MAX, 0.0f64), |(lo, hi), &c| (lo.min(c), hi.max(c)));
            assert!(
                max / min < 2.0,
                "in-cache versions should be within 2x (col {col}: {cpis:?})"
            );
            assert!(min > 1.0, "cycles per iteration below 1 is implausible");
        }
    }

    #[test]
    fn fig8_ov_beats_natural_and_opt_beats_ov() {
        // The paper's Figure 8 ordering: storage-optimized has the lowest
        // overhead, OV-mapped beats natural.
        let t = fig8(Scale::Quick);
        for col in 1..=3 {
            let opt: f64 = t.rows()[0][col].parse().unwrap();
            let nat: f64 = t.rows()[1][col].parse().unwrap();
            let ov: f64 = t.rows()[2][col].parse().unwrap();
            assert!(opt <= ov + 0.5, "col {col}: opt {opt} vs ov {ov}");
            assert!(ov <= nat + 0.5, "col {col}: ov {ov} vs nat {nat}");
        }
    }

    #[test]
    fn psm_cpi_reflects_branch_cost() {
        // Ultra 2 charges 12 cycles per branch vs the Pentium Pro's 4; the
        // PSM inner loop has 4 branches, so the gap must show.
        let pp = psm_cpi(machines::pentium_pro(), psm::Variant::Natural, 64, 64, None);
        let u2 = psm_cpi(machines::ultra_2(), psm::Variant::Natural, 64, 64, None);
        assert!(u2 > pp + 16.0, "u2 {u2} vs pp {pp}");
    }
}
