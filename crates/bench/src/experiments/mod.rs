//! One module per experiment family.

pub mod ablation;
pub mod autotune;
pub mod baseline;
pub mod chaos;
pub mod extension;
pub mod mesh;
pub mod npc;
pub mod overhead;
pub mod overload;
pub mod perf;
pub mod resilience;
pub mod scaling;
pub mod service;
pub mod storage;

use crate::{Scale, Table};

/// Run an experiment by its paper name (`fig1`, `table2`, `fig10`, `npc`,
/// `ablation`, …). Returns `None` for unknown names.
pub fn run(name: &str, scale: Scale) -> Option<Vec<Table>> {
    Some(match name {
        "fig1" => vec![storage::fig1()],
        "fig2" => vec![storage::fig2()],
        "fig3" => vec![storage::fig3()],
        "fig5" => vec![storage::fig5()],
        "fig6" => vec![storage::fig6()],
        "table1" => vec![storage::table1()],
        "table2" => vec![storage::table2()],
        "fig7" => vec![overhead::fig7(scale)],
        "fig8" => vec![overhead::fig8(scale)],
        "fig9" => vec![scaling::stencil5_scaling(0, scale)],
        "fig10" => vec![scaling::stencil5_scaling(1, scale)],
        "fig11" => vec![scaling::stencil5_scaling(2, scale)],
        "fig12" => vec![scaling::psm_scaling(0, scale)],
        "fig13" => vec![scaling::psm_scaling(1, scale)],
        "fig14" => vec![scaling::psm_scaling(2, scale)],
        "npc" => vec![npc::reduction_demo(scale)],
        "ablation" => ablation::all(scale),
        "parallel" => vec![ablation::parallel_consistency(scale)],
        "resilience" => resilience::all(scale),
        "service" => service::all(scale),
        "chaos" => chaos::all(scale),
        "mesh" => mesh::all(scale),
        "partition" => mesh::partition(scale),
        "perf" => perf::all(scale),
        "autotune" => autotune::all(scale),
        "overload" => overload::all(scale),
        "jacobi" => vec![extension::jacobi(scale)],
        "tiles" => vec![extension::tile_sweep(scale)],
        "baseline" => vec![
            baseline::storage_vs_schedule(scale),
            baseline::storage_vs_schedule_no_diag(scale),
        ],
        _ => return None,
    })
}

/// Every experiment name, in paper order.
pub fn all_names() -> Vec<&'static str> {
    vec![
        "fig1",
        "fig2",
        "fig3",
        "fig5",
        "fig6",
        "table1",
        "table2",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "fig14",
        "npc",
        "ablation",
        "parallel",
        "resilience",
        "service",
        "chaos",
        "mesh",
        "autotune",
        "partition",
        "perf",
        "overload",
        "jacobi",
        "tiles",
        "baseline",
    ]
}
