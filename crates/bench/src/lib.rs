//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§5), plus the worked examples of §1–§4.
//!
//! Each experiment is a function returning a [`report::Table`]; the
//! `experiments` binary dispatches on experiment names and prints the
//! tables as markdown (and CSV under `results/`). The mapping from paper
//! artefact to experiment:
//!
//! | paper artefact | experiment | module |
//! |----------------|------------|--------|
//! | Figure 1 (storage of the 3 versions) | `fig1` | [`experiments::storage`] |
//! | Figure 3 (longer OV can win) | `fig3` | [`experiments::storage`] |
//! | Figure 5 (stencil-5 UOV) + Figure 6 | `fig5`, `fig6` | [`experiments::storage`] |
//! | Table 1 / Table 2 (kernel storage) | `table1`, `table2` | [`experiments::storage`] |
//! | Figure 7 / Figure 8 (overhead, in-cache) | `fig7`, `fig8` | [`experiments::overhead`] |
//! | Figures 9–11 (5-pt stencil scaling) | `fig9`, `fig10`, `fig11` | [`experiments::scaling`] |
//! | Figures 12–14 (PSM scaling) | `fig12`, `fig13`, `fig14` | [`experiments::scaling`] |
//! | §3.1 theorem (NP-completeness) | `npc` | [`experiments::npc`] |
//! | §3.2 search behaviour (ablation) | `ablation` | [`experiments::ablation`] |
//!
//! Cycles come from the deterministic machine models of `uov-memsim`
//! (substituting for the 1998 hardware — see DESIGN.md §5); wall-clock
//! counterparts live in `benches/`.

#![warn(missing_docs)]

pub mod experiments;
pub mod report;

pub use report::Table;

/// Deterministic parallel map for experiment sweeps: results come back in
/// input order, identical to the sequential map (see `uov_core::par`).
pub use uov_core::par::fan_out as par_map;

/// Worker threads for embarrassingly-parallel experiment sweeps: the
/// `UOV_BENCH_THREADS` environment variable when set (`1` forces the
/// sequential path, e.g. for timing baselines), else every host core.
pub fn sweep_threads() -> usize {
    std::env::var("UOV_BENCH_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// How big the experiment sweeps are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small sweeps for CI and smoke testing (seconds).
    Quick,
    /// The full sweeps used for EXPERIMENTS.md (minutes).
    Full,
}
