//! Minimal tabular reporting: markdown to stdout, CSV to disk.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A rectangular results table with a title and column headers.
///
/// # Examples
///
/// ```
/// use uov_bench::Table;
///
/// let mut t = Table::new("demo", vec!["machine".into(), "cycles/iter".into()]);
/// t.push(vec!["Pentium Pro (sim)".into(), "12.3".into()]);
/// assert!(t.to_markdown().contains("machine"));
/// assert!(t.to_csv().starts_with("machine,cycles/iter\n"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// An empty table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: Vec<String>) -> Self {
        Table {
            title: title.into(),
            headers,
            rows: Vec::new(),
        }
    }

    /// The table's title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Append a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Render as a markdown table (title as a heading).
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(line, " {cell:<w$} |");
            }
            line
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{:-<width$}|", "", width = w + 2);
        }
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Render as CSV (headers first). Cells containing commas or quotes
    /// are quoted per RFC 4180 — occupancy vectors print as `(1, 1)`.
    pub fn to_csv(&self) -> String {
        fn field(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        let join = |cells: &[String]| -> String {
            cells.iter().map(|c| field(c)).collect::<Vec<_>>().join(",")
        };
        let _ = writeln!(out, "{}", join(&self.headers));
        for row in &self.rows {
            let _ = writeln!(out, "{}", join(row));
        }
        out
    }

    /// Write the CSV next to other results.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_csv(&self, dir: &Path, name: &str) -> io::Result<()> {
        fs::create_dir_all(dir)?;
        fs::write(dir.join(format!("{name}.csv")), self.to_csv())
    }
}

/// Format a float with sensible precision for cycle counts.
pub fn fmt_f64(v: f64) -> String {
    if v >= 1000.0 {
        format!("{v:.0}")
    } else if v >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_and_csv_round_trip() {
        let mut t = Table::new("x", vec!["a".into(), "b".into()]);
        t.push(vec!["1".into(), "2".into()]);
        t.push(vec!["3".into(), "4".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### x"));
        assert!(md.lines().count() >= 5);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n1,2\n3,4\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        let mut t = Table::new("x", vec!["a".into()]);
        t.push(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(12345.6), "12346");
        assert_eq!(fmt_f64(42.25), "42.2");
        assert_eq!(fmt_f64(1.23456), "1.23");
    }
}

#[cfg(test)]
mod csv_io_tests {
    use super::*;

    #[test]
    fn save_csv_writes_and_creates_dirs() {
        let dir = std::env::temp_dir().join("uov_report_test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut t = Table::new("t", vec!["a".into()]);
        t.push(vec!["1".into()]);
        t.save_csv(&dir, "demo").expect("writable temp dir");
        let body = std::fs::read_to_string(dir.join("demo.csv")).unwrap();
        assert_eq!(body, "a\n1\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn title_accessor() {
        let t = Table::new("hello", vec!["x".into()]);
        assert_eq!(t.title(), "hello");
        assert!(t.rows().is_empty());
    }
}

#[cfg(test)]
mod csv_quoting_tests {
    use super::*;

    #[test]
    fn cells_with_commas_are_quoted() {
        let mut t = Table::new("t", vec!["ov".into(), "n".into()]);
        t.push(vec!["(1, 1)".into(), "41".into()]);
        assert_eq!(t.to_csv(), "ov,n\n\"(1, 1)\",41\n");
    }

    #[test]
    fn quotes_are_doubled() {
        let mut t = Table::new("t", vec!["x".into()]);
        t.push(vec!["say \"hi\"".into()]);
        assert_eq!(t.to_csv(), "x\n\"say \"\"hi\"\"\"\n");
    }
}
