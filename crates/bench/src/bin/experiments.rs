//! Regenerate the paper's tables and figures.
//!
//! ```text
//! experiments [--quick] [--csv DIR] [NAME…|all]
//! ```
//!
//! Names are the paper's own: `fig1 fig2 fig3 fig5 fig6 table1 table2
//! fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14 npc ablation`.

use std::path::PathBuf;
use std::process::ExitCode;

use uov_bench::{experiments, Scale};

fn main() -> ExitCode {
    let mut scale = Scale::Full;
    let mut csv_dir: Option<PathBuf> = None;
    let mut names: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => scale = Scale::Quick,
            "--csv" => match args.next() {
                Some(dir) => csv_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--csv needs a directory argument");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("usage: experiments [--quick] [--csv DIR] [NAME…|all]");
                println!("experiments: {}", experiments::all_names().join(" "));
                return ExitCode::SUCCESS;
            }
            name => names.push(name.to_string()),
        }
    }
    if names.is_empty() || names.iter().any(|n| n == "all") {
        names = experiments::all_names()
            .iter()
            .map(|s| s.to_string())
            .collect();
    }

    for name in &names {
        // `bench-check` is a gate, not an experiment: it compares the
        // committed BENCH_pr*.json artifacts and fails the run on a >20%
        // nodes/sec regression between consecutive PRs.
        if name == "bench-check" {
            let (table, ok) = experiments::perf::bench_check();
            println!("{}", table.to_markdown());
            if !ok {
                eprintln!("bench-check: search throughput regressed beyond tolerance");
                return ExitCode::FAILURE;
            }
            continue;
        }
        let Some(tables) = experiments::run(name, scale) else {
            eprintln!(
                "unknown experiment `{name}` (known: {})",
                experiments::all_names().join(", ")
            );
            return ExitCode::FAILURE;
        };
        for (i, table) in tables.iter().enumerate() {
            println!("{}", table.to_markdown());
            if let Some(dir) = &csv_dir {
                let file = if tables.len() == 1 {
                    name.clone()
                } else {
                    format!("{name}_{i}")
                };
                if let Err(e) = table.save_csv(dir, &file) {
                    eprintln!("failed to write {file}.csv: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    ExitCode::SUCCESS
}
