//! Wall-clock for the 3-D extension kernel: 2-D Jacobi over time, all
//! storage variants, sweeping the grid side.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use uov_kernels::jacobi2d::{run, Jacobi2dConfig, Variant};
use uov_kernels::mem::PlainMemory;
use uov_kernels::workloads;

fn bench_jacobi2d(c: &mut Criterion) {
    let mut group = c.benchmark_group("jacobi2d");
    group.sample_size(10);
    for &n in &[64usize, 256, 1024] {
        let time_steps = 4;
        let input = workloads::random_f32(n * n, 1);
        group.throughput(Throughput::Elements((n * n * time_steps) as u64));
        for variant in Variant::all() {
            let cfg = Jacobi2dConfig {
                n,
                time_steps,
                tile: None,
                pad: 0,
            };
            group.bench_with_input(BenchmarkId::new(variant.label(), n), &cfg, |b, cfg| {
                b.iter(|| {
                    let mut mem = PlainMemory::new();
                    run(&mut mem, variant, cfg, &input)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_jacobi2d);
criterion_main!(benches);
