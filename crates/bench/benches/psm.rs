//! Wall-clock counterpart of Figures 8 and 12–14: protein string matching
//! on the host machine, every storage variant, sweeping string length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use uov_kernels::mem::PlainMemory;
use uov_kernels::psm::{run, PsmConfig, Variant};
use uov_kernels::workloads;

fn bench_psm(c: &mut Criterion) {
    let mut group = c.benchmark_group("psm");
    group.sample_size(10);
    let table = workloads::WeightTable::synthetic(5);
    for &n in &[100usize, 1_000, 3_000] {
        let s0 = workloads::random_protein(n, 31);
        let s1 = workloads::random_protein(n, 41);
        group.throughput(Throughput::Elements((n * n) as u64));
        for variant in Variant::all() {
            let cfg = PsmConfig {
                n0: n,
                n1: n,
                tile: None,
            };
            group.bench_with_input(BenchmarkId::new(variant.label(), n), &cfg, |b, cfg| {
                b.iter(|| {
                    let mut mem = PlainMemory::new();
                    run(&mut mem, variant, cfg, &s0, &s1, &table)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_psm);
criterion_main!(benches);
