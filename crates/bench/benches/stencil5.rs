//! Wall-clock counterpart of Figures 7 and 9–11: the 5-point stencil on
//! the host machine, every storage variant, sweeping the array length.
//!
//! Absolute times are host-specific; the comparison of interest is the
//! *relative* behaviour of the variants as the problem leaves cache.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use uov_kernels::mem::PlainMemory;
use uov_kernels::stencil5::{run, Stencil5Config, Variant};
use uov_kernels::workloads;

fn bench_stencil5(c: &mut Criterion) {
    let mut group = c.benchmark_group("stencil5");
    group.sample_size(10);
    for &len in &[10_000usize, 1_000_000, 10_000_000] {
        let time_steps = 4;
        let input = workloads::random_f32(len, 1);
        group.throughput(Throughput::Elements((len * time_steps) as u64));
        for variant in Variant::all() {
            // The natural variant at L = 10M would allocate T·L floats;
            // keep host memory bounded like the paper's graphs cap theirs.
            if len >= 10_000_000 && matches!(variant, Variant::Natural | Variant::NaturalTiled) {
                continue;
            }
            let cfg = Stencil5Config {
                len,
                time_steps,
                tile: None,
            };
            group.bench_with_input(BenchmarkId::new(variant.label(), len), &cfg, |b, cfg| {
                b.iter(|| {
                    let mut mem = PlainMemory::new();
                    run(&mut mem, variant, cfg, &input)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_stencil5);
criterion_main!(benches);
