//! Compile-time cost of the UOV machinery itself: cone-membership
//! queries, the branch-and-bound search (paper §3.2 — "our branch and
//! bound algorithm is practical"), and NPC-instance membership.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uov_core::npc::PartitionInstance;
use uov_core::search::{find_best_uov, Objective, SearchConfig};
use uov_core::DoneOracle;
use uov_isg::{IVec, Stencil};

fn stencils() -> Vec<(&'static str, Stencil)> {
    let v = |coords: &[[i64; 2]]| -> Vec<IVec> { coords.iter().map(|&c| IVec::from(c)).collect() };
    vec![
        ("fig1", Stencil::new(v(&[[1, 0], [0, 1], [1, 1]])).unwrap()),
        (
            "stencil5",
            Stencil::new(v(&[[1, -2], [1, -1], [1, 0], [1, 1], [1, 2]])).unwrap(),
        ),
        (
            "9pt",
            Stencil::new(v(&[
                [1, -4],
                [1, -3],
                [1, -2],
                [1, -1],
                [1, 0],
                [1, 1],
                [1, 2],
                [1, 3],
                [1, 4],
            ]))
            .unwrap(),
        ),
    ]
}

fn bench_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("uov_search");
    for (name, s) in stencils() {
        group.bench_with_input(BenchmarkId::new("branch_and_bound", name), &s, |b, s| {
            b.iter(|| find_best_uov(s, Objective::ShortestVector, &SearchConfig::default()))
        });
        group.bench_with_input(BenchmarkId::new("is_uov_cold", name), &s, |b, s| {
            let w = s.sum();
            b.iter(|| DoneOracle::new(s).is_uov(&w))
        });
    }
    group.finish();
}

/// The parallel engine on the 13-vector 3-D stencil, threads = 1 vs the
/// host core count. On a 4+ core machine the parallel run should show the
/// ≥ 2× wall-clock speedup; on any machine the results are identical.
fn bench_parallel_search(c: &mut Criterion) {
    let s = uov_bench::experiments::ablation::stencil_3d();
    let ncores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut counts = vec![1usize, 2, 4, ncores];
    counts.sort_unstable();
    counts.dedup();
    let mut group = c.benchmark_group("uov_search_parallel");
    for threads in counts {
        group.bench_with_input(
            BenchmarkId::new("3d_stencil", threads),
            &threads,
            |b, &threads| {
                let config = SearchConfig {
                    threads,
                    ..SearchConfig::default()
                };
                b.iter(|| find_best_uov(&s, Objective::ShortestVector, &config))
            },
        );
    }
    group.finish();
}

fn bench_npc(c: &mut Criterion) {
    let mut group = c.benchmark_group("npc_membership");
    for n in [4usize, 6, 8] {
        let values: Vec<i64> = (1..=n as i64).collect();
        let inst = PartitionInstance::new(values).unwrap();
        group.bench_with_input(
            BenchmarkId::new("partition_via_uov", n),
            &inst,
            |b, inst| b.iter(|| inst.solve_via_uov()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_search, bench_parallel_search, bench_npc);
criterion_main!(benches);
