//! Concrete execution orders for perfect loop nests.

use std::fmt;

use uov_isg::num::floor_div;
use uov_isg::{IMat, IVec, IterationDomain, RectDomain};

/// A schedule: a rule assigning every iteration of a rectangular domain a
/// position in a total execution order.
///
/// Schedules are *descriptions*; [`LoopSchedule::order`] materialises the
/// order for a concrete domain. Tiling follows the paper's §2: the ISG is
/// partitioned into atomic rectangular tiles executed one after another,
/// points within a tile running lexicographically.
///
/// # Examples
///
/// ```
/// use uov_isg::{ivec, RectDomain};
/// use uov_schedule::LoopSchedule;
///
/// let dom = RectDomain::grid(2, 2);
/// let order = LoopSchedule::Interchange(vec![1, 0]).order(&dom);
/// // Column-major: j varies slowest after interchange.
/// assert_eq!(order[0], ivec![1, 1]);
/// assert_eq!(order[1], ivec![2, 1]);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub enum LoopSchedule {
    /// The original program order: lexicographic on iteration coordinates.
    Lexicographic,
    /// Loop interchange: `perm[k]` is the original axis iterated at nesting
    /// depth `k`. `Interchange(vec![1, 0])` swaps a 2-deep nest.
    Interchange(Vec<usize>),
    /// Execute in lexicographic order of the transformed coordinates
    /// `M · p` for a unimodular `M` (skewing, reversal-free interchange,
    /// …). The classic skew `j' = j + f·i` is
    /// `M = [[1, 0], [f, 1]]`.
    Transformed(IMat),
    /// Rectangular tiling of the original space: tiles of shape `tile`
    /// (one extent per axis, aligned to the domain's lower corner) executed
    /// in lexicographic tile order, points inside a tile in lexicographic
    /// order.
    Tiled {
        /// Tile extent per axis; every entry must be ≥ 1.
        tile: Vec<i64>,
    },
    /// Tiling applied in the image of a unimodular transformation — e.g.
    /// skewed tiling, the legal way to tile the paper's 5-point stencil.
    TransformedTiled {
        /// The unimodular transformation applied first.
        transform: IMat,
        /// Tile extent per (transformed) axis; every entry must be ≥ 1.
        tile: Vec<i64>,
    },
    /// Wavefront execution: points ordered by `weights · p`, ties broken
    /// lexicographically. `Wavefront((1,1))` is the anti-diagonal sweep.
    Wavefront(IVec),
}

impl LoopSchedule {
    /// Convenience constructor for [`LoopSchedule::Tiled`].
    pub fn tiled(tile: Vec<i64>) -> Self {
        LoopSchedule::Tiled { tile }
    }

    /// Convenience constructor: skewed tiling `j' = j + f·i` in 2-D.
    pub fn skewed_tiled_2d(f: i64, tile: Vec<i64>) -> Self {
        LoopSchedule::TransformedTiled {
            transform: IMat::from_rows(&[IVec::from([1, 0]), IVec::from([f, 1])]),
            tile,
        }
    }

    /// A short human-readable name for experiment output.
    pub fn name(&self) -> String {
        match self {
            LoopSchedule::Lexicographic => "lexicographic".to_string(),
            LoopSchedule::Interchange(p) => format!("interchange{p:?}"),
            LoopSchedule::Transformed(_) => "transformed".to_string(),
            LoopSchedule::Tiled { tile } => format!("tiled{tile:?}"),
            LoopSchedule::TransformedTiled { tile, .. } => format!("skew-tiled{tile:?}"),
            LoopSchedule::Wavefront(w) => format!("wavefront{w}"),
        }
    }

    /// Materialise the execution order over `domain`.
    ///
    /// The result contains every point of the domain exactly once.
    ///
    /// # Panics
    ///
    /// Panics if the schedule's parameters do not match the domain
    /// dimension, a tile extent is < 1, an interchange permutation is
    /// invalid, or a transformation matrix is not unimodular.
    pub fn order(&self, domain: &RectDomain) -> Vec<IVec> {
        let d = domain.dim();
        let mut points: Vec<IVec> = domain.points().collect();
        match self {
            LoopSchedule::Lexicographic => points,
            LoopSchedule::Interchange(perm) => {
                assert_eq!(perm.len(), d, "permutation length must match dimension");
                let mut check: Vec<usize> = perm.clone();
                check.sort_unstable();
                assert!(
                    check.iter().copied().eq(0..d),
                    "interchange must be a permutation of 0..{d}"
                );
                points.sort_by_key(|p| perm.iter().map(|&axis| p[axis]).collect::<Vec<i64>>());
                points
            }
            LoopSchedule::Transformed(m) => {
                assert_eq!(m.cols(), d, "transform width must match dimension");
                assert!(m.is_unimodular(), "schedule transform must be unimodular");
                points.sort_by_key(|p| m.mul_vec(p));
                points
            }
            LoopSchedule::Tiled { tile } => {
                validate_tile(tile, d);
                let lo = domain.lo().clone();
                points.sort_by_key(|p| tile_key(p, &lo, tile));
                points
            }
            LoopSchedule::TransformedTiled { transform, tile } => {
                assert_eq!(transform.cols(), d, "transform width must match dimension");
                assert!(
                    transform.is_unimodular(),
                    "schedule transform must be unimodular"
                );
                validate_tile(tile, d);
                // Tile the image space; anchor tiles at the image of the
                // domain's lower corner so tiling is translation-stable.
                let lo_img = transform.mul_vec(domain.lo());
                points.sort_by_key(|p| {
                    let img = transform.mul_vec(p);
                    tile_key(&img, &lo_img, tile)
                });
                points
            }
            LoopSchedule::Wavefront(weights) => {
                assert_eq!(weights.dim(), d, "wavefront weights must match dimension");
                points.sort_by_key(|p| (weights.dot(p), p.clone()));
                points
            }
        }
    }
}

fn validate_tile(tile: &[i64], d: usize) {
    assert_eq!(tile.len(), d, "tile shape must match dimension");
    assert!(tile.iter().all(|&t| t >= 1), "tile extents must be >= 1");
}

/// Sort key placing `p` in its tile: (tile coordinates, within-tile
/// coordinates), lexicographic on both.
fn tile_key(p: &IVec, lo: &IVec, tile: &[i64]) -> (Vec<i64>, Vec<i64>) {
    let tile_idx: Vec<i64> = (0..p.dim())
        .map(|k| floor_div(p[k] - lo[k], tile[k]))
        .collect();
    let within: Vec<i64> = (0..p.dim()).map(|k| p[k]).collect();
    (tile_idx, within)
}

impl fmt::Debug for LoopSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LoopSchedule::{}", self.name())
    }
}

impl fmt::Display for LoopSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uov_isg::ivec;

    fn grid3() -> RectDomain {
        RectDomain::grid(3, 3)
    }

    fn assert_is_permutation(order: &[IVec], domain: &RectDomain) {
        assert_eq!(order.len() as u64, domain.num_points());
        let mut sorted = order.to_vec();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), order.len(), "order repeats a point");
        for p in order {
            assert!(domain.contains(p));
        }
    }

    #[test]
    fn lexicographic_matches_domain_iteration() {
        let dom = grid3();
        let order = LoopSchedule::Lexicographic.order(&dom);
        assert_eq!(order, dom.points().collect::<Vec<_>>());
    }

    #[test]
    fn interchange_swaps_axes() {
        let dom = RectDomain::grid(2, 3);
        let order = LoopSchedule::Interchange(vec![1, 0]).order(&dom);
        assert_is_permutation(&order, &dom);
        // Column-major: (1,1), (2,1), (1,2), (2,2), (1,3), (2,3).
        assert_eq!(
            order,
            vec![
                ivec![1, 1],
                ivec![2, 1],
                ivec![1, 2],
                ivec![2, 2],
                ivec![1, 3],
                ivec![2, 3]
            ]
        );
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn bad_permutation_panics() {
        let _ = LoopSchedule::Interchange(vec![0, 0]).order(&grid3());
    }

    #[test]
    fn skew_transform_orders_by_image() {
        // j' = j + i: order by (i, i + j) — same as lexicographic for this
        // skew, since i dominates. Skew on the first axis instead:
        // i' = i + j, ordered by (i + j, j).
        let m = IMat::from_rows(&[ivec![1, 1], ivec![0, 1]]);
        let dom = RectDomain::grid(2, 2);
        let order = LoopSchedule::Transformed(m).order(&dom);
        assert_is_permutation(&order, &dom);
        assert_eq!(order[0], ivec![1, 1]); // image (2, 1)
        assert_eq!(order[1], ivec![2, 1]); // image (3, 1)
        assert_eq!(order[2], ivec![1, 2]); // image (3, 2)
        assert_eq!(order[3], ivec![2, 2]); // image (4, 2)
    }

    #[test]
    #[should_panic(expected = "unimodular")]
    fn non_unimodular_transform_panics() {
        let m = IMat::from_rows(&[ivec![2, 0], ivec![0, 1]]);
        let _ = LoopSchedule::Transformed(m).order(&grid3());
    }

    #[test]
    fn tiled_runs_tile_by_tile() {
        let dom = RectDomain::grid(4, 4);
        let order = LoopSchedule::tiled(vec![2, 2]).order(&dom);
        assert_is_permutation(&order, &dom);
        // First tile: (1,1),(1,2),(2,1),(2,2).
        assert_eq!(
            &order[..4],
            &[ivec![1, 1], ivec![1, 2], ivec![2, 1], ivec![2, 2]]
        );
        // Second tile is to the right (j = 3..4), not below.
        assert_eq!(
            &order[4..8],
            &[ivec![1, 3], ivec![1, 4], ivec![2, 3], ivec![2, 4]]
        );
    }

    #[test]
    fn tiled_handles_ragged_edges() {
        let dom = RectDomain::grid(3, 5);
        let order = LoopSchedule::tiled(vec![2, 2]).order(&dom);
        assert_is_permutation(&order, &dom);
    }

    #[test]
    fn skewed_tiled_is_a_permutation() {
        let dom = RectDomain::grid(6, 8);
        let order = LoopSchedule::skewed_tiled_2d(2, vec![3, 4]).order(&dom);
        assert_is_permutation(&order, &dom);
    }

    #[test]
    fn wavefront_sweeps_antidiagonals() {
        let dom = RectDomain::grid(2, 2);
        let order = LoopSchedule::Wavefront(ivec![1, 1]).order(&dom);
        assert_eq!(
            order,
            vec![ivec![1, 1], ivec![1, 2], ivec![2, 1], ivec![2, 2]]
        );
    }

    #[test]
    fn names_are_distinct_and_nonempty() {
        let schedules = [
            LoopSchedule::Lexicographic,
            LoopSchedule::Interchange(vec![1, 0]),
            LoopSchedule::tiled(vec![2, 2]),
            LoopSchedule::skewed_tiled_2d(2, vec![2, 2]),
            LoopSchedule::Wavefront(ivec![1, 1]),
        ];
        let names: Vec<String> = schedules.iter().map(|s| s.name()).collect();
        for n in &names {
            assert!(!n.is_empty());
        }
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}

#[cfg(test)]
mod transform_legality_tests {
    use super::*;
    use crate::legality::{respects_dependences, skew_matrix_2d};
    use uov_isg::{ivec, Stencil};

    #[test]
    fn skew_transform_legalises_order_for_negative_stencil() {
        // Pure skewing (no tiling) re-orders legally for any stencil the
        // skew factor covers.
        let s = Stencil::new(vec![ivec![1, -3], ivec![1, 0]]).unwrap();
        let dom = RectDomain::grid(5, 9);
        let schedule = LoopSchedule::Transformed(skew_matrix_2d(3));
        assert!(respects_dependences(&schedule, &dom, &s));
    }

    #[test]
    fn wavefront_with_negative_weights_can_be_illegal() {
        let s = Stencil::new(vec![ivec![1, 0]]).unwrap();
        let dom = RectDomain::grid(4, 4);
        // Weights (−1, 0) run the i loop backwards: illegal for (1,0).
        let schedule = LoopSchedule::Wavefront(ivec![-1, 0]);
        assert!(!respects_dependences(&schedule, &dom, &s));
    }

    #[test]
    fn display_matches_name() {
        let s = LoopSchedule::tiled(vec![3, 3]);
        assert_eq!(format!("{s}"), s.name());
    }
}
