//! Random linear extensions of the dependence DAG.
//!
//! "Any legal schedule" in the UOV definition quantifies over *every*
//! topological order of the reduced ISG — including orders no loop
//! transformation would ever produce. The property tests in `uov-storage`
//! sample this space adversarially: a storage mapping is only
//! schedule-independent if no sampled extension ever produces a conflict.
//!
//! The generator is self-contained (a seeded xorshift PRNG) so the crate
//! needs no runtime dependencies and orders are reproducible.

use std::collections::HashMap;

use uov_isg::{IVec, IterationDomain, RectDomain, Stencil};

/// A tiny deterministic xorshift64* PRNG — reproducible random schedules
/// without external dependencies.
#[derive(Debug, Clone)]
struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    fn new(seed: u64) -> Self {
        XorShift64 {
            state: seed.wrapping_mul(2685821657736338717).max(1),
        }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(2685821657736338717)
    }

    /// Uniform in `0..n`.
    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Produce a random topological order of the iterations of `domain` with
/// respect to the value dependences in `stencil`.
///
/// Kahn's algorithm with a randomly chosen ready vertex at every step; the
/// same `(domain, stencil, seed)` triple always yields the same order.
///
/// # Panics
///
/// Panics if `domain.dim() != stencil.dim()`.
///
/// # Examples
///
/// ```
/// use uov_isg::{ivec, RectDomain, Stencil};
/// use uov_schedule::{legality::order_respects_dependences, random_topological_order};
///
/// let s = Stencil::new(vec![ivec![1, 0], ivec![0, 1]])?;
/// let dom = RectDomain::grid(3, 3);
/// let order = random_topological_order(&dom, &s, 42);
/// assert!(order_respects_dependences(&order, &dom, &s));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn random_topological_order(domain: &RectDomain, stencil: &Stencil, seed: u64) -> Vec<IVec> {
    assert_eq!(domain.dim(), stencil.dim(), "dimension mismatch");
    let points: Vec<IVec> = domain.points().collect();
    let index: HashMap<&IVec, usize> = points.iter().enumerate().map(|(i, p)| (p, i)).collect();

    // In-degree of q = number of in-domain producers q − v.
    let mut indegree: Vec<usize> = points
        .iter()
        .map(|q| {
            stencil
                .iter()
                .filter(|v| domain.contains(&(q - *v)))
                .count()
        })
        .collect();

    let mut ready: Vec<usize> = (0..points.len()).filter(|&i| indegree[i] == 0).collect();
    let mut rng = XorShift64::new(seed);
    let mut order = Vec::with_capacity(points.len());

    while !ready.is_empty() {
        let pick = rng.below(ready.len());
        let i = ready.swap_remove(pick);
        let q = &points[i];
        order.push(q.clone());
        // Releasing q may ready its consumers q + v.
        for v in stencil {
            let consumer = q + v;
            if let Some(&ci) = index.get(&consumer) {
                indegree[ci] -= 1;
                if indegree[ci] == 0 {
                    ready.push(ci);
                }
            }
        }
    }
    debug_assert_eq!(
        order.len(),
        points.len(),
        "dependence graph must be acyclic"
    );
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::legality::order_respects_dependences;
    use uov_isg::ivec;

    fn fig1() -> Stencil {
        Stencil::new(vec![ivec![1, 0], ivec![0, 1], ivec![1, 1]]).unwrap()
    }

    #[test]
    fn orders_are_legal_permutations() {
        let dom = RectDomain::grid(4, 5);
        let s = fig1();
        for seed in 0..20 {
            let order = random_topological_order(&dom, &s, seed);
            assert!(
                order_respects_dependences(&order, &dom, &s),
                "seed {seed} produced an illegal order"
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let dom = RectDomain::grid(3, 3);
        let s = fig1();
        assert_eq!(
            random_topological_order(&dom, &s, 7),
            random_topological_order(&dom, &s, 7)
        );
    }

    #[test]
    fn different_seeds_usually_differ() {
        let dom = RectDomain::grid(4, 4);
        let s = fig1();
        let a = random_topological_order(&dom, &s, 1);
        let b = random_topological_order(&dom, &s, 2);
        assert_ne!(
            a, b,
            "two seeds giving identical orders is vanishingly unlikely"
        );
    }

    #[test]
    fn works_with_negative_component_stencil() {
        let s = Stencil::new(vec![ivec![1, -2], ivec![1, 2]]).unwrap();
        let dom = RectDomain::grid(4, 6);
        for seed in 0..10 {
            let order = random_topological_order(&dom, &s, seed);
            assert!(order_respects_dependences(&order, &dom, &s));
        }
    }

    #[test]
    fn single_point_domain() {
        let dom = RectDomain::new(ivec![0, 0], ivec![0, 0]);
        let order = random_topological_order(&dom, &fig1(), 3);
        assert_eq!(order, vec![ivec![0, 0]]);
    }
}
