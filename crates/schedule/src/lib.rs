//! Loop schedules over iteration space graphs.
//!
//! A universal occupancy vector's defining property is *schedule
//! independence*: the storage reuse it induces is safe under **every**
//! execution order that respects the loop's value dependences (paper §3.1).
//! This crate supplies the schedules needed to state — and test — that
//! property:
//!
//! * [`LoopSchedule`] — lexicographic execution, loop interchange,
//!   unimodular transformations (skewing), wavefronts, and rectangular
//!   tiling (optionally of a skewed space), each producing a concrete
//!   execution order over a [`uov_isg::RectDomain`];
//! * [`legality`] — exhaustive and analytic checks that a schedule
//!   respects a dependence stencil, including the classic
//!   "all-dependences-non-negative" criterion for rectangular tiling and
//!   the skew that makes a 2-D stencil tileable;
//! * [`random_topological_order`] — seeded random linear extensions of the
//!   dependence DAG, the adversarial schedules used by the property tests
//!   in `uov-storage`.
//!
//! # Example
//!
//! ```
//! use uov_isg::{ivec, RectDomain, Stencil};
//! use uov_schedule::{legality, LoopSchedule};
//!
//! let stencil = Stencil::new(vec![ivec![1, 0], ivec![0, 1], ivec![1, 1]])?;
//! let domain = RectDomain::grid(4, 4);
//!
//! // The Fig-1 stencil has all-non-negative dependences: tiling is legal
//! // without skewing, and so is plain interchange.
//! assert!(legality::rectangular_tiling_legal(&stencil));
//! let tiled = LoopSchedule::tiled(vec![2, 2]);
//! assert!(legality::respects_dependences(&tiled, &domain, &stencil));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod hierarchical;
pub mod legality;
pub mod order;
pub mod random;

pub use hierarchical::HierarchicalTiling;
pub use order::LoopSchedule;
pub use random::random_topological_order;
