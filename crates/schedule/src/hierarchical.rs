//! Hierarchical (multi-level) tiling — the paper's §7 future work:
//! "we plan to study which characteristics of the entire memory hierarchy
//! should be taken into account when doing multiple-level optimizations
//! like hierarchical tiling", citing Carter, Ferrante & Hummel.
//!
//! A two-level tiling partitions the ISG into *outer* tiles (sized for a
//! far memory level), each of which is swept as a sequence of *inner*
//! tiles (sized for a near level). Because a UOV-based storage mapping is
//! schedule-independent, it remains legal under any level count — which
//! is exactly why the paper proposes the combination.

use uov_isg::num::floor_div;
use uov_isg::{IMat, IVec, IterationDomain as _, RectDomain};

/// A two-level rectangular tiling of a (possibly unimodularly
/// transformed) iteration space.
///
/// Orders points by `(outer tile, inner tile, point)` — each outer tile
/// runs all of its inner tiles before the next outer tile starts.
///
/// # Examples
///
/// ```
/// use uov_isg::RectDomain;
/// use uov_schedule::hierarchical::HierarchicalTiling;
///
/// let dom = RectDomain::grid(8, 8);
/// let order = HierarchicalTiling::new(vec![4, 4], vec![2, 2]).order(&dom);
/// assert_eq!(order.len(), 64);
/// ```
#[derive(Debug, Clone)]
pub struct HierarchicalTiling {
    outer: Vec<i64>,
    inner: Vec<i64>,
    transform: Option<IMat>,
}

impl HierarchicalTiling {
    /// Two-level tiling of the original space.
    ///
    /// # Panics
    ///
    /// Panics if shapes are empty, lengths differ, an extent is < 1, or
    /// an inner tile is larger than its outer tile on some axis.
    pub fn new(outer: Vec<i64>, inner: Vec<i64>) -> Self {
        assert!(!outer.is_empty(), "tile shapes must be non-empty");
        assert_eq!(outer.len(), inner.len(), "level shapes must agree");
        for (o, i) in outer.iter().zip(&inner) {
            assert!(*i >= 1 && *o >= 1, "tile extents must be >= 1");
            assert!(i <= o, "inner tiles must nest inside outer tiles");
        }
        HierarchicalTiling {
            outer,
            inner,
            transform: None,
        }
    }

    /// Apply the tiling in the image of a unimodular transformation (e.g.
    /// the skew that legalises stencil tiling).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not unimodular.
    pub fn transformed(mut self, m: IMat) -> Self {
        assert!(m.is_unimodular(), "schedule transform must be unimodular");
        self.transform = Some(m);
        self
    }

    /// Materialise the execution order over `domain`.
    ///
    /// # Panics
    ///
    /// Panics if tile dimensionality does not match the domain.
    pub fn order(&self, domain: &RectDomain) -> Vec<IVec> {
        let d = domain.dim();
        assert_eq!(self.outer.len(), d, "tile dimensionality mismatch");
        let lo_img = match &self.transform {
            Some(m) => m.mul_vec(domain.lo()),
            None => domain.lo().clone(),
        };
        let mut points: Vec<IVec> = domain.points().collect();
        points.sort_by_key(|p| {
            let img = match &self.transform {
                Some(m) => m.mul_vec(p),
                None => p.clone(),
            };
            let rel: Vec<i64> = (0..d).map(|k| img[k] - lo_img[k]).collect();
            let outer_idx: Vec<i64> = (0..d).map(|k| floor_div(rel[k], self.outer[k])).collect();
            let inner_idx: Vec<i64> = (0..d).map(|k| floor_div(rel[k], self.inner[k])).collect();
            (outer_idx, inner_idx, img)
        });
        points
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::legality::order_respects_dependences;
    use uov_isg::{ivec, Stencil};

    fn assert_is_permutation(order: &[IVec], domain: &RectDomain) {
        assert_eq!(order.len() as u64, domain.num_points());
        let mut sorted = order.to_vec();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), order.len());
    }

    #[test]
    fn order_is_a_permutation() {
        let dom = RectDomain::grid(9, 7);
        let order = HierarchicalTiling::new(vec![4, 4], vec![2, 2]).order(&dom);
        assert_is_permutation(&order, &dom);
    }

    #[test]
    fn inner_tiles_complete_within_outer_tiles() {
        let dom = RectDomain::grid(8, 8);
        let order = HierarchicalTiling::new(vec![4, 4], vec![2, 2]).order(&dom);
        // First outer tile = points (1..=4, 1..=4); they must form a
        // contiguous prefix of length 16.
        let prefix: Vec<_> = order[..16].to_vec();
        assert!(prefix.iter().all(|p| p[0] <= 4 && p[1] <= 4));
        // First inner tile (2×2) is the very first 4 points.
        assert!(order[..4].iter().all(|p| p[0] <= 2 && p[1] <= 2));
    }

    #[test]
    fn legal_for_non_negative_stencils() {
        let s = Stencil::new(vec![ivec![1, 0], ivec![0, 1], ivec![1, 1]]).unwrap();
        let dom = RectDomain::grid(10, 10);
        let order = HierarchicalTiling::new(vec![5, 5], vec![2, 3]).order(&dom);
        assert!(order_respects_dependences(&order, &dom, &s));
    }

    #[test]
    fn skewed_hierarchical_tiling_legal_for_stencil5() {
        let s = Stencil::new(vec![
            ivec![1, -2],
            ivec![1, -1],
            ivec![1, 0],
            ivec![1, 1],
            ivec![1, 2],
        ])
        .unwrap();
        let dom = RectDomain::new(ivec![1, 0], ivec![8, 15]);
        let skew = crate::legality::skew_matrix_2d(2);
        let order = HierarchicalTiling::new(vec![4, 8], vec![2, 4])
            .transformed(skew)
            .order(&dom);
        assert!(order_respects_dependences(&order, &dom, &s));
    }

    #[test]
    #[should_panic(expected = "nest inside")]
    fn inner_larger_than_outer_rejected() {
        let _ = HierarchicalTiling::new(vec![2, 2], vec![4, 4]);
    }
}
