//! Schedule legality against a dependence stencil.
//!
//! A schedule is legal iff every producer executes before its consumers:
//! for each iteration `q` and stencil vector `v`, if `q − v` is in the
//! domain then it must precede `q` in the execution order. Storage-related
//! dependences restrict schedules exactly the same way — which is why the
//! paper removes them and reintroduces only UOV-induced ones that are
//! already implied by value flow.

use std::collections::HashMap;

use uov_isg::{IMat, IVec, RectDomain, Stencil};

use crate::order::LoopSchedule;

/// Exhaustively check that `schedule` respects `stencil` on `domain`.
///
/// Cost is `O(points × stencil)`: intended for validation and tests, not
/// for compile-time decisions on large domains (use the analytic checks
/// below for those).
///
/// # Panics
///
/// Panics if dimensions disagree.
///
/// # Examples
///
/// ```
/// use uov_isg::{ivec, RectDomain, Stencil};
/// use uov_schedule::{legality::respects_dependences, LoopSchedule};
///
/// let s = Stencil::new(vec![ivec![1, -1]])?;
/// let dom = RectDomain::grid(3, 3);
/// // (1,-1) flows down-left; plain interchange breaks it…
/// assert!(!respects_dependences(&LoopSchedule::Interchange(vec![1, 0]), &dom, &s));
/// // …while the original order is fine.
/// assert!(respects_dependences(&LoopSchedule::Lexicographic, &dom, &s));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn respects_dependences(
    schedule: &LoopSchedule,
    domain: &RectDomain,
    stencil: &Stencil,
) -> bool {
    order_respects_dependences(&schedule.order(domain), domain, stencil)
}

/// Check an explicit execution order (any total order, e.g. a random
/// topological extension) against the stencil.
///
/// Returns `false` also when the order is not a permutation of the domain.
///
/// # Panics
///
/// Panics if dimensions disagree.
pub fn order_respects_dependences(order: &[IVec], domain: &RectDomain, stencil: &Stencil) -> bool {
    use uov_isg::IterationDomain as _;
    if order.len() as u64 != domain.num_points() {
        return false;
    }
    let rank: HashMap<&IVec, usize> = order.iter().enumerate().map(|(i, p)| (p, i)).collect();
    if rank.len() != order.len() {
        return false;
    }
    for (i, q) in order.iter().enumerate() {
        for v in stencil {
            let p = q - v;
            if domain.contains(&p) {
                match rank.get(&p) {
                    Some(&rp) if rp < i => {}
                    _ => return false,
                }
            }
        }
    }
    true
}

/// Analytic criterion: rectangular tiling (of the original space, any tile
/// shape, atomic tiles in lexicographic order) is legal iff every
/// dependence distance is component-wise non-negative.
///
/// This is the classical condition of Irigoin & Triolet; the paper's Fig-1
/// stencil satisfies it, the 5-point stencil does not (it needs skewing).
pub fn rectangular_tiling_legal(stencil: &Stencil) -> bool {
    stencil.iter().all(|v| v.iter().all(|&c| c >= 0))
}

/// Find the smallest non-negative skew factor `f` such that the 2-D skew
/// `j' = j + f·i` makes every dependence component-wise non-negative, i.e.
/// makes rectangular tiling of the skewed space legal.
///
/// Returns `None` if the stencil is not 2-dimensional or some dependence
/// has `i = 0, j < 0` (impossible for a lexicographically positive
/// stencil, so in practice only the dimension check can fail).
///
/// # Examples
///
/// ```
/// use uov_isg::{ivec, Stencil};
/// use uov_schedule::legality::skew_factor_for_tiling;
///
/// // The paper's 5-point stencil needs f = 2: (1,-2) ↦ (1,0).
/// let s = Stencil::new(vec![
///     ivec![1, -2], ivec![1, -1], ivec![1, 0], ivec![1, 1], ivec![1, 2],
/// ])?;
/// assert_eq!(skew_factor_for_tiling(&s), Some(2));
/// # Ok::<(), uov_isg::StencilError>(())
/// ```
pub fn skew_factor_for_tiling(stencil: &Stencil) -> Option<i64> {
    if stencil.dim() != 2 {
        return None;
    }
    let mut f = 0i64;
    for v in stencil {
        let (a, b) = (v[0], v[1]);
        if a == 0 {
            if b < 0 {
                return None; // cannot happen for validated stencils
            }
        } else {
            // Need b + f·a ≥ 0 ⇒ f ≥ ⌈−b/a⌉ for a > 0.
            let need = (-b + a - 1).div_euclid(a).max(0);
            f = f.max(need);
        }
    }
    Some(f)
}

/// The unimodular skew matrix `[[1, 0], [f, 1]]` realising
/// [`skew_factor_for_tiling`].
pub fn skew_matrix_2d(f: i64) -> IMat {
    IMat::from_rows(&[IVec::from([1, 0]), IVec::from([f, 1])])
}

#[cfg(test)]
mod tests {
    use super::*;
    use uov_isg::ivec;

    fn fig1() -> Stencil {
        Stencil::new(vec![ivec![1, 0], ivec![0, 1], ivec![1, 1]]).unwrap()
    }

    fn stencil5() -> Stencil {
        Stencil::new(vec![
            ivec![1, -2],
            ivec![1, -1],
            ivec![1, 0],
            ivec![1, 1],
            ivec![1, 2],
        ])
        .unwrap()
    }

    #[test]
    fn lexicographic_always_legal() {
        let dom = RectDomain::grid(5, 5);
        for s in [fig1(), stencil5()] {
            assert!(respects_dependences(&LoopSchedule::Lexicographic, &dom, &s));
        }
    }

    #[test]
    fn fig1_is_fully_permutable() {
        let dom = RectDomain::grid(4, 4);
        let s = fig1();
        assert!(respects_dependences(
            &LoopSchedule::Interchange(vec![1, 0]),
            &dom,
            &s
        ));
        assert!(respects_dependences(
            &LoopSchedule::tiled(vec![2, 2]),
            &dom,
            &s
        ));
        assert!(respects_dependences(
            &LoopSchedule::Wavefront(ivec![1, 1]),
            &dom,
            &s
        ));
        assert!(rectangular_tiling_legal(&s));
    }

    #[test]
    fn stencil5_needs_skewing() {
        let dom = RectDomain::grid(5, 8);
        let s = stencil5();
        assert!(!rectangular_tiling_legal(&s));
        // Naive tiling violates the (1,−2) dependence…
        assert!(!respects_dependences(
            &LoopSchedule::tiled(vec![2, 2]),
            &dom,
            &s
        ));
        // …but tiling the skewed space is legal.
        assert_eq!(skew_factor_for_tiling(&s), Some(2));
        let skew_tiled = LoopSchedule::skewed_tiled_2d(2, vec![2, 3]);
        assert!(respects_dependences(&skew_tiled, &dom, &s));
    }

    #[test]
    fn interchange_breaks_negative_dependences() {
        let s = Stencil::new(vec![ivec![1, -1]]).unwrap();
        let dom = RectDomain::grid(3, 3);
        assert!(!respects_dependences(
            &LoopSchedule::Interchange(vec![1, 0]),
            &dom,
            &s
        ));
    }

    #[test]
    fn skew_factor_zero_when_already_tileable() {
        assert_eq!(skew_factor_for_tiling(&fig1()), Some(0));
    }

    #[test]
    fn skew_factor_handles_large_negative_components() {
        let s = Stencil::new(vec![ivec![2, -5]]).unwrap();
        // Need −5 + 2f ≥ 0 ⇒ f ≥ 3 (ceil of 5/2).
        assert_eq!(skew_factor_for_tiling(&s), Some(3));
    }

    #[test]
    fn skew_factor_none_for_other_dims() {
        let s = Stencil::new(vec![ivec![1, 0, 0]]).unwrap();
        assert_eq!(skew_factor_for_tiling(&s), None);
    }

    #[test]
    fn order_checker_rejects_incomplete_orders() {
        let dom = RectDomain::grid(2, 2);
        let s = fig1();
        assert!(!order_respects_dependences(&[ivec![1, 1]], &dom, &s));
        // Duplicate point.
        assert!(!order_respects_dependences(
            &[ivec![1, 1], ivec![1, 1], ivec![2, 1], ivec![2, 2]],
            &dom,
            &s
        ));
    }

    #[test]
    fn skew_matrix_is_unimodular() {
        for f in 0..5 {
            assert!(skew_matrix_2d(f).is_unimodular());
        }
    }
}
