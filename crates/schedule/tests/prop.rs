//! Property-based tests for schedules.

use proptest::prelude::*;
use uov_isg::{IVec, RectDomain, Stencil};
use uov_schedule::hierarchical::HierarchicalTiling;
use uov_schedule::legality::{
    order_respects_dependences, rectangular_tiling_legal, skew_factor_for_tiling, skew_matrix_2d,
};
use uov_schedule::{random_topological_order, LoopSchedule};

fn lex_positive_vec(bound: i64) -> impl Strategy<Value = IVec> {
    prop::collection::vec(-bound..=bound, 2)
        .prop_map(IVec::from)
        .prop_filter("lexicographically positive", |v| v.is_lex_positive())
}

fn stencil_2d() -> impl Strategy<Value = Stencil> {
    prop::collection::vec(lex_positive_vec(2), 1..4)
        .prop_map(|vs| Stencil::new(vs).expect("validated"))
}

fn small_domain() -> impl Strategy<Value = RectDomain> {
    (1i64..6, 1i64..6).prop_map(|(n, m)| RectDomain::grid(n, m))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_schedule_is_a_permutation(
        dom in small_domain(),
        tile_a in 1i64..4,
        tile_b in 1i64..4,
        f in 0i64..3,
    ) {
        use uov_isg::IterationDomain as _;
        for schedule in [
            LoopSchedule::Lexicographic,
            LoopSchedule::Interchange(vec![1, 0]),
            LoopSchedule::tiled(vec![tile_a, tile_b]),
            LoopSchedule::skewed_tiled_2d(f, vec![tile_a, tile_b]),
            LoopSchedule::Wavefront(IVec::from([1, 1])),
        ] {
            let order = schedule.order(&dom);
            prop_assert_eq!(order.len() as u64, dom.num_points());
            let mut sorted = order.clone();
            sorted.sort();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), order.len(), "{} repeats points", schedule);
        }
    }

    #[test]
    fn random_orders_respect_dependences(
        s in stencil_2d(),
        dom in small_domain(),
        seed in 0u64..500,
    ) {
        let order = random_topological_order(&dom, &s, seed);
        prop_assert!(order_respects_dependences(&order, &dom, &s));
    }

    #[test]
    fn skewed_tiling_is_always_legal(
        s in stencil_2d(),
        dom in small_domain(),
        tile_a in 1i64..4,
        tile_b in 1i64..4,
    ) {
        let f = skew_factor_for_tiling(&s).expect("2-D stencil");
        let schedule = LoopSchedule::skewed_tiled_2d(f, vec![tile_a, tile_b]);
        let order = schedule.order(&dom);
        prop_assert!(
            order_respects_dependences(&order, &dom, &s),
            "skew {f} tiles {tile_a}x{tile_b} illegal for {:?}",
            s
        );
    }

    #[test]
    fn skew_factor_is_minimal(s in stencil_2d()) {
        let f = skew_factor_for_tiling(&s).expect("2-D");
        // After skewing by f every dependence is non-negative…
        let skew = skew_matrix_2d(f);
        for v in &s {
            let img = skew.mul_vec(v);
            prop_assert!(img.iter().all(|&c| c >= 0));
        }
        // …and f−1 (if ≥ 0) leaves some dependence negative.
        if f > 0 {
            let weaker = skew_matrix_2d(f - 1);
            prop_assert!(
                s.iter().any(|v| weaker.mul_vec(v).iter().any(|&c| c < 0)),
                "skew factor {f} not minimal for {:?}",
                s
            );
        }
    }

    #[test]
    fn rect_tiling_legality_criterion_is_exact(
        s in stencil_2d(),
        dom in small_domain(),
    ) {
        // If the analytic criterion says legal, every rectangular tiling
        // must pass the exhaustive check.
        if rectangular_tiling_legal(&s) {
            let order = LoopSchedule::tiled(vec![2, 2]).order(&dom);
            prop_assert!(order_respects_dependences(&order, &dom, &s));
        }
    }

    #[test]
    fn hierarchical_refines_single_level(
        dom in small_domain(),
        outer in 2i64..5,
    ) {
        use uov_isg::IterationDomain as _;
        // inner == outer degenerates to single-level tiling.
        let h = HierarchicalTiling::new(vec![outer, outer], vec![outer, outer]).order(&dom);
        let flat = LoopSchedule::tiled(vec![outer, outer]).order(&dom);
        prop_assert_eq!(h, flat);
        let _ = dom.num_points();
    }
}
