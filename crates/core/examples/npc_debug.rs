use std::time::Instant;
use uov_core::npc::PartitionInstance;
use uov_core::DoneOracle;
fn main() {
    let values: Vec<i64> = (1..=7).collect();
    let inst = PartitionInstance::new(values).unwrap();
    let (stencil, w) = inst.reduce().unwrap();
    println!("stencil len {} w {w}", stencil.len());
    println!("phi {:?}", stencil.positive_functional());
    let oracle = DoneOracle::new(&stencil);
    let t = Instant::now();
    // Just one in_done query on w itself first.
    let d = oracle.in_done(&w);
    println!(
        "in_done(w) = {d} in {:?}, cache {}",
        t.elapsed(),
        oracle.cache_len()
    );
}
