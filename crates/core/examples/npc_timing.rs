use std::time::Instant;
use uov_core::npc::PartitionInstance;
fn main() {
    for n in 5..=9usize {
        let values: Vec<i64> = (1..=n as i64).collect();
        let inst = PartitionInstance::new(values.clone()).unwrap();
        let t = Instant::now();
        let ans = inst.solve_via_uov();
        println!("n={n}: {ans} in {:?}", t.elapsed());
        if t.elapsed().as_secs() > 20 {
            break;
        }
    }
}
