//! Property-based tests for the UOV core.

use proptest::prelude::*;
use uov_core::npc::PartitionInstance;
use uov_core::search::{exhaustive_best_uov, find_best_uov, Objective, SearchConfig};
use uov_core::{initial_uov, DoneOracle};
use uov_isg::{IVec, RectDomain, Stencil};

fn lex_positive_vec(dim: usize, bound: i64) -> impl Strategy<Value = IVec> {
    prop::collection::vec(-bound..=bound, dim)
        .prop_map(IVec::from)
        .prop_filter("lexicographically positive", |v| v.is_lex_positive())
}

fn stencil_2d() -> impl Strategy<Value = Stencil> {
    prop::collection::vec(lex_positive_vec(2, 3), 1..5)
        .prop_map(|vs| Stencil::new(vs).expect("validated"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn initial_uov_is_universal(s in stencil_2d()) {
        let oracle = DoneOracle::new(&s);
        prop_assert!(oracle.is_uov(&initial_uov(&s)));
    }

    #[test]
    fn cone_membership_matches_naive_enumeration(
        s in stencil_2d(),
        w in prop::collection::vec(-6i64..=6, 2).prop_map(IVec::from),
    ) {
        // Naive reference: BFS over coefficient vectors with the functional
        // bound Σaᵢ ≤ φ·w.
        let oracle = DoneOracle::new(&s);
        let phi = s.positive_functional();
        let budget = phi.dot(&w);
        let naive = if budget < 0 {
            false
        } else {
            fn rec(s: &Stencil, w: &IVec, idx: usize, budget: i64) -> bool {
                if w.is_zero() {
                    return true;
                }
                if idx == s.len() || budget <= 0 {
                    return false;
                }
                let v = &s.vectors()[idx];
                let mut t = w.clone();
                let mut used = 0;
                loop {
                    if rec(s, &t, idx + 1, budget - used) {
                        return true;
                    }
                    if used >= budget {
                        return false;
                    }
                    t = &t - v;
                    used += 1;
                    if t.is_zero() {
                        return true;
                    }
                }
            }
            rec(&s, &w, 0, budget)
        };
        prop_assert_eq!(oracle.in_done(&w), naive, "stencil {:?} w {}", s, w);
    }

    #[test]
    fn uov_definition_equivalence(
        s in stencil_2d(),
        w in prop::collection::vec(-6i64..=6, 2).prop_map(IVec::from),
    ) {
        // is_uov(w) ⟺ ∀v ∈ V: (w − v) ∈ DONE — the paper's DEAD definition.
        let oracle = DoneOracle::new(&s);
        let by_parts = s.iter().all(|v| oracle.in_done(&(&w - v)));
        prop_assert_eq!(oracle.is_uov(&w), by_parts);
    }

    #[test]
    fn uov_set_closed_under_adding_stencil_vectors(
        s in stencil_2d(),
        w in prop::collection::vec(-4i64..=4, 2).prop_map(IVec::from),
    ) {
        // If w is a UOV, so is w + vᵢ for any stencil vector: the DEAD set
        // only recedes as q advances.
        let oracle = DoneOracle::new(&s);
        if oracle.is_uov(&w) {
            for v in &s {
                prop_assert!(oracle.is_uov(&(&w + v)), "w={} v={}", w, v);
            }
        }
    }

    #[test]
    fn search_matches_exhaustive_on_random_stencils(s in stencil_2d()) {
        let bb = find_best_uov(&s, Objective::ShortestVector, &SearchConfig::default())
            .expect("in-range stencil");
        let radius = i64::try_from(initial_uov(&s).max_abs()).expect("small stencil") + 1;
        let ex = exhaustive_best_uov(&s, Objective::ShortestVector, radius)
            .expect("initial UOV lies within the radius");
        prop_assert_eq!(bb.cost, ex.cost, "stencil {:?}", s);
        prop_assert!(bb.stats.complete);
    }

    #[test]
    fn search_known_bounds_never_beats_exhaustive(
        s in stencil_2d(),
        n in 2i64..8,
        m in 2i64..8,
    ) {
        let grid = RectDomain::grid(n, m);
        let bb = find_best_uov(&s, Objective::KnownBounds(&grid), &SearchConfig::default())
            .expect("in-range stencil");
        let radius = i64::try_from(initial_uov(&s).max_abs()).expect("small stencil") + 1;
        let ex = exhaustive_best_uov(&s, Objective::KnownBounds(&grid), radius)
            .expect("initial UOV lies within the radius");
        // The B&B result can only be at most as costly when it ran to
        // completion without the cap; equality when radius covers optimum.
        if bb.stats.capped == 0 {
            prop_assert!(bb.cost <= ex.cost, "stencil {:?} grid {n}x{m}", s);
        }
        let oracle = DoneOracle::new(&s);
        prop_assert!(oracle.is_uov(&bb.uov));
    }

    #[test]
    fn partition_reduction_agrees_with_dp(
        values in prop::collection::vec(1i64..6, 2..5)
    ) {
        let inst = PartitionInstance::new(values.clone()).expect("positive values");
        prop_assert_eq!(
            inst.solve_brute(),
            inst.solve_via_uov(),
            "values {:?}",
            values
        );
    }
}
