//! The workspace-standard dependency-free fingerprinting: FNV-1a-64 over
//! a canonical encoding of a `(stencil, objective)` problem instance.
//!
//! One fingerprint, three consumers:
//!
//! * **Checkpoint validation** ([`crate::checkpoint`]) — a snapshot
//!   records the fingerprint of the problem it belongs to, and resume
//!   refuses snapshots taken for a different stencil or objective.
//! * **Result certification** ([`crate::certify`]) — the certificate's
//!   transcript hash is seeded with the problem fingerprint, so two
//!   certificates can only collide if they certify the same problem.
//! * **The plan cache** (`uov-service`) — canonicalized problems are
//!   keyed by fingerprint into the sharded LRU, so every layer of the
//!   system agrees on what "the same problem" means.
//!
//! The encoding is canonical because [`Stencil`](uov_isg::Stencil) stores
//! its vectors sorted and deduplicated, and the known-bounds branch hashes
//! the domain's *sorted* extreme points: two domains with identical
//! vertices and cardinality are deliberately interchangeable (they define
//! the same storage-class count for every candidate vector).

use uov_isg::Stencil;

use crate::search::Objective;

/// FNV-1a 64-bit streaming hasher.
///
/// Deliberately boring: the offset basis and prime are the published
/// constants, input is absorbed byte-by-byte, and there is no finishing
/// transformation — so a digest pinned in a test today stays pinned
/// forever (the checkpoint format depends on that stability).
#[derive(Debug, Clone)]
pub struct Fnv(u64);

/// The FNV-1a-64 offset basis.
const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
/// The FNV-1a-64 prime.
const PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Fnv {
    fn default() -> Self {
        Fnv::new()
    }
}

impl Fnv {
    /// A hasher in its initial state (the FNV offset basis).
    pub fn new() -> Self {
        Fnv(OFFSET_BASIS)
    }

    /// Absorb raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(PRIME);
        }
    }

    /// Absorb a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorb an `i64` in little-endian byte order.
    pub fn write_i64(&mut self, v: i64) {
        self.write(&v.to_le_bytes());
    }

    /// The digest of everything absorbed so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Fingerprint of a `(stencil, objective)` problem instance.
///
/// Covers the stencil's dimension and vectors and the objective's
/// identity: for [`Objective::KnownBounds`] the domain's point count and
/// sorted extreme points are hashed, so two domains with identical
/// vertices and cardinality are deliberately interchangeable (they define
/// the same storage-class counts for every candidate the search costs).
///
/// # Examples
///
/// ```
/// use uov_core::fingerprint::fingerprint;
/// use uov_core::search::Objective;
/// use uov_isg::{ivec, Stencil};
///
/// let s = Stencil::new(vec![ivec![1, 0], ivec![0, 1], ivec![1, 1]])?;
/// let a = fingerprint(&s, &Objective::ShortestVector);
/// assert_eq!(a, fingerprint(&s, &Objective::ShortestVector));
/// # Ok::<(), uov_isg::StencilError>(())
/// ```
pub fn fingerprint(stencil: &Stencil, objective: &Objective<'_>) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(stencil.dim() as u64);
    h.write_u64(stencil.len() as u64);
    for v in stencil.iter() {
        for &c in v.as_slice() {
            h.write_i64(c);
        }
    }
    match objective {
        Objective::ShortestVector => h.write_u64(0),
        Objective::KnownBounds(domain) => {
            h.write_u64(1);
            h.write_u64(domain.num_points());
            let mut vertices = domain.extreme_points();
            vertices.sort();
            for p in &vertices {
                for &c in p.as_slice() {
                    h.write_i64(c);
                }
            }
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use uov_isg::{ivec, RectDomain};

    #[test]
    fn fnv_matches_published_test_vectors() {
        // Classic FNV-1a-64 vectors: the empty string hashes to the
        // offset basis, and "a"/"foobar" to the published digests.
        assert_eq!(Fnv::new().finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fnv::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv::new();
        h.write(b"foobar");
        assert_eq!(h.finish(), 0x8594_4171_f739_67e8);
    }

    /// Pins the exact digests the checkpoint format and the plan cache
    /// key on. If this test fails, old snapshots and cached plans stop
    /// resolving — bump the relevant format versions instead of changing
    /// the hash.
    #[test]
    fn problem_fingerprints_are_pinned() {
        let fig1 = Stencil::new(vec![ivec![1, 0], ivec![0, 1], ivec![1, 1]]).unwrap();
        assert_eq!(
            fingerprint(&fig1, &Objective::ShortestVector),
            0x5b31_cd69_f5a3_8244
        );
        let grid = RectDomain::grid(4, 4);
        assert_eq!(
            fingerprint(&fig1, &Objective::KnownBounds(&grid)),
            0xa527_a894_5914_6c95
        );
        let stencil5 = Stencil::new(vec![
            ivec![1, -2],
            ivec![1, -1],
            ivec![1, 0],
            ivec![1, 1],
            ivec![1, 2],
        ])
        .unwrap();
        assert_eq!(
            fingerprint(&stencil5, &Objective::ShortestVector),
            0xf069_1e85_1339_7251
        );
    }

    #[test]
    fn fingerprint_separates_problems() {
        let a = Stencil::new(vec![ivec![1, 0], ivec![0, 1], ivec![1, 1]]).unwrap();
        let b = Stencil::new(vec![ivec![1, 0], ivec![0, 1]]).unwrap();
        let short = fingerprint(&a, &Objective::ShortestVector);
        assert_ne!(short, fingerprint(&b, &Objective::ShortestVector));
        let g4 = RectDomain::grid(4, 4);
        let g5 = RectDomain::grid(5, 5);
        let kb4 = fingerprint(&a, &Objective::KnownBounds(&g4));
        assert_ne!(short, kb4);
        assert_ne!(kb4, fingerprint(&a, &Objective::KnownBounds(&g5)));
    }
}
