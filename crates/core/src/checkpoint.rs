//! Crash-safe binary snapshots of the branch-and-bound search state.
//!
//! Long UOV searches are exactly the runs that die to OOM kills and deploy
//! restarts (the problem is NP-complete, §5 of the paper), so the engine
//! can periodically serialize its frontier, PATHSET table, incumbent and
//! budget progress to disk and later resume from the latest snapshot via
//! [`crate::search::search_resume`]. The format is dependency-free and
//! deliberately boring:
//!
//! ```text
//! magic   b"UOVCKPT1"                      8 bytes
//! version u32 LE (currently 1)             4 bytes
//! fprint  u64 LE FNV-1a over the stencil   8 bytes
//!         vectors and the objective
//! dim     u16 LE                           2 bytes
//! nsect   u8                               1 byte
//! nsect × section:
//!     tag u8, len u64 LE, payload, crc32 u32 LE (over tag‖len‖payload)
//! ```
//!
//! Sections: `INCUMBENT` (cost + vector), `FRONTIER` (queue entries as
//! `(cost, offset, pathset)`), `KNOWN` (the PATHSET union per offset),
//! `PROGRESS` (budget + statistics counters) and `EPOCH` (the fencing
//! epoch of a distributed work-unit lease; `0` for plain checkpoints).
//! Entries are sorted before writing so a given search state always
//! produces the identical file. Unknown tags are CRC-checked and
//! skipped, leaving room for future sections without a version bump —
//! which is exactly how readers older than the `EPOCH` section keep
//! decoding newer files.
//!
//! Writes are atomic: the snapshot is written to `<path>.tmp`, fsynced,
//! and renamed over `<path>`, so a crash mid-write leaves the previous
//! snapshot intact. Readers validate the magic, version, per-section CRCs
//! and structural invariants, and report every failure as a typed
//! [`CheckpointError`] — a corrupt file can never panic the engine or
//! silently resume from garbage.

use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use uov_isg::IVec;

use crate::search::SearchStats;
use crate::wire::{crc32, Decoder, Encoder, WireError};

// Re-exported for compatibility: the fingerprint started life here and
// callers (certify, resume, the service plan cache) still reach it
// through `checkpoint::fingerprint`.
pub use crate::fingerprint::{fingerprint, Fnv};

/// File magic: "UOV checkpoint, format family 1".
const MAGIC: &[u8; 8] = b"UOVCKPT1";
/// Current format version.
const VERSION: u32 = 1;

/// Section tags.
const SEC_INCUMBENT: u8 = 1;
const SEC_FRONTIER: u8 = 2;
const SEC_KNOWN: u8 = 3;
const SEC_PROGRESS: u8 = 4;
const SEC_EPOCH: u8 = 5;

/// Where and how often to snapshot a search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Snapshot file. The writer uses `<path>.tmp` as scratch and renames
    /// atomically, so `path` always holds a complete snapshot (or nothing).
    pub path: PathBuf,
    /// Fully-processed nodes between snapshots; `0` behaves like `1`
    /// (snapshot after every node). A final snapshot is always written
    /// when the search stops, whatever the interval.
    pub interval: u64,
}

/// Typed failures of snapshot reading and writing.
///
/// Write failures never fail the search — they are recorded in
/// [`SearchResult::checkpoint_error`](crate::search::SearchResult) and
/// further checkpointing is disabled. Read failures abort a resume with
/// [`SearchError::Checkpoint`](crate::error::SearchError).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// An OS-level I/O failure (create, write, fsync, rename, read).
    Io {
        /// Which operation failed: `"write"` or `"read"`.
        op: &'static str,
        /// The OS error kind.
        kind: io::ErrorKind,
        /// The OS error message.
        msg: String,
    },
    /// The file does not start with the checkpoint magic.
    BadMagic,
    /// The file's format version is newer than this build understands.
    UnsupportedVersion(u32),
    /// The file ends before the declared structure does.
    Truncated,
    /// A section's CRC32 does not match its contents (bit rot, torn
    /// write on a non-atomic filesystem, or manual tampering).
    CrcMismatch {
        /// Tag of the failing section.
        section: u8,
    },
    /// The snapshot was taken for a different stencil or objective than
    /// the one being resumed.
    StencilMismatch {
        /// Fingerprint of the stencil/objective passed to resume.
        expected: u64,
        /// Fingerprint stored in the snapshot.
        found: u64,
    },
    /// The file decodes but violates a structural invariant of the search
    /// state (dimension mismatch, mask out of range, inconsistent
    /// frontier, non-recomputable cost, …).
    Corrupt(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { op, msg, .. } => write!(f, "checkpoint {op} failed: {msg}"),
            CheckpointError::BadMagic => write!(f, "not a UOV checkpoint file (bad magic)"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported checkpoint version {v} (this build reads ≤ {VERSION})"
                )
            }
            CheckpointError::Truncated => write!(f, "checkpoint file is truncated"),
            CheckpointError::CrcMismatch { section } => {
                write!(f, "checkpoint section {section} failed its CRC32 check")
            }
            CheckpointError::StencilMismatch { expected, found } => write!(
                f,
                "checkpoint was taken for a different stencil/objective \
                 (fingerprint {found:#018x}, expected {expected:#018x})"
            ),
            CheckpointError::Corrupt(msg) => write!(f, "checkpoint is corrupt: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// A decoded (or to-be-encoded) search snapshot.
///
/// The `frontier` holds every queue entry that was live at snapshot time
/// — including entries a worker had popped but not fully expanded — and
/// `known` the full PATHSET union table, so resuming re-creates exactly
/// the state the canonical-order determinism argument needs (DESIGN §6d).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// FNV-1a fingerprint of the stencil + objective (see [`fingerprint`]).
    pub fingerprint: u64,
    /// Stencil dimensionality; every vector below has this many entries.
    pub dim: usize,
    /// Objective value of the incumbent.
    pub incumbent_cost: u128,
    /// The incumbent UOV (at worst the always-legal initial `Σvᵢ`).
    pub incumbent: IVec,
    /// Live queue entries `(cost, offset, pathset)`.
    pub frontier: Vec<(u128, IVec, u64)>,
    /// PATHSET union per discovered offset.
    pub known: Vec<(IVec, u64)>,
    /// Budget nodes charged so far (restored so resumed runs cannot
    /// exceed a cumulative node cap).
    pub nodes_charged: u64,
    /// Statistics accumulated so far (`complete` is not stored; a resumed
    /// run recomputes it).
    pub stats: SearchStats,
    /// Fencing epoch of the distributed work-unit lease this snapshot
    /// travels under; `0` means unleased (a plain local checkpoint, or a
    /// file written before the epoch section existed).
    pub epoch: u64,
}

impl From<WireError> for CheckpointError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Truncated => CheckpointError::Truncated,
            WireError::Oversized(what) => {
                CheckpointError::Corrupt(format!("{what} exceeds the section size"))
            }
        }
    }
}

// ---------------------------------------------------------------- encode

/// Serialize a snapshot to its canonical byte representation.
///
/// Canonical means byte-deterministic: frontier and PATHSET entries are
/// sorted, so equal snapshots always produce equal files.
///
/// # Errors
///
/// [`CheckpointError::Corrupt`] if the snapshot's dimension exceeds the
/// format's `u16` field (never reachable from the search engine).
pub fn encode_snapshot(snap: &Snapshot) -> Result<Vec<u8>, CheckpointError> {
    let dim = u16::try_from(snap.dim)
        .map_err(|_| CheckpointError::Corrupt("dimension exceeds u16".into()))?;

    let mut frontier: Vec<&(u128, IVec, u64)> = snap.frontier.iter().collect();
    frontier.sort();
    let mut known: Vec<&(IVec, u64)> = snap.known.iter().collect();
    known.sort();

    let mut e = Encoder::with_capacity(64 + 32 * (frontier.len() + known.len()));
    e.buf.extend_from_slice(MAGIC);
    e.u32(VERSION);
    e.u64(snap.fingerprint);
    e.u16(dim);
    e.u8(5); // section count

    let mut p = Encoder::new();
    p.u128(snap.incumbent_cost);
    p.vec(&snap.incumbent);
    e.section(SEC_INCUMBENT, &p.buf);

    let mut p = Encoder::new();
    p.u64(frontier.len() as u64);
    for (cost, w, mask) in frontier {
        p.u128(*cost);
        p.u64(*mask);
        p.vec(w);
    }
    e.section(SEC_FRONTIER, &p.buf);

    let mut p = Encoder::new();
    p.u64(known.len() as u64);
    for (w, mask) in known {
        p.u64(*mask);
        p.vec(w);
    }
    e.section(SEC_KNOWN, &p.buf);

    let mut p = Encoder::new();
    p.u64(snap.nodes_charged);
    p.u64(snap.stats.visited);
    p.u64(snap.stats.pushed);
    p.u64(snap.stats.improvements);
    p.u64(snap.stats.pruned);
    p.u64(snap.stats.capped);
    e.section(SEC_PROGRESS, &p.buf);

    let mut p = Encoder::new();
    p.u64(snap.epoch);
    e.section(SEC_EPOCH, &p.buf);

    Ok(e.buf)
}

/// Write a snapshot atomically: encode, write to `<path>.tmp`, fsync,
/// rename over `path`. A crash at any point leaves either the previous
/// snapshot or the new one — never a torn file.
///
/// # Errors
///
/// [`CheckpointError::Io`] on any filesystem failure (the scratch file is
/// best-effort removed), [`CheckpointError::Corrupt`] if the snapshot is
/// not encodable.
pub fn write_snapshot(path: &Path, snap: &Snapshot) -> Result<(), CheckpointError> {
    let bytes = encode_snapshot(snap)?;
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    let result = (|| -> io::Result<()> {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
        drop(f);
        fs::rename(&tmp, path)
    })();
    if let Err(e) = result {
        let _ = fs::remove_file(&tmp);
        return Err(CheckpointError::Io {
            op: "write",
            kind: e.kind(),
            msg: e.to_string(),
        });
    }
    Ok(())
}

// ---------------------------------------------------------------- decode

/// Decode a snapshot from bytes, validating magic, version and every
/// section CRC.
///
/// # Errors
///
/// The full [`CheckpointError`] taxonomy except `Io` and
/// `StencilMismatch` (the fingerprint is returned for the caller to
/// check against the live stencil).
pub fn decode_snapshot(bytes: &[u8]) -> Result<Snapshot, CheckpointError> {
    let mut d = Decoder::new(bytes);
    if d.take(MAGIC.len())? != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = d.u32()?;
    if version != VERSION {
        return Err(CheckpointError::UnsupportedVersion(version));
    }
    let fingerprint = d.u64()?;
    let dim = usize::from(d.u16()?);
    let nsect = d.u8()?;

    let mut incumbent: Option<(u128, IVec)> = None;
    let mut frontier: Option<Vec<(u128, IVec, u64)>> = None;
    let mut known: Option<Vec<(IVec, u64)>> = None;
    let mut progress: Option<[u64; 6]> = None;
    let mut epoch: u64 = 0;

    for _ in 0..nsect {
        let start = d.pos;
        let tag = d.u8()?;
        let len = usize::try_from(d.u64()?)
            .map_err(|_| CheckpointError::Corrupt("section length overflows".into()))?;
        let payload = d.take(len)?;
        let stored_crc = {
            // CRC covers tag ‖ len ‖ payload, i.e. everything since `start`.
            let body = &d.buf[start..d.pos];
            let crc = d.u32()?;
            if crc32(body) != crc {
                return Err(CheckpointError::CrcMismatch { section: tag });
            }
            crc
        };
        let _ = stored_crc;

        let mut p = Decoder::new(payload);
        let known_tag = matches!(
            tag,
            SEC_INCUMBENT | SEC_FRONTIER | SEC_KNOWN | SEC_PROGRESS | SEC_EPOCH
        );
        match tag {
            SEC_INCUMBENT => {
                let cost = p.u128()?;
                let w = p.vec(dim)?;
                incumbent = Some((cost, w));
            }
            SEC_FRONTIER => {
                let n = p.count(16 + 8 + 8 * dim)?;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let cost = p.u128()?;
                    let mask = p.u64()?;
                    let w = p.vec(dim)?;
                    entries.push((cost, w, mask));
                }
                frontier = Some(entries);
            }
            SEC_KNOWN => {
                let n = p.count(8 + 8 * dim)?;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let mask = p.u64()?;
                    let w = p.vec(dim)?;
                    entries.push((w, mask));
                }
                known = Some(entries);
            }
            SEC_PROGRESS => {
                let mut vals = [0u64; 6];
                for v in &mut vals {
                    *v = p.u64()?;
                }
                progress = Some(vals);
            }
            SEC_EPOCH => {
                epoch = p.u64()?;
            }
            // Unknown-but-CRC-valid sections are skipped: room for
            // forward-compatible additions within version 1.
            _ => {}
        }
        // A known section must consume its payload exactly; leftover
        // bytes mean the header's `dim` disagrees with the writer's.
        if known_tag && p.pos != p.buf.len() {
            return Err(CheckpointError::Corrupt(
                "section payload has trailing bytes".into(),
            ));
        }
    }

    // The declared section count must account for every byte: leftover
    // bytes mean a damaged `nsect` silently dropped sections off the end
    // (a single bit flip there must not decode as a valid prefix).
    if d.pos != d.buf.len() {
        return Err(CheckpointError::Corrupt(
            "trailing bytes after the declared sections".into(),
        ));
    }

    let (incumbent_cost, incumbent) =
        incumbent.ok_or_else(|| CheckpointError::Corrupt("missing incumbent section".into()))?;
    let frontier =
        frontier.ok_or_else(|| CheckpointError::Corrupt("missing frontier section".into()))?;
    let known = known.ok_or_else(|| CheckpointError::Corrupt("missing PATHSET section".into()))?;
    let [nodes_charged, visited, pushed, improvements, pruned, capped] =
        progress.ok_or_else(|| CheckpointError::Corrupt("missing progress section".into()))?;

    Ok(Snapshot {
        fingerprint,
        dim,
        incumbent_cost,
        incumbent,
        frontier,
        known,
        nodes_charged,
        stats: SearchStats {
            visited,
            pushed,
            improvements,
            pruned,
            capped,
            complete: false,
        },
        // Files from before the EPOCH section decode as unleased.
        epoch,
    })
}

/// Read and decode a snapshot file.
///
/// # Errors
///
/// [`CheckpointError::Io`] if the file cannot be read, else whatever
/// [`decode_snapshot`] reports.
pub fn read_snapshot(path: &Path) -> Result<Snapshot, CheckpointError> {
    let bytes = fs::read(path).map_err(|e| CheckpointError::Io {
        op: "read",
        kind: e.kind(),
        msg: e.to_string(),
    })?;
    decode_snapshot(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uov_isg::ivec;

    fn sample() -> Snapshot {
        Snapshot {
            fingerprint: 0xDEAD_BEEF_0BAD_F00D,
            dim: 2,
            incumbent_cost: 4,
            incumbent: ivec![2, 0],
            frontier: vec![(2, ivec![1, 1], 0b011), (1, ivec![1, 0], 0b001)],
            known: vec![(ivec![0, 0], 0), (ivec![1, 0], 0b001), (ivec![1, 1], 0b011)],
            nodes_charged: 17,
            stats: SearchStats {
                visited: 5,
                pushed: 7,
                improvements: 1,
                pruned: 2,
                capped: 0,
                complete: false,
            },
            epoch: 9,
        }
    }

    #[test]
    fn epoch_section_round_trips_and_defaults_to_zero_when_absent() {
        let snap = sample();
        let bytes = encode_snapshot(&snap).unwrap();
        assert_eq!(decode_snapshot(&bytes).unwrap().epoch, 9);

        // A pre-epoch writer: re-frame the same snapshot with the EPOCH
        // section stripped and the section count dropped back to 4. Such
        // files must decode with epoch 0, not an error.
        // Header: magic 8 ‖ version 4 ‖ fingerprint 8 ‖ dim 2 ‖ nsect 1.
        let mut legacy = Vec::new();
        legacy.extend_from_slice(&bytes[..23]);
        legacy[22] = 4; // nsect
        let mut at = 23usize;
        for _ in 0..5 {
            let tag = bytes[at];
            let len = u64::from_le_bytes(bytes[at + 1..at + 9].try_into().unwrap()) as usize;
            let end = at + 1 + 8 + len + 4;
            if tag != SEC_EPOCH {
                legacy.extend_from_slice(&bytes[at..end]);
            }
            at = end;
        }
        let decoded = decode_snapshot(&legacy).unwrap();
        assert_eq!(decoded.epoch, 0);
        assert_eq!(decoded.frontier.len(), snap.frontier.len());
    }

    #[test]
    fn roundtrip_is_identity() {
        let snap = sample();
        let bytes = encode_snapshot(&snap).unwrap();
        let back = decode_snapshot(&bytes).unwrap();
        // Encoding sorts, so compare against the sorted original.
        let mut want = snap;
        want.frontier.sort();
        want.known.sort();
        assert_eq!(back, want);
    }

    #[test]
    fn encoding_is_byte_deterministic() {
        let mut a = sample();
        let b = {
            let mut s = sample();
            s.frontier.reverse();
            s.known.reverse();
            s
        };
        assert_eq!(
            encode_snapshot(&a).unwrap(),
            encode_snapshot(&b).unwrap(),
            "entry order must not leak into the file"
        );
        a.nodes_charged += 1;
        assert_ne!(encode_snapshot(&a).unwrap(), encode_snapshot(&b).unwrap());
    }

    #[test]
    fn bad_magic_is_detected() {
        let mut bytes = encode_snapshot(&sample()).unwrap();
        bytes[0] = b'X';
        assert_eq!(decode_snapshot(&bytes), Err(CheckpointError::BadMagic));
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = encode_snapshot(&sample()).unwrap();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            decode_snapshot(&bytes),
            Err(CheckpointError::UnsupportedVersion(99))
        );
    }

    #[test]
    fn every_truncation_point_is_detected() {
        let bytes = encode_snapshot(&sample()).unwrap();
        for cut in 0..bytes.len() {
            let err = decode_snapshot(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    CheckpointError::Truncated
                        | CheckpointError::BadMagic
                        | CheckpointError::CrcMismatch { .. }
                        | CheckpointError::Corrupt(_)
                ),
                "cut at {cut}: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let bytes = encode_snapshot(&sample()).unwrap();
        let reference = decode_snapshot(&bytes).unwrap();
        for byte in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[byte] ^= 1;
            match decode_snapshot(&flipped) {
                Err(_) => {}
                Ok(decoded) => {
                    // Flips in the fingerprint field decode fine but are
                    // caught by the resume-time fingerprint comparison.
                    assert_ne!(
                        decoded.fingerprint, reference.fingerprint,
                        "undetected bit flip at byte {byte}"
                    );
                }
            }
        }
    }

    #[test]
    fn atomic_write_roundtrips_and_leaves_no_scratch() {
        let path = std::env::temp_dir().join(format!("uov-ckpt-unit-{}.bin", std::process::id()));
        let snap = sample();
        write_snapshot(&path, &snap).unwrap();
        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".tmp");
        assert!(
            !Path::new(&tmp).exists(),
            "scratch file must be renamed away"
        );
        let back = read_snapshot(&path).unwrap();
        assert_eq!(back.nodes_charged, snap.nodes_charged);
        // Overwrite is atomic too: a second write replaces the first.
        write_snapshot(&path, &snap).unwrap();
        assert_eq!(read_snapshot(&path).unwrap(), back);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn write_into_missing_directory_is_a_typed_error() {
        let path = Path::new("/nonexistent-dir-for-uov-tests/ckpt.bin");
        match write_snapshot(path, &sample()) {
            Err(CheckpointError::Io { op: "write", .. }) => {}
            other => panic!("expected Io error, got {other:?}"),
        }
    }

    /// The fingerprint moved to [`crate::fingerprint`]; this pins the
    /// compatibility re-export so existing `checkpoint::fingerprint`
    /// callers keep compiling and hashing identically.
    #[test]
    fn fingerprint_reexport_is_the_shared_fingerprint() {
        use crate::search::Objective;
        use uov_isg::Stencil;
        let s = Stencil::new(vec![ivec![1, 0], ivec![0, 1], ivec![1, 1]]).unwrap();
        assert_eq!(
            fingerprint(&s, &Objective::ShortestVector),
            crate::fingerprint::fingerprint(&s, &Objective::ShortestVector)
        );
    }
}
