//! Resource budgets and graceful-degradation records.
//!
//! UOV membership is NP-complete in the number of stencil vectors (see
//! [`crate::npc`]), so every exact routine in this crate can be handed an
//! adversarial instance that runs for geological time. A [`Budget`] bounds
//! the work — wall-clock deadline, explored-node cap, memo-table cap, and a
//! cooperative cancellation token — and the search routines respond to an
//! exhausted budget by *degrading*, not erroring: they return the best
//! incumbent found so far (at worst the always-legal initial UOV `Σvᵢ`)
//! together with a [`Degradation`] record saying what was cut short.
//!
//! Budgets are cheap to check: the node counter is an [`AtomicU64`], so a
//! single budget can be shared by every worker of a parallel search, and
//! the clock is only consulted once every
//! [`CHECK_INTERVAL`](Budget::CHECK_INTERVAL) nodes. The counter is
//! global across workers but the worker that observes an expired clock
//! still has to propagate the stop, so a deadline may be overshot by at
//! most one check interval's worth of node expansions **per worker**.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a budgeted computation stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Exhausted {
    /// The wall-clock deadline passed.
    Deadline,
    /// The explored-node cap was reached.
    Nodes,
    /// The memoization table reached its entry cap.
    Memo,
    /// The cancellation token was set by another thread.
    Cancelled,
}

impl fmt::Display for Exhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Exhausted::Deadline => write!(f, "wall-clock deadline exceeded"),
            Exhausted::Nodes => write!(f, "node budget exhausted"),
            Exhausted::Memo => write!(f, "memoization budget exhausted"),
            Exhausted::Cancelled => write!(f, "cancelled"),
        }
    }
}

impl std::error::Error for Exhausted {}

/// How a budgeted computation fell short of the exact answer.
///
/// Carried by degraded-but-valid results: the accompanying answer is always
/// *legal* (e.g. a true UOV), merely possibly non-optimal or incomplete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Degradation {
    /// Which budget dimension ran out.
    pub reason: Exhausted,
    /// Nodes charged to the budget when the computation stopped.
    pub nodes_at_stop: u64,
    /// Memo-table entries at the moment the computation stopped.
    pub memo_entries_at_stop: usize,
    /// Whether the result fell all the way back to the initial UOV `Σvᵢ`
    /// (no better incumbent had been proven before the budget ran out).
    pub fell_back_to_initial: bool,
}

impl fmt::Display for Degradation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "degraded ({}; {} nodes, {} memo entries{})",
            self.reason,
            self.nodes_at_stop,
            self.memo_entries_at_stop,
            if self.fell_back_to_initial {
                "; fell back to initial UOV"
            } else {
                ""
            }
        )
    }
}

/// A work bound for oracle queries and UOV searches.
///
/// The default budget is unlimited. Budgets are built fluently:
///
/// ```
/// use std::time::Duration;
/// use uov_core::Budget;
///
/// let b = Budget::unlimited()
///     .with_deadline(Duration::from_millis(5))
///     .with_max_nodes(100_000)
///     .with_max_memo_entries(1 << 20);
/// assert!(b.charge().is_ok());
/// ```
///
/// A single `Budget` value tracks consumed nodes across everything it is
/// threaded through — including every worker of a parallel search, which
/// all charge the same atomic counter. Clone it to get an independent
/// counter with the same limits (a cloned deadline still refers to the
/// same wall-clock instant, and a cloned cancellation token still trips
/// together).
#[derive(Debug, Default)]
pub struct Budget {
    deadline: Option<Instant>,
    max_nodes: Option<u64>,
    max_memo: Option<usize>,
    cancel: Option<Arc<AtomicBool>>,
    nodes: AtomicU64,
}

impl Clone for Budget {
    fn clone(&self) -> Self {
        Budget {
            deadline: self.deadline,
            max_nodes: self.max_nodes,
            max_memo: self.max_memo,
            cancel: self.cancel.clone(),
            nodes: AtomicU64::new(self.nodes.load(Ordering::Relaxed)),
        }
    }
}

impl Budget {
    /// The deadline and the cancellation token are polled once every this
    /// many charged nodes. The counter is shared by all workers of a
    /// parallel search, so either can be overshot by at most
    /// `CHECK_INTERVAL − 1` node expansions **per worker** — the observing
    /// worker stops at the poll, the others within their next charge after
    /// the stop flag propagates.
    pub const CHECK_INTERVAL: u64 = 64;

    /// A budget with no limits: never reports exhaustion.
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Stop `duration` from now.
    pub fn with_deadline(self, duration: Duration) -> Self {
        self.with_deadline_at(Instant::now() + duration)
    }

    /// Stop at the given instant.
    pub fn with_deadline_at(mut self, at: Instant) -> Self {
        self.deadline = Some(at);
        self
    }

    /// Stop after charging `n` nodes.
    pub fn with_max_nodes(mut self, n: u64) -> Self {
        self.max_nodes = Some(n);
        self
    }

    /// Stop once a memo table the budget guards reaches `n` entries.
    pub fn with_max_memo_entries(mut self, n: usize) -> Self {
        self.max_memo = Some(n);
        self
    }

    /// Stop as soon as `token` is observed `true` (checked at the same
    /// cadence as the deadline).
    pub fn with_cancel_token(mut self, token: Arc<AtomicBool>) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Whether any limit is configured at all.
    pub fn is_limited(&self) -> bool {
        self.deadline.is_some()
            || self.max_nodes.is_some()
            || self.max_memo.is_some()
            || self.cancel.is_some()
    }

    /// Nodes charged so far (across all sharers of this budget value).
    pub fn nodes_charged(&self) -> u64 {
        self.nodes.load(Ordering::Relaxed)
    }

    /// Raise the node counter to at least `n` (it never decreases).
    ///
    /// Used by checkpoint resume: a resumed search inherits the nodes the
    /// interrupted run already charged, so a cumulative `max_nodes` cap
    /// holds across arbitrarily many interrupt/resume cycles instead of
    /// resetting on every restart.
    pub fn restore_nodes_charged(&self, n: u64) {
        self.nodes.fetch_max(n, Ordering::Relaxed);
    }

    /// Charge one unit of work (one search-node expansion).
    ///
    /// Safe to call concurrently from many workers: the counter is a
    /// single atomic, so the node cap stays exact under contention, and
    /// every `CHECK_INTERVAL`-th global charge polls the clock and token.
    ///
    /// # Errors
    ///
    /// Returns the exhausted dimension once a limit is hit. The node cap is
    /// exact; deadline and cancellation are polled every
    /// [`CHECK_INTERVAL`](Budget::CHECK_INTERVAL) nodes, giving a
    /// per-worker overshoot bound of one check interval.
    pub fn charge(&self) -> Result<(), Exhausted> {
        let n = self.nodes.fetch_add(1, Ordering::Relaxed).saturating_add(1);
        if let Some(cap) = self.max_nodes {
            if n > cap {
                return Err(Exhausted::Nodes);
            }
        }
        if n.is_multiple_of(Self::CHECK_INTERVAL) || n == 1 {
            if let Some(tok) = &self.cancel {
                if tok.load(Ordering::Relaxed) {
                    return Err(Exhausted::Cancelled);
                }
            }
            if let Some(deadline) = self.deadline {
                if Instant::now() >= deadline {
                    return Err(Exhausted::Deadline);
                }
            }
        }
        Ok(())
    }

    /// Check a memo table's size against the memo cap.
    ///
    /// # Errors
    ///
    /// Returns [`Exhausted::Memo`] when `len` has reached the cap.
    pub fn check_memo(&self, len: usize) -> Result<(), Exhausted> {
        match self.max_memo {
            Some(cap) if len >= cap => Err(Exhausted::Memo),
            _ => Ok(()),
        }
    }

    /// Build a [`Degradation`] record for a computation stopped by `reason`.
    pub fn degradation(
        &self,
        reason: Exhausted,
        memo_entries: usize,
        fell_back_to_initial: bool,
    ) -> Degradation {
        Degradation {
            reason,
            nodes_at_stop: self.nodes.load(Ordering::Relaxed),
            memo_entries_at_stop: memo_entries,
            fell_back_to_initial,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_exhausts() {
        let b = Budget::unlimited();
        for _ in 0..10_000 {
            assert!(b.charge().is_ok());
        }
        assert!(b.check_memo(usize::MAX).is_ok());
        assert!(!b.is_limited());
        assert_eq!(b.nodes_charged(), 10_000);
    }

    #[test]
    fn node_cap_is_exact() {
        let b = Budget::unlimited().with_max_nodes(5);
        for _ in 0..5 {
            assert!(b.charge().is_ok());
        }
        assert_eq!(b.charge(), Err(Exhausted::Nodes));
    }

    #[test]
    fn deadline_trips_within_interval() {
        let b = Budget::unlimited().with_deadline(Duration::ZERO);
        // The very first charge polls the clock.
        assert_eq!(b.charge(), Err(Exhausted::Deadline));
    }

    #[test]
    fn deadline_overshoot_is_bounded() {
        let b = Budget::unlimited().with_deadline(Duration::ZERO);
        let mut charges = 0u64;
        while b.charge().is_ok() {
            charges += 1;
            assert!(
                charges < Budget::CHECK_INTERVAL,
                "deadline ignored past check interval"
            );
        }
    }

    #[test]
    fn cancel_token_observed() {
        let token = Arc::new(AtomicBool::new(false));
        let b = Budget::unlimited().with_cancel_token(token.clone());
        assert!(b.charge().is_ok());
        token.store(true, Ordering::Relaxed);
        let mut tripped = false;
        for _ in 0..Budget::CHECK_INTERVAL {
            if b.charge() == Err(Exhausted::Cancelled) {
                tripped = true;
                break;
            }
        }
        assert!(
            tripped,
            "cancellation not observed within one check interval"
        );
    }

    #[test]
    fn memo_cap() {
        let b = Budget::unlimited().with_max_memo_entries(3);
        assert!(b.check_memo(2).is_ok());
        assert_eq!(b.check_memo(3), Err(Exhausted::Memo));
    }

    #[test]
    fn node_cap_is_exact_under_concurrent_charging() {
        let b = Budget::unlimited().with_max_nodes(1000);
        let ok = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..300 {
                        if b.charge().is_ok() {
                            ok.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        // 1200 concurrent charges against a cap of 1000: exactly the first
        // 1000 (by atomic order) succeed, regardless of interleaving.
        assert_eq!(ok.load(Ordering::Relaxed), 1000);
        assert_eq!(b.nodes_charged(), 1200);
    }

    #[test]
    fn clone_copies_the_counter_snapshot() {
        let b = Budget::unlimited().with_max_nodes(10);
        let _ = b.charge();
        let c = b.clone();
        assert_eq!(c.nodes_charged(), 1);
        let _ = c.charge();
        assert_eq!(c.nodes_charged(), 2);
        assert_eq!(b.nodes_charged(), 1, "clones count independently");
    }

    #[test]
    fn degradation_record_and_display() {
        let b = Budget::unlimited().with_max_nodes(1);
        let _ = b.charge();
        let _ = b.charge();
        let d = b.degradation(Exhausted::Nodes, 7, true);
        assert_eq!(d.nodes_at_stop, 2);
        assert_eq!(d.memo_entries_at_stop, 7);
        assert!(d.fell_back_to_initial);
        let text = d.to_string();
        assert!(text.contains("node budget"));
        assert!(text.contains("initial UOV"));
        assert!(Exhausted::Deadline.to_string().contains("deadline"));
    }

    #[test]
    fn restored_nodes_count_against_a_cumulative_cap() {
        let b = Budget::unlimited().with_max_nodes(10);
        b.restore_nodes_charged(9);
        assert_eq!(b.nodes_charged(), 9);
        assert!(b.charge().is_ok(), "10th node is within the cap");
        assert!(b.charge().is_err(), "11th node exceeds it");
        // Restoring never rolls the counter back.
        b.restore_nodes_charged(3);
        assert_eq!(b.nodes_charged(), 11);
    }
}
