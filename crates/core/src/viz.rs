//! Text rendering of DONE/DEAD sets — the paper's Figure 2, printable.
//!
//! The figure shows, for a fixed point `q` (circled), which earlier
//! iterations must already have executed (`DONE`, black dots) and which of
//! those have had every consumer run (`DEAD`, squares). This module
//! renders the same picture in ASCII, used by the `fig2` experiment and
//! handy when exploring new stencils interactively.

use uov_isg::{IVec, IterationDomain, RectDomain};

use crate::DoneOracle;

/// Glyphs used by [`render_done_dead`].
#[derive(Debug, Clone)]
pub struct Glyphs {
    /// The reference point `q`.
    pub q: char,
    /// Points in `DEAD(V, q)` (reusable storage).
    pub dead: char,
    /// Points in `DONE(V, q) \ DEAD(V, q)`.
    pub done: char,
    /// All other iteration points.
    pub other: char,
}

impl Default for Glyphs {
    fn default() -> Self {
        // The paper's legend: squares are DEAD, filled dots are DONE.
        Glyphs {
            q: 'Q',
            dead: '#',
            done: '*',
            other: '.',
        }
    }
}

/// Render the DONE/DEAD classification of every point of `window` with
/// respect to `q`, one text row per first coordinate (top = smallest).
///
/// # Panics
///
/// Panics unless the window and stencil are two-dimensional.
///
/// # Examples
///
/// ```
/// use uov_core::{viz::render_done_dead, DoneOracle};
/// use uov_isg::{ivec, RectDomain, Stencil};
///
/// let s = Stencil::new(vec![ivec![1, -1], ivec![1, 0], ivec![1, 1]])?;
/// let oracle = DoneOracle::new(&s);
/// let window = RectDomain::new(ivec![0, -3], ivec![3, 3]);
/// let art = render_done_dead(&oracle, &ivec![3, 0], &window, &Default::default());
/// assert!(art.contains('Q'));
/// assert!(art.contains('#'));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn render_done_dead(
    oracle: &DoneOracle,
    q: &IVec,
    window: &RectDomain,
    glyphs: &Glyphs,
) -> String {
    assert_eq!(window.dim(), 2, "rendering is two-dimensional");
    assert_eq!(oracle.stencil().dim(), 2, "rendering is two-dimensional");
    let mut out = String::new();
    for i in window.lo()[0]..=window.hi()[0] {
        for j in window.lo()[1]..=window.hi()[1] {
            let p = IVec::from([i, j]);
            let w = q - &p;
            let ch = if &p == q {
                glyphs.q
            } else if oracle.in_dead(&w) {
                glyphs.dead
            } else if oracle.in_done(&w) {
                glyphs.done
            } else {
                glyphs.other
            };
            out.push(ch);
            out.push(' ');
        }
        out.pop();
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use uov_isg::{ivec, Stencil};

    fn fig2_oracle() -> DoneOracle {
        DoneOracle::new(&Stencil::new(vec![ivec![1, -1], ivec![1, 0], ivec![1, 1]]).unwrap())
    }

    #[test]
    fn renders_the_fig2_wedge() {
        let oracle = fig2_oracle();
        let q = ivec![3, 0];
        let window = RectDomain::new(ivec![0, -3], ivec![3, 3]);
        let art = render_done_dead(&oracle, &q, &window, &Glyphs::default());
        let rows: Vec<&str> = art.lines().collect();
        assert_eq!(rows.len(), 4);
        // Row of q: only q itself is live there.
        assert!(rows[3].contains('Q'));
        // Row 0 (three steps back): the wedge has width 7, with the centre
        // DEAD (all three consumers of (0,0) lie inside the cone to q).
        assert_eq!(rows[0].chars().filter(|&c| c != ' ').count(), 7);
        assert!(
            rows[0].contains('#'),
            "deep rows contain DEAD points: {art}"
        );
        // DEAD never appears in the row immediately above q: those values
        // still await consumers beside q.
        assert!(
            !rows[2].contains('#'),
            "row above q must not be DEAD:\n{art}"
        );
    }

    #[test]
    fn counts_match_oracle_sets() {
        let oracle = fig2_oracle();
        let q = ivec![4, 0];
        let window = RectDomain::new(ivec![0, -4], ivec![4, 4]);
        let art = render_done_dead(&oracle, &q, &window, &Glyphs::default());
        let dead_glyphs = art.chars().filter(|&c| c == '#').count();
        let done_glyphs = art.chars().filter(|&c| c == '*').count();
        let done_set = oracle.done_points(&q, &window);
        let dead_set = oracle.dead_points(&q, &window);
        // q is in DONE (zero offset) but never in DEAD (its own value is
        // still unconsumed), and it renders as 'Q'.
        assert_eq!(dead_glyphs, dead_set.len());
        assert_eq!(done_glyphs + dead_glyphs, done_set.len() - 1);
    }

    #[test]
    fn custom_glyphs() {
        let oracle = fig2_oracle();
        let window = RectDomain::new(ivec![0, -2], ivec![2, 2]);
        let art = render_done_dead(
            &oracle,
            &ivec![2, 0],
            &window,
            &Glyphs {
                q: 'o',
                dead: 'D',
                done: 'd',
                other: '_',
            },
        );
        assert!(art.contains('o'));
        assert!(art.contains('_'));
    }
}
