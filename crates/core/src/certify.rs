//! Independent certification of search results.
//!
//! The branch-and-bound engine is ~1000 lines of pruning, sharding and
//! atomics; the legality of its answer should not rest on all of that
//! being correct. This module is the deliberately small trust anchor: it
//! re-derives universality straight from the paper's definition — `w` is
//! a UOV iff `w − vᵢ` lies in the DONE cone for every stencil vector `vᵢ`
//! — using a **fresh** [`DoneOracle`] that shares no state with the
//! search, and re-computes the claimed objective value from scratch.
//!
//! [`certify`] is run by [`plan`](../../uov/driver/fn.plan.html) on every
//! emitted UOV (including degraded `Σvᵢ` fallbacks and resumed-run
//! answers) before the mapping reaches the caller; a failure is a typed
//! [`CertifyError`], never a silently wrong storage mapping. The returned
//! [`Certificate`] records what was checked — the vector, its cost, the
//! DONE-witness count and a transcript hash — so results can be compared
//! and audited across runs and machines.

use std::fmt;

use uov_isg::{IVec, Stencil};

use crate::error::SearchError;
use crate::fingerprint::{fingerprint, Fnv};
use crate::oracle::{diff_into, DoneOracle};
use crate::search::{try_cost_of, Objective, SearchResult};

/// Proof-of-validation attached to a certified search result.
///
/// A certificate is evidence that the independent checker accepted the
/// result, not a replayable proof object: `transcript_hash` binds the
/// checked facts (problem fingerprint, vector, cost, witness counts)
/// into one comparable value, so two runs certifying the same answer on
/// the same problem produce identical hashes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// The certified universal occupancy vector.
    pub uov: IVec,
    /// Its independently recomputed objective value.
    pub cost: u128,
    /// Stencil dependences checked (one DONE membership test each).
    pub dependences_checked: usize,
    /// Size of the oracle's DONE witness set after certification — the
    /// cone memo that proves the membership verdicts.
    pub done_witnesses: usize,
    /// FNV-1a hash over the problem fingerprint, the vector, the cost
    /// and the witness counts.
    pub transcript_hash: u64,
    /// Whether the certified result came from a degraded (budget-cut)
    /// search. Degraded answers are legal but possibly non-optimal.
    pub degraded: bool,
}

impl fmt::Display for Certificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "certified uov={} cost={} ({} dependences, {} DONE witnesses, transcript {:#018x}{})",
            self.uov,
            self.cost,
            self.dependences_checked,
            self.done_witnesses,
            self.transcript_hash,
            if self.degraded { ", degraded" } else { "" }
        )
    }
}

/// Why certification rejected a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertifyError {
    /// `uov − violated` is not in the DONE cone: the vector is not
    /// universal and using it would alias live values.
    NotUniversal {
        /// The rejected occupancy vector.
        uov: IVec,
        /// The stencil dependence whose backward step leaves the cone.
        violated: IVec,
    },
    /// The result's claimed objective value does not match an
    /// independent recomputation.
    CostMismatch {
        /// Cost claimed by the search result.
        claimed: u128,
        /// Cost the checker computed from scratch.
        recomputed: u128,
    },
    /// The checker itself could not run (oracle construction or cost
    /// recomputation failed on out-of-range inputs).
    Search(SearchError),
}

impl fmt::Display for CertifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertifyError::NotUniversal { uov, violated } => write!(
                f,
                "occupancy vector {uov} is not universal: {uov} − {violated} leaves the DONE cone"
            ),
            CertifyError::CostMismatch {
                claimed,
                recomputed,
            } => write!(
                f,
                "claimed cost {claimed} does not match independently recomputed cost {recomputed}"
            ),
            CertifyError::Search(e) => write!(f, "certifier could not run: {e}"),
        }
    }
}

impl std::error::Error for CertifyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CertifyError::Search(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SearchError> for CertifyError {
    fn from(e: SearchError) -> Self {
        CertifyError::Search(e)
    }
}

/// Re-validate a search result against the paper's UOV definition and
/// recompute its cost, with no state shared with the search engine.
///
/// # Errors
///
/// * [`CertifyError::NotUniversal`] — the vector fails a DONE membership
///   test for some dependence (this would be an engine bug; the caller
///   must discard the mapping).
/// * [`CertifyError::CostMismatch`] — the vector is universal but its
///   claimed objective value is wrong.
/// * [`CertifyError::Search`] — the checker could not run at all.
///
/// # Examples
///
/// ```
/// use uov_core::certify::certify;
/// use uov_core::search::{find_best_uov, Objective, SearchConfig};
/// use uov_isg::{ivec, Stencil};
///
/// let s = Stencil::new(vec![ivec![1, 0], ivec![0, 1], ivec![1, 1]])?;
/// let best = find_best_uov(&s, Objective::ShortestVector, &SearchConfig::default())?;
/// let cert = certify(&s, &Objective::ShortestVector, &best)?;
/// assert_eq!(cert.uov, ivec![1, 1]);
/// assert!(!cert.degraded);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn certify(
    stencil: &Stencil,
    objective: &Objective<'_>,
    result: &SearchResult,
) -> Result<Certificate, CertifyError> {
    let oracle = DoneOracle::try_new(stencil)?;
    let unlimited = crate::budget::Budget::unlimited();
    let mut dependences_checked = 0;
    // One scratch buffer serves every dependence check: the certifier
    // re-derives each `uov − vᵢ` in place and queries the oracle through
    // its allocation-free slice entry point.
    let mut back: Vec<i64> = Vec::with_capacity(stencil.dim());
    for v in stencil.iter() {
        diff_into(result.uov.as_slice(), v.as_slice(), &mut back).map_err(CertifyError::from)?;
        if !oracle.in_done_slice_budgeted(&back, &unlimited)? {
            return Err(CertifyError::NotUniversal {
                uov: result.uov.clone(),
                violated: v.clone(),
            });
        }
        dependences_checked += 1;
    }
    let recomputed = try_cost_of(objective, &result.uov).map_err(SearchError::from)?;
    if recomputed != result.cost {
        return Err(CertifyError::CostMismatch {
            claimed: result.cost,
            recomputed,
        });
    }
    let done_witnesses = oracle.cache_len();
    let degraded = result.degradation.is_some();
    let mut h = Fnv::new();
    h.write_u64(fingerprint(stencil, objective));
    for &c in result.uov.as_slice() {
        h.write_i64(c);
    }
    h.write(&result.cost.to_le_bytes());
    h.write_u64(dependences_checked as u64);
    h.write_u64(done_witnesses as u64);
    h.write_u64(u64::from(degraded));
    Ok(Certificate {
        uov: result.uov.clone(),
        cost: recomputed,
        dependences_checked,
        done_witnesses,
        transcript_hash: h.finish(),
        degraded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{find_best_uov, SearchConfig};
    use uov_isg::{ivec, RectDomain};

    fn fig1() -> Stencil {
        Stencil::new(vec![ivec![1, 0], ivec![0, 1], ivec![1, 1]]).unwrap()
    }

    #[test]
    fn honest_results_certify() {
        let s = fig1();
        let best = find_best_uov(&s, Objective::ShortestVector, &SearchConfig::default()).unwrap();
        let cert = certify(&s, &Objective::ShortestVector, &best).unwrap();
        assert_eq!(cert.uov, best.uov);
        assert_eq!(cert.cost, best.cost);
        assert_eq!(cert.dependences_checked, 3);
        assert!(cert.done_witnesses > 0);
        assert!(!cert.degraded);
    }

    #[test]
    fn transcript_hash_is_reproducible_and_sensitive() {
        let s = fig1();
        let best = find_best_uov(&s, Objective::ShortestVector, &SearchConfig::default()).unwrap();
        let a = certify(&s, &Objective::ShortestVector, &best).unwrap();
        let b = certify(&s, &Objective::ShortestVector, &best).unwrap();
        assert_eq!(a.transcript_hash, b.transcript_hash);
        let grid = RectDomain::grid(6, 6);
        let kb =
            find_best_uov(&s, Objective::KnownBounds(&grid), &SearchConfig::default()).unwrap();
        let c = certify(&s, &Objective::KnownBounds(&grid), &kb).unwrap();
        assert_ne!(a.transcript_hash, c.transcript_hash);
    }

    #[test]
    fn forged_vector_is_rejected() {
        let s = fig1();
        let mut forged =
            find_best_uov(&s, Objective::ShortestVector, &SearchConfig::default()).unwrap();
        forged.uov = ivec![1, 0]; // a single dependence, not universal
        forged.cost = 1;
        match certify(&s, &Objective::ShortestVector, &forged) {
            Err(CertifyError::NotUniversal { uov, .. }) => assert_eq!(uov, ivec![1, 0]),
            other => panic!("expected NotUniversal, got {other:?}"),
        }
    }

    #[test]
    fn forged_cost_is_rejected() {
        let s = fig1();
        let mut lied =
            find_best_uov(&s, Objective::ShortestVector, &SearchConfig::default()).unwrap();
        lied.cost += 1;
        match certify(&s, &Objective::ShortestVector, &lied) {
            Err(CertifyError::CostMismatch {
                claimed,
                recomputed,
            }) => {
                assert_eq!(claimed, recomputed + 1);
            }
            other => panic!("expected CostMismatch, got {other:?}"),
        }
    }

    #[test]
    fn degraded_fallback_certifies_as_degraded() {
        let s = fig1();
        let cut = find_best_uov(
            &s,
            Objective::ShortestVector,
            &SearchConfig {
                max_visits: Some(1),
                ..SearchConfig::default()
            },
        )
        .unwrap();
        assert!(cut.degradation.is_some());
        let cert = certify(&s, &Objective::ShortestVector, &cut).unwrap();
        assert!(cert.degraded, "Σvᵢ fallback is legal but flagged degraded");
        assert_eq!(cert.uov, crate::search::initial_uov(&s));
    }
}
