//! Dense, lazily-paged storage over a bounded search window.
//!
//! The UOV hot path — cone-membership memoisation in the
//! [`DoneOracle`](crate::DoneOracle) and PATHSET bookkeeping in the
//! branch-and-bound search — is dominated by point queries on small
//! integer vectors. Hash maps answer those in ~100ns with an allocation
//! per key; a flat array indexed by linearized window coordinates
//! answers them in a handful of instructions with no allocation at all.
//!
//! Three pieces live here:
//!
//! * [`Window`] — a row-major linearization of an axis-aligned box in
//!   `Z^d` containing the origin. [`Window::index`] bounds-checks every
//!   coordinate *before* doing any arithmetic, so adversarial
//!   near-`i64::MAX` coordinates return `None` (spill to the hash tier)
//!   instead of overflowing.
//! * [`ConeMemo`] — a tri-state (`unknown`/`false`/`true`) verdict array
//!   over a window, the oracle's dense DONE memo.
//! * [`MaskTable`] — the search's PATHSET node pool: a dense `u64` cell
//!   per window point (bit 63 is the PRESENT flag — stencils have at
//!   most 63 vectors, so PATHSET masks only ever use bits `0..=62`)
//!   plus a sharded spill map and an arena of out-of-window coordinates,
//!   addressed by stable `u64` keys so queue entries are `Copy`.
//!
//! Both arrays are **lazily paged**: the backing store is a directory of
//! [`OnceLock`] pages allocated on first write. A search that touches a
//! few dozen points near the origin pays for one or two small pages, not
//! for the whole window — which is what keeps the per-search fixed cost
//! low enough for the nodes/sec targets in `BENCH_pr7.json`.
//!
//! Nothing here affects *answers*: the window is a cache-shaped view and
//! the spill tier is always consulted for out-of-window points, so
//! results are identical whatever bounds the window ends up with.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

use uov_isg::IVec;

/// Entries per page: pages are 4 KiB for [`ConeMemo`] (u8 cells) and
/// 32 KiB for [`MaskTable`] (u64 cells) — big enough to amortize the
/// directory, small enough that first-touch zeroing stays cheap.
const PAGE_BITS: usize = 12;
const PAGE: usize = 1 << PAGE_BITS;

/// PRESENT flag in a dense [`MaskTable`] cell. Sound because a stencil
/// has at most 63 vectors ([`SearchError::TooManyVectors`] otherwise),
/// so PATHSET masks only occupy bits `0..=62`.
///
/// [`SearchError::TooManyVectors`]: crate::SearchError::TooManyVectors
const PRESENT: u64 = 1 << 63;

/// Tag bit distinguishing spill-arena keys from dense window indices in
/// the `u64` key space handed out by [`MaskTable::merge`]. Dense indices
/// are bounded by the window entry budget, far below this bit.
const SPILL_TAG: u64 = 1 << 63;

/// Take a mutex even when a panicking holder poisoned it: every critical
/// section here is a few plain stores with no invariants that a panic
/// could tear, so the data is still well-formed.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Row-major linearization of an axis-aligned box `[lo_k, hi_k]` in
/// `Z^d` that contains the origin.
///
/// # Examples
///
/// ```
/// use uov_core::dense::Window;
///
/// let w = Window::from_bounds(&[-2, 0], &[2, 4], 1 << 20);
/// assert_eq!(w.len(), 25);
/// assert!(w.index(&[0, 0]).is_some());
/// assert!(w.index(&[3, 0]).is_none()); // out of bounds → spill tier
/// assert!(w.index(&[i64::MAX, 0]).is_none()); // no overflow either
/// ```
#[derive(Debug, Clone)]
pub struct Window {
    lo: Vec<i64>,
    extent: Vec<i64>,
    stride: Vec<usize>,
    len: usize,
}

impl Window {
    /// A window holding nothing: every [`Window::index`] query misses,
    /// so all traffic goes to the spill tier.
    pub fn empty(dim: usize) -> Self {
        Window {
            lo: vec![0; dim],
            extent: vec![0; dim],
            stride: vec![0; dim],
            len: 0,
        }
    }

    /// The box `[lo_k, hi_k]` per dimension, shrunk toward the origin
    /// until it holds at most `entry_budget` points.
    ///
    /// Bounds are clamped to contain 0 (the search and the cone walk
    /// both start there) and to `±i64::MAX/4` so extents cannot
    /// overflow. Shrinking halves the widest dimension toward the
    /// origin, which preserves the near-origin region where the hot
    /// traffic lives.
    ///
    /// # Panics
    ///
    /// Panics if `lo.len() != hi.len()`.
    pub fn from_bounds(lo: &[i64], hi: &[i64], entry_budget: usize) -> Self {
        assert_eq!(lo.len(), hi.len(), "window bounds dimension mismatch");
        let dim = lo.len();
        const CLAMP: i64 = i64::MAX / 4;
        let mut lo: Vec<i64> = lo.iter().map(|&l| l.clamp(-CLAMP, 0)).collect();
        let mut hi: Vec<i64> = hi.iter().map(|&h| h.clamp(0, CLAMP)).collect();
        if entry_budget == 0 || dim == 0 {
            return Window::empty(dim);
        }
        loop {
            let mut product: u128 = 1;
            for k in 0..dim {
                let extent = (hi[k] - lo[k]) as u128 + 1;
                product = product.saturating_mul(extent);
            }
            if product <= entry_budget as u128 {
                break;
            }
            // Halve the widest dimension toward the origin.
            let widest = match (0..dim).max_by_key(|&k| (hi[k] - lo[k]) as u128) {
                Some(k) => k,
                None => return Window::empty(dim),
            };
            if hi[widest] == 0 && lo[widest] == 0 {
                // Everything is already a point; budget < 1 per point.
                return Window::empty(dim);
            }
            hi[widest] /= 2;
            lo[widest] /= 2;
        }
        let extent: Vec<i64> = (0..dim).map(|k| hi[k] - lo[k] + 1).collect();
        let mut stride = vec![0usize; dim];
        let mut acc = 1usize;
        for k in (0..dim).rev() {
            stride[k] = acc;
            acc *= extent[k] as usize;
        }
        Window {
            lo,
            extent,
            stride,
            len: acc,
        }
    }

    /// Dimension of the window's coordinates.
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Number of addressable points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the window holds no points.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Linear index of `w`, or `None` when any coordinate falls outside
    /// the box (including coordinates so extreme the offset arithmetic
    /// would overflow — the bounds check happens first, which is what
    /// routes near-`i64::MAX` queries to the spill tier).
    #[inline]
    pub fn index(&self, w: &[i64]) -> Option<usize> {
        if self.len == 0 || w.len() != self.lo.len() {
            return None;
        }
        let mut idx = 0usize;
        for (k, &wk) in w.iter().enumerate() {
            let off = wk.checked_sub(self.lo[k])?;
            if off < 0 || off >= self.extent[k] {
                return None;
            }
            idx += off as usize * self.stride[k];
        }
        Some(idx)
    }

    /// Inverse of [`Window::index`]: the coordinates of linear index
    /// `idx`, written into `out`.
    pub fn decode(&self, mut idx: usize, out: &mut Vec<i64>) {
        out.clear();
        for k in 0..self.lo.len() {
            let q = idx / self.stride[k];
            idx %= self.stride[k];
            out.push(self.lo[k] + q as i64);
        }
    }
}

/// Directory of lazily-allocated atomic pages; cells start at `zero`.
#[derive(Debug)]
struct Pages<T> {
    pages: Vec<OnceLock<Box<[T]>>>,
}

impl<T> Pages<T> {
    fn new(len: usize) -> Self {
        Pages {
            pages: (0..len.div_ceil(PAGE)).map(|_| OnceLock::new()).collect(),
        }
    }
}

macro_rules! atomic_pages {
    ($t:ty, $atom:ty) => {
        impl Pages<$atom> {
            /// Read a cell; an unallocated page reads as zero.
            #[inline]
            fn load(&self, idx: usize) -> $t {
                match self.pages[idx >> PAGE_BITS].get() {
                    Some(page) => page[idx & (PAGE - 1)].load(Ordering::Relaxed),
                    None => 0,
                }
            }

            /// The cell for `idx`, allocating its page on first touch.
            #[inline]
            fn cell(&self, idx: usize) -> &$atom {
                let page = self.pages[idx >> PAGE_BITS]
                    .get_or_init(|| (0..PAGE).map(|_| <$atom>::new(0)).collect());
                &page[idx & (PAGE - 1)]
            }
        }
    };
}

atomic_pages!(u8, AtomicU8);
atomic_pages!(u64, AtomicU64);

const VERDICT_FALSE: u8 = 1;
const VERDICT_TRUE: u8 = 2;

/// Dense tri-state cone-membership memo over a [`Window`].
///
/// Cell states are `unknown`, `false`, `true`. Verdicts for a fixed
/// stencil are unique, so concurrent writers always agree and relaxed
/// atomics suffice; the occupancy counter is claimed by compare-exchange
/// so it counts each cell exactly once.
#[derive(Debug)]
pub struct ConeMemo {
    window: Window,
    cells: Pages<AtomicU8>,
    occupied: AtomicUsize,
}

impl ConeMemo {
    /// An all-unknown memo over `window`.
    pub fn new(window: Window) -> Self {
        let cells = Pages::new(window.len());
        ConeMemo {
            window,
            cells,
            occupied: AtomicUsize::new(0),
        }
    }

    /// The window this memo covers.
    pub fn window(&self) -> &Window {
        &self.window
    }

    /// The memoised verdict at `idx`, if one has been recorded.
    #[inline]
    pub fn get(&self, idx: usize) -> Option<bool> {
        match self.cells.load(idx) {
            0 => None,
            VERDICT_FALSE => Some(false),
            _ => Some(true),
        }
    }

    /// Record a verdict; returns whether the cell was previously
    /// unknown. Losing a race to another writer is harmless — verdicts
    /// are unique — and does not double-count occupancy.
    pub fn set(&self, idx: usize, val: bool) -> bool {
        let verdict = if val { VERDICT_TRUE } else { VERDICT_FALSE };
        match self.cells.cell(idx).compare_exchange(
            0,
            verdict,
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => {
                self.occupied.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(_) => false,
        }
    }

    /// Number of recorded verdicts.
    pub fn len(&self) -> usize {
        self.occupied.load(Ordering::Relaxed)
    }

    /// Whether no verdict has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Outcome of [`MaskTable::merge`].
#[derive(Debug, Clone, Copy)]
pub struct MergeOutcome {
    /// Whether the merge added at least one new PATHSET bit (or the node
    /// itself); only then is a fresh queue entry worth pushing.
    pub grew: bool,
    /// The node's PATHSET mask after the merge.
    pub merged: u64,
    /// Whether the node was absent before this merge.
    pub is_new: bool,
    /// Stable key for the node — a dense window index, or a tagged
    /// spill-arena id. Feed it to [`MaskTable::mask_of`] /
    /// [`MaskTable::coords_of`].
    pub key: u64,
}

/// Number of spill stripes; a power of two so the stripe index is a mask.
const SPILL_SHARDS: usize = 16;

/// The search's PATHSET node pool: dense `u64` cells over a [`Window`]
/// (PRESENT bit + mask bits), spilling out-of-window nodes to a sharded
/// map plus a coordinate arena so every node has a stable `Copy` key.
///
/// Queue entries throughout the search are `(cost, key, mask)` triples —
/// no heap-allocated vectors on the hot path. For in-window nodes the
/// key *is* the linear window index, which is ordered like `lex w`
/// within the window, so the canonical `(cost, ‖w‖², lex w)` tie-break
/// behaviour of the heap is preserved for dense traffic.
#[derive(Debug)]
pub struct MaskTable {
    window: Window,
    cells: Pages<AtomicU64>,
    /// Keys of occupied dense cells in insertion order, so snapshots
    /// enumerate occupancy without scanning the whole window.
    dense_log: Mutex<Vec<u32>>,
    /// Total node count across both tiers (the memo-cap figure).
    count: AtomicUsize,
    /// Out-of-window nodes: coords → (mask, arena id).
    spill: Vec<Mutex<HashMap<IVec, (u64, u32)>>>,
    /// Spill id → coords, so spill keys decode without a map walk.
    arena: Mutex<Vec<IVec>>,
}

impl MaskTable {
    /// An empty node pool over `window`.
    pub fn new(window: Window) -> Self {
        debug_assert!(window.len() as u64 <= u32::MAX as u64 + 1);
        let cells = Pages::new(window.len());
        MaskTable {
            window,
            cells,
            dense_log: Mutex::new(Vec::new()),
            count: AtomicUsize::new(0),
            spill: (0..SPILL_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            arena: Mutex::new(Vec::new()),
        }
    }

    /// The window backing the dense tier.
    pub fn window(&self) -> &Window {
        &self.window
    }

    fn shard(&self, w: &[i64]) -> &Mutex<HashMap<IVec, (u64, u32)>> {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        w.hash(&mut h);
        &self.spill[(h.finish() as usize) & (SPILL_SHARDS - 1)]
    }

    /// Total nodes across the dense and spill tiers. Exact when
    /// quiescent; a snapshot under concurrent insertion, which is all
    /// the memo-cap check needs.
    pub fn len(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }

    /// Whether the pool holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current PATHSET mask of the node at `w`, if present.
    #[inline]
    pub fn probe(&self, w: &[i64]) -> Option<u64> {
        match self.window.index(w) {
            Some(idx) => {
                let cell = self.cells.load(idx);
                if cell & PRESENT != 0 {
                    Some(cell & !PRESENT)
                } else {
                    None
                }
            }
            None => lock_unpoisoned(self.shard(w)).get(w).map(|&(mask, _)| mask),
        }
    }

    /// Stable key of an *existing* node (used when re-keying seeded
    /// frontier entries); `None` if the node is absent.
    pub fn key_of(&self, w: &[i64]) -> Option<u64> {
        match self.window.index(w) {
            Some(idx) => (self.cells.load(idx) & PRESENT != 0).then_some(idx as u64),
            None => lock_unpoisoned(self.shard(w))
                .get(w)
                .map(|&(_, id)| SPILL_TAG | id as u64),
        }
    }

    /// Union `mask` into the node at `w`, creating it if absent.
    ///
    /// Dense nodes merge with one `fetch_or` (the PRESENT bit rides
    /// along, so presence and mask update are a single atomic op);
    /// spill nodes take a stripe lock. Exactly one racing creator
    /// observes `is_new`.
    pub fn merge(&self, w: &[i64], mask: u64) -> MergeOutcome {
        debug_assert_eq!(mask & PRESENT, 0, "PATHSET masks use bits 0..=62");
        match self.window.index(w) {
            Some(idx) => {
                let prior = self
                    .cells
                    .cell(idx)
                    .fetch_or(PRESENT | mask, Ordering::AcqRel);
                let is_new = prior & PRESENT == 0;
                let prior_mask = prior & !PRESENT;
                let merged = prior_mask | mask;
                if is_new {
                    self.count.fetch_add(1, Ordering::Relaxed);
                    lock_unpoisoned(&self.dense_log).push(idx as u32);
                }
                MergeOutcome {
                    grew: is_new || merged != prior_mask,
                    merged,
                    is_new,
                    key: idx as u64,
                }
            }
            None => {
                let mut shard = lock_unpoisoned(self.shard(w));
                if let Some((m, id)) = shard.get_mut(w) {
                    let merged = *m | mask;
                    let grew = merged != *m;
                    *m = merged;
                    MergeOutcome {
                        grew,
                        merged,
                        is_new: false,
                        key: SPILL_TAG | *id as u64,
                    }
                } else {
                    let coords = IVec::from(w);
                    let id = {
                        let mut arena = lock_unpoisoned(&self.arena);
                        arena.push(coords.clone());
                        (arena.len() - 1) as u32
                    };
                    shard.insert(coords, (mask, id));
                    self.count.fetch_add(1, Ordering::Relaxed);
                    MergeOutcome {
                        grew: true,
                        merged: mask,
                        is_new: true,
                        key: SPILL_TAG | id as u64,
                    }
                }
            }
        }
    }

    /// Current mask of the node behind `key`; `None` when the key names
    /// a node that was never created (a stale or foreign key).
    pub fn mask_of(&self, key: u64) -> Option<u64> {
        if key & SPILL_TAG == 0 {
            let cell = self.cells.load(key as usize);
            (cell & PRESENT != 0).then_some(cell & !PRESENT)
        } else {
            let id = (key & !SPILL_TAG) as usize;
            let coords = lock_unpoisoned(&self.arena).get(id).cloned()?;
            lock_unpoisoned(self.shard(coords.as_slice()))
                .get(coords.as_slice())
                .map(|&(mask, _)| mask)
        }
    }

    /// Coordinates of the node behind `key`, written into `out`.
    /// Returns `false` (leaving `out` empty) for an unknown spill id.
    pub fn coords_of(&self, key: u64, out: &mut Vec<i64>) -> bool {
        if key & SPILL_TAG == 0 {
            self.window.decode(key as usize, out);
            true
        } else {
            out.clear();
            let id = (key & !SPILL_TAG) as usize;
            match lock_unpoisoned(&self.arena).get(id) {
                Some(coords) => {
                    out.extend_from_slice(coords.as_slice());
                    true
                }
                None => false,
            }
        }
    }

    /// Every `(coords, mask)` pair across both tiers, in unspecified
    /// order (snapshot encoding sorts). Quiescent callers get an exact
    /// enumeration; cost is proportional to occupancy, not window size.
    pub fn entries(&self) -> Vec<(IVec, u64)> {
        let mut out = Vec::with_capacity(self.len());
        let mut coords = Vec::new();
        for &idx in lock_unpoisoned(&self.dense_log).iter() {
            let cell = self.cells.load(idx as usize);
            if cell & PRESENT != 0 {
                self.window.decode(idx as usize, &mut coords);
                out.push((IVec::from(coords.as_slice()), cell & !PRESENT));
            }
        }
        for shard in &self.spill {
            let guard = lock_unpoisoned(shard);
            out.extend(guard.iter().map(|(w, &(mask, _))| (w.clone(), mask)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uov_isg::ivec;

    #[test]
    fn window_roundtrips_indices() {
        let w = Window::from_bounds(&[-3, -1], &[2, 4], 1 << 20);
        assert_eq!(w.len(), 36);
        let mut seen = std::collections::HashSet::new();
        let mut coords = Vec::new();
        for i in -3..=2i64 {
            for j in -1..=4i64 {
                let idx = w.index(&[i, j]).expect("in bounds");
                assert!(idx < w.len());
                assert!(seen.insert(idx), "index collision at ({i},{j})");
                w.decode(idx, &mut coords);
                assert_eq!(coords, vec![i, j]);
            }
        }
    }

    #[test]
    fn window_index_order_is_lex_order() {
        // Dense keys must sort like `lex w` so heap tie-breaks match the
        // canonical order.
        let w = Window::from_bounds(&[-2, -2], &[2, 2], 1 << 20);
        let mut points: Vec<Vec<i64>> = Vec::new();
        for i in -2..=2i64 {
            for j in -2..=2i64 {
                points.push(vec![i, j]);
            }
        }
        let mut by_lex = points.clone();
        by_lex.sort();
        let mut by_idx = points;
        by_idx.sort_by_key(|p| w.index(p).expect("in bounds"));
        assert_eq!(by_lex, by_idx);
    }

    #[test]
    fn window_rejects_extreme_coordinates_without_overflow() {
        let w = Window::from_bounds(&[-8, -8], &[8, 8], 1 << 20);
        for bad in [
            vec![i64::MAX, 0],
            vec![i64::MIN, 0],
            vec![0, i64::MAX - 1],
            vec![i64::MIN + 1, i64::MAX],
        ] {
            assert_eq!(w.index(&bad), None);
        }
    }

    #[test]
    fn window_shrinks_to_budget() {
        let w = Window::from_bounds(&[-1_000_000, -1_000_000], &[1_000_000, 1_000_000], 4096);
        assert!(w.len() <= 4096);
        assert!(!w.is_empty());
        assert!(w.index(&[0, 0]).is_some(), "origin stays in-window");
    }

    #[test]
    fn empty_window_spills_everything() {
        let w = Window::from_bounds(&[0], &[100], 0);
        assert!(w.is_empty());
        assert_eq!(w.index(&[0]), None);
    }

    #[test]
    fn cone_memo_records_and_counts() {
        let memo = ConeMemo::new(Window::from_bounds(&[-4], &[4], 64));
        let idx = memo.window().index(&[2]).expect("in bounds");
        assert_eq!(memo.get(idx), None);
        assert!(memo.set(idx, true));
        assert!(!memo.set(idx, true), "second write is not a new cell");
        assert_eq!(memo.get(idx), Some(true));
        assert_eq!(memo.len(), 1);
    }

    #[test]
    fn mask_table_dense_merge_and_stale_keys() {
        let t = MaskTable::new(Window::from_bounds(&[0, 0], &[8, 8], 1 << 10));
        let a = t.merge(&[1, 2], 0b01);
        assert!(a.is_new && a.grew);
        assert_eq!(a.merged, 0b01);
        let b = t.merge(&[1, 2], 0b10);
        assert!(!b.is_new && b.grew);
        assert_eq!(b.merged, 0b11);
        assert_eq!(b.key, a.key);
        let c = t.merge(&[1, 2], 0b01);
        assert!(!c.grew, "subset mask adds nothing");
        assert_eq!(t.probe(&[1, 2]), Some(0b11));
        assert_eq!(t.mask_of(a.key), Some(0b11));
        assert_eq!(t.len(), 1);
        let mut coords = Vec::new();
        assert!(t.coords_of(a.key, &mut coords));
        assert_eq!(coords, vec![1, 2]);
    }

    #[test]
    fn mask_table_spills_out_of_window_nodes() {
        let t = MaskTable::new(Window::from_bounds(&[0, 0], &[4, 4], 1 << 10));
        let far = [1_000_000i64, -7];
        let a = t.merge(&far, 0b1);
        assert!(a.is_new);
        assert_ne!(a.key & SPILL_TAG, 0, "out-of-window key is tagged");
        assert_eq!(t.probe(&far), Some(0b1));
        assert_eq!(t.key_of(&far), Some(a.key));
        assert_eq!(t.mask_of(a.key), Some(0b1));
        let mut coords = Vec::new();
        assert!(t.coords_of(a.key, &mut coords));
        assert_eq!(coords, far.to_vec());
        // Near-i64::MAX coordinates land in the spill tier, no overflow.
        let extreme = [i64::MAX - 1, i64::MIN + 2];
        let b = t.merge(&extreme, 0b10);
        assert!(b.is_new);
        assert_eq!(t.probe(&extreme), Some(0b10));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn mask_table_entries_cover_both_tiers() {
        let t = MaskTable::new(Window::from_bounds(&[0, 0], &[4, 4], 1 << 10));
        t.merge(&[1, 1], 0b1);
        t.merge(&[2, 0], 0b10);
        t.merge(&[99, 99], 0b11);
        let mut entries = t.entries();
        entries.sort();
        assert_eq!(
            entries,
            vec![
                (ivec![1, 1], 0b1),
                (ivec![2, 0], 0b10),
                (ivec![99, 99], 0b11),
            ]
        );
    }

    #[test]
    fn mask_table_is_concurrent() {
        let t = MaskTable::new(Window::from_bounds(&[0, 0], &[63, 63], 1 << 12));
        std::thread::scope(|scope| {
            for worker in 0..4u64 {
                let t = &t;
                scope.spawn(move || {
                    for i in 0..32i64 {
                        for j in 0..32i64 {
                            t.merge(&[i, j], 1 << (worker % 8));
                        }
                    }
                });
            }
        });
        assert_eq!(t.len(), 32 * 32, "each node counted exactly once");
        for i in 0..32i64 {
            for j in 0..32i64 {
                let mask = t.probe(&[i, j]).expect("present");
                assert_eq!(mask, 0b1111, "all four workers' bits merged");
            }
        }
        assert_eq!(t.entries().len(), 32 * 32);
    }
}
