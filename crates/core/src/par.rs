//! A minimal deterministic fan-out helper over `std::thread`.
//!
//! The engine cannot take a thread-pool dependency (crates.io is out of
//! reach), so every embarrassingly-parallel loop in this workspace — the
//! candidate checks in [`crate::multi`], the dominance filter in
//! [`crate::frontier`], the per-instance sweeps in the bench crate —
//! funnels through [`fan_out`]: scoped workers pull indices from one
//! atomic counter and results are reassembled **in input order**, so the
//! output is identical to the sequential map regardless of scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Map `f` over `items` using up to `threads` scoped workers, returning
/// the results in input order.
///
/// `threads <= 1` (or a single item) runs `f` inline on the calling
/// thread with no synchronisation at all. Workers claim indices from a
/// shared atomic counter, so uneven per-item cost balances automatically.
/// The result is the same `Vec` the sequential `items.iter().map(f)`
/// would produce — parallelism here is an implementation detail, never an
/// observable one.
pub fn fan_out<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.min(items.len()).max(1);
    if threads <= 1 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut pairs: Vec<(usize, R)> = std::thread::scope(|scope| {
        let next = &next;
        let f = &f;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        local.push((i, f(item)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap_or_default())
            .collect()
    });
    pairs.sort_by_key(|(i, _)| *i);
    pairs.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_map_in_order() {
        let items: Vec<u64> = (0..257).collect();
        let seq: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(
                fan_out(&items, threads, |x| x * x),
                seq,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = vec![];
        assert_eq!(fan_out(&empty, 8, |x| x + 1), Vec::<u32>::new());
        assert_eq!(fan_out(&[41u32], 8, |x| x + 1), vec![42]);
    }

    #[test]
    fn uneven_work_is_balanced_without_reordering() {
        // Items with wildly different costs still come back in order.
        let items: Vec<u64> = (0..64).collect();
        let out = fan_out(&items, 4, |&x| {
            let mut acc = x;
            for _ in 0..(x % 7) * 10_000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (x, acc)
        });
        for (i, (x, _)) in out.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
    }
}
