//! A minimal deterministic fan-out helper over `std::thread`.
//!
//! The engine cannot take a thread-pool dependency (crates.io is out of
//! reach), so every embarrassingly-parallel loop in this workspace — the
//! candidate checks in [`crate::multi`], the dominance filter in
//! [`crate::frontier`], the per-instance sweeps in the bench crate —
//! funnels through [`fan_out`]: scoped workers pull indices from one
//! atomic counter and results are reassembled **in input order**, so the
//! output is identical to the sequential map regardless of scheduling.
//!
//! Worker panics are isolated with `catch_unwind` at the worker boundary:
//! the first panic halts the remaining workers at their next item, every
//! worker's partial results are joined normally, and the panic is either
//! surfaced as a typed [`FanOutPanic`] ([`try_fan_out`]) or re-raised on
//! the calling thread with its original payload ([`fan_out`]). A panic can
//! therefore never unwind through `std::thread::scope` (which would abort
//! the process), and [`fan_out`] can never silently drop the panicking
//! worker's completed results the way the pre-isolation implementation
//! did.

use std::any::Any;
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Typed report of a worker panic inside [`try_fan_out`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FanOutPanic {
    /// Index of the worker whose closure panicked (its spawn slot, not
    /// the item index — items are claimed dynamically).
    pub worker: usize,
    /// Stringified panic payload.
    pub payload: String,
}

impl fmt::Display for FanOutPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fan-out worker {} panicked: {}",
            self.worker, self.payload
        )
    }
}

impl std::error::Error for FanOutPanic {}

/// Render a caught panic payload as text (the conventional `&str` /
/// `String` payloads verbatim, anything else a placeholder).
pub(crate) fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Shared implementation: map with isolation, reporting the first panic
/// as `(worker, payload)`.
fn fan_out_impl<T, R, F>(
    items: &[T],
    threads: usize,
    f: F,
) -> Result<Vec<R>, (usize, Box<dyn Any + Send>)>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.min(items.len()).max(1);
    if threads <= 1 {
        return catch_unwind(AssertUnwindSafe(|| items.iter().map(&f).collect()))
            .map_err(|payload| (0, payload));
    }
    let next = AtomicUsize::new(0);
    let halt = AtomicBool::new(false);
    let panicked: Mutex<Option<(usize, Box<dyn Any + Send>)>> = Mutex::new(None);
    let mut pairs: Vec<(usize, R)> = std::thread::scope(|scope| {
        let next = &next;
        let halt = &halt;
        let panicked = &panicked;
        let f = &f;
        let handles: Vec<_> = (0..threads)
            .map(|worker| {
                scope.spawn(move || {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    let caught = catch_unwind(AssertUnwindSafe(|| {
                        while !halt.load(Ordering::Acquire) {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(item) = items.get(i) else { break };
                            local.push((i, f(item)));
                        }
                    }));
                    if let Err(payload) = caught {
                        halt.store(true, Ordering::Release);
                        let mut slot = match panicked.lock() {
                            Ok(g) => g,
                            Err(poisoned) => poisoned.into_inner(),
                        };
                        if slot.is_none() {
                            *slot = Some((worker, payload));
                        }
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap_or_default())
            .collect()
    });
    let hit = {
        let mut slot = match panicked.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        slot.take()
    };
    if let Some(hit) = hit {
        return Err(hit);
    }
    pairs.sort_by_key(|(i, _)| *i);
    Ok(pairs.into_iter().map(|(_, r)| r).collect())
}

/// Map `f` over `items` using up to `threads` scoped workers, returning
/// the results in input order.
///
/// `threads <= 1` (or a single item) runs `f` inline on the calling
/// thread with no synchronisation at all. Workers claim indices from a
/// shared atomic counter, so uneven per-item cost balances automatically.
/// The result is the same `Vec` the sequential `items.iter().map(f)`
/// would produce — parallelism here is an implementation detail, never an
/// observable one.
///
/// # Panics
///
/// If `f` panics, the first panic is caught at the worker boundary (the
/// other workers stop at their next item) and re-raised with its original
/// payload on the calling thread — exactly like the sequential map, and
/// never as a process abort. Use [`try_fan_out`] for a typed error
/// instead.
pub fn fan_out<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    match fan_out_impl(items, threads, f) {
        Ok(out) => out,
        Err((_, payload)) => resume_unwind(payload),
    }
}

/// Panic-isolating [`fan_out`]: a worker panic is returned as a typed
/// [`FanOutPanic`] instead of resuming the unwind.
///
/// # Errors
///
/// [`FanOutPanic`] carrying the first panicking worker's index and its
/// stringified payload.
pub fn try_fan_out<T, R, F>(items: &[T], threads: usize, f: F) -> Result<Vec<R>, FanOutPanic>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    fan_out_impl(items, threads, f).map_err(|(worker, payload)| FanOutPanic {
        worker,
        payload: panic_message(payload.as_ref()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_map_in_order() {
        let items: Vec<u64> = (0..257).collect();
        let seq: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(
                fan_out(&items, threads, |x| x * x),
                seq,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = vec![];
        assert_eq!(fan_out(&empty, 8, |x| x + 1), Vec::<u32>::new());
        assert_eq!(fan_out(&[41u32], 8, |x| x + 1), vec![42]);
    }

    #[test]
    fn uneven_work_is_balanced_without_reordering() {
        // Items with wildly different costs still come back in order.
        let items: Vec<u64> = (0..64).collect();
        let out = fan_out(&items, 4, |&x| {
            let mut acc = x;
            for _ in 0..(x % 7) * 10_000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (x, acc)
        });
        for (i, (x, _)) in out.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
    }

    #[test]
    fn try_fan_out_reports_a_typed_panic() {
        let items: Vec<u64> = (0..100).collect();
        for threads in [1, 4] {
            let err = try_fan_out(&items, threads, |&x| {
                assert!(x != 37, "injected fault at 37");
                x
            })
            .unwrap_err();
            assert!(
                err.payload.contains("injected fault"),
                "threads={threads}: {err}"
            );
            assert!(err.to_string().contains("panicked"));
        }
    }

    #[test]
    fn try_fan_out_succeeds_without_panics() {
        let items: Vec<u64> = (0..50).collect();
        let out = try_fan_out(&items, 4, |x| x + 1).unwrap();
        assert_eq!(out, (1..=50).collect::<Vec<u64>>());
    }

    #[test]
    fn fan_out_reraises_the_original_payload() {
        let items: Vec<u64> = (0..16).collect();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            fan_out(&items, 4, |&x| {
                if x == 5 {
                    std::panic::panic_any(String::from("original payload"));
                }
                x
            })
        }))
        .unwrap_err();
        assert_eq!(panic_message(caught.as_ref()), "original payload");
    }

    #[test]
    fn panic_message_handles_all_payload_shapes() {
        let caught = catch_unwind(|| panic!("plain str")).unwrap_err();
        assert_eq!(panic_message(caught.as_ref()), "plain str");
        let caught = catch_unwind(|| std::panic::panic_any(7u32)).unwrap_err();
        assert_eq!(panic_message(caught.as_ref()), "non-string panic payload");
    }
}
