//! Exact decision procedures for the DONE and DEAD sets (paper §3.1).
//!
//! For a stencil `V = {v₁, …, vₘ}` and an arbitrary iteration `q`:
//!
//! * `DONE(V, q) = { p | ∃ aᵢ ≥ 0 : p + Σ aᵢvᵢ = q }` — iterations that
//!   must have executed before `q` under *any* legal schedule, because a
//!   chain of value dependences leads from them to `q`.
//! * `DEAD(V, q) = { p | ∀ vᵢ ∈ V : p + vᵢ ∈ DONE(V, q) }` — iterations
//!   whose value has been consumed by every reader once `q`'s inputs are
//!   ready, so their storage is reusable by `q`.
//! * `UOV(V) = { q − p | p ∈ DEAD(V, q) }`, independent of `q`.
//!
//! Working with offsets `w = q − p`, membership reduces to non-negative
//! integer *cone* membership: `w ∈ cone(V)` iff `w = Σ aᵢvᵢ, aᵢ ∈ ℤ≥0`.
//! The oracle decides this exactly by memoised depth-first search. The
//! search is complete because the stencil's positive functional `φ`
//! satisfies `φ·vᵢ ≥ 1`, so every step of the recursion strictly decreases
//! `φ·w` and targets with `φ·w < 0` can be cut off.
//!
//! Deciding UOV membership this way is NP-complete in the number of stencil
//! vectors (paper theorem, see [`crate::npc`]); for realistic stencils the
//! memoised search is fast, which is the paper's practicality argument.

use uov_isg::{IVec, IsgError, IterationDomain, Stencil};

use crate::budget::{Budget, Degradation};
use crate::cache::ShardedCache;
use crate::dense::{ConeMemo, Window};
use crate::error::SearchError;

/// Entry budget for the dense verdict window; out-of-window queries use
/// the sharded spill map, so this only trades memory for hit rate.
const ORACLE_WINDOW_ENTRIES: usize = 1 << 20;

/// Exact `i128` dot product of two equal-length slices (the slice twin
/// of [`IVec::dot_i128`]; callers guarantee equal dimensions).
#[inline]
pub(crate) fn dot_slices(a: &[i64], b: &[i64]) -> i128 {
    debug_assert_eq!(a.len(), b.len());
    let mut sum = 0i128;
    for (&x, &y) in a.iter().zip(b) {
        sum += x as i128 * y as i128;
    }
    sum
}

/// `a − b` component-wise into `out`, with the same errors as
/// [`IVec::checked_sub`] but no allocation.
#[inline]
pub(crate) fn diff_into(a: &[i64], b: &[i64], out: &mut Vec<i64>) -> Result<(), SearchError> {
    if a.len() != b.len() {
        return Err(SearchError::from(IsgError::DimMismatch {
            expected: a.len(),
            found: b.len(),
        }));
    }
    out.clear();
    for (&x, &y) in a.iter().zip(b) {
        out.push(
            x.checked_sub(y)
                .ok_or(IsgError::Overflow("vector subtraction"))?,
        );
    }
    Ok(())
}

/// Whether the first nonzero component is positive (the slice twin of
/// [`IVec::is_lex_positive`]).
#[inline]
fn is_lex_positive_slice(w: &[i64]) -> bool {
    for &c in w {
        if c != 0 {
            return c > 0;
        }
    }
    false
}

/// Memoising decision oracle for DONE/DEAD/UOV membership over one stencil.
///
/// The oracle caches cone-membership results across queries, so reuse it
/// when testing many candidate vectors against the same stencil. The memo
/// table is sharded and lock-striped, so one oracle can be shared (`&self`)
/// by many threads — concurrent queries pool their transitive-closure work
/// instead of each recomputing it, and answers are identical to what a
/// cold, single-threaded oracle would return.
///
/// # Examples
///
/// ```
/// use uov_isg::{ivec, Stencil};
/// use uov_core::DoneOracle;
///
/// let s = Stencil::new(vec![ivec![1, 0], ivec![0, 1], ivec![1, 1]])?;
/// let oracle = DoneOracle::new(&s);
/// assert!(oracle.in_done(&ivec![2, 1])); // (1,0) + (1,1)
/// assert!(!oracle.in_done(&ivec![1, -1]));
/// assert!(oracle.is_uov(&ivec![1, 1]));
/// # Ok::<(), uov_isg::StencilError>(())
/// ```
#[derive(Debug)]
pub struct DoneOracle {
    stencil: Stencil,
    phi: IVec,
    /// Dual-cone functionals: each is ≥ 0 on every stencil vector, so any
    /// cone member must satisfy them too. Pruning with these keeps the
    /// search inside the dependence cone (exact in 2-D), which is what
    /// makes even the adversarial NP-completeness instances tractable for
    /// realistic sizes.
    prunes: Vec<IVec>,
    /// Dense verdict tier: a lazily-paged tri-state array over the
    /// bounded query window, answering the hot-path probes with a load
    /// instead of a hash-map walk.
    memo: ConeMemo,
    /// Spill tier for out-of-window queries (adversarially large
    /// coordinates, deep chain walks): the sharded map the memo used to
    /// be. Verdicts are identical whichever tier records them.
    spill: ShardedCache<IVec, bool>,
}

/// Outcome of inspecting a cone node without expanding it.
enum Eval {
    Decided(bool),
    Expand,
}

impl DoneOracle {
    /// Build an oracle for `stencil`.
    ///
    /// # Panics
    ///
    /// Panics if the stencil's positive functional overflows `i64`
    /// (adversarially large coordinates). Use [`DoneOracle::try_new`] on
    /// untrusted input.
    pub fn new(stencil: &Stencil) -> Self {
        match Self::try_new(stencil) {
            Ok(o) => o,
            Err(e) => panic!("oracle construction failed: {e}"),
        }
    }

    /// [`DoneOracle::new`] returning [`SearchError`] instead of panicking
    /// when the positive functional cannot be represented.
    pub fn try_new(stencil: &Stencil) -> Result<Self, SearchError> {
        let phi = stencil.try_positive_functional()?;
        let window = query_window(stencil, &phi);
        Ok(DoneOracle {
            stencil: stencil.clone(),
            phi,
            prunes: dual_cone_functionals(stencil),
            memo: ConeMemo::new(window),
            spill: ShardedCache::default(),
        })
    }

    /// The stencil this oracle decides membership for.
    pub fn stencil(&self) -> &Stencil {
        &self.stencil
    }

    /// Whether the offset `w = q − p` places `p` in `DONE(V, q)`:
    /// is `w` a non-negative integer combination of stencil vectors?
    ///
    /// The zero offset is in the cone (`p = q`, all coefficients zero),
    /// mirroring `DONE` containing `q` itself.
    ///
    /// # Panics
    ///
    /// Panics if `w.dim() != self.stencil().dim()` or on coordinate overflow
    /// for adversarial input. Use [`DoneOracle::in_done_budgeted`] on
    /// untrusted input.
    pub fn in_done(&self, w: &IVec) -> bool {
        match self.in_done_budgeted(w, &Budget::unlimited()) {
            Ok(b) => b,
            Err(e) => panic!("oracle query failed: {e}"),
        }
    }

    /// Budgeted [`DoneOracle::in_done`].
    ///
    /// # Errors
    ///
    /// * [`SearchError::DimMismatch`] if `w`'s dimension disagrees with the
    ///   stencil's.
    /// * [`SearchError::Isg`] on coordinate overflow while walking the cone.
    /// * [`SearchError::Exhausted`] when `budget` runs out mid-query; the
    ///   memo-table cap counts as exhaustion when a needed insertion would
    ///   exceed it.
    pub fn in_done_budgeted(&self, w: &IVec, budget: &Budget) -> Result<bool, SearchError> {
        self.in_done_slice_budgeted(w.as_slice(), budget)
    }

    /// [`DoneOracle::in_done_budgeted`] on raw coordinates — the
    /// allocation-free entry point the search, frontier and certifier
    /// drive with scratch buffers.
    pub(crate) fn in_done_slice_budgeted(
        &self,
        w: &[i64],
        budget: &Budget,
    ) -> Result<bool, SearchError> {
        if w.len() != self.stencil.dim() {
            return Err(SearchError::DimMismatch {
                stencil: self.stencil.dim(),
                domain: w.len(),
            });
        }
        budget.charge()?;
        if let Eval::Decided(b) = self.quick_eval(w, self.memo.window().index(w)) {
            return Ok(b);
        }
        self.in_cone_dfs(w, budget)
    }

    /// Inspect one node without expanding: base cases, functional cuts, and
    /// the memo tiers. `key` is the node's dense window index, computed
    /// once by the caller and reused for the verdict write.
    #[inline]
    fn quick_eval(&self, w: &[i64], key: Option<usize>) -> Eval {
        if w.iter().all(|&c| c == 0) {
            return Eval::Decided(true);
        }
        if dot_slices(self.phi.as_slice(), w) < 0 {
            return Eval::Decided(false);
        }
        // Dual-cone cuts: a functional non-negative on every generator is
        // non-negative on the whole cone.
        if self.prunes.iter().any(|f| dot_slices(f.as_slice(), w) < 0) {
            return Eval::Decided(false);
        }
        let hit = match key {
            Some(idx) => self.memo.get(idx),
            None => self.spill.get(w),
        };
        match hit {
            Some(verdict) => Eval::Decided(verdict),
            None => Eval::Expand,
        }
    }

    /// Iterative memoised DFS over the cone: an explicit frame stack
    /// replaces recursion so adversarial NPC instances cannot overflow the
    /// call stack, and the budget is charged per expanded node.
    ///
    /// Frame coordinates live in one flat scratch arena (frame `i` owns
    /// `coords[i·d .. (i+1)·d]`), so the walk allocates nothing per node;
    /// each child is a single linearized `w − vᵢ` sweep into the arena.
    ///
    /// Termination: φ·(w − v) ≤ φ·w − 1, so every edge strictly decreases
    /// φ and the frame chain is acyclic.
    fn in_cone_dfs(&self, w: &[i64], budget: &Budget) -> Result<bool, SearchError> {
        let d = self.stencil.dim();
        let m = self.stencil.len();
        let vectors = self.stencil.vectors();
        let mut coords: Vec<i64> = Vec::with_capacity(32 * d);
        coords.extend_from_slice(w);
        // Per frame: (next child index, dense window key of the frame).
        let mut frames: Vec<(usize, Option<usize>)> = vec![(0, self.memo.window().index(w))];
        loop {
            let depth = frames.len() - 1;
            let base = depth * d;
            let child_idx = frames[depth].0;
            if child_idx >= m {
                // Every child failed: this node is not in the cone.
                let key = frames[depth].1;
                self.record_computed(&coords[base..base + d], key, false, budget)?;
                frames.pop();
                coords.truncate(base);
                if frames.is_empty() {
                    return Ok(false);
                }
                continue;
            }
            frames[depth].0 += 1;
            // child = frame − vᵢ, one linearized sweep into the arena.
            let v = vectors[child_idx].as_slice();
            let child_base = coords.len();
            for j in 0..d {
                let c = coords[base + j]
                    .checked_sub(v[j])
                    .ok_or(IsgError::Overflow("vector subtraction"))?;
                coords.push(c);
            }
            budget.charge()?;
            let child_key = self.memo.window().index(&coords[child_base..]);
            match self.quick_eval(&coords[child_base..], child_key) {
                Eval::Decided(true) => {
                    // The whole ancestor chain is in the cone. Memoise what
                    // fits under the cap — the answer is already decided, so
                    // a full table only costs future queries, not this one.
                    for (f, &(_, key)) in frames.iter().enumerate() {
                        if budget.check_memo(self.cache_len()).is_err() {
                            break;
                        }
                        self.store_verdict(&coords[f * d..(f + 1) * d], key, true);
                    }
                    return Ok(true);
                }
                Eval::Decided(false) => coords.truncate(child_base),
                Eval::Expand => frames.push((0, child_key)),
            }
        }
    }

    /// Memoise a *computed* verdict; a full memo table here is a hard stop
    /// because discarding the verdict would make the time bound vacuous.
    fn record_computed(
        &self,
        w: &[i64],
        key: Option<usize>,
        val: bool,
        budget: &Budget,
    ) -> Result<(), SearchError> {
        let present = match key {
            Some(idx) => self.memo.get(idx).is_some(),
            None => self.spill.contains(w),
        };
        if !present {
            budget.check_memo(self.cache_len())?;
            self.store_verdict(w, key, val);
        }
        Ok(())
    }

    /// Write a verdict to whichever tier owns `w`.
    fn store_verdict(&self, w: &[i64], key: Option<usize>, val: bool) {
        match key {
            Some(idx) => {
                self.memo.set(idx, val);
            }
            None => {
                self.spill.insert(IVec::from(w), val);
            }
        }
    }

    /// Whether the offset `w = q − p` places `p` in `DEAD(V, q)`:
    /// every reader `p + vᵢ` of `p`'s value is itself in `DONE(V, q)`.
    ///
    /// Equivalent to `w ∈ UOV(V)` (paper §3.1): by definition the UOV set
    /// is exactly the set of offsets to DEAD iterations.
    pub fn in_dead(&self, w: &IVec) -> bool {
        match self.in_dead_budgeted(w, &Budget::unlimited()) {
            Ok(b) => b,
            Err(e) => panic!("oracle query failed: {e}"),
        }
    }

    /// Budgeted [`DoneOracle::in_dead`]; see [`DoneOracle::in_done_budgeted`]
    /// for the error conditions.
    pub fn in_dead_budgeted(&self, w: &IVec, budget: &Budget) -> Result<bool, SearchError> {
        let mut buf = Vec::with_capacity(w.dim());
        self.in_dead_slice_budgeted(w.as_slice(), &mut buf, budget)
    }

    /// [`DoneOracle::in_dead_budgeted`] on raw coordinates: each reader
    /// offset `w − vᵢ` is one linearized subtraction sweep into the
    /// caller's scratch buffer — no per-reader allocation. Readers are
    /// checked in stencil order with early exit, exactly like the
    /// vector-based path, so budget accounting is identical.
    pub(crate) fn in_dead_slice_budgeted(
        &self,
        w: &[i64],
        buf: &mut Vec<i64>,
        budget: &Budget,
    ) -> Result<bool, SearchError> {
        for v in self.stencil.iter() {
            diff_into(w, v.as_slice(), buf)?;
            if !self.in_done_slice_budgeted(buf, budget)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Whether `w` is a universal occupancy vector for the stencil.
    ///
    /// Alias of [`DoneOracle::in_dead`], named after the question callers
    /// actually ask.
    pub fn is_uov(&self, w: &IVec) -> bool {
        self.in_dead(w)
    }

    /// Budgeted [`DoneOracle::is_uov`]; see [`DoneOracle::in_done_budgeted`]
    /// for the error conditions.
    pub fn is_uov_budgeted(&self, w: &IVec, budget: &Budget) -> Result<bool, SearchError> {
        self.in_dead_budgeted(w, budget)
    }

    /// Enumerate `DONE(V, q) ∩ domain` — used to visualise Figure 2 of the
    /// paper and by exhaustive tests.
    ///
    /// # Panics
    ///
    /// Panics if dimensions of `q`, the domain and the stencil disagree.
    pub fn done_points(&self, q: &IVec, domain: &dyn IterationDomain) -> Vec<IVec> {
        domain.points().filter(|p| self.in_done(&(q - p))).collect()
    }

    /// Enumerate `DEAD(V, q) ∩ domain` (Figure 2's squares).
    ///
    /// # Panics
    ///
    /// Panics if dimensions of `q`, the domain and the stencil disagree.
    pub fn dead_points(&self, q: &IVec, domain: &dyn IterationDomain) -> Vec<IVec> {
        domain.points().filter(|p| self.in_dead(&(q - p))).collect()
    }

    /// Enumerate every UOV whose components all lie in `[-radius, radius]`.
    ///
    /// Exponential in dimension; intended for tests and exhaustive
    /// cross-validation of the branch-and-bound search.
    pub fn uovs_within(&self, radius: i64) -> Vec<IVec> {
        assert!(radius >= 0, "radius must be non-negative");
        let d = self.stencil.dim();
        let unlimited = Budget::unlimited();
        let mut out = Vec::new();
        let mut cur = vec![-radius; d];
        let mut buf = Vec::with_capacity(d);
        loop {
            // Every UOV is a non-trivial cone member, hence lex-positive;
            // candidates are tested in place and only hits allocate.
            if is_lex_positive_slice(&cur) {
                match self.in_dead_slice_budgeted(&cur, &mut buf, &unlimited) {
                    Ok(true) => out.push(IVec::from(cur.as_slice())),
                    Ok(false) => {}
                    Err(e) => panic!("oracle query failed: {e}"),
                }
            }
            let mut k = d;
            loop {
                if k == 0 {
                    return out;
                }
                k -= 1;
                if cur[k] < radius {
                    cur[k] += 1;
                    break;
                }
                cur[k] = -radius;
            }
        }
    }

    /// Budgeted [`DoneOracle::uovs_within`]: stops enumerating once the
    /// budget runs out and returns the UOVs found so far together with a
    /// [`Degradation`] record.
    ///
    /// Exhaustion is *not* an error here — every returned vector is a
    /// verified UOV, the list is merely possibly incomplete. Hard errors
    /// are reserved for arithmetic overflow during a membership query.
    pub fn uovs_within_budgeted(
        &self,
        radius: i64,
        budget: &Budget,
    ) -> Result<(Vec<IVec>, Option<Degradation>), SearchError> {
        if radius < 0 {
            return Ok((Vec::new(), None));
        }
        let d = self.stencil.dim();
        let mut out = Vec::new();
        let mut degradation = None;
        let mut cur = vec![-radius; d];
        let mut buf = Vec::with_capacity(d);
        'walk: loop {
            if is_lex_positive_slice(&cur) {
                match self.in_dead_slice_budgeted(&cur, &mut buf, budget) {
                    Ok(true) => out.push(IVec::from(cur.as_slice())),
                    Ok(false) => {}
                    Err(SearchError::Exhausted(reason)) => {
                        degradation = Some(budget.degradation(reason, self.cache_len(), false));
                        break 'walk;
                    }
                    Err(e) => return Err(e),
                }
            }
            let mut k = d;
            loop {
                if k == 0 {
                    break 'walk;
                }
                k -= 1;
                if cur[k] < radius {
                    cur[k] += 1;
                    continue 'walk;
                }
                cur[k] = -radius;
            }
        }
        Ok((out, degradation))
    }

    /// Number of memoised cone-membership entries across both tiers
    /// (for diagnostics/benches and the certifier's witness count).
    /// A point-in-time snapshot when other threads are inserting.
    pub fn cache_len(&self) -> usize {
        self.memo.len() + self.spill.len()
    }
}

/// The dense verdict window for one stencil: per dimension, reach
/// `64 · φ·Σvᵢ` steps of the largest generator component in either
/// direction (the same headroom factor the search's φ-cap uses), shrunk
/// to the entry budget. Purely a performance knob — out-of-window
/// queries spill to the sharded map with identical verdicts.
fn query_window(stencil: &Stencil, phi: &IVec) -> Window {
    let d = stencil.dim();
    let mut strength: i128 = 0;
    for v in stencil.iter() {
        strength = strength.saturating_add(phi.dot_i128(v));
    }
    let reach = strength.clamp(1, 1 << 20).saturating_mul(64) as u128;
    let mut lo = vec![0i64; d];
    let mut hi = vec![0i64; d];
    for k in 0..d {
        let widest = stencil
            .iter()
            .map(|v| v[k].unsigned_abs())
            .max()
            .unwrap_or(1)
            .max(1);
        let r = reach
            .saturating_mul(widest as u128)
            .min(i64::MAX as u128 / 8) as i64;
        lo[k] = -r;
        hi[k] = r;
    }
    Window::from_bounds(&lo, &hi, ORACLE_WINDOW_ENTRIES)
}

/// Functionals that are non-negative on every stencil vector.
///
/// * In 2-D the cone of lexicographically positive generators is salient
///   (it spans strictly less than a half-plane), so the two functionals
///   perpendicular to its angular extreme vectors describe it *exactly*:
///   `t ∈ cone(V) ⟹ cross(lo, t) ≥ 0 ∧ cross(t, hi) ≥ 0`.
/// * In any dimension, an axis functional `±e_k` qualifies whenever every
///   generator's `k`-th component has one sign.
fn dual_cone_functionals(stencil: &Stencil) -> Vec<IVec> {
    let mut out = Vec::new();
    let d = stencil.dim();
    if d == 2 {
        // Both rotations of each angular extreme; the validity filter
        // below keeps exactly the inward-facing pair. The functionals are
        // an optional optimisation, so extremes whose rotation is not
        // representable (an i64::MIN component) are simply skipped.
        let ext = stencil.extreme_vectors();
        for e in ext.first().into_iter().chain(ext.last()) {
            if let (Some(nx), Some(ny)) = (e[1].checked_neg(), e[0].checked_neg()) {
                out.push(IVec::from([nx, e[0]]));
                out.push(IVec::from([e[1], ny]));
            }
        }
    }
    for k in 0..d {
        if stencil.iter().all(|v| v[k] >= 0) {
            out.push(IVec::unit(d, k));
        } else if stencil.iter().all(|v| v[k] <= 0) {
            out.push(-IVec::unit(d, k));
        }
    }
    // Keep only functionals actually valid on every generator (the 2-D
    // pair always is; this guards against extreme-vector edge cases).
    out.retain(|f| stencil.iter().all(|v| f.dot_i128(v) >= 0));
    out
}

/// A deliberately naive reference oracle: plain `HashMap` memo, no dense
/// window, no dual-cone cuts — just the φ-functional termination bound
/// and memoised DFS.
///
/// This is the ground truth the property suites differential-test
/// [`DoneOracle`] against: every data-structure trick in the fast oracle
/// (dense verdict window, spill tier, scratch-arena DFS) must be
/// invisible in the answers. Keep this implementation boring.
///
/// # Examples
///
/// ```
/// use uov_isg::{ivec, Stencil};
/// use uov_core::{DoneOracle, ReferenceOracle};
///
/// let s = Stencil::new(vec![ivec![1, 0], ivec![0, 1], ivec![1, 1]])?;
/// let fast = DoneOracle::new(&s);
/// let mut naive = ReferenceOracle::new(&s)?;
/// for i in -3..=3 {
///     for j in -3..=3 {
///         assert_eq!(fast.in_done(&ivec![i, j]), naive.in_done(&ivec![i, j]));
///     }
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct ReferenceOracle {
    stencil: Stencil,
    phi: IVec,
    memo: std::collections::HashMap<IVec, bool>,
}

impl ReferenceOracle {
    /// Build a reference oracle for `stencil`.
    ///
    /// # Errors
    ///
    /// [`SearchError::Isg`] when the stencil's positive functional cannot
    /// be represented (the same inputs [`DoneOracle::try_new`] rejects).
    pub fn new(stencil: &Stencil) -> Result<Self, SearchError> {
        Ok(ReferenceOracle {
            stencil: stencil.clone(),
            phi: stencil.try_positive_functional()?,
            memo: std::collections::HashMap::new(),
        })
    }

    /// Naive cone membership: memoised iterative DFS with only the
    /// φ-functional cut.
    ///
    /// # Panics
    ///
    /// Panics on coordinate overflow or a dimension mismatch; the
    /// reference oracle is for controlled test inputs.
    pub fn in_done(&mut self, w: &IVec) -> bool {
        assert_eq!(
            w.dim(),
            self.stencil.dim(),
            "reference oracle dimension mismatch"
        );
        // Post-order DFS: expand first, then decide once all children are
        // known. `enter` distinguishes the two visits to a node.
        let mut stack: Vec<(IVec, bool)> = vec![(w.clone(), true)];
        while let Some((node, enter)) = stack.pop() {
            if node.is_zero() || self.memo.contains_key(&node) {
                continue;
            }
            if self.phi.dot_i128(&node) < 0 {
                self.memo.insert(node, false);
                continue;
            }
            if enter {
                stack.push((node.clone(), false));
                for v in self.stencil.iter() {
                    match node.checked_sub(v) {
                        Ok(child) => stack.push((child, true)),
                        Err(e) => panic!("reference oracle overflow: {e}"),
                    }
                }
            } else {
                let verdict = self.stencil.iter().any(|v| {
                    let child = match node.checked_sub(v) {
                        Ok(c) => c,
                        Err(e) => panic!("reference oracle overflow: {e}"),
                    };
                    child.is_zero() || self.memo.get(&child).copied().unwrap_or(false)
                });
                self.memo.insert(node, verdict);
            }
        }
        w.is_zero() || self.memo.get(w).copied().unwrap_or(false)
    }

    /// Naive DEAD membership: every reader offset `w − vᵢ` is in the cone.
    ///
    /// # Panics
    ///
    /// Same conditions as [`ReferenceOracle::in_done`].
    pub fn in_dead(&mut self, w: &IVec) -> bool {
        let readers: Vec<IVec> = self
            .stencil
            .iter()
            .map(|v| match w.checked_sub(v) {
                Ok(c) => c,
                Err(e) => panic!("reference oracle overflow: {e}"),
            })
            .collect();
        readers.iter().all(|offset| self.in_done(offset))
    }

    /// Alias of [`ReferenceOracle::in_dead`], mirroring
    /// [`DoneOracle::is_uov`].
    pub fn is_uov(&mut self, w: &IVec) -> bool {
        self.in_dead(w)
    }

    /// Naive box enumeration mirroring [`DoneOracle::uovs_within`].
    ///
    /// # Panics
    ///
    /// Same conditions as [`ReferenceOracle::in_done`].
    pub fn uovs_within(&mut self, radius: i64) -> Vec<IVec> {
        assert!(radius >= 0, "radius must be non-negative");
        let d = self.stencil.dim();
        let mut out = Vec::new();
        let mut cur = vec![-radius; d];
        loop {
            let w = IVec::from(cur.as_slice());
            if w.is_lex_positive() && self.is_uov(&w) {
                out.push(w);
            }
            let mut k = d;
            loop {
                if k == 0 {
                    return out;
                }
                k -= 1;
                if cur[k] < radius {
                    cur[k] += 1;
                    break;
                }
                cur[k] = -radius;
            }
        }
    }

    /// Number of memoised verdicts (diagnostics for the property suite).
    pub fn memo_len(&self) -> usize {
        self.memo.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uov_isg::{ivec, RectDomain};

    fn fig1_oracle() -> DoneOracle {
        let s = Stencil::new(vec![ivec![1, 0], ivec![0, 1], ivec![1, 1]]).unwrap();
        DoneOracle::new(&s)
    }

    fn stencil5_oracle() -> DoneOracle {
        let s = Stencil::new(vec![
            ivec![1, -2],
            ivec![1, -1],
            ivec![1, 0],
            ivec![1, 1],
            ivec![1, 2],
        ])
        .unwrap();
        DoneOracle::new(&s)
    }

    #[test]
    fn zero_is_in_done() {
        assert!(fig1_oracle().in_done(&ivec![0, 0]));
    }

    #[test]
    fn stencil_vectors_are_in_done() {
        let o = fig1_oracle();
        for v in o.stencil().vectors().to_vec() {
            assert!(o.in_done(&v));
        }
    }

    #[test]
    fn done_closed_under_addition() {
        let o = fig1_oracle();
        assert!(o.in_done(&ivec![2, 1]));
        assert!(o.in_done(&ivec![3, 3]));
        assert!(o.in_done(&ivec![5, 2]));
    }

    #[test]
    fn non_members_rejected() {
        // For the Fig-1 stencil the cone is the whole first quadrant, so the
        // non-members are exactly the offsets with a negative component.
        let o = fig1_oracle();
        assert!(!o.in_done(&ivec![-1, 0]));
        assert!(!o.in_done(&ivec![0, -1]));
        assert!(!o.in_done(&ivec![3, -1]));
        assert!(!o.in_done(&ivec![-2, 5]));
        assert!(o.in_done(&ivec![1, 2]));
        assert!(o.in_done(&ivec![2, 3]));
    }

    #[test]
    fn cone_with_negative_component_vectors() {
        // {(1,-2), (1,2)}: the quadrant is NOT all reachable; e.g. (1,0)
        // needs half-integer coefficients.
        let s = Stencil::new(vec![ivec![1, -2], ivec![1, 2]]).unwrap();
        let o = DoneOracle::new(&s);
        assert!(o.in_done(&ivec![2, 0]));
        assert!(!o.in_done(&ivec![1, 0]));
        assert!(o.in_done(&ivec![2, 4]));
        assert!(!o.in_done(&ivec![2, 3]));
        assert!(!o.in_done(&ivec![0, 2]));
    }

    #[test]
    fn fig1_uov_is_1_1() {
        let o = fig1_oracle();
        assert!(o.is_uov(&ivec![1, 1]));
        assert!(!o.is_uov(&ivec![1, 0]));
        assert!(!o.is_uov(&ivec![0, 1]));
        assert!(!o.is_uov(&ivec![0, 0]));
        // The initial UOV (sum) is always universal.
        assert!(o.is_uov(&ivec![2, 2]));
    }

    #[test]
    fn stencil5_uov_is_2_0() {
        // Figure 5 of the paper: the optimal UOV of the 5-point stencil is
        // (2, 0), which is non-prime.
        let o = stencil5_oracle();
        assert!(o.is_uov(&ivec![2, 0]));
        assert!(!o.is_uov(&ivec![1, 0]));
        for j in -2..=2 {
            assert!(
                !o.is_uov(&ivec![1, j]),
                "single time step (1,{j}) must not be a UOV"
            );
        }
    }

    #[test]
    fn uov_implies_done() {
        let o = fig1_oracle();
        for w in o.uovs_within(4) {
            assert!(o.in_done(&w), "UOV {w} must itself be a DONE offset");
        }
    }

    #[test]
    fn uovs_within_fig1_small_radius() {
        let o = fig1_oracle();
        let uovs = o.uovs_within(2);
        assert!(uovs.contains(&ivec![1, 1]));
        assert!(uovs.contains(&ivec![2, 1]));
        assert!(uovs.contains(&ivec![1, 2]));
        assert!(uovs.contains(&ivec![2, 2]));
        assert!(!uovs.contains(&ivec![1, 0]));
        assert!(!uovs.contains(&ivec![0, 1]));
    }

    #[test]
    fn done_points_fig2_style() {
        // DONE(V, q) within a window behind q grows as the dependence cone.
        let o = fig1_oracle();
        let q = ivec![5, 5];
        let dom = RectDomain::new(ivec![3, 3], ivec![5, 7]);
        let done = o.done_points(&q, &dom);
        assert!(done.contains(&ivec![5, 5])); // q itself
        assert!(done.contains(&ivec![4, 4]));
        assert!(done.contains(&ivec![3, 3])); // offset (2,2) ∈ cone
        assert!(!done.contains(&ivec![5, 6])); // offset (0,−1) ∉ cone
        assert!(!done.contains(&ivec![4, 7])); // offset (1,−2) ∉ cone
    }

    #[test]
    fn dead_points_are_subset_of_done_points() {
        let o = fig1_oracle();
        let q = ivec![6, 6];
        let dom = RectDomain::new(ivec![1, 1], ivec![6, 6]);
        let done = o.done_points(&q, &dom);
        let dead = o.dead_points(&q, &dom);
        for p in &dead {
            assert!(done.contains(p), "DEAD ⊆ DONE violated at {p}");
        }
        assert!(dead.len() < done.len());
    }

    #[test]
    fn cache_is_reused() {
        let o = fig1_oracle();
        assert!(o.in_done(&ivec![4, 4]));
        let after_first = o.cache_len();
        assert!(after_first > 0);
        assert!(o.in_done(&ivec![4, 4]));
        assert_eq!(o.cache_len(), after_first);
    }

    #[test]
    fn one_dimensional_stencil() {
        let s = Stencil::new(vec![ivec![1], ivec![3]]).unwrap();
        let o = DoneOracle::new(&s);
        assert!(o.in_done(&ivec![7])); // 1+3+3 or 7·1
        assert!(!o.in_done(&ivec![-1]));
        // UOV: w−1 ∈ cone and w−3 ∈ cone; cone = all non-negative ints here.
        assert!(o.is_uov(&ivec![3]));
        assert!(o.is_uov(&ivec![4]));
        assert!(!o.is_uov(&ivec![2])); // 2−3 = −1 ∉ cone
    }

    #[test]
    fn budgeted_queries_agree_with_unlimited() {
        let o = stencil5_oracle();
        let b = Budget::unlimited();
        for w in [ivec![2, 0], ivec![1, 0], ivec![3, 1], ivec![0, 0]] {
            assert_eq!(
                o.is_uov_budgeted(&w, &b).unwrap(),
                o.is_uov(&w),
                "mismatch at {w}"
            );
        }
        assert!(b.nodes_charged() > 0);
    }

    #[test]
    fn node_budget_exhausts_oracle_query() {
        let s = Stencil::new(vec![ivec![1, -2], ivec![1, 2]]).unwrap();
        let o = DoneOracle::new(&s);
        let b = Budget::unlimited().with_max_nodes(2);
        let r = o.in_done_budgeted(&ivec![40, 0], &b);
        assert_eq!(
            r,
            Err(SearchError::Exhausted(crate::budget::Exhausted::Nodes))
        );
    }

    #[test]
    fn memo_budget_exhausts_during_memoization() {
        // A membership test that fails only deep in the walk generates many
        // memo entries; capping the table must surface Exhausted::Memo.
        let s = Stencil::new(vec![ivec![1, -2], ivec![1, 2]]).unwrap();
        let o = DoneOracle::new(&s);
        let b = Budget::unlimited().with_max_memo_entries(1);
        let r = o.in_done_budgeted(&ivec![9, 1], &b);
        assert_eq!(
            r,
            Err(SearchError::Exhausted(crate::budget::Exhausted::Memo))
        );
        assert!(o.cache_len() <= 1);
    }

    #[test]
    fn dimension_mismatch_is_an_error_not_a_panic() {
        let o = fig1_oracle();
        assert!(matches!(
            o.in_done_budgeted(&ivec![1, 2, 3], &Budget::unlimited()),
            Err(SearchError::DimMismatch {
                stencil: 2,
                domain: 3
            })
        ));
    }

    #[test]
    fn try_new_rejects_overflowing_functional() {
        // max_abs near i64::MAX in 2-D: φ's base c·d + 1 overflows.
        let s = Stencil::new(vec![ivec![1, i64::MAX], ivec![1, -i64::MAX]]).unwrap();
        assert!(matches!(DoneOracle::try_new(&s), Err(SearchError::Isg(_))));
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        // A long, thin cone walk: the iterative DFS must handle a chain far
        // deeper than any safe recursion depth.
        let s = Stencil::new(vec![ivec![0, 1], ivec![1, 0]]).unwrap();
        let o = DoneOracle::new(&s);
        assert!(o.in_done(&ivec![500_000, 1]));
    }

    #[test]
    fn budgeted_enumeration_degrades_to_prefix() {
        let o = fig1_oracle();
        let (complete, none) = o.uovs_within_budgeted(2, &Budget::unlimited()).unwrap();
        assert!(none.is_none());
        assert_eq!(complete, o.uovs_within(2));

        let tight = Budget::unlimited().with_max_nodes(5);
        let (partial, degradation) = o.uovs_within_budgeted(2, &tight).unwrap();
        let d = degradation.expect("tight budget must degrade");
        assert_eq!(d.reason, crate::budget::Exhausted::Nodes);
        // Every reported vector is a verified UOV and part of the full set.
        for w in &partial {
            assert!(complete.contains(w));
        }
        assert!(partial.len() <= complete.len());
    }

    #[test]
    fn oracle_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DoneOracle>();
    }

    #[test]
    fn concurrent_queries_match_cold_oracle() {
        // Hammer one shared oracle from several threads; every answer must
        // equal what a cold sequential oracle computes for the same query.
        let shared = stencil5_oracle();
        let queries: Vec<IVec> = (-3..=3)
            .flat_map(|i| (-3..=3).map(move |j| ivec![i, j]))
            .collect();
        let answers: Vec<Vec<bool>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let shared = &shared;
                    let queries = &queries;
                    scope.spawn(move || queries.iter().map(|w| shared.in_done(w)).collect())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let cold = stencil5_oracle();
        let reference: Vec<bool> = queries.iter().map(|w| cold.in_done(w)).collect();
        for per_thread in answers {
            assert_eq!(per_thread, reference, "warm shared cache changed answers");
        }
        assert!(shared.cache_len() > 0, "concurrent queries populate cache");
    }

    #[test]
    fn three_dimensional_stencil() {
        let s = Stencil::new(vec![ivec![1, 0, 0], ivec![0, 1, 0], ivec![0, 0, 1]]).unwrap();
        let o = DoneOracle::new(&s);
        assert!(o.in_done(&ivec![2, 3, 1]));
        assert!(!o.in_done(&ivec![1, -1, 1]));
        assert!(o.is_uov(&ivec![1, 1, 1]));
        assert!(!o.is_uov(&ivec![1, 1, 0]));
    }
}
