//! The NP-completeness reduction of the paper's §3.1 theorem:
//! PARTITION ≤ₚ UOV-membership.
//!
//! Given positive integers `a₀ … a_{n−1}` with half-sum `h`, the paper
//! constructs a two-dimensional stencil containing, for each `i`, the pair
//!
//! ```text
//! rᵢ = (0,  (n+1)ⁱ + (n+1)ⁿ)
//! sᵢ = (aᵢ, (n+1)ⁱ + (n+1)ⁿ)
//! ```
//!
//! and the candidate vector `w = (h, n(n+1)ⁿ + ((n+1)ⁿ − 1)/n)`. The "magic
//! numbers" in the second coordinate force any cone representation of `w`
//! to pick *exactly one* of `rᵢ`/`sᵢ` for each `i`; the chosen `sᵢ` first
//! coordinates must then sum to `h` — a PARTITION solution. Hence
//! `w ∈ UOV(V)` iff the instance is solvable.
//!
//! This module builds the reduction and solves PARTITION both ways (via
//! the UOV oracle and via dynamic programming), which the test-suite uses
//! to validate the oracle on genuinely hard instances.

use std::error::Error;
use std::fmt;

use uov_isg::{IVec, Stencil};

use crate::DoneOracle;

/// A PARTITION instance: positive integers to split into two equal-sum
/// halves.
///
/// # Examples
///
/// ```
/// use uov_core::npc::PartitionInstance;
///
/// let yes = PartitionInstance::new(vec![3, 1, 1, 2, 2, 1])?;
/// assert!(yes.solve_brute());
/// assert!(yes.solve_via_uov());
///
/// let no = PartitionInstance::new(vec![1, 3])?;
/// assert!(!no.solve_brute());
/// assert!(!no.solve_via_uov());
/// # Ok::<(), uov_core::npc::NpcError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionInstance {
    values: Vec<i64>,
}

/// Error constructing or reducing a [`PartitionInstance`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NpcError {
    /// The instance must contain at least one value.
    Empty,
    /// All values must be strictly positive (the paper's formulation).
    NonPositive(i64),
    /// `(n+1)ⁿ` must fit in `i64`; instances are limited to `n ≤ 14`.
    TooManyValues(usize),
    /// The reduction needs an integer half-sum; an odd total is trivially
    /// unsolvable and has no reduction image.
    OddSum(i64),
}

impl fmt::Display for NpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NpcError::Empty => write!(f, "partition instance is empty"),
            NpcError::NonPositive(v) => write!(f, "partition values must be positive, got {v}"),
            NpcError::TooManyValues(n) => {
                write!(f, "partition instances are limited to 14 values, got {n}")
            }
            NpcError::OddSum(s) => write!(f, "total {s} is odd; no integer half-sum exists"),
        }
    }
}

impl Error for NpcError {}

impl PartitionInstance {
    /// Validate and build an instance. Duplicates are allowed (the paper
    /// uses sequences, not sets, for exactly this reason).
    ///
    /// # Errors
    ///
    /// Returns [`NpcError`] for empty input, non-positive values, or more
    /// than 14 values (the reduction's magic numbers overflow `i64` beyond
    /// that).
    pub fn new(values: Vec<i64>) -> Result<Self, NpcError> {
        if values.is_empty() {
            return Err(NpcError::Empty);
        }
        if values.len() > 14 {
            return Err(NpcError::TooManyValues(values.len()));
        }
        if let Some(&bad) = values.iter().find(|&&v| v <= 0) {
            return Err(NpcError::NonPositive(bad));
        }
        Ok(PartitionInstance { values })
    }

    /// The values of the instance.
    pub fn values(&self) -> &[i64] {
        &self.values
    }

    /// Sum of all values.
    pub fn total(&self) -> i64 {
        self.values.iter().sum()
    }

    /// Build the paper's reduction: a stencil `V` and a candidate `w` with
    /// `w ∈ UOV(V)` iff the instance has a partition.
    ///
    /// # Errors
    ///
    /// Returns [`NpcError::OddSum`] when the total is odd (callers should
    /// report "unsolvable" directly; see [`PartitionInstance::solve_via_uov`]).
    pub fn reduce(&self) -> Result<(Stencil, IVec), NpcError> {
        let total = self.total();
        if total % 2 != 0 {
            return Err(NpcError::OddSum(total));
        }
        let h = total / 2;
        let n = self.values.len() as i64;
        let base = n + 1;
        let pow_n: i64 = (0..n).fold(1i64, |acc, _| acc * base); // (n+1)^n
        let mut vectors = Vec::with_capacity(2 * self.values.len());
        let mut pow_i = 1i64;
        for &a in &self.values {
            let second = pow_i + pow_n;
            vectors.push(IVec::from([0, second])); // rᵢ
            vectors.push(IVec::from([a, second])); // sᵢ
            pow_i *= base;
        }
        // Geometric series: ((n+1)^n − 1) / n  =  Σ_{i<n} (n+1)^i.
        let w = IVec::from([h, n * pow_n + (pow_n - 1) / n]);
        let stencil = match Stencil::new(vectors) {
            Ok(s) => s,
            // Unreachable by construction: every rᵢ/sᵢ has a positive
            // second component, and validation bounded the magnitudes.
            Err(e) => unreachable!("reduction vectors are lex-positive: {e}"),
        };
        Ok((stencil, w))
    }

    /// Solve PARTITION through the UOV-membership oracle, exercising the
    /// reduction end to end.
    pub fn solve_via_uov(&self) -> bool {
        match self.reduce() {
            Err(NpcError::OddSum(_)) => false,
            Err(_) => unreachable!("instance was validated at construction"),
            Ok((stencil, w)) => DoneOracle::new(&stencil).is_uov(&w),
        }
    }

    /// Solve PARTITION by subset-sum dynamic programming (the reference
    /// answer for the reduction round-trip tests).
    pub fn solve_brute(&self) -> bool {
        let total = self.total();
        if total % 2 != 0 {
            return false;
        }
        let h = (total / 2) as usize;
        let mut reachable = vec![false; h + 1];
        reachable[0] = true;
        for &a in &self.values {
            let a = a as usize;
            for s in (a..=h).rev() {
                if reachable[s - a] {
                    reachable[s] = true;
                }
            }
        }
        reachable[h]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uov_isg::ivec;

    #[test]
    fn validation() {
        assert_eq!(PartitionInstance::new(vec![]).unwrap_err(), NpcError::Empty);
        assert_eq!(
            PartitionInstance::new(vec![1, 0]).unwrap_err(),
            NpcError::NonPositive(0)
        );
        assert_eq!(
            PartitionInstance::new(vec![1; 15]).unwrap_err(),
            NpcError::TooManyValues(15)
        );
    }

    #[test]
    fn reduction_shape_n2() {
        // Worked example from the module docs: a = [1, 1].
        let inst = PartitionInstance::new(vec![1, 1]).unwrap();
        let (stencil, w) = inst.reduce().unwrap();
        assert_eq!(stencil.len(), 4);
        assert!(stencil.contains(&ivec![0, 10]));
        assert!(stencil.contains(&ivec![1, 10]));
        assert!(stencil.contains(&ivec![0, 12]));
        assert!(stencil.contains(&ivec![1, 12]));
        assert_eq!(w, ivec![1, 22]);
    }

    #[test]
    fn odd_sum_has_no_reduction_and_is_unsolvable() {
        let inst = PartitionInstance::new(vec![1, 2]).unwrap();
        assert!(matches!(inst.reduce(), Err(NpcError::OddSum(3))));
        assert!(!inst.solve_brute());
        assert!(!inst.solve_via_uov());
    }

    #[test]
    fn solvable_instances_roundtrip() {
        for values in [
            vec![1, 1],
            vec![2, 1, 1],
            vec![3, 1, 2, 2],
            vec![5, 5, 4, 3, 2, 1],
            vec![7, 3, 2, 2],
        ] {
            let inst = PartitionInstance::new(values.clone()).unwrap();
            assert!(inst.solve_brute(), "brute force disagrees for {values:?}");
            assert!(
                inst.solve_via_uov(),
                "UOV reduction disagrees for {values:?}"
            );
        }
    }

    #[test]
    fn unsolvable_instances_roundtrip() {
        for values in [
            vec![1, 3],
            vec![2, 2, 2],    // even total 6, half 3, parts all even
            vec![5, 1, 2],    // total 8, half 4: 5>4, 1+2=3 ≠ 4
            vec![9, 2, 2, 1], // total 14, half 7: no subset hits 7
        ] {
            let inst = PartitionInstance::new(values.clone()).unwrap();
            assert!(!inst.solve_brute(), "brute force disagrees for {values:?}");
            assert!(
                !inst.solve_via_uov(),
                "UOV reduction disagrees for {values:?}"
            );
        }
    }

    #[test]
    fn oracle_and_dp_agree_on_exhaustive_small_instances() {
        // Every multiset over {1,2,3} of size 3 and 4.
        fn check(values: Vec<i64>) {
            let inst = PartitionInstance::new(values.clone()).unwrap();
            assert_eq!(
                inst.solve_brute(),
                inst.solve_via_uov(),
                "mismatch for {values:?}"
            );
        }
        for a in 1..=3i64 {
            for b in a..=3 {
                for c in b..=3 {
                    check(vec![a, b, c]);
                    for d in c..=3 {
                        check(vec![a, b, c, d]);
                    }
                }
            }
        }
    }
}
