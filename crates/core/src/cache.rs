//! Sharded, lock-striped concurrent caches.
//!
//! Two flavours share the striping scheme:
//!
//! * [`ShardedCache`] — an unbounded insert-only map. This is the memo
//!   table of the [`DoneOracle`](crate::DoneOracle): verdicts for a fixed
//!   stencil are unique, so last-writer-wins races are harmless, and
//!   entries are never evicted (the budget's memo cap bounds growth).
//! * [`ShardedLru`] — a capacity-bounded map with least-recently-used
//!   eviction per shard. This is what the planning service's canonical
//!   plan cache builds on: hot stencils stay resident, cold ones age out,
//!   and the capacity bound holds under any workload.
//!
//! Striping keeps contention low — a key hashes to one of `shards`
//! independently locked maps, so two threads only collide when they touch
//! the same stripe at the same instant. Locks are never held across user
//! code, so neither structure can deadlock.

use std::borrow::Borrow;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Mutex, RwLock};

fn stripe_of<Q: Hash + ?Sized>(key: &Q, mask: usize) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) & mask
}

/// An unbounded sharded concurrent map (see the module docs).
///
/// Readers take a shard's lock shared, writers exclusively. A poisoned
/// stripe (a panicking writer elsewhere) degrades to a cache miss rather
/// than propagating the panic.
#[derive(Debug)]
pub struct ShardedCache<K, V> {
    shards: Vec<RwLock<HashMap<K, V>>>,
    mask: usize,
}

impl<K: Hash + Eq, V: Clone> Default for ShardedCache<K, V> {
    fn default() -> Self {
        ShardedCache::new(Self::DEFAULT_SHARDS)
    }
}

impl<K: Hash + Eq, V: Clone> ShardedCache<K, V> {
    /// Default stripe count; a power of two so the shard index is a mask.
    pub const DEFAULT_SHARDS: usize = 16;

    /// A cache striped over `shards` locks (rounded up to a power of two).
    pub fn new(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        ShardedCache {
            shards: (0..n).map(|_| RwLock::default()).collect(),
            mask: n - 1,
        }
    }

    fn shard<Q>(&self, key: &Q) -> &RwLock<HashMap<K, V>>
    where
        Q: Hash + ?Sized,
    {
        &self.shards[stripe_of(key, self.mask)]
    }

    /// Cached value for `key`, if any. Accepts any borrowed form of the
    /// key (e.g. probe an `IVec`-keyed cache with a `&[i64]` scratch
    /// slice — no allocation on the lookup path).
    pub fn get<Q>(&self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        match self.shard(key).read() {
            Ok(guard) => guard.get(key).cloned(),
            Err(_) => None,
        }
    }

    /// Insert a value; returns whether the entry is new. Last-writer wins
    /// on a race — callers must only store values that concurrent writers
    /// agree on (memoised verdicts, canonical results).
    pub fn insert(&self, key: K, val: V) -> bool {
        match self.shard(&key).write() {
            Ok(mut guard) => guard.insert(key, val).is_none(),
            Err(_) => false,
        }
    }

    /// Whether `key` has a cached value (borrowed-form lookup like
    /// [`ShardedCache::get`]).
    pub fn contains<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        match self.shard(key).read() {
            Ok(guard) => guard.contains_key(key),
            Err(_) => false,
        }
    }

    /// Total entries across stripes. Exact when quiescent; a snapshot
    /// (each stripe read at a slightly different instant) under
    /// concurrent insertion, which is all the memo-cap check needs.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().map(|g| g.len()).unwrap_or(0))
            .sum()
    }

    /// Whether the cache holds no entries (same snapshot caveat as
    /// [`ShardedCache::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One LRU shard: a map plus a monotone access clock. Eviction scans for
/// the minimum stamp — O(shard size), which stays small because capacity
/// is divided across shards, and beats an intrusive list for auditability.
#[derive(Debug)]
struct LruShard<K, V> {
    map: HashMap<K, (V, u64)>,
    clock: u64,
    capacity: usize,
}

impl<K: Hash + Eq + Clone, V: Clone> LruShard<K, V> {
    fn touch(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn get(&mut self, key: &K) -> Option<V> {
        let stamp = self.touch();
        self.map.get_mut(key).map(|slot| {
            slot.1 = stamp;
            slot.0.clone()
        })
    }

    fn insert(&mut self, key: K, val: V) -> bool {
        let stamp = self.touch();
        if let Some(slot) = self.map.get_mut(&key) {
            *slot = (val, stamp);
            return false;
        }
        if self.map.len() >= self.capacity {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (_, s))| *s)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
            }
        }
        self.map.insert(key, (val, stamp));
        true
    }
}

/// A capacity-bounded sharded map with per-shard LRU eviction (see the
/// module docs).
///
/// The total capacity is divided evenly across stripes, so the bound is
/// approximate per access pattern but hard in aggregate: the cache never
/// holds more than `capacity` entries (rounded up to a multiple of the
/// stripe count).
#[derive(Debug)]
pub struct ShardedLru<K, V> {
    shards: Vec<Mutex<LruShard<K, V>>>,
    mask: usize,
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedLru<K, V> {
    /// An LRU cache holding at most ~`capacity` entries across `shards`
    /// stripes (stripe count rounded up to a power of two, per-stripe
    /// capacity at least 1).
    pub fn new(capacity: usize, shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        let per_shard = capacity.div_ceil(n).max(1);
        ShardedLru {
            shards: (0..n)
                .map(|_| {
                    Mutex::new(LruShard {
                        map: HashMap::new(),
                        clock: 0,
                        capacity: per_shard,
                    })
                })
                .collect(),
            mask: n - 1,
        }
    }

    fn shard(&self, key: &K) -> &Mutex<LruShard<K, V>> {
        &self.shards[stripe_of(key, self.mask)]
    }

    /// Cached value for `key`, refreshing its recency. A poisoned stripe
    /// degrades to a miss.
    pub fn get(&self, key: &K) -> Option<V> {
        match self.shard(key).lock() {
            Ok(mut guard) => guard.get(key),
            Err(_) => None,
        }
    }

    /// Insert (or refresh) a value, evicting the stripe's least-recently
    /// used entry if it is full. Returns whether the key is new.
    pub fn insert(&self, key: K, val: V) -> bool {
        match self.shard(&key).lock() {
            Ok(mut guard) => guard.insert(key, val),
            Err(_) => false,
        }
    }

    /// Remove an entry, returning its value. A poisoned stripe degrades
    /// to "not present".
    pub fn remove(&self, key: &K) -> Option<V> {
        match self.shard(key).lock() {
            Ok(mut guard) => guard.map.remove(key).map(|(v, _)| v),
            Err(_) => None,
        }
    }

    /// Total entries across stripes (snapshot under concurrency).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().map(|g| g.map.len()).unwrap_or(0))
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of every entry, stripe by stripe, without refreshing
    /// recency. Ordering is unspecified (callers that need determinism
    /// sort by key); under concurrent mutation each stripe is read at a
    /// slightly different instant, which is all persistence needs.
    pub fn entries(&self) -> Vec<(K, V)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            if let Ok(guard) = shard.lock() {
                out.extend(guard.map.iter().map(|(k, (v, _))| (k.clone(), v.clone())));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharded_cache_inserts_and_hits() {
        let c: ShardedCache<u64, u64> = ShardedCache::default();
        assert!(c.is_empty());
        assert!(c.insert(1, 10));
        assert!(!c.insert(1, 11), "overwrite is not a new entry");
        assert_eq!(c.get(&1), Some(11));
        assert!(!c.contains(&2));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn sharded_cache_is_concurrent() {
        let c: ShardedCache<u64, u64> = ShardedCache::new(8);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let c = &c;
                scope.spawn(move || {
                    for i in 0..100 {
                        c.insert(t * 1000 + i, i);
                    }
                });
            }
        });
        assert_eq!(c.len(), 400);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // Single stripe so the eviction order is fully observable.
        let c: ShardedLru<u64, u64> = ShardedLru::new(2, 1);
        c.insert(1, 1);
        c.insert(2, 2);
        assert_eq!(c.get(&1), Some(1)); // refresh 1; 2 is now the LRU
        c.insert(3, 3);
        assert_eq!(c.get(&2), None, "2 was the least recently used");
        assert_eq!(c.get(&1), Some(1));
        assert_eq!(c.get(&3), Some(3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn lru_capacity_is_a_hard_bound() {
        let c: ShardedLru<u64, u64> = ShardedLru::new(64, 8);
        for i in 0..10_000 {
            c.insert(i, i);
        }
        assert!(c.len() <= 64, "len {} exceeds capacity", c.len());
    }

    #[test]
    fn lru_entries_snapshot_and_remove() {
        let c: ShardedLru<u64, u64> = ShardedLru::new(16, 4);
        for i in 0..5 {
            c.insert(i, i * 10);
        }
        let mut snap = c.entries();
        snap.sort_unstable();
        assert_eq!(snap, vec![(0, 0), (1, 10), (2, 20), (3, 30), (4, 40)]);
        assert_eq!(c.remove(&2), Some(20));
        assert_eq!(c.remove(&2), None);
        assert_eq!(c.get(&2), None);
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn lru_refresh_keeps_single_entry() {
        let c: ShardedLru<u64, u64> = ShardedLru::new(4, 1);
        assert!(c.insert(7, 1));
        assert!(!c.insert(7, 2), "refresh is not a new key");
        assert_eq!(c.get(&7), Some(2));
        assert_eq!(c.len(), 1);
    }
}
