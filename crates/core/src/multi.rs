//! Common occupancy vectors across multiple stencils (paper §7, future
//! work: "we might want to select our occupancy vector in a way that
//! allows two loops to use the same OV-mapping for a given array").
//!
//! A vector universal for several stencils at once lets two loop nests —
//! or several statements feeding one array — share a single OV-mapped
//! buffer. Unlike the single-stencil case, a common UOV need not exist:
//! the UOV sets of `{(0,1)}` and `{(1,0)}` are disjoint rays. The search
//! is therefore bounded and returns `None` when the sets do not meet
//! within the exploration budget.

use uov_isg::{IVec, Stencil};

use crate::budget::{Budget, Degradation};
use crate::error::SearchError;
use crate::objective::storage_class_count;
use crate::search::{try_cost_of, Objective};
use crate::DoneOracle;

/// Result of [`find_best_common_uov`].
#[derive(Debug, Clone)]
pub struct CommonUov {
    /// A vector universal for every input stencil.
    pub uov: IVec,
    /// Objective value (squared length, or storage-class count).
    pub cost: u128,
}

fn cost_of(objective: &Objective<'_>, w: &IVec) -> u128 {
    match objective {
        Objective::ShortestVector => w.norm_sq() as u128,
        Objective::KnownBounds(domain) => storage_class_count(*domain, w) as u128,
    }
}

/// Find the best vector that is a UOV for *every* stencil in `stencils`,
/// searching the box `[-radius, radius]^d` exhaustively in cost order.
///
/// Returns `None` when the stencil list is empty, dimensions disagree, or
/// no common UOV exists within the box. A sensible radius is a small
/// multiple of the largest initial UOV, e.g.
/// `2 * stencils.iter().map(|s| s.sum().max_abs()).max()`.
///
/// # Examples
///
/// ```
/// use uov_core::multi::find_best_common_uov;
/// use uov_core::search::Objective;
/// use uov_isg::{ivec, Stencil};
///
/// // Two loops over the same array with different stencils.
/// let a = Stencil::new(vec![ivec![1, 0], ivec![0, 1], ivec![1, 1]])?;
/// let b = Stencil::new(vec![ivec![1, -1], ivec![1, 1]])?;
/// let common = find_best_common_uov(&[a, b], Objective::ShortestVector, 6)
///     .expect("these UOV sets intersect");
/// // (2,2) is universal for the first stencil but not the second
/// // ((2,2)−(1,−1) = (1,3) needs a negative coefficient); the shortest
/// // vector in the intersection is (3,1).
/// assert_eq!(common.uov, ivec![3, 1]);
/// # Ok::<(), uov_isg::StencilError>(())
/// ```
pub fn find_best_common_uov(
    stencils: &[Stencil],
    objective: Objective<'_>,
    radius: i64,
) -> Option<CommonUov> {
    find_best_common_uov_threaded(stencils, objective, radius, 1)
}

/// [`find_best_common_uov`] with the per-candidate universality checks
/// fanned out over `threads` workers (the oracles' memo caches are
/// concurrent, so workers share transitive-closure work).
///
/// The answer is the minimum of each candidate's `(cost, ‖w‖², w)` key —
/// a total order — so every thread count returns the identical result;
/// `threads = 1` runs exactly the sequential loop.
pub fn find_best_common_uov_threaded(
    stencils: &[Stencil],
    objective: Objective<'_>,
    radius: i64,
    threads: usize,
) -> Option<CommonUov> {
    let first = stencils.first()?;
    let dim = first.dim();
    if stencils.iter().any(|s| s.dim() != dim) || radius < 0 {
        return None;
    }
    let oracles: Vec<DoneOracle> = stencils.iter().map(DoneOracle::new).collect();

    // Candidates come from the first stencil's UOV set restricted to the
    // box; each is then checked against the remaining oracles through
    // their allocation-free slice entry points (one scratch buffer per
    // candidate serves every oracle).
    let candidates = oracles[0].uovs_within(radius);
    let unlimited = Budget::unlimited();
    crate::par::fan_out(&candidates, threads, |w| {
        let mut buf = Vec::with_capacity(dim);
        oracles[1..]
            .iter()
            .all(
                |o| match o.in_dead_slice_budgeted(w.as_slice(), &mut buf, &unlimited) {
                    Ok(b) => b,
                    Err(e) => panic!("oracle query failed: {e}"),
                },
            )
            .then(|| (cost_of(&objective, w), w.norm_sq(), w.clone()))
    })
    .into_iter()
    .flatten()
    .min()
    .map(|(cost, _, uov)| CommonUov { uov, cost })
}

/// Budgeted [`find_best_common_uov`] for untrusted stencils and bounded
/// latency: oracle construction errors are surfaced instead of panicking,
/// and when the budget runs out mid-enumeration the best common UOV found
/// so far (if any) is returned together with a [`Degradation`] record.
///
/// Unlike the single-stencil search there is no always-legal fallback — a
/// common UOV may simply not exist — so a degraded result can be `None`
/// even when the full search would have found one.
///
/// # Errors
///
/// Hard failures only: an unrepresentable positive functional or
/// arithmetic overflow while checking a candidate.
pub fn find_best_common_uov_budgeted(
    stencils: &[Stencil],
    objective: Objective<'_>,
    radius: i64,
    budget: &Budget,
) -> Result<(Option<CommonUov>, Option<Degradation>), SearchError> {
    let Some(first) = stencils.first() else {
        return Ok((None, None));
    };
    let dim = first.dim();
    if stencils.iter().any(|s| s.dim() != dim) || radius < 0 {
        return Ok((None, None));
    }
    let oracles = stencils
        .iter()
        .map(DoneOracle::try_new)
        .collect::<Result<Vec<_>, _>>()?;

    let (candidates, mut degradation) = oracles[0].uovs_within_budgeted(radius, budget)?;
    let mut best: Option<(u128, i128, IVec)> = None;
    let mut buf = Vec::with_capacity(dim);
    'candidates: for w in candidates {
        for o in &oracles[1..] {
            match o.in_dead_slice_budgeted(w.as_slice(), &mut buf, budget) {
                Ok(true) => {}
                Ok(false) => continue 'candidates,
                Err(SearchError::Exhausted(reason)) => {
                    degradation
                        .get_or_insert_with(|| budget.degradation(reason, o.cache_len(), false));
                    break 'candidates;
                }
                Err(e) => return Err(e),
            }
        }
        // A candidate whose cost overflows can simply never win.
        let Ok(cost) = try_cost_of(&objective, &w) else {
            continue;
        };
        let Ok(norm) = w.try_norm_sq() else {
            continue;
        };
        let key = (cost, norm, w);
        if best.as_ref().map(|b| key < *b).unwrap_or(true) {
            best = Some(key);
        }
    }
    Ok((
        best.map(|(cost, _, uov)| CommonUov { uov, cost }),
        degradation,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use uov_isg::ivec;

    fn s(vs: Vec<IVec>) -> Stencil {
        Stencil::new(vs).unwrap()
    }

    #[test]
    fn common_uov_is_universal_for_all_inputs() {
        let a = s(vec![ivec![1, 0], ivec![0, 1], ivec![1, 1]]);
        let b = s(vec![ivec![1, -1], ivec![1, 1]]);
        let common = find_best_common_uov(&[a.clone(), b.clone()], Objective::ShortestVector, 6)
            .expect("exists");
        for stencil in [&a, &b] {
            assert!(DoneOracle::new(stencil).is_uov(&common.uov));
        }
    }

    #[test]
    fn disjoint_uov_sets_yield_none() {
        let a = s(vec![ivec![0, 1]]); // UOVs: (0, k), k ≥ 1
        let b = s(vec![ivec![1, 0]]); // UOVs: (k, 0), k ≥ 1
        assert!(find_best_common_uov(&[a, b], Objective::ShortestVector, 8).is_none());
    }

    #[test]
    fn single_stencil_degenerates_to_ordinary_search() {
        let a = s(vec![
            ivec![1, -2],
            ivec![1, -1],
            ivec![1, 0],
            ivec![1, 1],
            ivec![1, 2],
        ]);
        let common = find_best_common_uov(&[a], Objective::ShortestVector, 6).expect("exists");
        assert_eq!(common.uov, ivec![2, 0]);
        assert_eq!(common.cost, 4);
    }

    #[test]
    fn empty_input_and_dim_mismatch() {
        assert!(find_best_common_uov(&[], Objective::ShortestVector, 4).is_none());
        let a = s(vec![ivec![1, 0]]);
        let b = s(vec![ivec![1, 0, 0]]);
        assert!(find_best_common_uov(&[a, b], Objective::ShortestVector, 4).is_none());
    }

    #[test]
    fn known_bounds_objective_applies() {
        let a = s(vec![ivec![1, 0], ivec![0, 1], ivec![1, 1]]);
        let b = s(vec![ivec![1, 1], ivec![2, 1]]);
        let grid = uov_isg::RectDomain::grid(8, 8);
        let common =
            find_best_common_uov(&[a, b], Objective::KnownBounds(&grid), 6).expect("exists");
        assert_eq!(common.cost, storage_class_count(&grid, &common.uov) as u128);
    }

    #[test]
    fn budgeted_common_uov_matches_unbudgeted_when_unlimited() {
        let a = s(vec![ivec![1, 0], ivec![0, 1], ivec![1, 1]]);
        let b = s(vec![ivec![1, -1], ivec![1, 1]]);
        let (found, degradation) = find_best_common_uov_budgeted(
            &[a.clone(), b.clone()],
            Objective::ShortestVector,
            6,
            &Budget::unlimited(),
        )
        .unwrap();
        assert!(degradation.is_none());
        let reference = find_best_common_uov(&[a, b], Objective::ShortestVector, 6).unwrap();
        assert_eq!(found.unwrap().uov, reference.uov);
    }

    #[test]
    fn budgeted_common_uov_degrades_under_tiny_budget() {
        let a = s(vec![ivec![1, 0], ivec![0, 1], ivec![1, 1]]);
        let b = s(vec![ivec![1, -1], ivec![1, 1]]);
        let tight = Budget::unlimited().with_max_nodes(3);
        let (found, degradation) = find_best_common_uov_budgeted(
            &[a.clone(), b.clone()],
            Objective::ShortestVector,
            6,
            &tight,
        )
        .unwrap();
        assert!(degradation.is_some(), "tiny budget must degrade");
        if let Some(common) = found {
            for stencil in [&a, &b] {
                assert!(DoneOracle::new(stencil).is_uov(&common.uov));
            }
        }
    }

    #[test]
    fn threaded_common_uov_matches_sequential() {
        let a = s(vec![ivec![1, 0], ivec![0, 1], ivec![1, 1]]);
        let b = s(vec![ivec![1, -1], ivec![1, 1]]);
        let seq = find_best_common_uov(&[a.clone(), b.clone()], Objective::ShortestVector, 6)
            .expect("exists");
        for threads in [2, 4, 8] {
            let par = find_best_common_uov_threaded(
                &[a.clone(), b.clone()],
                Objective::ShortestVector,
                6,
                threads,
            )
            .expect("exists");
            assert_eq!(par.uov, seq.uov, "threads={threads}");
            assert_eq!(par.cost, seq.cost, "threads={threads}");
        }
        // Disjoint sets stay disjoint at every thread count.
        let x = s(vec![ivec![0, 1]]);
        let y = s(vec![ivec![1, 0]]);
        assert!(find_best_common_uov_threaded(&[x, y], Objective::ShortestVector, 8, 4).is_none());
    }

    #[test]
    fn psm_statements_share_no_short_common_uov() {
        // H's consumers {(1,1),(1,0),(0,1)} vs E's {(1,0)}: E's UOV set is
        // the (k,0) ray, none of which is universal for H — the paper's
        // per-statement disjoint storage is genuinely necessary here.
        let h = s(vec![ivec![1, 1], ivec![1, 0], ivec![0, 1]]);
        let e = s(vec![ivec![1, 0]]);
        assert!(find_best_common_uov(&[h, e], Objective::ShortestVector, 8).is_none());
    }
}
