//! Typed errors for oracle queries and UOV searches.

use std::fmt;

use uov_isg::IsgError;

use crate::budget::Exhausted;
use crate::checkpoint::CheckpointError;

/// Error from a UOV search or oracle query.
///
/// Budget exhaustion is **not** normally surfaced this way: the search
/// routines degrade to a legal incumbent and attach a
/// [`Degradation`](crate::budget::Degradation) record instead. The
/// [`SearchError::Exhausted`] variant appears only from the raw budgeted
/// oracle queries, where there is no legal fallback answer to give.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SearchError {
    /// The PATHSET bitmask implementation handles at most 63 stencil
    /// vectors.
    TooManyVectors(usize),
    /// The stencil and the iteration domain disagree on dimensionality.
    DimMismatch {
        /// Dimension of the stencil.
        stencil: usize,
        /// Dimension of the domain or query vector.
        domain: usize,
    },
    /// Lattice arithmetic failed (overflow on adversarial coordinates).
    Isg(IsgError),
    /// A budgeted query ran out of budget before reaching an answer.
    Exhausted(Exhausted),
    /// A search worker panicked; the panic was caught at the worker
    /// boundary and the surviving workers drained (or the final
    /// checkpoint was written) before this error was returned. The
    /// process never aborts on a worker panic.
    WorkerPanic {
        /// Index of the panicking worker (`0` for the sequential engine).
        worker: usize,
        /// Stringified panic payload.
        payload: String,
    },
    /// A resume could not restore state from a snapshot file.
    Checkpoint(CheckpointError),
}

impl fmt::Display for SearchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SearchError::TooManyVectors(n) => {
                write!(f, "stencil has {n} vectors; the search supports at most 63")
            }
            SearchError::DimMismatch { stencil, domain } => {
                write!(f, "stencil dimension {stencil} does not match {domain}")
            }
            SearchError::Isg(e) => write!(f, "lattice arithmetic failed: {e}"),
            SearchError::Exhausted(e) => write!(f, "query budget exhausted: {e}"),
            SearchError::WorkerPanic { worker, payload } => {
                write!(f, "search worker {worker} panicked: {payload}")
            }
            SearchError::Checkpoint(e) => write!(f, "checkpoint resume failed: {e}"),
        }
    }
}

impl std::error::Error for SearchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SearchError::Isg(e) => Some(e),
            SearchError::Exhausted(e) => Some(e),
            SearchError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IsgError> for SearchError {
    fn from(e: IsgError) -> Self {
        SearchError::Isg(e)
    }
}

impl From<Exhausted> for SearchError {
    fn from(e: Exhausted) -> Self {
        SearchError::Exhausted(e)
    }
}

impl From<CheckpointError> for SearchError {
    fn from(e: CheckpointError) -> Self {
        SearchError::Checkpoint(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        assert!(SearchError::TooManyVectors(64).to_string().contains("64"));
        assert!(SearchError::DimMismatch {
            stencil: 2,
            domain: 3
        }
        .to_string()
        .contains("2"));
        let e: SearchError = IsgError::ZeroVector.into();
        assert!(matches!(e, SearchError::Isg(IsgError::ZeroVector)));
        let e: SearchError = Exhausted::Deadline.into();
        assert!(e.to_string().contains("deadline"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn panic_and_checkpoint_variants_display() {
        let e = SearchError::WorkerPanic {
            worker: 3,
            payload: "boom".into(),
        };
        assert!(e.to_string().contains("worker 3"));
        assert!(e.to_string().contains("boom"));
        let e: SearchError = CheckpointError::BadMagic.into();
        assert!(matches!(
            e,
            SearchError::Checkpoint(CheckpointError::BadMagic)
        ));
        assert!(e.to_string().contains("magic"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
