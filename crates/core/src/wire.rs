//! Dependency-free binary encoding helpers shared by the checkpoint
//! format and the `uov-service` wire protocol.
//!
//! Everything here is deliberately boring: little-endian fixed-width
//! integers, a bounds-checked cursor that can never read past its buffer,
//! and a bitwise IEEE CRC-32. The checkpoint format ([`crate::checkpoint`])
//! and the planning service's request/response frames are both built from
//! these primitives, so a fuzzer that breaks one breaks both — and the
//! fault-injection suites hammer both.

use std::fmt;

use uov_isg::IVec;

/// CRC-32 (IEEE 802.3, bitwise): poly `0xEDB88320`, init/final `!0`.
/// Bitwise rather than table-driven — frames and snapshots are small, and
/// 20 lines beat a 1 KiB table for auditability.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Decoding failed structurally: the buffer ended early or a declared
/// size is impossible. Semantic validation (CRCs, magics, versions) is
/// the caller's job — this type only covers what the cursor itself can
/// see.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ends before the declared structure does.
    Truncated,
    /// A declared count or length cannot fit in the remaining buffer (or
    /// in `usize`). Rejected *before* allocating, so a hostile length
    /// prefix cannot balloon memory.
    Oversized(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "input is truncated"),
            WireError::Oversized(what) => write!(f, "{what} exceeds the input size"),
        }
    }
}

impl std::error::Error for WireError {}

/// Append-only little-endian encoder.
#[derive(Debug, Default)]
pub struct Encoder {
    /// The bytes written so far.
    pub buf: Vec<u8>,
}

impl Encoder {
    /// An empty encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// An empty encoder with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Encoder {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    /// Append a `u16`, little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    /// Append a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    /// Append a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    /// Append a `u128`, little-endian.
    pub fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    /// Append an `i64`, little-endian.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    /// Append a vector's components, each as a little-endian `i64`.
    pub fn vec(&mut self, w: &IVec) {
        for &c in w.as_slice() {
            self.i64(c);
        }
    }

    /// Append `tag ‖ len ‖ payload ‖ crc32(tag ‖ len ‖ payload)` — the
    /// checkpoint format's self-checking section framing.
    pub fn section(&mut self, tag: u8, payload: &[u8]) {
        let start = self.buf.len();
        self.u8(tag);
        self.u64(payload.len() as u64);
        self.buf.extend_from_slice(payload);
        let crc = crc32(&self.buf[start..]);
        self.u32(crc);
    }
}

/// Bounds-checked little-endian decoding cursor.
#[derive(Debug)]
pub struct Decoder<'a> {
    /// The full input buffer.
    pub buf: &'a [u8],
    /// Cursor position within `buf`.
    pub pos: usize,
}

impl<'a> Decoder<'a> {
    /// A cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Consume the next `n` bytes.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(WireError::Truncated)?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn array<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        let slice = self.take(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(slice);
        Ok(out)
    }

    /// Consume one byte.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at end of input.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.array::<1>()?[0])
    }
    /// Consume a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] if fewer than 2 bytes remain.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.array()?))
    }
    /// Consume a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] if fewer than 4 bytes remain.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.array()?))
    }
    /// Consume a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] if fewer than 8 bytes remain.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.array()?))
    }
    /// Consume a little-endian `u128`.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] if fewer than 16 bytes remain.
    pub fn u128(&mut self) -> Result<u128, WireError> {
        Ok(u128::from_le_bytes(self.array()?))
    }
    /// Consume a little-endian `i64`.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] if fewer than 8 bytes remain.
    pub fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.array()?))
    }

    /// Consume `dim` little-endian `i64` components as an [`IVec`].
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] if fewer than `8 × dim` bytes remain.
    pub fn vec(&mut self, dim: usize) -> Result<IVec, WireError> {
        let mut v = Vec::with_capacity(dim);
        for _ in 0..dim {
            v.push(self.i64()?);
        }
        Ok(IVec::from(v))
    }

    /// Length-checked entry count: reads a `u64` count and verifies the
    /// remaining buffer can hold `count` entries of `entry_bytes` each —
    /// **before** any allocation sized by the count.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] if the count itself is missing,
    /// [`WireError::Oversized`] if the declared entries cannot fit.
    pub fn count(&mut self, entry_bytes: usize) -> Result<usize, WireError> {
        let n = self.u64()?;
        let remaining = self.remaining();
        let needed = usize::try_from(n)
            .ok()
            .and_then(|n| n.checked_mul(entry_bytes))
            .ok_or(WireError::Oversized("entry count"))?;
        if needed > remaining {
            return Err(WireError::Oversized("entry count"));
        }
        Ok(n as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uov_isg::ivec;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn scalar_round_trip() {
        let mut e = Encoder::new();
        e.u8(7);
        e.u16(300);
        e.u32(70_000);
        e.u64(1 << 40);
        e.u128(1 << 90);
        e.i64(-42);
        e.vec(&ivec![3, -4]);
        let mut d = Decoder::new(&e.buf);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u16().unwrap(), 300);
        assert_eq!(d.u32().unwrap(), 70_000);
        assert_eq!(d.u64().unwrap(), 1 << 40);
        assert_eq!(d.u128().unwrap(), 1 << 90);
        assert_eq!(d.i64().unwrap(), -42);
        assert_eq!(d.vec(2).unwrap(), ivec![3, -4]);
        assert_eq!(d.remaining(), 0);
        assert_eq!(d.u8(), Err(WireError::Truncated));
    }

    #[test]
    fn oversized_count_is_rejected_before_allocation() {
        let mut e = Encoder::new();
        e.u64(u64::MAX); // count that would overflow usize × entry_bytes
        let mut d = Decoder::new(&e.buf);
        assert!(matches!(d.count(24), Err(WireError::Oversized(_))));
        // A count larger than the remaining payload is also rejected.
        let mut e = Encoder::new();
        e.u64(10);
        e.u64(0); // only 8 bytes of payload for 10 × 24-byte entries
        let mut d = Decoder::new(&e.buf);
        assert!(matches!(d.count(24), Err(WireError::Oversized(_))));
    }

    #[test]
    fn section_framing_detects_corruption() {
        let mut e = Encoder::new();
        e.section(3, b"payload");
        let body_len = e.buf.len() - 4;
        let crc = u32::from_le_bytes(e.buf[body_len..].try_into().unwrap());
        assert_eq!(crc, crc32(&e.buf[..body_len]));
        let mut flipped = e.buf.clone();
        flipped[2] ^= 1;
        assert_ne!(crc32(&flipped[..body_len]), crc);
    }
}
