//! Branch-and-bound search for the optimal universal occupancy vector
//! (paper §3.2).
//!
//! The search space is the set of offsets reachable from an arbitrary
//! origin by walking *backwards* along value dependences; an offset is a
//! UOV once every stencil dependence has been traversed on some path to it
//! (the paper's `PATHSET = V` condition, equivalent to the DEAD-set
//! definition). The search:
//!
//! 1. starts from the trivially legal initial UOV `ov₀ = Σ vᵢ`
//!    ([`initial_uov`]), so a valid answer exists from the first moment —
//!    a compiler may stop the search at any time and keep the best so far;
//! 2. explores offsets in best-first order using a priority queue keyed by
//!    the objective (squared length, or storage-class count when the loop
//!    bounds are known);
//! 3. prunes offsets that provably cannot lead to a better UOV than the
//!    incumbent, using the stencil's positive functional `φ`: every
//!    backward step increases `φ·w` by at least 1, and by Cauchy–Schwarz
//!    `|u| ≥ φ·u / |φ|` bounds the length of every descendant — the
//!    lattice analogue of the paper's bounding parallelepiped (Figure 4).
//!
//! For the known-bounds objective the pruning additionally uses a
//! dimension-independent fact: a class (a line of iterations in direction
//! `u`) holds at most `diam/|u| + 1` points, so the class count is at least
//! `N·|u| / (diam + |u|)` for a domain with `N` points and diameter `diam`.
//!
//! # Parallel search
//!
//! With [`SearchConfig::threads`] > 1 the branch-and-bound fans out over a
//! pool of `std::thread` workers that share one frontier: each worker owns
//! a local priority queue and *steals* from its peers when it runs dry,
//! the PATHSET table is sharded and lock-striped, and the incumbent bound
//! lives in an atomic cell so every worker prunes against the global best
//! the instant it improves. The result is **deterministic**: candidates
//! are compared by the total order `(cost, ‖w‖², lexicographic w)`, and
//! the pruning rules only discard children that provably cannot *reach*
//! the final key (strict inequality against the bound), so every thread
//! count — including 1 — returns the identical `(uov, cost)` for a
//! completed search. Only the [`SearchStats`] counters and
//! budget-truncated results vary with scheduling.
//!
//! # Checkpoint/resume
//!
//! With [`SearchConfig::checkpoint`] set, the engine snapshots its state
//! — frontier, PATHSET table, incumbent and budget progress — to disk
//! every `interval` processed nodes and once more when it stops, using
//! the crash-safe format of [`crate::checkpoint`]. [`search_resume`]
//! restores a snapshot and continues. Because the snapshot captures a
//! *valid* search state (every discovered-but-unexpanded path is in the
//! frontier, including entries a worker had in hand when the run was cut
//! short), the canonical-order determinism argument applies across the
//! interruption: a search killed at any point and resumed from its latest
//! snapshot returns the byte-identical `(uov, cost)` of an uninterrupted
//! run, at every thread count. The parallel engine quiesces all workers
//! at a barrier before each mid-run snapshot so no expansion is ever torn
//! across a file.
//!
//! # Panic isolation
//!
//! Every engine body runs under `catch_unwind`: a panicking node
//! evaluation (for example a user-supplied [`IterationDomain`] that
//! panics) surfaces as a typed [`SearchError::WorkerPanic`] instead of
//! aborting the process. In the parallel engine the surviving workers
//! drain or stop, the final checkpoint (if configured) is still written,
//! and children are costed *before* they touch the shared PATHSET table
//! so a caught panic can never leave a merged-but-never-queued offset
//! behind.

use std::collections::{BinaryHeap, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

use uov_isg::{IVec, IsgError, IterationDomain, Stencil};

use crate::budget::{Budget, Degradation, Exhausted};
use crate::checkpoint::{self, CheckpointConfig, CheckpointError, Snapshot};
use crate::dense::{MaskTable, Window};
use crate::error::SearchError;
use crate::objective::{storage_class_count, try_storage_class_count};
use crate::oracle::dot_slices;
use crate::par::panic_message;

/// What the search minimises.
///
/// The paper (§3.2): with unknown loop bounds, find the shortest UOV; with
/// known bounds, minimise the actual storage — a longer OV can win
/// (Figure 3).
#[derive(Debug, Clone, Copy)]
pub enum Objective<'a> {
    /// Minimise the Euclidean length of the UOV (squared, exactly).
    ShortestVector,
    /// Minimise the number of storage-equivalence classes on the given
    /// domain. The domain is `Sync` so the parallel search can evaluate
    /// candidates from every worker thread.
    KnownBounds(&'a (dyn IterationDomain + Sync)),
}

/// Tunables for [`find_best_uov`].
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Stop after visiting this many offsets and report the best UOV found
    /// so far (`stats.complete` will be `false` if the limit was hit).
    /// Mirrors the paper's "a compiler could limit the amount of time the
    /// algorithm runs and just take the best answer found so far".
    pub max_visits: Option<u64>,
    /// Resource budget (deadline, node cap, memo cap, cancellation). When
    /// it runs out the search degrades to the best incumbent — at worst the
    /// always-legal initial UOV — and records a
    /// [`Degradation`](crate::budget::Degradation) in the result.
    pub budget: Budget,
    /// Worker threads for the branch-and-bound. `0` and `1` both run the
    /// sequential algorithm on the calling thread; `n > 1` spawns `n`
    /// work-stealing workers sharing the incumbent bound and PATHSET
    /// table. Completed searches return identical `(uov, cost)` for every
    /// value — see the module docs' determinism guarantee.
    pub threads: usize,
    /// Crash-safe snapshots: `Some` writes the search state to the given
    /// path every `interval` processed nodes (and once more when the
    /// search stops), ready for [`search_resume`]. `None` (the default)
    /// disables checkpointing. Snapshot write failures never fail the
    /// search; the first one is reported in
    /// [`SearchResult::checkpoint_error`] and disables further writes.
    pub checkpoint: Option<CheckpointConfig>,
    /// Externally supplied incumbent-cost bound, used *only* to tighten
    /// pruning. Sound iff the value is the cost of a genuine UOV for the
    /// same `(stencil, objective)` — then the optimum costs at most the
    /// hint, pruning stays strict, and ties at the hint survive to the
    /// canonical tie-break, so the returned `(uov, cost)` is unchanged
    /// (only the visit counters shrink). A stale (too-high) hint merely
    /// weakens pruning; this is what makes the mesh's best-effort bound
    /// gossip safe.
    pub bound_hint: Option<u128>,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            max_visits: None,
            budget: Budget::default(),
            threads: 1,
            checkpoint: None,
            bound_hint: None,
        }
    }
}

/// Counters describing a finished search, for the ablation experiments.
///
/// With `threads > 1` the counters are exact totals across workers but
/// their values depend on scheduling (how early the bound tightened on
/// each worker); only the returned `(uov, cost)` is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Offsets extracted from the priority queue.
    pub visited: u64,
    /// Queue insertions (including PATHSET-growth re-insertions).
    pub pushed: u64,
    /// Times the incumbent bound improved.
    pub improvements: u64,
    /// Children cut off by the cost bound.
    pub pruned: u64,
    /// Children cut off by the hard exploration cap (see
    /// [`find_best_uov`]); non-zero only in degenerate known-bounds cases.
    pub capped: u64,
    /// Whether the search ran to exhaustion (false if `max_visits` hit).
    pub complete: bool,
}

/// Result of [`find_best_uov`].
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// The best universal occupancy vector found.
    pub uov: IVec,
    /// Its objective value (squared length, or storage-class count).
    pub cost: u128,
    /// Search statistics.
    pub stats: SearchStats,
    /// Present iff the search was cut short (budget or `max_visits`); the
    /// UOV above is still legal, merely possibly non-optimal.
    pub degradation: Option<Degradation>,
    /// Present iff a configured checkpoint write failed. The search
    /// result itself is unaffected — checkpointing is best-effort
    /// durability, never a correctness dependency.
    pub checkpoint_error: Option<CheckpointError>,
}

/// The trivially computed initial UOV `ov₀ = Σ vᵢ` (paper §3.2.1).
///
/// Always universal: for each `vᵢ`, `ov₀ − vᵢ = Σ_{j≠i} vⱼ` is a
/// non-negative combination of stencil vectors.
///
/// # Examples
///
/// ```
/// use uov_isg::{ivec, Stencil};
/// use uov_core::search::initial_uov;
///
/// let s = Stencil::new(vec![ivec![1, 0], ivec![0, 1], ivec![1, 1]])?;
/// assert_eq!(initial_uov(&s), ivec![2, 2]);
/// # Ok::<(), uov_isg::StencilError>(())
/// ```
pub fn initial_uov(stencil: &Stencil) -> IVec {
    stencil.sum()
}

fn cost_of(objective: &Objective<'_>, w: &IVec) -> u128 {
    match objective {
        Objective::ShortestVector => w.norm_sq() as u128,
        Objective::KnownBounds(domain) => storage_class_count(*domain, w) as u128,
    }
}

/// [`cost_of`] with overflow reported instead of panicking; the searches
/// use this so one adversarial candidate cannot sink the whole run, and
/// the service's plan cache uses it to re-cost permuted answers.
pub fn try_cost_of(objective: &Objective<'_>, w: &IVec) -> Result<u128, IsgError> {
    match objective {
        Objective::ShortestVector => Ok(w.try_norm_sq()? as u128),
        Objective::KnownBounds(domain) => Ok(try_storage_class_count(*domain, w)? as u128),
    }
}

fn isqrt(n: u128) -> u128 {
    if n < 2 {
        return n;
    }
    let mut x = n;
    let mut y = x.div_ceil(2);
    while y < x {
        x = y;
        y = (x + n / x) / 2;
    }
    x
}

/// Geometry of the known-bounds objective, precomputed once.
struct DomainFacts {
    /// Number of iteration points `N`.
    num_points: u128,
    /// Ceiling of the domain's diameter (max pairwise vertex distance).
    diam: u128,
}

impl DomainFacts {
    fn try_new(domain: &dyn IterationDomain) -> Result<Self, IsgError> {
        let vertices = domain.extreme_points();
        let mut diam_sq: u128 = 0;
        for (i, a) in vertices.iter().enumerate() {
            for b in &vertices[i + 1..] {
                diam_sq = diam_sq.max(a.checked_sub(b)?.try_norm_sq()? as u128);
            }
        }
        Ok(DomainFacts {
            num_points: domain.num_points() as u128,
            diam: isqrt(diam_sq) + 1,
        })
    }

    /// `true` if every descendant of an offset with squared-length lower
    /// bound `len_sq_lb` must cost *strictly more* than `best`: classes ≥
    /// N·L/(diam+L). The inequality is strict so candidates that merely
    /// *tie* the incumbent survive to the lexicographic tie-break — that
    /// is what makes the answer independent of visit order (and hence of
    /// the thread count).
    fn dominated(&self, len_sq_lb: u128, best: u128) -> bool {
        let l = isqrt(len_sq_lb); // floor → weaker bound → sound
        self.num_points * l > best * (self.diam + l)
    }
}

/// Find the minimum-cost universal occupancy vector for `stencil`.
///
/// Implements Algorithm *Visit* of the paper (§3.2.2): best-first traversal
/// of backward value dependences with per-offset `PATHSET`s; an offset
/// whose PATHSET covers the whole stencil is a UOV and may tighten the
/// incumbent bound, which in turn shrinks the search region.
///
/// The returned vector is always a legal UOV. It is *optimal* for the
/// objective whenever `stats.complete` is true and `stats.capped == 0`:
///
/// * `complete == false` means `config.max_visits` or the budget cut the
///   search short; `result.degradation` says which and how far it got;
/// * `capped > 0` can only occur for [`Objective::KnownBounds`] on
///   degenerate domains where storage cannot discriminate candidates (the
///   hard cap stops exploration at offsets 64× the functional value of the
///   initial UOV — far beyond any storage-profitable candidate), or when
///   individual candidates overflowed `i64` and were discarded.
///
/// # Errors
///
/// * [`SearchError::TooManyVectors`] for stencils beyond 63 vectors
///   (PATHSETs are `u64` bitmasks).
/// * [`SearchError::DimMismatch`] when the objective's domain dimension
///   differs from the stencil's.
/// * [`SearchError::Isg`] when the stencil itself is out of numeric range
///   (positive functional or initial UOV overflows `i64`).
///
/// Budget exhaustion is **not** an error: the search returns the best
/// incumbent with a [`Degradation`] record attached.
///
/// # Examples
///
/// ```
/// use uov_isg::{ivec, Stencil};
/// use uov_core::search::{find_best_uov, Objective, SearchConfig};
///
/// // The 5-point stencil of the paper's §5: the optimal UOV is (2, 0).
/// let s = Stencil::new(vec![
///     ivec![1, -2], ivec![1, -1], ivec![1, 0], ivec![1, 1], ivec![1, 2],
/// ])?;
/// let best = find_best_uov(&s, Objective::ShortestVector, &SearchConfig::default())?;
/// assert_eq!(best.uov, ivec![2, 0]);
/// assert!(best.stats.complete);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn find_best_uov(
    stencil: &Stencil,
    objective: Objective<'_>,
    config: &SearchConfig,
) -> Result<SearchResult, SearchError> {
    let (domain_facts, setup) = validated_setup(stencil, &objective)?;
    let seed = SeedState::fresh(&setup);
    run_engines(
        stencil,
        &objective,
        config,
        &domain_facts,
        &setup,
        seed,
        None,
    )
}

/// Resume a search from a snapshot written by a previous (interrupted or
/// completed) run with the same stencil, objective and checkpoint path.
///
/// The snapshot's fingerprint must match the live `(stencil, objective)`
/// pair, and the restored state is structurally re-validated (costs
/// recomputed, PATHSET masks range-checked, frontier cross-checked
/// against the PATHSET table) before any search work happens. The
/// restored node count is folded into `config.budget`, so a cumulative
/// `max_nodes` cap holds across arbitrarily many interrupt/resume
/// cycles.
///
/// Determinism: an interrupted-then-resumed search that runs to
/// completion returns the identical `(uov, cost)` as an uninterrupted
/// one — see the module docs.
///
/// # Errors
///
/// Everything [`find_best_uov`] reports, plus
/// [`SearchError::Checkpoint`] when the file cannot be read, fails
/// validation ([`CheckpointError::Corrupt`]) or belongs to a different
/// problem ([`CheckpointError::StencilMismatch`]).
pub fn search_resume(
    path: &Path,
    stencil: &Stencil,
    objective: Objective<'_>,
    config: &SearchConfig,
) -> Result<SearchResult, SearchError> {
    let snap = checkpoint::read_snapshot(path)?;
    search_from_snapshot(snap, stencil, objective, config)
}

/// [`search_resume`] for a snapshot already in memory: validate it
/// against the live `(stencil, objective)` pair and continue the search
/// from its state. This is the entry point the planning mesh uses for
/// work units shipped over the wire in the `UOVCKPT1` format — the
/// snapshot arrives as bytes, is structurally re-validated exactly like a
/// file-based resume, and runs under the caller's budget.
///
/// # Errors
///
/// Everything [`search_resume`] reports except the file read itself.
pub fn search_from_snapshot(
    snap: Snapshot,
    stencil: &Stencil,
    objective: Objective<'_>,
    config: &SearchConfig,
) -> Result<SearchResult, SearchError> {
    let (domain_facts, setup) = validated_setup(stencil, &objective)?;
    let expected = checkpoint::fingerprint(stencil, &objective);
    if snap.fingerprint != expected {
        return Err(SearchError::Checkpoint(CheckpointError::StencilMismatch {
            expected,
            found: snap.fingerprint,
        }));
    }
    let seed = SeedState::from_snapshot(&objective, &setup, snap)?;
    config.budget.restore_nodes_charged(seed.nodes_charged);
    run_engines(
        stencil,
        &objective,
        config,
        &domain_facts,
        &setup,
        seed,
        None,
    )
}

/// Run one search *work unit*: start from `seed` (a wire-shipped
/// snapshot, or a fresh origin when `None`), run under `config`, and
/// return both the result and a snapshot of the final state — incumbent,
/// PATHSET table, and whatever frontier the budget left unexplored.
///
/// The returned snapshot upholds the same invariant as an on-disk
/// checkpoint: every discovered-but-not-fully-expanded path is in the
/// frontier (including an entry a worker had in hand when the budget cut
/// it short), so a coordinator can merge unit snapshots and re-dispatch
/// the leftovers without ever losing a subtree. An empty final frontier
/// means the unit ran to exhaustion.
///
/// # Errors
///
/// Everything [`search_from_snapshot`] reports. Budget exhaustion is not
/// an error — it shows up as `result.degradation` plus a non-empty
/// frontier in the snapshot.
pub fn search_unit(
    seed: Option<Snapshot>,
    stencil: &Stencil,
    objective: Objective<'_>,
    config: &SearchConfig,
) -> Result<(SearchResult, Snapshot), SearchError> {
    let (domain_facts, setup) = validated_setup(stencil, &objective)?;
    let expected = checkpoint::fingerprint(stencil, &objective);
    let seed_state = match seed {
        Some(snap) => {
            if snap.fingerprint != expected {
                return Err(SearchError::Checkpoint(CheckpointError::StencilMismatch {
                    expected,
                    found: snap.fingerprint,
                }));
            }
            let state = SeedState::from_snapshot(&objective, &setup, snap)?;
            config.budget.restore_nodes_charged(state.nodes_charged);
            state
        }
        None => SeedState::fresh(&setup),
    };
    let mut capture: Option<Snapshot> = None;
    let result = run_engines(
        stencil,
        &objective,
        config,
        &domain_facts,
        &setup,
        seed_state,
        Some(&mut capture),
    )?;
    let snap = capture.ok_or_else(|| {
        SearchError::Checkpoint(CheckpointError::Corrupt(
            "engine returned without capturing a final snapshot".to_string(),
        ))
    })?;
    Ok((result, snap))
}

/// Validate the problem and precompute the per-search constants.
fn validated_setup(
    stencil: &Stencil,
    objective: &Objective<'_>,
) -> Result<(Option<DomainFacts>, Setup), SearchError> {
    let domain_facts = match objective {
        Objective::KnownBounds(domain) => {
            if domain.dim() != stencil.dim() {
                return Err(SearchError::DimMismatch {
                    stencil: stencil.dim(),
                    domain: domain.dim(),
                });
            }
            Some(DomainFacts::try_new(*domain)?)
        }
        Objective::ShortestVector => None,
    };
    let m = stencil.len();
    if m > 63 {
        return Err(SearchError::TooManyVectors(m));
    }
    let phi = stencil.try_positive_functional()?;
    let initial = stencil.try_sum()?;
    let phi_norm_sq = phi.try_norm_sq()? as u128;
    // Hard exploration cap guaranteeing termination even when the
    // storage objective cannot discriminate (every candidate costs N).
    let phi_cap = 64 * phi.dot_i128(&initial).max(1);
    let initial_cost = try_cost_of(objective, &initial)?;
    let window = search_window(stencil, objective, phi_norm_sq, phi_cap, initial_cost);
    let setup = Setup {
        dim: stencil.dim(),
        full: (1u64 << m) - 1,
        phi_norm_sq,
        phi_cap,
        phi_v: stencil.iter().map(|v| phi.dot_i128(v)).collect(),
        window,
        phi,
        initial_cost,
        initial_norm: initial.try_norm_sq().unwrap_or(i128::MAX),
        initial,
    };
    Ok((domain_facts, setup))
}

/// Entry budget of the search's dense PATHSET window.
const SEARCH_WINDOW_ENTRIES: usize = 1 << 20;

/// Size the dense PATHSET window from the functional reachability bound.
///
/// Every queued offset is a sum of stencil vectors, each backward step
/// raises `φ·w` by at least 1, and surviving children satisfy
/// `(φ·w)² ≤ bound·|φ|²` (shortest-vector) or `φ·w ≤ phi_cap`
/// (known-bounds) — so the step count, and with it every coordinate, is
/// bounded. The window is purely a performance knob: offsets outside it
/// (degenerate domains, foreign resumed frontiers, near-overflow
/// coordinates) spill to the hash tier with identical semantics.
fn search_window(
    stencil: &Stencil,
    objective: &Objective<'_>,
    phi_norm_sq: u128,
    phi_cap: i128,
    initial_cost: u128,
) -> Window {
    let steps: i128 = match objective {
        Objective::ShortestVector => {
            let bound_sq = initial_cost
                .saturating_add(1)
                .saturating_mul(phi_norm_sq.max(1));
            isqrt(bound_sq).min(i128::MAX as u128) as i128 + 2
        }
        Objective::KnownBounds(_) => phi_cap,
    };
    let steps = steps.clamp(1, 1 << 20) as i64;
    let dim = stencil.dim();
    let mut lo = vec![0i64; dim];
    let mut hi = vec![0i64; dim];
    for v in stencil.iter() {
        for (k, &c) in v.as_slice().iter().enumerate() {
            if c > 0 {
                hi[k] = hi[k].max(c);
            } else {
                lo[k] = lo[k].min(c);
            }
        }
    }
    for k in 0..dim {
        hi[k] = hi[k].saturating_mul(steps);
        lo[k] = lo[k].saturating_mul(steps);
    }
    Window::from_bounds(&lo, &hi, SEARCH_WINDOW_ENTRIES)
}

/// Dispatch a seeded search to an engine, with panic isolation at the
/// engine boundary: a panicking node evaluation becomes
/// [`SearchError::WorkerPanic`], never an unwinding (or aborting) caller.
fn run_engines(
    stencil: &Stencil,
    objective: &Objective<'_>,
    config: &SearchConfig,
    domain_facts: &Option<DomainFacts>,
    setup: &Setup,
    seed: SeedState,
    capture: Option<&mut Option<Snapshot>>,
) -> Result<SearchResult, SearchError> {
    if config.threads <= 1 {
        // The sequential engine's state lives on this stack frame, so a
        // caught panic cannot leave a final checkpoint behind — the
        // latest interval snapshot (if any) remains valid for resume.
        catch_unwind(AssertUnwindSafe(|| {
            search_sequential(
                stencil,
                objective,
                config,
                domain_facts,
                setup,
                seed,
                capture,
            )
        }))
        .map_err(|payload| SearchError::WorkerPanic {
            worker: 0,
            payload: panic_message(payload.as_ref()),
        })
    } else {
        search_parallel(
            stencil,
            objective,
            config,
            domain_facts,
            setup,
            seed,
            capture,
        )
    }
}

/// A search starting state: either the origin seed of a fresh run or the
/// restored state of a snapshot. Both engines consume one of these, which
/// is what makes resume "just another search".
struct SeedState {
    /// PATHSET union per discovered offset.
    known: HashMap<IVec, u64>,
    /// Live queue entries `(cost, offset, pathset)`.
    frontier: Vec<(u128, IVec, u64)>,
    /// Incumbent under the canonical total order.
    incumbent: (u128, i128, IVec),
    /// Statistics carried over from before the interruption.
    base: SearchStats,
    /// Budget nodes already charged before the interruption.
    nodes_charged: u64,
}

impl SeedState {
    /// The fresh-start state: the origin with an empty PATHSET, and the
    /// always-legal initial UOV `Σvᵢ` as incumbent.
    fn fresh(setup: &Setup) -> Self {
        let origin = IVec::zero(setup.dim);
        let mut known = HashMap::new();
        known.insert(origin.clone(), 0);
        SeedState {
            known,
            frontier: vec![(0, origin, 0)],
            incumbent: (
                setup.initial_cost,
                setup.initial_norm,
                setup.initial.clone(),
            ),
            base: SearchStats {
                pushed: 1,
                complete: true,
                ..SearchStats::default()
            },
            nodes_charged: 0,
        }
    }

    /// Restore a snapshot, re-validating every structural invariant the
    /// engines rely on. CRCs catch accidental corruption; these checks
    /// catch semantic damage a CRC-valid file could still carry.
    fn from_snapshot(
        objective: &Objective<'_>,
        setup: &Setup,
        snap: Snapshot,
    ) -> Result<Self, SearchError> {
        fn corrupt(msg: &str) -> SearchError {
            SearchError::Checkpoint(CheckpointError::Corrupt(msg.to_string()))
        }
        if snap.dim != setup.dim {
            return Err(corrupt("snapshot dimension does not match the stencil"));
        }
        if snap.incumbent.dim() != setup.dim {
            return Err(corrupt("incumbent dimension mismatch"));
        }
        let recomputed = try_cost_of(objective, &snap.incumbent)
            .map_err(|_| corrupt("incumbent cost is not recomputable"))?;
        if recomputed != snap.incumbent_cost {
            return Err(corrupt("incumbent cost mismatch"));
        }
        let mut known = HashMap::with_capacity(snap.known.len());
        for (w, mask) in snap.known {
            if w.dim() != setup.dim {
                return Err(corrupt("PATHSET offset dimension mismatch"));
            }
            if mask & !setup.full != 0 {
                return Err(corrupt("PATHSET mask references nonexistent vectors"));
            }
            if known.insert(w, mask).is_some() {
                return Err(corrupt("duplicate PATHSET offset"));
            }
        }
        let mut frontier = Vec::with_capacity(snap.frontier.len());
        for (cost, w, mask) in snap.frontier {
            if w.dim() != setup.dim {
                return Err(corrupt("frontier offset dimension mismatch"));
            }
            if known.get(&w).copied() != Some(mask) {
                return Err(corrupt(
                    "frontier entry inconsistent with the PATHSET table",
                ));
            }
            let recomputed = try_cost_of(objective, &w)
                .map_err(|_| corrupt("frontier cost is not recomputable"))?;
            if recomputed != cost {
                return Err(corrupt("frontier cost mismatch"));
            }
            frontier.push((cost, w, mask));
        }
        let norm = snap.incumbent.try_norm_sq().unwrap_or(i128::MAX);
        let base = SearchStats {
            complete: true,
            ..snap.stats
        };
        Ok(SeedState {
            known,
            frontier,
            incumbent: (snap.incumbent_cost, norm, snap.incumbent),
            base,
            nodes_charged: snap.nodes_charged,
        })
    }
}

/// Validated per-search constants shared by the sequential and parallel
/// engines. The incumbent starts at the initial UOV `Σvᵢ`, legal from the
/// first moment (§3.2.1).
struct Setup {
    dim: usize,
    full: u64,
    phi: IVec,
    phi_norm_sq: u128,
    phi_cap: i128,
    /// `φ·vₖ` per stencil vector, so a child's functional value is one
    /// addition away from its parent's.
    phi_v: Vec<i128>,
    /// Dense window of the PATHSET node pool (see [`search_window`]).
    window: Window,
    initial: IVec,
    initial_cost: u128,
    initial_norm: i128,
}

/// Exact squared length of a coordinate slice; `None` on `i128` overflow.
/// The allocation-free twin of [`IVec::try_norm_sq`].
fn checked_norm_sq(w: &[i64]) -> Option<i128> {
    let mut acc: i128 = 0;
    for &c in w {
        let c = c as i128;
        acc = acc.checked_add(c.checked_mul(c)?)?;
    }
    Some(acc)
}

/// Child objective cost straight from scratch coordinates:
/// allocation-free for the shortest-vector objective; known-bounds
/// domains take an `IVec` view. `None` (overflow) discards the candidate
/// like a capped offset.
fn try_child_cost(objective: &Objective<'_>, w: &[i64]) -> Option<u128> {
    match objective {
        Objective::ShortestVector => checked_norm_sq(w).map(|n| n as u128),
        Objective::KnownBounds(domain) => try_storage_class_count(*domain, &IVec::from(w))
            .ok()
            .map(u128::from),
    }
}

/// The canonical candidate order: objective cost, then squared length,
/// then lexicographic. A *total* order over candidates, so the minimum of
/// any discovered set is independent of discovery order — this is what
/// makes the parallel search deterministic.
#[cfg(test)]
fn improves(cost: u128, w: &IVec, best: &(u128, i128, IVec)) -> bool {
    improves_slice(cost, w.as_slice(), best)
}

/// [`improves`] on scratch coordinates — no allocation on the hot path.
fn improves_slice(cost: u128, w: &[i64], best: &(u128, i128, IVec)) -> bool {
    use std::cmp::Ordering as O;
    match cost.cmp(&best.0) {
        O::Less => true,
        O::Greater => false,
        O::Equal => {
            let norm = checked_norm_sq(w).unwrap_or(i128::MAX);
            match norm.cmp(&best.1) {
                O::Less => true,
                O::Greater => false,
                O::Equal => w < best.2.as_slice(),
            }
        }
    }
}

/// Periodic snapshot writer shared by both engines' final writes and the
/// sequential engine's interval ticks.
struct CkptSink<'a> {
    cfg: &'a CheckpointConfig,
    fingerprint: u64,
    /// Fully-processed nodes since the last snapshot.
    since: u64,
    /// First write failure; checkpointing is disabled once set.
    error: Option<CheckpointError>,
}

impl CkptSink<'_> {
    fn write(&mut self, snap: &Snapshot) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = checkpoint::write_snapshot(&self.cfg.path, snap) {
            self.error = Some(e);
        }
    }
}

/// The single-threaded engine: one priority queue, one PATHSET map.
#[allow(clippy::too_many_arguments)]
fn search_sequential(
    stencil: &Stencil,
    objective: &Objective<'_>,
    config: &SearchConfig,
    domain_facts: &Option<DomainFacts>,
    setup: &Setup,
    seed: SeedState,
    capture: Option<&mut Option<Snapshot>>,
) -> SearchResult {
    let budget = &config.budget;
    // A gossiped bound tightens pruning but never replaces the incumbent:
    // only a witness vector can win, a scalar cannot.
    let hint = config.bound_hint.unwrap_or(u128::MAX);
    let mut best_key = seed.incumbent;
    let mut stats = seed.base;
    let mut degradation: Option<Degradation> = None;

    // The PATHSET node pool: dense cells over the reachability window,
    // hash spill outside it. The queue holds `Copy` `(cost, key, mask)`
    // triples; for in-window nodes the key orders like `lex w`, so heap
    // tie-breaks match the old vector-keyed behaviour for dense traffic.
    // An entry is re-pushed whenever its PATHSET grows (Visit step 2).
    let store = MaskTable::new(setup.window.clone());
    for (w, mask) in &seed.known {
        store.merge(w.as_slice(), *mask);
    }
    let mut heap: BinaryHeap<std::cmp::Reverse<(u128, u64, u64)>> =
        BinaryHeap::with_capacity(seed.frontier.len());
    for (cost, w, mask) in &seed.frontier {
        let key = match store.key_of(w.as_slice()) {
            Some(key) => key,
            None => store.merge(w.as_slice(), *mask).key,
        };
        heap.push(std::cmp::Reverse((*cost, key, *mask)));
    }

    let fingerprint = checkpoint::fingerprint(stencil, objective);
    let mut ckpt = config.checkpoint.as_ref().map(|cfg| CkptSink {
        cfg,
        fingerprint,
        since: 0,
        error: None,
    });
    // The entry popped but not fully expanded when the search stopped
    // early; preserved into the final snapshot so its subtree is never
    // lost across an interrupt/resume cycle (re-expansion is idempotent).
    let mut in_hand: Option<(u128, u64, u64)> = None;
    // Scratch coordinate buffers reused across every pop and child — the
    // hot loop allocates only when the incumbent improves.
    let mut wbuf: Vec<i64> = Vec::with_capacity(setup.dim);
    let mut cbuf: Vec<i64> = Vec::with_capacity(setup.dim);

    'search: while let Some(std::cmp::Reverse((cost, key, mask))) = heap.pop() {
        // Skip stale entries: a fresher push carries the grown PATHSET.
        if store.mask_of(key) != Some(mask) || !store.coords_of(key, &mut wbuf) {
            continue;
        }
        stats.visited += 1;
        if let Err(reason) = budget.charge() {
            stats.complete = false;
            degradation =
                Some(budget.degradation(reason, store.len(), best_key.2 == setup.initial));
            in_hand = Some((cost, key, mask));
            break;
        }
        if let Some(max) = config.max_visits {
            if stats.visited > max {
                stats.complete = false;
                degradation = Some(budget.degradation(
                    Exhausted::Nodes,
                    store.len(),
                    best_key.2 == setup.initial,
                ));
                in_hand = Some((cost, key, mask));
                break;
            }
        }

        // Candidate check (paper Visit step 3), with the canonical
        // tie-break so equal-cost candidates resolve deterministically.
        if mask == setup.full && improves_slice(cost, &wbuf, &best_key) {
            let norm = checked_norm_sq(&wbuf).unwrap_or(i128::MAX);
            best_key = (cost, norm, IVec::from(wbuf.as_slice()));
            stats.improvements += 1;
        }

        // Expand children along backward value dependences (Visit step 2).
        // One parent functional value serves every child: φ·(w+vₖ) =
        // φ·w + φ·vₖ.
        let phi_w = dot_slices(setup.phi.as_slice(), &wbuf);
        for (k, v) in stencil.iter().enumerate() {
            // A child beyond i64 range can never beat the in-range
            // incumbent; discard it like a capped offset.
            cbuf.clear();
            for (i, &c) in v.as_slice().iter().enumerate() {
                match wbuf[i].checked_add(c) {
                    Some(x) => cbuf.push(x),
                    None => break,
                }
            }
            if cbuf.len() != setup.dim {
                stats.capped += 1;
                continue;
            }
            let phi_child = phi_w + setup.phi_v[k];
            debug_assert!(phi_child > 0, "functional must grow along dependences");

            // Length lower bound for the child and all its descendants:
            // |u|² ≥ (φ·u)²/|φ|² ≥ (φ·child)²/|φ|² (floor division → sound).
            let len_sq_lb = (phi_child as u128 * phi_child as u128) / setup.phi_norm_sq;
            // Strict comparisons: a subtree that can still *tie* the
            // incumbent must survive to the lexicographic tie-break.
            let eff_bound = best_key.0.min(hint);
            let dominated = match domain_facts {
                None => len_sq_lb > eff_bound,
                Some(facts) => facts.dominated(len_sq_lb, eff_bound),
            };
            if dominated {
                stats.pruned += 1;
                continue;
            }
            if phi_child > setup.phi_cap {
                stats.capped += 1;
                continue;
            }

            let child_mask = mask | (1 << k);
            let prior = store.probe(&cbuf);
            if let Some(p) = prior {
                if p | child_mask == p {
                    continue; // this path adds nothing to the PATHSET
                }
            } else if let Err(reason) = budget.check_memo(store.len()) {
                stats.complete = false;
                degradation =
                    Some(budget.degradation(reason, store.len(), best_key.2 == setup.initial));
                // Mid-expansion stop: keep the parent in hand so the
                // unexpanded remainder of its subtree survives into the
                // snapshot.
                in_hand = Some((cost, key, mask));
                break 'search;
            }
            // Cost the child *before* touching the PATHSET table: the
            // only step that can panic (a user-supplied domain) runs
            // while the state is still consistent. A candidate whose
            // cost overflows is discarded, not fatal.
            let Some(child_cost) = try_child_cost(objective, &cbuf) else {
                stats.capped += 1;
                continue;
            };
            let out = store.merge(&cbuf, child_mask);
            if out.grew {
                heap.push(std::cmp::Reverse((child_cost, out.key, out.merged)));
                stats.pushed += 1;
            }
        }

        if let Some(sink) = ckpt.as_mut() {
            sink.since += 1;
            if sink.since >= sink.cfg.interval.max(1) && sink.error.is_none() {
                sink.since = 0;
                let snap = sequential_snapshot(
                    sink.fingerprint,
                    setup,
                    &store,
                    &heap,
                    None,
                    &best_key,
                    &stats,
                    budget,
                );
                sink.write(&snap);
            }
        }
    }

    // Final snapshot: always written when configured, so a completed (or
    // budget-stopped) run leaves a resumable file behind.
    let checkpoint_error = ckpt.and_then(|mut sink| {
        let snap = sequential_snapshot(
            sink.fingerprint,
            setup,
            &store,
            &heap,
            in_hand.as_ref(),
            &best_key,
            &stats,
            budget,
        );
        sink.write(&snap);
        sink.error
    });
    if let Some(slot) = capture {
        *slot = Some(sequential_snapshot(
            fingerprint,
            setup,
            &store,
            &heap,
            in_hand.as_ref(),
            &best_key,
            &stats,
            budget,
        ));
    }

    SearchResult {
        uov: best_key.2,
        cost: best_key.0,
        stats,
        degradation,
        checkpoint_error,
    }
}

/// Build a snapshot of the sequential engine's state. Stale heap entries
/// (superseded by a grown-PATHSET re-push) are filtered out, so each
/// offset appears at most once in the stored frontier. Keys decode back
/// to coordinate vectors here, at the engine boundary — the `UOVCKPT1`
/// wire format stays layout-independent.
#[allow(clippy::too_many_arguments)]
fn sequential_snapshot(
    fingerprint: u64,
    setup: &Setup,
    store: &MaskTable,
    heap: &BinaryHeap<std::cmp::Reverse<(u128, u64, u64)>>,
    in_hand: Option<&(u128, u64, u64)>,
    best_key: &(u128, i128, IVec),
    stats: &SearchStats,
    budget: &Budget,
) -> Snapshot {
    let mut coords = Vec::new();
    let mut frontier: Vec<(u128, IVec, u64)> = Vec::new();
    for std::cmp::Reverse((cost, key, mask)) in heap.iter() {
        if store.mask_of(*key) == Some(*mask) && store.coords_of(*key, &mut coords) {
            frontier.push((*cost, IVec::from(coords.as_slice()), *mask));
        }
    }
    if let Some(&(cost, key, mask)) = in_hand {
        if store.mask_of(key) == Some(mask) && store.coords_of(key, &mut coords) {
            frontier.push((cost, IVec::from(coords.as_slice()), mask));
        }
    }
    Snapshot {
        fingerprint,
        dim: setup.dim,
        incumbent_cost: best_key.0,
        incumbent: best_key.2.clone(),
        frontier,
        known: store.entries(),
        nodes_charged: budget.nodes_charged(),
        stats: stats.clone(),
        epoch: 0,
    }
}

/// Lock a mutex, recovering the data from a poisoned lock. Poisoning can
/// only arise from a panicking peer; every structure guarded here (masks,
/// heaps, the incumbent key) is valid after any prefix of updates, so
/// continuing is sound.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Saturate a candidate cost into the atomic bound cell. `u64::MAX` is the
/// "no finite bound" sentinel: pruning is skipped entirely rather than
/// pruning against a too-small saturated value (which would be unsound).
fn saturate_bound(cost: u128) -> u64 {
    u64::try_from(cost).unwrap_or(u64::MAX)
}

/// A worker's priority queue: min-heap over `Copy` `(cost, node key,
/// pathset)` triples — node coordinates live in the shared
/// [`MaskTable`], not in the queue.
type WorkQueue = BinaryHeap<std::cmp::Reverse<(u128, u64, u64)>>;

/// Barrier bookkeeping for quiescent parallel snapshots.
struct CkptBarrier {
    /// Workers still running (not yet retired).
    live: usize,
    /// Workers currently parked at the barrier.
    parked: usize,
    /// Bumped when a barrier completes; parked workers wait for it.
    epoch: u64,
}

/// Checkpoint plumbing of the parallel engine.
struct ParCkpt<'a> {
    cfg: &'a CheckpointConfig,
    fingerprint: u64,
    /// Fully-processed nodes since the last snapshot request.
    since: AtomicU64,
    /// A snapshot has been requested; workers park at their next loop
    /// head. Set outside the barrier lock, cleared only under it.
    requested: AtomicBool,
    /// A write failed; checkpointing is disabled from then on.
    failed: AtomicBool,
    /// The first write failure, reported in the result.
    error: Mutex<Option<CheckpointError>>,
    state: Mutex<CkptBarrier>,
    cv: Condvar,
}

/// Shared state of the parallel branch-and-bound.
struct ParSearch<'a> {
    stencil: &'a Stencil,
    objective: &'a Objective<'a>,
    domain_facts: &'a Option<DomainFacts>,
    setup: &'a Setup,
    budget: &'a Budget,
    max_visits: Option<u64>,

    /// One work queue per worker; idle workers steal from peers.
    queues: Vec<Mutex<WorkQueue>>,
    /// The shared PATHSET node pool: dense cells over the reachability
    /// window, hash spill outside it. Its length is the memo-cap measure.
    store: MaskTable,
    /// Queue entries not yet fully processed; 0 ⟺ the search is drained.
    pending: AtomicU64,
    /// Global visit counter for `max_visits`.
    visited: AtomicU64,
    /// Raised on budget exhaustion; workers stop at the next loop head.
    stop: AtomicBool,
    /// First exhaustion reason wins (the recorded degradation cause).
    stop_reason: Mutex<Option<Exhausted>>,
    /// Exact incumbent under the canonical total order.
    incumbent: Mutex<(u128, i128, IVec)>,
    /// Saturated incumbent cost for lock-free pruning: always ≥ the true
    /// best cost, so pruning against it is sound.
    bound: AtomicU64,
    /// Saturated external bound hint ([`SearchConfig::bound_hint`]);
    /// `u64::MAX` means "no hint". Tightens pruning alongside `bound`
    /// but never touches the incumbent.
    hint: u64,
    /// Per-worker slot for the entry popped but not yet fully expanded.
    /// Early-stopping paths (budget, panic, memo cap) leave the entry
    /// here so snapshots never lose its subtree.
    in_hand: Vec<Mutex<Option<(u128, u64, u64)>>>,
    /// Statistics carried over from a resumed snapshot; mid-run snapshot
    /// counters build on these.
    stats_base: SearchStats,
    /// Checkpoint plumbing; `None` disables snapshots entirely.
    ckpt: Option<ParCkpt<'a>>,
    /// First worker panic `(worker, payload)`; set before `stop`.
    panic_slot: Mutex<Option<(usize, String)>>,
}

impl ParSearch<'_> {
    fn record_stop(&self, reason: Exhausted) {
        let mut slot = lock_unpoisoned(&self.stop_reason);
        if slot.is_none() {
            *slot = Some(reason);
        }
        self.stop.store(true, Ordering::Release);
    }

    /// Offer a UOV candidate to the shared incumbent; true if it improved.
    fn offer(&self, cost: u128, w: &[i64]) -> bool {
        let mut inc = lock_unpoisoned(&self.incumbent);
        if improves_slice(cost, w, &inc) {
            let norm = checked_norm_sq(w).unwrap_or(i128::MAX);
            *inc = (cost, norm, IVec::from(w));
            self.bound.store(saturate_bound(cost), Ordering::Release);
            true
        } else {
            false
        }
    }

    /// Whether a child with descendant-cost lower bound from `len_sq_lb`
    /// is provably worse than the shared incumbent (strictly — ties
    /// survive to the deterministic tie-break).
    fn child_dominated(&self, len_sq_lb: u128) -> bool {
        let bound = self.bound.load(Ordering::Acquire).min(self.hint);
        if bound == u64::MAX {
            return false; // bound not representable: prune nothing (sound)
        }
        match self.domain_facts {
            None => len_sq_lb > bound as u128,
            Some(facts) => facts.dominated(len_sq_lb, bound as u128),
        }
    }

    /// Pop from the worker's own queue, else steal the best entry from a
    /// peer (scanning round-robin from the worker's successor).
    fn pop_or_steal(&self, id: usize) -> Option<(u128, u64, u64)> {
        let n = self.queues.len();
        for i in 0..n {
            let std::cmp::Reverse(item) = {
                let mut q = lock_unpoisoned(&self.queues[(id + i) % n]);
                match q.pop() {
                    Some(entry) => entry,
                    None => continue,
                }
            };
            return Some(item);
        }
        None
    }

    /// Expand one offset's children (paper Visit step 2) into the
    /// worker's own queue. Returns `false` if the expansion was cut
    /// short (memo cap) — the caller then keeps the parent in hand.
    fn expand(
        &self,
        id: usize,
        w: &[i64],
        mask: u64,
        cbuf: &mut Vec<i64>,
        stats: &mut SearchStats,
    ) -> bool {
        // One parent functional value serves every child:
        // φ·(w+vₖ) = φ·w + φ·vₖ.
        let phi_w = dot_slices(self.setup.phi.as_slice(), w);
        for (k, v) in self.stencil.iter().enumerate() {
            cbuf.clear();
            for (i, &c) in v.as_slice().iter().enumerate() {
                match w[i].checked_add(c) {
                    Some(x) => cbuf.push(x),
                    None => break,
                }
            }
            if cbuf.len() != self.setup.dim {
                stats.capped += 1;
                continue;
            }
            let phi_child = phi_w + self.setup.phi_v[k];
            debug_assert!(phi_child > 0, "functional must grow along dependences");
            let len_sq_lb = (phi_child as u128 * phi_child as u128) / self.setup.phi_norm_sq;
            if self.child_dominated(len_sq_lb) {
                stats.pruned += 1;
                continue;
            }
            if phi_child > self.setup.phi_cap {
                stats.capped += 1;
                continue;
            }
            let child_mask = mask | (1 << k);
            let prior = self.store.probe(cbuf);
            if let Some(p) = prior {
                if p | child_mask == p {
                    continue; // this path adds nothing to the PATHSET
                }
            } else {
                // Racing workers may each admit one entry past the cap —
                // the documented per-worker memo overshoot.
                if let Err(reason) = self.budget.check_memo(self.store.len()) {
                    self.record_stop(reason);
                    return false;
                }
            }
            // Cost the child *before* touching the PATHSET table: the
            // only step that can panic (a user-supplied domain) runs
            // while the shared state is still consistent, so a caught
            // panic can never leave a merged-but-never-queued offset
            // behind (which a snapshot would then silently drop).
            let Some(child_cost) = try_child_cost(self.objective, cbuf) else {
                stats.capped += 1;
                continue;
            };
            let out = self.store.merge(cbuf, child_mask);
            if out.grew {
                // Increment `pending` *before* the push so the drain test
                // (`pending == 0`) can never observe a false empty.
                self.pending.fetch_add(1, Ordering::Release);
                lock_unpoisoned(&self.queues[id])
                    .push(std::cmp::Reverse((child_cost, out.key, out.merged)));
                stats.pushed += 1;
            }
        }
        true
    }

    /// Record the first worker panic and stop the pool. The payload is
    /// stringified here; the original is not resumable (the worker that
    /// caught it returns normally).
    fn note_panic(&self, worker: usize, payload: &(dyn std::any::Any + Send)) {
        let mut slot = lock_unpoisoned(&self.panic_slot);
        if slot.is_none() {
            *slot = Some((worker, panic_message(payload)));
        }
        self.stop.store(true, Ordering::Release);
    }

    /// Count one fully-processed node towards the checkpoint interval,
    /// requesting a barrier snapshot when it elapses.
    fn note_progress(&self) {
        let Some(ck) = &self.ckpt else { return };
        if ck.failed.load(Ordering::Relaxed) {
            return;
        }
        let n = ck.since.fetch_add(1, Ordering::Relaxed) + 1;
        if n < ck.cfg.interval.max(1) {
            return;
        }
        ck.since.store(0, Ordering::Relaxed);
        ck.requested.store(true, Ordering::Release);
    }

    /// Park at the snapshot barrier if one is requested. The last worker
    /// to arrive writes the snapshot while every live peer is quiescent
    /// (no entry mid-expansion), then releases the barrier.
    fn park_for_checkpoint(&self) {
        let Some(ck) = &self.ckpt else { return };
        if !ck.requested.load(Ordering::Acquire) {
            return;
        }
        let mut st = lock_unpoisoned(&ck.state);
        // Re-check under the lock: the barrier may have completed (and
        // `requested` been cleared) while we waited for it.
        if !ck.requested.load(Ordering::Acquire) {
            return;
        }
        st.parked += 1;
        if st.parked == st.live {
            self.complete_barrier(ck, &mut st);
        } else {
            let epoch = st.epoch;
            while st.epoch == epoch {
                st = match ck.cv.wait(st) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        }
    }

    /// Write the snapshot and release the barrier. Caller holds the
    /// barrier lock; all live workers except the caller are parked and
    /// retired workers' in-hand slots are frozen, so the shared state is
    /// quiescent.
    fn complete_barrier(&self, ck: &ParCkpt<'_>, st: &mut CkptBarrier) {
        if !ck.failed.load(Ordering::Relaxed) {
            let stats = SearchStats {
                visited: self.visited.load(Ordering::Relaxed),
                ..self.stats_base.clone()
            };
            let snap = self.build_snapshot(ck.fingerprint, &stats);
            if let Err(e) = checkpoint::write_snapshot(&ck.cfg.path, &snap) {
                ck.failed.store(true, Ordering::Relaxed);
                let mut slot = lock_unpoisoned(&ck.error);
                if slot.is_none() {
                    *slot = Some(e);
                }
            }
        }
        st.parked = 0;
        st.epoch += 1;
        ck.requested.store(false, Ordering::Release);
        ck.cv.notify_all();
    }

    /// A worker is exiting (drained, stopped, or panicked). If a barrier
    /// is pending and this was the last straggler, complete it on behalf
    /// of the parked peers so they can observe the stop/drain condition.
    fn retire(&self) {
        let Some(ck) = &self.ckpt else { return };
        let mut st = lock_unpoisoned(&ck.state);
        // Invariant: a worker is either parked or running, and only a
        // running worker retires, so `parked ≤ live - 1` here.
        st.live -= 1;
        if st.live == 0 {
            // Pool is gone; the final snapshot is written by the
            // coordinating thread after the join.
            ck.requested.store(false, Ordering::Release);
            st.epoch += 1;
            ck.cv.notify_all();
        } else if ck.requested.load(Ordering::Acquire) && st.parked == st.live {
            self.complete_barrier(ck, &mut st);
        }
    }

    /// Collect the full live state into a snapshot. Sound only when the
    /// state is quiescent: at a completed barrier or after the pool has
    /// been joined. Keys decode back to coordinate vectors here, at the
    /// engine boundary — the `UOVCKPT1` wire format stays
    /// layout-independent.
    fn build_snapshot(&self, fingerprint: u64, stats: &SearchStats) -> Snapshot {
        let mut coords = Vec::new();
        let mut frontier: Vec<(u128, IVec, u64)> = Vec::new();
        for queue in &self.queues {
            let guard = lock_unpoisoned(queue);
            for std::cmp::Reverse((cost, key, mask)) in guard.iter() {
                if self.store.mask_of(*key) == Some(*mask)
                    && self.store.coords_of(*key, &mut coords)
                {
                    frontier.push((*cost, IVec::from(coords.as_slice()), *mask));
                }
            }
        }
        for slot in &self.in_hand {
            if let Some((cost, key, mask)) = *lock_unpoisoned(slot) {
                if self.store.mask_of(key) == Some(mask) && self.store.coords_of(key, &mut coords) {
                    frontier.push((cost, IVec::from(coords.as_slice()), mask));
                }
            }
        }
        let (incumbent_cost, _, incumbent) = lock_unpoisoned(&self.incumbent).clone();
        Snapshot {
            fingerprint,
            dim: self.setup.dim,
            incumbent_cost,
            incumbent,
            frontier,
            known: self.store.entries(),
            nodes_charged: self.budget.nodes_charged(),
            stats: stats.clone(),
            epoch: 0,
        }
    }

    /// One worker's main loop. Returns its local statistics.
    fn worker(&self, id: usize) -> SearchStats {
        let mut stats = SearchStats::default();
        let mut idle_spins = 0u32;
        // Scratch coordinate buffers reused across every pop and child.
        let mut wbuf: Vec<i64> = Vec::with_capacity(self.setup.dim);
        let mut cbuf: Vec<i64> = Vec::with_capacity(self.setup.dim);
        loop {
            if self.stop.load(Ordering::Acquire) {
                break;
            }
            self.park_for_checkpoint();
            let Some((cost, key, mask)) = self.pop_or_steal(id) else {
                if self.pending.load(Ordering::Acquire) == 0 {
                    break; // globally drained: every worker exits
                }
                // A peer is still expanding; its children may arrive.
                idle_spins += 1;
                if idle_spins > 64 {
                    std::thread::sleep(std::time::Duration::from_micros(50));
                } else {
                    std::thread::yield_now();
                }
                continue;
            };
            idle_spins = 0;
            // Skip stale entries: a fresher push carries the grown PATHSET.
            if self.store.mask_of(key) != Some(mask) || !self.store.coords_of(key, &mut wbuf) {
                self.pending.fetch_sub(1, Ordering::Release);
                continue;
            }
            stats.visited += 1;
            // Hold the entry while it is being processed: if this worker
            // stops (budget) or dies (panic) mid-node, the snapshot still
            // carries the entry and no subtree is lost. `pending` is then
            // deliberately *not* decremented — the `stop` flag, not the
            // drain test, terminates the pool on those paths.
            *lock_unpoisoned(&self.in_hand[id]) = Some((cost, key, mask));
            if let Err(reason) = self.budget.charge() {
                self.record_stop(reason);
                break;
            }
            let seen = self.visited.fetch_add(1, Ordering::Relaxed) + 1;
            if self.max_visits.is_some_and(|max| seen > max) {
                self.record_stop(Exhausted::Nodes);
                break;
            }
            if mask == self.setup.full && self.offer(cost, &wbuf) {
                stats.improvements += 1;
            }
            if !self.expand(id, &wbuf, mask, &mut cbuf, &mut stats) {
                break; // memo cap mid-expansion: keep the entry in hand
            }
            *lock_unpoisoned(&self.in_hand[id]) = None;
            self.pending.fetch_sub(1, Ordering::Release);
            self.note_progress();
        }
        stats
    }
}

/// The multi-threaded engine: `threads` work-stealing workers over shared
/// state. See the module docs for the determinism argument.
///
/// Worker bodies run under `catch_unwind`: a panic stops the pool, lets
/// the survivors drain, still writes the final checkpoint, and surfaces
/// as `Err(SearchError::WorkerPanic)`.
#[allow(clippy::too_many_arguments)]
fn search_parallel(
    stencil: &Stencil,
    objective: &Objective<'_>,
    config: &SearchConfig,
    domain_facts: &Option<DomainFacts>,
    setup: &Setup,
    seed: SeedState,
    capture: Option<&mut Option<Snapshot>>,
) -> Result<SearchResult, SearchError> {
    let threads = config.threads.max(2);
    let fingerprint = checkpoint::fingerprint(stencil, objective);
    let ckpt = config.checkpoint.as_ref().map(|cfg| ParCkpt {
        cfg,
        fingerprint,
        since: AtomicU64::new(0),
        requested: AtomicBool::new(false),
        failed: AtomicBool::new(false),
        error: Mutex::new(None),
        state: Mutex::new(CkptBarrier {
            live: threads,
            parked: 0,
            epoch: 0,
        }),
        cv: Condvar::new(),
    });
    let par = ParSearch {
        stencil,
        objective,
        domain_facts,
        setup,
        budget: &config.budget,
        max_visits: config.max_visits,
        queues: (0..threads).map(|_| Mutex::default()).collect(),
        store: MaskTable::new(setup.window.clone()),
        pending: AtomicU64::new(seed.frontier.len() as u64),
        visited: AtomicU64::new(seed.base.visited),
        stop: AtomicBool::new(false),
        stop_reason: Mutex::new(None),
        bound: AtomicU64::new(saturate_bound(seed.incumbent.0)),
        hint: config.bound_hint.map_or(u64::MAX, saturate_bound),
        incumbent: Mutex::new(seed.incumbent),
        in_hand: (0..threads).map(|_| Mutex::new(None)).collect(),
        stats_base: seed.base.clone(),
        ckpt,
        panic_slot: Mutex::new(None),
    };

    // Seed the PATHSET table and distribute the frontier round-robin —
    // for a fresh search this is exactly the sequential origin seeding.
    for (w, mask) in &seed.known {
        par.store.merge(w.as_slice(), *mask);
    }
    for (i, (cost, w, mask)) in seed.frontier.iter().enumerate() {
        let key = match par.store.key_of(w.as_slice()) {
            Some(key) => key,
            None => par.store.merge(w.as_slice(), *mask).key,
        };
        lock_unpoisoned(&par.queues[i % threads]).push(std::cmp::Reverse((*cost, key, *mask)));
    }

    let worker_stats: Vec<SearchStats> = std::thread::scope(|scope| {
        let par = &par;
        let handles: Vec<_> = (0..threads)
            .map(|id| {
                scope.spawn(move || {
                    let outcome = catch_unwind(AssertUnwindSafe(|| par.worker(id)));
                    let stats = match outcome {
                        Ok(stats) => stats,
                        Err(payload) => {
                            par.note_panic(id, payload.as_ref());
                            SearchStats::default()
                        }
                    };
                    par.retire();
                    stats
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_default())
            .collect()
    });

    let mut stats = seed.base;
    for ws in &worker_stats {
        stats.visited += ws.visited;
        stats.pushed += ws.pushed;
        stats.improvements += ws.improvements;
        stats.pruned += ws.pruned;
        stats.capped += ws.capped;
    }
    let stop_reason = lock_unpoisoned(&par.stop_reason).take();
    let (best_cost, _, best) = lock_unpoisoned(&par.incumbent).clone();
    let degradation = stop_reason.map(|reason| {
        stats.complete = false;
        config
            .budget
            .degradation(reason, par.store.len(), best == setup.initial)
    });

    // Final snapshot: the pool is joined, so the state is quiescent and
    // includes every in-hand entry of early-stopped or panicked workers.
    let mut checkpoint_error = None;
    if let Some(ck) = &par.ckpt {
        checkpoint_error = lock_unpoisoned(&ck.error).take();
        if checkpoint_error.is_none() {
            let snap = par.build_snapshot(ck.fingerprint, &stats);
            if let Err(e) = checkpoint::write_snapshot(&ck.cfg.path, &snap) {
                checkpoint_error = Some(e);
            }
        }
    }
    if let Some(slot) = capture {
        *slot = Some(par.build_snapshot(fingerprint, &stats));
    }

    if let Some((worker, payload)) = lock_unpoisoned(&par.panic_slot).take() {
        return Err(SearchError::WorkerPanic { worker, payload });
    }

    Ok(SearchResult {
        uov: best,
        cost: best_cost,
        stats,
        degradation,
        checkpoint_error,
    })
}

/// Exhaustively enumerate every UOV with components in `[-radius, radius]`
/// and return the cheapest (ties broken by squared length, then
/// lexicographically). Cross-validation reference for [`find_best_uov`].
///
/// Returns `None` if no UOV lies within the box (radius too small).
pub fn exhaustive_best_uov(
    stencil: &Stencil,
    objective: Objective<'_>,
    radius: i64,
) -> Option<SearchResult> {
    let oracle = crate::DoneOracle::new(stencil);
    let mut best: Option<(u128, i128, IVec)> = None;
    for w in oracle.uovs_within(radius) {
        let key = (cost_of(&objective, &w), w.norm_sq(), w);
        if best.as_ref().map(|b| key < *b).unwrap_or(true) {
            best = Some(key);
        }
    }
    best.map(|(cost, _, uov)| SearchResult {
        uov,
        cost,
        stats: SearchStats {
            complete: true,
            ..SearchStats::default()
        },
        degradation: None,
        checkpoint_error: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use uov_isg::{ivec, Polygon2, RectDomain};

    fn fig1() -> Stencil {
        Stencil::new(vec![ivec![1, 0], ivec![0, 1], ivec![1, 1]]).unwrap()
    }

    fn stencil5() -> Stencil {
        Stencil::new(vec![
            ivec![1, -2],
            ivec![1, -1],
            ivec![1, 0],
            ivec![1, 1],
            ivec![1, 2],
        ])
        .unwrap()
    }

    #[test]
    fn initial_uov_is_always_universal() {
        for s in [fig1(), stencil5()] {
            let oracle = crate::DoneOracle::new(&s);
            assert!(oracle.is_uov(&initial_uov(&s)));
        }
    }

    #[test]
    fn fig1_best_uov_is_1_1() {
        let best =
            find_best_uov(&fig1(), Objective::ShortestVector, &SearchConfig::default()).unwrap();
        assert_eq!(best.uov, ivec![1, 1]);
        assert_eq!(best.cost, 2);
        assert!(best.stats.complete);
        assert!(best.degradation.is_none());
        assert!(best.stats.improvements >= 1);
    }

    #[test]
    fn stencil5_best_uov_is_2_0() {
        let best = find_best_uov(
            &stencil5(),
            Objective::ShortestVector,
            &SearchConfig::default(),
        )
        .unwrap();
        assert_eq!(best.uov, ivec![2, 0]);
        assert_eq!(best.cost, 4);
        assert!(best.stats.complete);
    }

    #[test]
    fn result_is_always_a_uov() {
        for s in [
            fig1(),
            stencil5(),
            Stencil::new(vec![ivec![2, 1], ivec![1, 3]]).unwrap(),
            Stencil::new(vec![ivec![1, -1], ivec![1, 1], ivec![2, 0]]).unwrap(),
            Stencil::new(vec![ivec![0, 1], ivec![1, -3]]).unwrap(),
        ] {
            let oracle = crate::DoneOracle::new(&s);
            let best =
                find_best_uov(&s, Objective::ShortestVector, &SearchConfig::default()).unwrap();
            assert!(
                oracle.is_uov(&best.uov),
                "search returned non-UOV {}",
                best.uov
            );
        }
    }

    #[test]
    fn matches_exhaustive_shortest() {
        for s in [
            fig1(),
            stencil5(),
            Stencil::new(vec![ivec![2, 1], ivec![1, 3]]).unwrap(),
            Stencil::new(vec![ivec![1, -1], ivec![1, 1]]).unwrap(),
            Stencil::new(vec![ivec![1], ivec![2]]).unwrap(),
            Stencil::new(vec![ivec![1, 0, 0], ivec![0, 1, 0], ivec![0, 0, 1]]).unwrap(),
        ] {
            let bb =
                find_best_uov(&s, Objective::ShortestVector, &SearchConfig::default()).unwrap();
            let ex =
                exhaustive_best_uov(&s, Objective::ShortestVector, 8).expect("radius large enough");
            assert_eq!(bb.cost, ex.cost, "cost mismatch for {s:?}");
        }
    }

    #[test]
    fn known_bounds_fig3_prefers_longer_vector() {
        // The crux of Figure 3: with the skewed ISG, the storage-minimal
        // UOV can differ from the shortest one.
        let s = Stencil::new(vec![ivec![1, -1], ivec![1, 0], ivec![1, 1], ivec![0, 1]]).unwrap();
        let isg = Polygon2::fig3_isg();
        let shortest =
            find_best_uov(&s, Objective::ShortestVector, &SearchConfig::default()).unwrap();
        let storage =
            find_best_uov(&s, Objective::KnownBounds(&isg), &SearchConfig::default()).unwrap();
        let oracle = crate::DoneOracle::new(&s);
        assert!(oracle.is_uov(&storage.uov));
        // The storage-optimal choice is at least as good on storage.
        let shortest_storage = crate::objective::storage_class_count(&isg, &shortest.uov) as u128;
        assert!(storage.cost <= shortest_storage);
    }

    #[test]
    fn known_bounds_matches_exhaustive() {
        let grid = RectDomain::grid(6, 9);
        for s in [fig1(), stencil5()] {
            let bb =
                find_best_uov(&s, Objective::KnownBounds(&grid), &SearchConfig::default()).unwrap();
            let ex = exhaustive_best_uov(&s, Objective::KnownBounds(&grid), 8).unwrap();
            assert_eq!(bb.cost, ex.cost, "storage cost mismatch for {s:?}");
            assert_eq!(bb.stats.capped, 0);
        }
    }

    #[test]
    fn known_bounds_terminates_on_degenerate_domain() {
        // A single-point domain: every candidate costs 1; the hard cap must
        // stop the search.
        let dom = RectDomain::new(ivec![0, 0], ivec![0, 0]);
        let res = find_best_uov(
            &fig1(),
            Objective::KnownBounds(&dom),
            &SearchConfig::default(),
        )
        .unwrap();
        assert_eq!(res.cost, 1);
        let oracle = crate::DoneOracle::new(&fig1());
        assert!(oracle.is_uov(&res.uov));
    }

    #[test]
    fn dim_mismatch_is_an_error() {
        let dom = RectDomain::grid(4, 4);
        let s = Stencil::new(vec![ivec![1, 0, 0], ivec![0, 1, 0], ivec![0, 0, 1]]).unwrap();
        let err =
            find_best_uov(&s, Objective::KnownBounds(&dom), &SearchConfig::default()).unwrap_err();
        assert!(matches!(
            err,
            SearchError::DimMismatch {
                stencil: 3,
                domain: 2
            }
        ));
    }

    #[test]
    fn max_visits_truncates_but_stays_legal() {
        let s = stencil5();
        let oracle = crate::DoneOracle::new(&s);
        let res = find_best_uov(
            &s,
            Objective::ShortestVector,
            &SearchConfig {
                max_visits: Some(1),
                ..SearchConfig::default()
            },
        )
        .unwrap();
        assert!(!res.stats.complete);
        assert!(
            oracle.is_uov(&res.uov),
            "even a truncated search must return a UOV"
        );
        assert_eq!(res.uov, initial_uov(&s));
        let d = res
            .degradation
            .expect("truncated search must record degradation");
        assert_eq!(d.reason, Exhausted::Nodes);
        assert!(d.fell_back_to_initial);
    }

    #[test]
    fn node_budget_truncates_with_degradation() {
        let s = stencil5();
        let oracle = crate::DoneOracle::new(&s);
        let config = SearchConfig {
            max_visits: None,
            threads: 1,
            budget: Budget::unlimited().with_max_nodes(2),
            checkpoint: None,
            bound_hint: None,
        };
        let res = find_best_uov(&s, Objective::ShortestVector, &config).unwrap();
        assert!(!res.stats.complete);
        assert!(oracle.is_uov(&res.uov));
        let d = res
            .degradation
            .expect("budget truncation must record degradation");
        assert_eq!(d.reason, Exhausted::Nodes);
        assert!(d.nodes_at_stop >= 2);
    }

    #[test]
    fn deadline_budget_truncates_with_degradation() {
        let s = stencil5();
        let oracle = crate::DoneOracle::new(&s);
        let config = SearchConfig {
            max_visits: None,
            threads: 1,
            budget: Budget::unlimited().with_deadline(std::time::Duration::ZERO),
            checkpoint: None,
            bound_hint: None,
        };
        let res = find_best_uov(&s, Objective::ShortestVector, &config).unwrap();
        assert!(!res.stats.complete);
        assert!(oracle.is_uov(&res.uov));
        let d = res
            .degradation
            .expect("expired deadline must record degradation");
        assert_eq!(d.reason, Exhausted::Deadline);
        assert!(d.fell_back_to_initial);
        assert_eq!(res.uov, initial_uov(&s));
    }

    #[test]
    fn cancellation_token_truncates_with_degradation() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let s = stencil5();
        let oracle = crate::DoneOracle::new(&s);
        let token = Arc::new(AtomicBool::new(true));
        token.store(true, Ordering::Relaxed);
        let config = SearchConfig {
            max_visits: None,
            threads: 1,
            budget: Budget::unlimited().with_cancel_token(token),
            checkpoint: None,
            bound_hint: None,
        };
        let res = find_best_uov(&s, Objective::ShortestVector, &config).unwrap();
        assert!(!res.stats.complete);
        assert!(oracle.is_uov(&res.uov));
        let d = res
            .degradation
            .expect("cancelled search must record degradation");
        assert_eq!(d.reason, Exhausted::Cancelled);
    }

    #[test]
    fn memo_budget_truncates_with_degradation() {
        let s = stencil5();
        let oracle = crate::DoneOracle::new(&s);
        let config = SearchConfig {
            max_visits: None,
            threads: 1,
            budget: Budget::unlimited().with_max_memo_entries(2),
            checkpoint: None,
            bound_hint: None,
        };
        let res = find_best_uov(&s, Objective::ShortestVector, &config).unwrap();
        assert!(!res.stats.complete);
        assert!(oracle.is_uov(&res.uov));
        let d = res.degradation.expect("memo cap must record degradation");
        assert_eq!(d.reason, Exhausted::Memo);
        assert!(d.memo_entries_at_stop >= 2);
    }

    #[test]
    fn generous_budget_still_finds_optimum() {
        let config = SearchConfig {
            max_visits: None,
            threads: 1,
            budget: Budget::unlimited()
                .with_max_nodes(1_000_000)
                .with_deadline(std::time::Duration::from_secs(60)),
            checkpoint: None,
            bound_hint: None,
        };
        let best = find_best_uov(&stencil5(), Objective::ShortestVector, &config).unwrap();
        assert_eq!(best.uov, ivec![2, 0]);
        assert!(best.stats.complete);
        assert!(best.degradation.is_none());
    }

    #[test]
    fn stats_are_populated() {
        let res =
            find_best_uov(&fig1(), Objective::ShortestVector, &SearchConfig::default()).unwrap();
        assert!(res.stats.visited > 0);
        assert!(res.stats.pushed > 0);
        assert!(res.stats.pruned > 0);
    }

    #[test]
    fn isqrt_exactness() {
        for n in 0u128..2000 {
            let r = isqrt(n);
            assert!(r * r <= n && (r + 1) * (r + 1) > n, "isqrt({n}) = {r}");
        }
        assert_eq!(isqrt(u128::from(u64::MAX)), 4294967295);
    }

    fn with_threads(threads: usize) -> SearchConfig {
        SearchConfig {
            threads,
            ..SearchConfig::default()
        }
    }

    #[test]
    fn parallel_matches_sequential_on_known_optima() {
        for threads in [2, 4, 8] {
            let best =
                find_best_uov(&fig1(), Objective::ShortestVector, &with_threads(threads)).unwrap();
            assert_eq!(best.uov, ivec![1, 1], "threads={threads}");
            assert_eq!(best.cost, 2);
            assert!(best.stats.complete);
            assert!(best.degradation.is_none());

            let best = find_best_uov(
                &stencil5(),
                Objective::ShortestVector,
                &with_threads(threads),
            )
            .unwrap();
            assert_eq!(best.uov, ivec![2, 0], "threads={threads}");
            assert_eq!(best.cost, 4);
        }
    }

    #[test]
    fn parallel_matches_sequential_uov_and_cost_exactly() {
        let stencils = [
            fig1(),
            stencil5(),
            Stencil::new(vec![ivec![2, 1], ivec![1, 3]]).unwrap(),
            Stencil::new(vec![ivec![1, -1], ivec![1, 1], ivec![2, 0]]).unwrap(),
            Stencil::new(vec![ivec![0, 1], ivec![1, -3]]).unwrap(),
            Stencil::new(vec![ivec![1, 0, 0], ivec![0, 1, 0], ivec![0, 0, 1]]).unwrap(),
        ];
        for s in &stencils {
            let seq = find_best_uov(s, Objective::ShortestVector, &with_threads(1)).unwrap();
            for threads in [2, 3, 8] {
                let par =
                    find_best_uov(s, Objective::ShortestVector, &with_threads(threads)).unwrap();
                assert_eq!(par.uov, seq.uov, "UOV diverged at threads={threads}");
                assert_eq!(par.cost, seq.cost, "cost diverged at threads={threads}");
            }
        }
    }

    #[test]
    fn parallel_known_bounds_matches_sequential() {
        let grid = RectDomain::grid(6, 9);
        for s in [fig1(), stencil5()] {
            let seq = find_best_uov(&s, Objective::KnownBounds(&grid), &with_threads(1)).unwrap();
            let par = find_best_uov(&s, Objective::KnownBounds(&grid), &with_threads(4)).unwrap();
            assert_eq!(par.uov, seq.uov);
            assert_eq!(par.cost, seq.cost);
        }
    }

    #[test]
    fn parallel_search_repeats_deterministically() {
        // Many repetitions under the OS scheduler: every completed run of
        // the parallel engine must return the identical (uov, cost).
        let s = stencil5();
        let reference = find_best_uov(&s, Objective::ShortestVector, &with_threads(1)).unwrap();
        for round in 0..20 {
            let par = find_best_uov(&s, Objective::ShortestVector, &with_threads(4)).unwrap();
            assert_eq!(par.uov, reference.uov, "round {round}");
            assert_eq!(par.cost, reference.cost, "round {round}");
        }
    }

    #[test]
    fn parallel_budget_truncation_stays_legal() {
        let s = stencil5();
        let oracle = crate::DoneOracle::new(&s);
        let config = SearchConfig {
            max_visits: None,
            threads: 4,
            budget: Budget::unlimited().with_max_nodes(2),
            checkpoint: None,
            bound_hint: None,
        };
        let res = find_best_uov(&s, Objective::ShortestVector, &config).unwrap();
        assert!(!res.stats.complete);
        assert!(oracle.is_uov(&res.uov));
        let d = res.degradation.expect("node cap must record degradation");
        assert_eq!(d.reason, Exhausted::Nodes);
    }

    #[test]
    fn parallel_max_visits_truncates_but_stays_legal() {
        let s = stencil5();
        let oracle = crate::DoneOracle::new(&s);
        let res = find_best_uov(
            &s,
            Objective::ShortestVector,
            &SearchConfig {
                max_visits: Some(1),
                threads: 4,
                ..SearchConfig::default()
            },
        )
        .unwrap();
        assert!(!res.stats.complete);
        assert!(oracle.is_uov(&res.uov));
        let d = res.degradation.expect("visit cap must degrade");
        assert_eq!(d.reason, Exhausted::Nodes);
    }

    #[test]
    fn canonical_order_breaks_cost_ties_lexicographically() {
        let shorter = ivec![1, 2];
        let best = (5u128, 5i128, ivec![2, 1]);
        // Same cost, same squared length: the lexicographically smaller
        // vector wins.
        assert!(improves(5, &shorter, &best));
        assert!(!improves(5, &best.2.clone(), &(5, 5, shorter)));
        // Cost dominates everything else.
        assert!(improves(4, &ivec![9, 9], &best));
        assert!(!improves(6, &ivec![0, 1], &best));
    }

    #[test]
    fn saturated_bound_disables_pruning_instead_of_lying() {
        assert_eq!(saturate_bound(3), 3);
        assert_eq!(saturate_bound(u128::from(u64::MAX) + 1), u64::MAX);
        assert_eq!(saturate_bound(u128::MAX), u64::MAX);
    }

    fn tmp_ckpt(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "uov_search_test_{name}_{}.ckpt",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn ckpt_config(threads: usize, path: &std::path::Path, interval: u64) -> SearchConfig {
        SearchConfig {
            threads,
            checkpoint: Some(CheckpointConfig {
                path: path.to_path_buf(),
                interval,
            }),
            ..SearchConfig::default()
        }
    }

    #[test]
    fn checkpointed_run_writes_a_final_snapshot_and_matches_plain_run() {
        for threads in [1, 4] {
            let s = stencil5();
            let plain =
                find_best_uov(&s, Objective::ShortestVector, &with_threads(threads)).unwrap();
            let path = tmp_ckpt(&format!("final_{threads}"));
            let res = find_best_uov(
                &s,
                Objective::ShortestVector,
                &ckpt_config(threads, &path, 4),
            )
            .unwrap();
            assert_eq!(res.checkpoint_error, None, "threads={threads}");
            assert_eq!(res.uov, plain.uov);
            assert_eq!(res.cost, plain.cost);
            let snap = checkpoint::read_snapshot(&path).unwrap();
            assert_eq!(snap.incumbent, res.uov);
            assert_eq!(snap.incumbent_cost, res.cost);
            assert!(
                snap.frontier.is_empty(),
                "a completed search leaves no frontier (threads={threads})"
            );
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn interrupted_then_resumed_search_matches_uninterrupted() {
        for threads in [1, 4] {
            for cut in [1u64, 3, 7, 15] {
                let s = stencil5();
                let reference =
                    find_best_uov(&s, Objective::ShortestVector, &with_threads(threads)).unwrap();
                let path = tmp_ckpt(&format!("resume_{threads}_{cut}"));
                let mut interrupted = SearchConfig {
                    budget: Budget::unlimited().with_max_nodes(cut),
                    ..ckpt_config(threads, &path, 1)
                };
                let partial = find_best_uov(&s, Objective::ShortestVector, &interrupted).unwrap();
                assert_eq!(partial.checkpoint_error, None);
                // Resume with the node cap lifted: must land on the exact
                // canonical answer, not merely *a* UOV.
                interrupted.budget = Budget::unlimited();
                let resumed =
                    search_resume(&path, &s, Objective::ShortestVector, &interrupted).unwrap();
                assert_eq!(
                    (resumed.uov.clone(), resumed.cost),
                    (reference.uov.clone(), reference.cost),
                    "threads={threads} cut={cut}"
                );
                assert!(resumed.stats.complete);
                assert!(resumed.degradation.is_none());
                let _ = std::fs::remove_file(&path);
            }
        }
    }

    #[test]
    fn resume_honours_a_cumulative_node_budget() {
        let s = stencil5();
        let path = tmp_ckpt("cumulative");
        let config = SearchConfig {
            budget: Budget::unlimited().with_max_nodes(3),
            ..ckpt_config(1, &path, 1)
        };
        let first = find_best_uov(&s, Objective::ShortestVector, &config).unwrap();
        assert!(first.degradation.is_some());
        // Same cap on resume: already spent, so it degrades immediately
        // instead of granting a fresh allowance.
        let config = SearchConfig {
            budget: Budget::unlimited().with_max_nodes(3),
            ..ckpt_config(1, &path, 1)
        };
        let resumed = search_resume(&path, &s, Objective::ShortestVector, &config).unwrap();
        let d = resumed.degradation.expect("cumulative cap must still bind");
        assert_eq!(d.reason, Exhausted::Nodes);
        assert!(d.nodes_at_stop >= 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_rejects_a_snapshot_from_a_different_problem() {
        let s = stencil5();
        let path = tmp_ckpt("mismatch");
        let res = find_best_uov(&s, Objective::ShortestVector, &ckpt_config(1, &path, 8)).unwrap();
        assert_eq!(res.checkpoint_error, None);
        let other = fig1();
        let err =
            search_resume(&path, &other, Objective::ShortestVector, &with_threads(1)).unwrap_err();
        assert!(matches!(
            err,
            SearchError::Checkpoint(CheckpointError::StencilMismatch { .. })
        ));
        let _ = std::fs::remove_file(&path);
    }

    /// A domain whose `num_points` panics after `fuse` calls. Setup
    /// (`DomainFacts` + the initial UOV's cost) spends two calls on the
    /// caller thread, so any fuse ≥ 3 fires inside the engines, where a
    /// cost evaluation per expanded child keeps querying it.
    #[derive(Debug)]
    struct FusedDomain<'a> {
        grid: &'a RectDomain,
        calls: std::sync::atomic::AtomicUsize,
        fuse: usize,
    }

    impl uov_isg::IterationDomain for FusedDomain<'_> {
        fn dim(&self) -> usize {
            self.grid.dim()
        }
        fn contains(&self, p: &IVec) -> bool {
            self.grid.contains(p)
        }
        fn extreme_points(&self) -> Vec<IVec> {
            self.grid.extreme_points()
        }
        fn points(&self) -> Box<dyn Iterator<Item = IVec> + '_> {
            self.grid.points()
        }
        fn num_points(&self) -> u64 {
            use std::sync::atomic::Ordering;
            let n = self.calls.fetch_add(1, Ordering::Relaxed);
            assert!(n < self.fuse, "injected domain fault");
            self.grid.num_points()
        }
    }

    #[test]
    fn worker_panic_is_caught_as_a_typed_error() {
        let s = fig1();
        let grid = RectDomain::grid(6, 6);
        for threads in [1, 4] {
            let fused = FusedDomain {
                grid: &grid,
                calls: std::sync::atomic::AtomicUsize::new(0),
                fuse: 3,
            };
            let err = find_best_uov(&s, Objective::KnownBounds(&fused), &with_threads(threads))
                .unwrap_err();
            match err {
                SearchError::WorkerPanic { payload, .. } => {
                    assert!(
                        payload.contains("injected domain fault"),
                        "threads={threads}"
                    );
                }
                other => panic!("expected WorkerPanic, got {other:?} (threads={threads})"),
            }
        }
    }

    #[test]
    fn panicked_checkpointed_search_still_writes_a_resumable_snapshot() {
        let s = fig1();
        let grid = RectDomain::grid(6, 6);
        let reference = find_best_uov(&s, Objective::KnownBounds(&grid), &with_threads(4)).unwrap();
        let path = tmp_ckpt("panic_resume");
        let fused = FusedDomain {
            grid: &grid,
            calls: std::sync::atomic::AtomicUsize::new(0),
            fuse: 6,
        };
        let err = find_best_uov(
            &s,
            Objective::KnownBounds(&fused),
            &ckpt_config(4, &path, 1),
        )
        .unwrap_err();
        assert!(matches!(err, SearchError::WorkerPanic { .. }));
        // The parallel engine writes a final snapshot even after a panic;
        // resuming it with a healthy domain completes the search exactly.
        let resumed = search_resume(
            &path,
            &s,
            Objective::KnownBounds(&grid),
            &ckpt_config(4, &path, 1),
        )
        .unwrap();
        assert_eq!(resumed.uov, reference.uov);
        assert_eq!(resumed.cost, reference.cost);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bound_hint_never_changes_the_answer() {
        for s in [fig1(), stencil5()] {
            for threads in [1usize, 4] {
                let plain =
                    find_best_uov(&s, Objective::ShortestVector, &with_threads(threads)).unwrap();
                // Hints at the optimum, above it, and absurdly above it
                // must all return the identical canonical answer; a tight
                // hint may only shrink the visit counters.
                for hint in [plain.cost, plain.cost + 1, plain.cost * 100] {
                    let hinted = find_best_uov(
                        &s,
                        Objective::ShortestVector,
                        &SearchConfig {
                            bound_hint: Some(hint),
                            ..with_threads(threads)
                        },
                    )
                    .unwrap();
                    assert_eq!(hinted.uov, plain.uov, "threads={threads} hint={hint}");
                    assert_eq!(hinted.cost, plain.cost, "threads={threads} hint={hint}");
                    assert!(hinted.stats.complete);
                }
            }
        }
    }

    #[test]
    fn search_unit_fresh_run_matches_find_best_uov_and_leaves_no_frontier() {
        for threads in [1usize, 4] {
            let s = stencil5();
            let plain =
                find_best_uov(&s, Objective::ShortestVector, &with_threads(threads)).unwrap();
            let (res, snap) =
                search_unit(None, &s, Objective::ShortestVector, &with_threads(threads)).unwrap();
            assert_eq!(res.uov, plain.uov);
            assert_eq!(res.cost, plain.cost);
            assert_eq!(snap.incumbent, plain.uov);
            assert_eq!(snap.incumbent_cost, plain.cost);
            assert!(
                snap.frontier.is_empty(),
                "a completed unit leaves no frontier (threads={threads})"
            );
            assert_eq!(
                snap.fingerprint,
                checkpoint::fingerprint(&s, &Objective::ShortestVector)
            );
        }
    }

    #[test]
    fn budget_cut_unit_resumes_through_snapshots_to_the_exact_answer() {
        for threads in [1usize, 4] {
            for cut in [1u64, 3, 7] {
                let s = stencil5();
                let reference =
                    find_best_uov(&s, Objective::ShortestVector, &with_threads(threads)).unwrap();
                // Run node-capped units back-to-back, each seeded with the
                // previous unit's in-memory snapshot — the wire path of a
                // mesh work unit, minus the wire.
                let config = || SearchConfig {
                    budget: Budget::unlimited().with_max_nodes(cut),
                    ..with_threads(threads)
                };
                let (mut res, mut snap) =
                    search_unit(None, &s, Objective::ShortestVector, &config()).unwrap();
                let mut rounds = 0;
                while !snap.frontier.is_empty() {
                    rounds += 1;
                    assert!(rounds < 10_000, "unit chain failed to converge");
                    let fresh = SearchConfig {
                        budget: Budget::unlimited().with_max_nodes(cut),
                        ..with_threads(threads)
                    };
                    // Each unit gets a fresh allowance: clear the charge
                    // carried inside the snapshot.
                    let mut reseed = snap;
                    reseed.nodes_charged = 0;
                    (res, snap) =
                        search_unit(Some(reseed), &s, Objective::ShortestVector, &fresh).unwrap();
                }
                assert_eq!(
                    (res.uov, res.cost),
                    (reference.uov.clone(), reference.cost),
                    "threads={threads} cut={cut}"
                );
            }
        }
    }

    #[test]
    fn search_unit_rejects_a_snapshot_from_a_different_problem() {
        let (_, snap) = search_unit(
            None,
            &stencil5(),
            Objective::ShortestVector,
            &with_threads(1),
        )
        .unwrap();
        let err = search_unit(
            Some(snap),
            &fig1(),
            Objective::ShortestVector,
            &with_threads(1),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            SearchError::Checkpoint(CheckpointError::StencilMismatch { .. })
        ));
    }
}
