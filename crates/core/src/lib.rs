//! Universal occupancy vectors (UOV) — the core contribution of
//! Strout, Carter, Ferrante and Simon, *Schedule-Independent Storage
//! Mapping for Loops* (ASPLOS 1998).
//!
//! An **occupancy vector** `ov` lets iteration `q` of a regular loop reuse
//! the storage cell written by iteration `q − ov`. The OV is **universal**
//! when the reuse is safe under *every* schedule that respects the loop's
//! value dependences — equivalently (paper §3.1), when for every stencil
//! vector `vᵢ` the difference `ov − vᵢ` is a non-negative integer
//! combination of stencil vectors.
//!
//! This crate provides:
//!
//! * [`DoneOracle`] — exact decision procedures for the DONE set
//!   (non-negative integer cone membership), the DEAD set, and UOV
//!   membership. UOV membership is NP-complete, so the procedures are
//!   worst-case exponential but fast for realistic stencils.
//! * [`search`] — the paper's branch-and-bound search for the *optimal*
//!   UOV (shortest, or storage-minimal when loop bounds are known),
//!   including the trivially legal initial UOV `Σvᵢ`.
//! * [`objective`] — storage-class counting for candidate OVs over concrete
//!   iteration domains (paper §3.2, Fig. 3 and Fig. 6).
//! * [`npc`] — the PARTITION ⇒ UOV-membership reduction from the paper's
//!   NP-completeness theorem, usable in both directions for testing.
//! * [`budget`] — resource budgets (deadline, node/memo caps, cancellation)
//!   with graceful degradation to the always-legal initial UOV.
//!
//! # Example
//!
//! ```
//! use uov_isg::{ivec, Stencil};
//! use uov_core::{search::{find_best_uov, Objective, SearchConfig}, DoneOracle};
//!
//! // Figure 1 of the paper: A[i,j] = f(A[i-1,j], A[i,j-1], A[i-1,j-1]).
//! let stencil = Stencil::new(vec![ivec![1, 0], ivec![0, 1], ivec![1, 1]])?;
//!
//! let oracle = DoneOracle::new(&stencil);
//! assert!(oracle.is_uov(&ivec![1, 1]));   // the paper's chosen UOV
//! assert!(!oracle.is_uov(&ivec![1, 0]));  // legal for *some* schedules only
//!
//! let best = find_best_uov(&stencil, Objective::ShortestVector, &SearchConfig::default())?;
//! assert_eq!(best.uov, ivec![1, 1]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod budget;
pub mod cache;
pub mod certify;
pub mod checkpoint;
pub mod dense;
pub mod error;
pub mod fingerprint;
pub mod frontier;
pub mod multi;
pub mod npc;
pub mod objective;
pub mod oracle;
pub mod par;
pub mod search;
pub mod viz;
pub mod wire;

pub use budget::{Budget, Degradation, Exhausted};
pub use cache::{ShardedCache, ShardedLru};
pub use certify::{certify, Certificate, CertifyError};
pub use checkpoint::{CheckpointConfig, CheckpointError};
pub use dense::{ConeMemo, MaskTable, Window};
pub use error::SearchError;
pub use fingerprint::{fingerprint, Fnv};
pub use oracle::{DoneOracle, ReferenceOracle};
pub use par::{try_fan_out, FanOutPanic};
pub use search::{
    find_best_uov, initial_uov, search_from_snapshot, search_resume, search_unit, Objective,
    SearchConfig, SearchResult, SearchStats,
};
