//! Storage cost of an occupancy vector over a concrete iteration domain.
//!
//! An occupancy vector partitions the ISG into *storage-equivalence
//! classes*: two iterations share a cell iff they differ by an integer
//! multiple of the OV (paper §3.2). When the loop bounds are known at
//! compile time, the number of classes — hence the number of storage
//! locations — is the number of integer points in the projection of the
//! ISG perpendicular to the OV, times the `gcd` of the OV's components for
//! non-prime OVs (paper §4.2–§4.3).
//!
//! Figure 3 of the paper is the motivating case: on a skewed ISG a longer
//! OV can need *less* storage than the shortest one.

use uov_isg::project::try_form_range;
use uov_isg::{IMat, IVec, IsgError, IterationDomain};

/// Number of storage-equivalence classes the occupancy vector `ov` induces
/// on `domain`, computed from the domain's extreme points.
///
/// Construction: reduce `ov` with [`IMat::lattice_reduction`]; rows `1..d`
/// of the resulting unimodular matrix are linear forms constant along `ov`,
/// so the classes are indexed by their values (a box in `Z^{d−1}`) together
/// with the position-along-`ov` residue modulo `g = ov.content()`.
///
/// For 2-D domains this is exactly the paper's count (`span × g`, Fig. 3 /
/// Fig. 6). For `d ≥ 3` the count uses the bounding box of the projected
/// extreme points, which is what the d-dimensional storage mapping in
/// `uov-storage` actually allocates (an upper bound on occupied classes for
/// skewed domains). The count is capped at the number of iterations — an OV
/// longer than the domain simply never reuses.
///
/// # Panics
///
/// Panics if `ov` is zero or `ov.dim() != domain.dim()`.
///
/// # Examples
///
/// ```
/// use uov_isg::{ivec, RectDomain, Polygon2};
/// use uov_core::objective::storage_class_count;
///
/// // Figure 6: ov = (1,1) on the n × m grid needs n + m − 1 interior
/// // classes (the paper's n + m + 1 includes the loop's border inputs;
/// // see uov-storage's allocator).
/// let grid = RectDomain::grid(5, 7);
/// assert_eq!(storage_class_count(&grid, &ivec![1, 1]), 11);
///
/// // Figure 3: the longer ov (3,1) beats the shorter (3,0).
/// let isg = Polygon2::fig3_isg();
/// assert_eq!(storage_class_count(&isg, &ivec![3, 1]), 16);
/// assert_eq!(storage_class_count(&isg, &ivec![3, 0]), 27);
/// ```
pub fn storage_class_count(domain: &dyn IterationDomain, ov: &IVec) -> u64 {
    match try_storage_class_count(domain, ov) {
        Ok(n) => n,
        Err(IsgError::ZeroVector) => panic!("occupancy vector must be non-zero"),
        Err(IsgError::DimMismatch { .. }) => panic!("dimension mismatch"),
        Err(e) => panic!("storage class count failed: {e}"),
    }
}

/// [`storage_class_count`] returning [`IsgError`] on a zero vector,
/// dimension mismatch, or coordinate overflow during lattice reduction and
/// projection.
pub fn try_storage_class_count(domain: &dyn IterationDomain, ov: &IVec) -> Result<u64, IsgError> {
    if ov.is_zero() {
        return Err(IsgError::ZeroVector);
    }
    if ov.dim() != domain.dim() {
        return Err(IsgError::DimMismatch {
            expected: domain.dim(),
            found: ov.dim(),
        });
    }
    let g = ov.try_content()? as u64;
    let w = IMat::try_lattice_reduction(ov)?;
    let mut classes = g;
    for r in 1..ov.dim() {
        let (lo, hi) = try_form_range(domain, &w.row(r))?;
        let span = hi
            .checked_sub(lo)
            .and_then(|s| s.checked_add(1))
            .ok_or(IsgError::Overflow("storage class span"))?;
        classes = classes.saturating_mul(span as u64);
    }
    Ok(classes.min(domain.num_points()))
}

/// Exact number of *occupied* storage-equivalence classes: enumerates every
/// iteration and counts distinct classes.
///
/// Exponentially slower than [`storage_class_count`]; used by tests to
/// validate the extreme-point formula and by callers with heavily skewed
/// high-dimensional domains.
///
/// # Panics
///
/// Panics if `ov` is zero or `ov.dim() != domain.dim()`.
pub fn storage_class_count_exact(domain: &dyn IterationDomain, ov: &IVec) -> u64 {
    assert!(!ov.is_zero(), "occupancy vector must be non-zero");
    assert_eq!(ov.dim(), domain.dim(), "dimension mismatch");
    let g = ov.content();
    let w = IMat::lattice_reduction(ov);
    let mut classes = std::collections::HashSet::new();
    for p in domain.points() {
        let wp = w.mul_vec(&p);
        let mut key: Vec<i64> = wp.as_slice()[1..].to_vec();
        key.push(wp[0].rem_euclid(g));
        classes.insert(key);
    }
    classes.len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use uov_isg::{ivec, Polygon2, RectDomain};

    #[test]
    fn fig3_counts_match_paper() {
        let isg = Polygon2::fig3_isg();
        assert_eq!(storage_class_count(&isg, &ivec![3, 1]), 16);
        assert_eq!(storage_class_count(&isg, &ivec![3, 0]), 27);
    }

    #[test]
    fn fig3_counts_match_exact_enumeration() {
        let isg = Polygon2::fig3_isg();
        // Prime OVs: the span formula is exact on this domain.
        for ov in [ivec![3, 1], ivec![1, 1], ivec![2, 1]] {
            assert_eq!(
                storage_class_count(&isg, &ov),
                storage_class_count_exact(&isg, &ov),
                "mismatch for ov {ov}"
            );
        }
        // Non-prime OVs on a skewed domain: the formula is the allocation
        // size, an upper bound on the occupied classes (the paper's Figure 3
        // likewise reports the allocation, 27, for ov₂ = (3,0)).
        for ov in [ivec![3, 0], ivec![4, 2]] {
            assert!(
                storage_class_count(&isg, &ov) >= storage_class_count_exact(&isg, &ov),
                "allocation must cover occupied classes for ov {ov}"
            );
        }
    }

    #[test]
    fn grid_diagonal_matches_fig6_interior() {
        // Interior iterations only; the full paper figure adds borders.
        let grid = RectDomain::grid(4, 6);
        assert_eq!(storage_class_count(&grid, &ivec![1, 1]), 4 + 6 - 1);
        assert_eq!(storage_class_count_exact(&grid, &ivec![1, 1]), 4 + 6 - 1);
    }

    #[test]
    fn non_prime_ov_multiplies_by_content() {
        let grid = RectDomain::grid(8, 5);
        // ov = (2,0): classes = span of (0,1) × 2 = 5·2 = 10.
        assert_eq!(storage_class_count(&grid, &ivec![2, 0]), 10);
        assert_eq!(storage_class_count_exact(&grid, &ivec![2, 0]), 10);
        // ov = (1,0): 5 classes — one per column.
        assert_eq!(storage_class_count(&grid, &ivec![1, 0]), 5);
    }

    #[test]
    fn count_capped_by_domain_size() {
        let grid = RectDomain::grid(3, 3);
        // A huge OV can never reuse storage within the domain.
        assert!(storage_class_count(&grid, &ivec![100, 0]) <= 9);
    }

    #[test]
    fn one_dimensional_ring() {
        let dom = RectDomain::new(ivec![0], ivec![99]);
        // ov = (k) is a k-cell ring buffer.
        assert_eq!(storage_class_count(&dom, &ivec![3]), 3);
        assert_eq!(storage_class_count_exact(&dom, &ivec![3]), 3);
    }

    #[test]
    fn three_dimensional_box() {
        let dom = RectDomain::new(ivec![1, 1, 1], ivec![4, 5, 6]);
        // ov along axis 0: classes = extent(1) × extent(2).
        assert_eq!(storage_class_count(&dom, &ivec![1, 0, 0]), 30);
        assert_eq!(storage_class_count_exact(&dom, &ivec![1, 0, 0]), 30);
        // Diagonal ov in 3-D: formula is an upper bound of the exact count.
        let formula = storage_class_count(&dom, &ivec![1, 1, 1]);
        let exact = storage_class_count_exact(&dom, &ivec![1, 1, 1]);
        assert!(formula >= exact, "formula {formula} < exact {exact}");
    }
}
