//! Property-based tests for the kernels: every storage variant of every
//! kernel is bit-identical to every other, on random sizes, tiles and
//! workloads — the executable form of the paper's claim that OV mapping
//! changes storage, not semantics.

use proptest::prelude::*;
use uov_kernels::mem::{PlainMemory, TracedMemory};
use uov_kernels::{jacobi2d, psm, stencil5, workloads};
use uov_memsim::machines;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn stencil5_variants_agree(
        len in 1usize..80,
        t_steps in 1usize..7,
        tile_t in 1usize..5,
        tile_u in 1usize..20,
        seed in 0u64..1000,
    ) {
        let input = workloads::random_f32(len, seed);
        let cfg = stencil5::Stencil5Config { len, time_steps: t_steps, tile: Some((tile_t, tile_u)) };
        let reference = stencil5::run(
            &mut PlainMemory::new(),
            stencil5::Variant::Natural,
            &cfg,
            &input,
        );
        for variant in stencil5::Variant::all() {
            let got = stencil5::run(&mut PlainMemory::new(), variant, &cfg, &input);
            prop_assert_eq!(
                &got, &reference,
                "variant {:?} diverged (len {}, T {}, tile {:?})",
                variant, len, t_steps, (tile_t, tile_u)
            );
        }
    }

    #[test]
    fn psm_variants_agree(
        n0 in 1usize..40,
        n1 in 1usize..40,
        tile_i in 1usize..6,
        tile_j in 1usize..12,
        seed in 0u64..1000,
    ) {
        let s0 = workloads::random_protein(n0, seed);
        let s1 = workloads::random_protein(n1, seed + 1);
        let table = workloads::WeightTable::synthetic(seed + 2);
        let cfg = psm::PsmConfig { n0, n1, tile: Some((tile_i, tile_j)) };
        let reference = psm::run(
            &mut PlainMemory::new(),
            psm::Variant::Natural,
            &cfg,
            &s0,
            &s1,
            &table,
        );
        for variant in psm::Variant::all() {
            let got = psm::run(&mut PlainMemory::new(), variant, &cfg, &s0, &s1, &table);
            prop_assert_eq!(
                got, reference,
                "variant {:?} diverged (n0 {}, n1 {})",
                variant, n0, n1
            );
        }
    }

    #[test]
    fn jacobi_variants_agree(
        n in 1usize..16,
        t_steps in 1usize..5,
        tile in (1usize..4, 1usize..8, 1usize..8),
        seed in 0u64..1000,
    ) {
        let input = workloads::random_f32(n * n, seed);
        let cfg = jacobi2d::Jacobi2dConfig { n, time_steps: t_steps, tile: Some(tile), pad: 0 };
        let reference = jacobi2d::run(
            &mut PlainMemory::new(),
            jacobi2d::Variant::Natural,
            &cfg,
            &input,
        );
        for variant in jacobi2d::Variant::all() {
            let got = jacobi2d::run(&mut PlainMemory::new(), variant, &cfg, &input);
            prop_assert_eq!(
                &got, &reference,
                "variant {:?} diverged (n {}, T {}, tile {:?})",
                variant, n, t_steps, tile
            );
        }
    }

    #[test]
    fn tracing_never_changes_results(
        len in 1usize..50,
        t_steps in 1usize..5,
        seed in 0u64..100,
    ) {
        let input = workloads::random_f32(len, seed);
        let cfg = stencil5::Stencil5Config { len, time_steps: t_steps, tile: None };
        for variant in [stencil5::Variant::OvBlocked, stencil5::Variant::StorageOptimized] {
            let plain = stencil5::run(&mut PlainMemory::new(), variant, &cfg, &input);
            let mut traced = TracedMemory::new(machines::ultra_2());
            let got = stencil5::run(&mut traced, variant, &cfg, &input);
            prop_assert_eq!(got, plain);
        }
    }

    #[test]
    fn machine_cycles_are_monotone_in_work(
        len in 8usize..64,
        t_steps in 1usize..4,
    ) {
        // More time steps can never cost fewer total cycles.
        let input = workloads::random_f32(len, 3);
        let cycles = |t: usize| {
            let cfg = stencil5::Stencil5Config { len, time_steps: t, tile: None };
            let mut mem = TracedMemory::new(machines::pentium_pro());
            let _ = stencil5::run(&mut mem, stencil5::Variant::OvBlocked, &cfg, &input);
            mem.machine().cycles()
        };
        prop_assert!(cycles(t_steps + 1) > cycles(t_steps));
    }
}
