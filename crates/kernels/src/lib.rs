//! The evaluation kernels of the paper's §5, in every storage variant.
//!
//! Two codes, exactly as in the paper:
//!
//! * [`stencil5`] — a 5-point one-dimensional stencil: an array of length
//!   `L` evolves over `T` time steps, each new element a weighted average
//!   of its five predecessors. Variants: *natural* (a `T×L` array),
//!   *OV-mapped* (UOV `(2,0)`, two rows — blocked or interleaved,
//!   Figure 5), and *storage-optimized* (`L + 3` cells, untileable). Tiled
//!   versions use skewed tiling (skew factor 2), the only legal tiling for
//!   this stencil.
//! * [`psm`] — protein string matching: affine-gap Smith–Waterman (Gotoh)
//!   over a 23-letter amino-acid alphabet with a 23×23 weight table. Three
//!   temporaries (`H`, `E`, `F`) are treated as separate assignments with
//!   disjoint storage (paper §3): their consumer stencils are
//!   `{(1,1),(1,0),(0,1)}`, `{(1,0)}` and `{(0,1)}`, with UOVs `(1,1)`,
//!   `(1,0)` and `(0,1)` — reproducing Table 2's `2n₀+2n₁+1` exactly.
//!
//! Every variant of a kernel computes **bit-identical** results (each
//! output element is one fixed expression of previous values, so traversal
//! order cannot perturb floating point), which the test suite exploits:
//! variant equality is the end-to-end proof that OV-mapped storage
//! preserves semantics.
//!
//! Kernels are generic over a [`Memory`] backend: [`PlainMemory`] computes
//! values at full speed (for wall-clock benches), [`TracedMemory`] also
//! streams every access through a [`uov_memsim::Machine`] (for the
//! cycles-per-iteration experiments of Figures 7–14).
//!
//! # Example
//!
//! ```
//! use uov_kernels::mem::PlainMemory;
//! use uov_kernels::stencil5::{run, Stencil5Config, Variant};
//! use uov_kernels::workloads;
//!
//! let input = workloads::random_f32(64, 1);
//! let cfg = Stencil5Config { len: 64, time_steps: 8, tile: None };
//! let a = run(&mut PlainMemory::new(), Variant::Natural, &cfg, &input);
//! let b = run(&mut PlainMemory::new(), Variant::OvBlocked, &cfg, &input);
//! assert_eq!(a, b);
//! ```

#![warn(missing_docs)]

pub mod fig1;
pub mod jacobi2d;
pub mod mem;
pub mod parallel;
pub mod psm;
pub mod stencil5;
pub mod workloads;
pub mod zoo;

pub use mem::{Buf, Memory, PlainMemory, TracedMemory};
