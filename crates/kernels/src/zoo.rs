//! The codegen kernel zoo: every paper kernel as a [`LoopNest`] fixture
//! with its known-good UOVs and legalising skew factor.
//!
//! The zoo is the shared ground truth between the `uov-codegen`
//! differential tests (compiled output must byte-match the `uov-loopir`
//! interpreter on every entry), the autotuner examples, and the PR-9
//! benchmark experiment. Each entry packages what a caller needs to
//! generate executable code for the kernel at any scale:
//!
//! * the nest itself (from [`uov_loopir::examples`]),
//! * one universal occupancy vector per statement (the paper's §5
//!   results — validated, not re-searched, so fixtures stay cheap), and
//! * the skew factor `f` that legalises tiling of `(u, v) = (i, f·i+j)`
//!   (`0` when rectangular tiling is already legal).
//!
//! A test below re-derives all three from first principles
//! (`flow_stencil` → UOV membership → tiling legality) so the hardcoded
//! fixtures can never drift from the analysis pipeline.

use uov_isg::{ivec, IVec};
use uov_loopir::{examples, LoopNest};
use uov_storage::{Layout, OvMap};

/// One zoo kernel: a nest plus everything needed to map and tile it.
#[derive(Debug, Clone)]
pub struct ZooEntry {
    /// Kernel name (stable across scales; used in reports and artifacts).
    pub name: &'static str,
    /// The loop nest at the requested scale.
    pub nest: LoopNest,
    /// Per-statement universal occupancy vectors; `None` keeps that
    /// statement's storage natural (fully expanded).
    pub ovs: Vec<Option<IVec>>,
    /// The skew factor legalising tiling (`0` = rectangular already
    /// legal).
    pub skew_f: i64,
}

impl ZooEntry {
    /// Construct per-statement [`OvMap`]s over this entry's domain.
    pub fn maps(&self, layout: Layout) -> Vec<Option<OvMap>> {
        self.ovs
            .iter()
            .map(|ov| {
                ov.as_ref()
                    .map(|ov| OvMap::new(self.nest.domain(), ov.clone(), layout))
            })
            .collect()
    }
}

/// The Figure-1 running example: `A[i,j] = f(A[i-1,j], A[i,j-1],
/// A[i-1,j-1])`, UOV `(1,1)`, rectangular tiling already legal.
pub fn fig1(n: i64, m: i64) -> ZooEntry {
    ZooEntry {
        name: "fig1",
        nest: examples::fig1_nest(n, m),
        ovs: vec![Some(ivec![1, 1])],
        skew_f: 0,
    }
}

/// The §5 five-point stencil: UOV `(2,0)`, tiling legal only after the
/// skew `v = 2i + j`.
pub fn stencil5(t_steps: i64, len: i64) -> ZooEntry {
    ZooEntry {
        name: "stencil5",
        nest: examples::stencil5_nest(t_steps, len),
        ovs: vec![Some(ivec![2, 0])],
        skew_f: 2,
    }
}

/// The deep-time stencil: eight collinear `(k, 0)` flow dependences, UOV
/// `(8, 0)`, rectangular tiling already legal. Schedule independence here
/// costs eight live rows (`~8·len` mapped cells), which makes this the
/// zoo's bandwidth-bound entry — the kernel where time-tiling's wall-clock
/// win is largest.
pub fn deep8(t_steps: i64, len: i64) -> ZooEntry {
    ZooEntry {
        name: "deep8",
        nest: examples::deep8_nest(t_steps, len),
        ovs: vec![Some(ivec![8, 0])],
        skew_f: 0,
    }
}

/// Protein string matching (Gotoh recurrence, §5): two regular
/// statements with UOVs `(1,1)` (H) and `(1,0)` (E); rectangular tiling
/// already legal.
pub fn psm(n1: i64, n0: i64) -> ZooEntry {
    ZooEntry {
        name: "psm",
        nest: examples::psm_nest(n1, n0),
        ovs: vec![Some(ivec![1, 1]), Some(ivec![1, 0])],
        skew_f: 0,
    }
}

/// Every zoo kernel at a small, test-friendly scale (hundreds of
/// iteration points — differential tests compile and run each entry
/// several times).
pub fn all_small() -> Vec<ZooEntry> {
    vec![fig1(8, 6), stencil5(6, 24), deep8(12, 10), psm(7, 9)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use uov_core::oracle::DoneOracle;
    use uov_isg::Stencil;
    use uov_loopir::analysis::flow_stencil;
    use uov_schedule::legality;
    use uov_storage::StorageMap as _;

    /// The fixtures' hardcoded OVs and skews must agree with what the
    /// analysis pipeline derives from the nests themselves.
    #[test]
    fn fixtures_agree_with_analysis() {
        for entry in all_small() {
            let mut union: Vec<IVec> = Vec::new();
            for (s, ov) in entry.ovs.iter().enumerate() {
                let stencil = flow_stencil(&entry.nest, s).unwrap();
                union.extend(stencil.vectors().iter().cloned());
                if let Some(ov) = ov {
                    assert!(
                        DoneOracle::new(&stencil).is_uov(ov),
                        "{}: stmt {s} fixture OV {ov:?} is not universal",
                        entry.name
                    );
                }
            }
            let all = Stencil::new(union).unwrap();
            if entry.skew_f == 0 {
                assert!(
                    legality::rectangular_tiling_legal(&all),
                    "{}: claims rectangular tiling is legal",
                    entry.name
                );
            } else {
                assert!(!legality::rectangular_tiling_legal(&all));
                let f = legality::skew_factor_for_tiling(&all).unwrap();
                assert_eq!(f, entry.skew_f, "{}: wrong skew fixture", entry.name);
            }
        }
    }

    #[test]
    fn maps_cover_every_statement() {
        for entry in all_small() {
            let maps = entry.maps(Layout::Interleaved);
            assert_eq!(maps.len(), entry.nest.stmts().len());
            for map in maps.into_iter().flatten() {
                assert!(map.size() > 0);
            }
        }
    }
}
