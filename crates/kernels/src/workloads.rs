//! Seeded workload generators for the two kernels.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of amino-acid symbols (the paper: "23 possible string
/// characters").
pub const ALPHABET: usize = 23;

/// A 23×23 substitution-weight table for protein string matching.
///
/// The paper used the table of Alpern–Carter–Gatlin's code, which is not
/// available; this synthetic stand-in is BLOSUM-shaped — strong positive
/// diagonal, mildly negative off-diagonal, symmetric — which preserves the
/// kernel's arithmetic and branch structure (the only properties the
/// evaluation depends on).
#[derive(Debug, Clone, PartialEq)]
pub struct WeightTable {
    weights: Vec<f32>,
}

impl WeightTable {
    /// Deterministically generate a table from a seed.
    pub fn synthetic(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut weights = vec![0.0f32; ALPHABET * ALPHABET];
        for a in 0..ALPHABET {
            for b in a..ALPHABET {
                let w = if a == b {
                    rng.gen_range(4..=11) as f32
                } else {
                    rng.gen_range(-4..=3) as f32
                };
                weights[a * ALPHABET + b] = w;
                weights[b * ALPHABET + a] = w;
            }
        }
        WeightTable { weights }
    }

    /// The weight of aligning symbols `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if a symbol is `≥ 23`.
    #[inline]
    pub fn score(&self, a: u8, b: u8) -> f32 {
        self.weights[a as usize * ALPHABET + b as usize]
    }
}

/// A random protein string of length `len` over the 23-symbol alphabet.
pub fn random_protein(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen_range(0..ALPHABET as u8)).collect()
}

/// A random `f32` array in `[0, 1)` — the stencil kernel's initial state.
pub fn random_f32(len: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen_range(0.0..1.0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_table_is_symmetric_with_positive_diagonal() {
        let t = WeightTable::synthetic(42);
        for a in 0..ALPHABET as u8 {
            assert!(t.score(a, a) >= 4.0);
            for b in 0..ALPHABET as u8 {
                assert_eq!(t.score(a, b), t.score(b, a));
            }
        }
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(random_protein(64, 7), random_protein(64, 7));
        assert_eq!(random_f32(64, 7), random_f32(64, 7));
        assert_ne!(random_f32(64, 7), random_f32(64, 8));
        assert_eq!(WeightTable::synthetic(1), WeightTable::synthetic(1));
    }

    #[test]
    fn protein_symbols_in_range() {
        assert!(random_protein(1000, 3)
            .iter()
            .all(|&c| (c as usize) < ALPHABET));
    }
}
