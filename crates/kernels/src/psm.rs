//! Protein string matching (paper §5, Table 2, Figures 8, 12–14).
//!
//! The paper's PSM code is the affine-gap local-alignment family
//! (Alpern–Carter–Gatlin's storage-optimized code is cited as the source
//! of the optimized variant). We implement the Gotoh recurrence over two
//! strings of lengths `n₀` and `n₁` with a 23×23 substitution table:
//!
//! ```text
//! E[i,j] = max(H[i-1,j] − GO, E[i-1,j] − GE)   (vertical gap)
//! F[i,j] = max(H[i,j-1] − GO, F[i,j-1] − GE)   (horizontal gap)
//! H[i,j] = max(0, H[i-1,j-1] + W(s₁[i], s₀[j]), E[i,j], F[i,j])
//! ```
//!
//! Following the paper's §3, each assignment gets disjoint storage; the
//! *consumer* stencils are `V_H = {(1,1),(1,0),(0,1)}` (Figure 1's
//! stencil), `V_E = {(1,0)}`, `V_F = {(0,1)}`, with optimal UOVs `(1,1)`,
//! `(1,0)` and `(0,1)`. The resulting allocations reproduce Table 2
//! exactly:
//!
//! | variant            | temporary storage      | tileable |
//! |--------------------|------------------------|----------|
//! | natural            | `n₀n₁ + n₀ + n₁`       | yes      |
//! | OV-mapped          | `2n₀ + 2n₁ + 1`        | yes      |
//! | storage-optimized  | `2n₀ + 3`              | no       |
//!
//! (Natural: full `H` plus an `E` row and an `F` column; OV-mapped:
//! `n₀+n₁+1` anti-diagonal cells for `H` plus `n₀` for `E` and `n₁` for
//! `F`.) All variants produce bit-identical best scores.

use crate::mem::{Buf, Memory};
use crate::workloads::{WeightTable, ALPHABET};

/// Gap-open penalty.
pub const GAP_OPEN: f32 = 5.0;
/// Gap-extend penalty.
pub const GAP_EXTEND: f32 = 1.0;
/// Arithmetic operations per cell (adds/subs around the max chain).
pub const ALU_BASE: u64 = 6;
/// Hard-to-predict branches per cell (the four max selections) — the knob
/// behind the paper's Ultra 2 / Alpha plateau (§5.2).
pub const BRANCHES: u64 = 4;

const NEG: f32 = f32::NEG_INFINITY;

/// Storage variant of the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Full `H` matrix (with borders), `E` row, `F` column.
    Natural,
    /// Natural storage, rectangular tiled traversal.
    NaturalTiled,
    /// `H` mapped along UOV `(1,1)` (anti-diagonal cells), `E` along
    /// `(1,0)`, `F` along `(0,1)`.
    OvMapped,
    /// OV storage, rectangular tiled traversal.
    OvMappedTiled,
    /// Rolling rows: previous-`H` row + `E` row + three scalars;
    /// lexicographic schedule only.
    StorageOptimized,
}

impl Variant {
    /// All variants, in the paper's presentation order.
    pub fn all() -> [Variant; 5] {
        [
            Variant::StorageOptimized,
            Variant::Natural,
            Variant::NaturalTiled,
            Variant::OvMapped,
            Variant::OvMappedTiled,
        ]
    }

    /// Short label matching the paper's figure legends.
    pub fn label(&self) -> &'static str {
        match self {
            Variant::Natural => "Natural",
            Variant::NaturalTiled => "Natural Tiled",
            Variant::OvMapped => "OV-Mapped",
            Variant::OvMappedTiled => "OV-Mapped Tiled",
            Variant::StorageOptimized => "Storage Optimized",
        }
    }

    /// Per-cell address-arithmetic overhead: the 2-D row-major `H` index
    /// needs a multiply, the OV anti-diagonal only adds, the rolling row
    /// of the optimized variant is cheapest (cf. Figure 8, where OV-mapped
    /// beats natural and storage-optimized beats both).
    fn index_alu(&self) -> u64 {
        match self {
            Variant::Natural | Variant::NaturalTiled => 4,
            Variant::OvMapped | Variant::OvMappedTiled => 2,
            Variant::StorageOptimized => 1,
        }
    }

    /// Whether this variant runs a tiled schedule.
    pub fn is_tiled(&self) -> bool {
        matches!(self, Variant::NaturalTiled | Variant::OvMappedTiled)
    }
}

/// Problem configuration.
#[derive(Debug, Clone)]
pub struct PsmConfig {
    /// Length of string `s0` (the inner, `j`, dimension).
    pub n0: usize,
    /// Length of string `s1` (the outer, `i`, dimension).
    pub n1: usize,
    /// Tile shape `(tile_i, tile_j)`; `None` uses a default sized for an
    /// 8 KB L1.
    pub tile: Option<(usize, usize)>,
}

impl PsmConfig {
    /// Tile shape to use.
    pub fn tile_shape(&self) -> (usize, usize) {
        self.tile.unwrap_or((64, 512))
    }
}

/// Temporary storage cells of a variant — the Table 2 formulas.
///
/// # Examples
///
/// ```
/// use uov_kernels::psm::{storage_cells, Variant};
/// assert_eq!(storage_cells(Variant::Natural, 100, 50), 100 * 50 + 100 + 50);
/// assert_eq!(storage_cells(Variant::OvMapped, 100, 50), 2 * 100 + 2 * 50 + 1);
/// assert_eq!(storage_cells(Variant::StorageOptimized, 100, 50), 2 * 100 + 3);
/// ```
pub fn storage_cells(variant: Variant, n0: u64, n1: u64) -> u64 {
    match variant {
        Variant::Natural | Variant::NaturalTiled => n0 * n1 + n0 + n1,
        Variant::OvMapped | Variant::OvMappedTiled => 2 * n0 + 2 * n1 + 1,
        Variant::StorageOptimized => 2 * n0 + 3,
    }
}

/// How `H` cells are addressed.
#[derive(Clone, Copy)]
enum HLayout {
    /// Row-major over the bordered `(n1+1)×(n0+1)` matrix.
    Full { stride: usize },
    /// Anti-diagonal classes of UOV `(1,1)`: `addr = j − i + n1`.
    Diag { n1: usize },
}

impl HLayout {
    #[inline]
    fn addr(&self, i: usize, j: usize) -> usize {
        match *self {
            HLayout::Full { stride } => i * stride + j,
            HLayout::Diag { n1 } => j + n1 - i,
        }
    }

    fn cells(&self, n0: usize, n1: usize) -> usize {
        match *self {
            HLayout::Full { stride } => stride * (n1 + 1),
            HLayout::Diag { .. } => n0 + n1 + 1,
        }
    }
}

struct PsmBufs {
    h: Buf,
    e: Buf,
    f: Buf,
    s0: Buf,
    s1: Buf,
    w: Buf,
}

/// Load strings and the weight table into traced buffers.
fn load_tables<M: Memory>(
    mem: &mut M,
    s0: &[u8],
    s1: &[u8],
    table: &WeightTable,
) -> (Buf, Buf, Buf) {
    let s0b = mem.alloc(s0.len());
    for (k, &c) in s0.iter().enumerate() {
        mem.write(s0b, k, c as f32);
    }
    let s1b = mem.alloc(s1.len());
    for (k, &c) in s1.iter().enumerate() {
        mem.write(s1b, k, c as f32);
    }
    let wb = mem.alloc(ALPHABET * ALPHABET);
    for a in 0..ALPHABET as u8 {
        for b in 0..ALPHABET as u8 {
            mem.write(wb, a as usize * ALPHABET + b as usize, table.score(a, b));
        }
    }
    (s0b, s1b, wb)
}

/// One Gotoh cell; returns the new `H[i,j]`.
#[inline]
#[allow(clippy::too_many_arguments)]
fn cell<M: Memory>(
    mem: &mut M,
    bufs: &PsmBufs,
    layout: HLayout,
    extra_alu: u64,
    i: usize,
    j: usize,
) -> f32 {
    let c1 = mem.read(bufs.s1, i - 1) as usize;
    let c0 = mem.read(bufs.s0, j - 1) as usize;
    let w = mem.read(bufs.w, c1 * ALPHABET + c0);

    let h_up = mem.read(bufs.h, layout.addr(i - 1, j));
    let h_diag = mem.read(bufs.h, layout.addr(i - 1, j - 1));
    let h_left = mem.read(bufs.h, layout.addr(i, j - 1));

    let e = (h_up - GAP_OPEN).max(mem.read(bufs.e, j - 1) - GAP_EXTEND);
    mem.write(bufs.e, j - 1, e);
    let f = (h_left - GAP_OPEN).max(mem.read(bufs.f, i - 1) - GAP_EXTEND);
    mem.write(bufs.f, i - 1, f);

    let h = 0.0f32.max(h_diag + w).max(e).max(f);
    mem.write(bufs.h, layout.addr(i, j), h);
    mem.alu(ALU_BASE + extra_alu);
    mem.branch(BRANCHES);
    h
}

/// Run the kernel and return the best local-alignment score.
///
/// All variants return bit-identical scores.
///
/// # Panics
///
/// Panics if string lengths do not match the configuration or are zero.
pub fn run<M: Memory>(
    mem: &mut M,
    variant: Variant,
    cfg: &PsmConfig,
    s0: &[u8],
    s1: &[u8],
    table: &WeightTable,
) -> f32 {
    assert_eq!(s0.len(), cfg.n0, "s0 length must match configuration");
    assert_eq!(s1.len(), cfg.n1, "s1 length must match configuration");
    assert!(cfg.n0 > 0 && cfg.n1 > 0, "degenerate problem size");
    match variant {
        Variant::Natural => sweep(
            mem,
            cfg,
            s0,
            s1,
            table,
            HLayout::Full { stride: cfg.n0 + 1 },
            false,
        ),
        Variant::NaturalTiled => sweep(
            mem,
            cfg,
            s0,
            s1,
            table,
            HLayout::Full { stride: cfg.n0 + 1 },
            true,
        ),
        Variant::OvMapped => sweep(mem, cfg, s0, s1, table, HLayout::Diag { n1: cfg.n1 }, false),
        Variant::OvMappedTiled => {
            sweep(mem, cfg, s0, s1, table, HLayout::Diag { n1: cfg.n1 }, true)
        }
        Variant::StorageOptimized => storage_optimized(mem, cfg, s0, s1, table),
    }
}

fn sweep<M: Memory>(
    mem: &mut M,
    cfg: &PsmConfig,
    s0: &[u8],
    s1: &[u8],
    table: &WeightTable,
    layout: HLayout,
    tiled: bool,
) -> f32 {
    let (n0, n1) = (cfg.n0, cfg.n1);
    let (s0b, s1b, wb) = load_tables(mem, s0, s1, table);
    let h = mem.alloc(layout.cells(n0, n1));
    let e = mem.alloc(n0);
    let f = mem.alloc(n1);
    let bufs = PsmBufs {
        h,
        e,
        f,
        s0: s0b,
        s1: s1b,
        w: wb,
    };
    let extra_alu = if matches!(layout, HLayout::Full { .. }) {
        Variant::Natural.index_alu()
    } else {
        Variant::OvMapped.index_alu()
    };

    // Borders: H row 0 and column 0 are zero; E and F start at −∞ so the
    // first max in each chain picks the H-derived branch.
    for j in 0..=n0 {
        mem.write(bufs.h, layout.addr(0, j), 0.0);
    }
    for i in 0..=n1 {
        mem.write(bufs.h, layout.addr(i, 0), 0.0);
    }
    for j in 0..n0 {
        mem.write(bufs.e, j, NEG);
    }
    for i in 0..n1 {
        mem.write(bufs.f, i, NEG);
    }

    let mut best = 0.0f32;
    if tiled {
        let (ti, tj) = cfg.tile_shape();
        let mut ib = 1;
        while ib <= n1 {
            let ie = (ib + ti - 1).min(n1);
            let mut jb = 1;
            while jb <= n0 {
                let je = (jb + tj - 1).min(n0);
                for i in ib..=ie {
                    for j in jb..=je {
                        best = best.max(cell(mem, &bufs, layout, extra_alu, i, j));
                    }
                }
                jb = je + 1;
            }
            ib = ie + 1;
        }
    } else {
        for i in 1..=n1 {
            for j in 1..=n0 {
                best = best.max(cell(mem, &bufs, layout, extra_alu, i, j));
            }
        }
    }
    best
}

fn storage_optimized<M: Memory>(
    mem: &mut M,
    cfg: &PsmConfig,
    s0: &[u8],
    s1: &[u8],
    table: &WeightTable,
) -> f32 {
    let (n0, n1) = (cfg.n0, cfg.n1);
    let (s0b, s1b, wb) = load_tables(mem, s0, s1, table);
    // Rolling storage (Table 2: 2n₀ + 3): the previous H row, the E row,
    // and three scalars (h_diag, h_left, f).
    let h_row = mem.alloc(n0 + 1); // H[i-1][0..=n0], overwritten in place
    let e_row = mem.alloc(n0);
    let extra_alu = Variant::StorageOptimized.index_alu();

    for j in 0..=n0 {
        mem.write(h_row, j, 0.0);
    }
    for j in 0..n0 {
        mem.write(e_row, j, NEG);
    }

    let mut best = 0.0f32;
    for i in 1..=n1 {
        let c1 = mem.read(s1b, i - 1) as usize;
        let mut h_diag = mem.read(h_row, 0); // H[i-1][0] = 0
        let mut h_left = 0.0f32; // H[i][0]
        let mut f = NEG; // F[i][0]
        for j in 1..=n0 {
            let c0 = mem.read(s0b, j - 1) as usize;
            let w = mem.read(wb, c1 * ALPHABET + c0);
            let h_up = mem.read(h_row, j); // still H[i-1][j]
            let e = (h_up - GAP_OPEN).max(mem.read(e_row, j - 1) - GAP_EXTEND);
            mem.write(e_row, j - 1, e);
            f = (h_left - GAP_OPEN).max(f - GAP_EXTEND);
            let h = 0.0f32.max(h_diag + w).max(e).max(f);
            h_diag = h_up;
            h_left = h;
            mem.write(h_row, j, h);
            mem.alu(ALU_BASE + extra_alu);
            mem.branch(BRANCHES);
            best = best.max(h);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::{PlainMemory, TracedMemory};
    use crate::workloads;
    use uov_memsim::machines;

    fn reference(s0: &[u8], s1: &[u8], table: &WeightTable) -> f32 {
        // Straightforward full-matrix Gotoh.
        let (n0, n1) = (s0.len(), s1.len());
        let mut h = vec![vec![0.0f32; n0 + 1]; n1 + 1];
        let mut e = vec![vec![NEG; n0 + 1]; n1 + 1];
        let mut f = vec![vec![NEG; n0 + 1]; n1 + 1];
        let mut best = 0.0f32;
        for i in 1..=n1 {
            for j in 1..=n0 {
                e[i][j] = (h[i - 1][j] - GAP_OPEN).max(e[i - 1][j] - GAP_EXTEND);
                f[i][j] = (h[i][j - 1] - GAP_OPEN).max(f[i][j - 1] - GAP_EXTEND);
                let w = table.score(s1[i - 1], s0[j - 1]);
                h[i][j] = 0.0f32.max(h[i - 1][j - 1] + w).max(e[i][j]).max(f[i][j]);
                best = best.max(h[i][j]);
            }
        }
        best
    }

    fn setup(n0: usize, n1: usize) -> (Vec<u8>, Vec<u8>, WeightTable) {
        (
            workloads::random_protein(n0, 100),
            workloads::random_protein(n1, 200),
            WeightTable::synthetic(42),
        )
    }

    #[test]
    fn all_variants_match_reference_bitwise() {
        let (s0, s1, table) = setup(37, 23);
        let want = reference(&s0, &s1, &table);
        assert!(want > 0.0, "random proteins should align somewhere");
        for variant in Variant::all() {
            let cfg = PsmConfig {
                n0: 37,
                n1: 23,
                tile: Some((4, 8)),
            };
            let got = run(&mut PlainMemory::new(), variant, &cfg, &s0, &s1, &table);
            assert_eq!(got, want, "variant {variant:?} diverged");
        }
    }

    #[test]
    fn identical_strings_score_diagonal_sum() {
        let table = WeightTable::synthetic(7);
        let s: Vec<u8> = (0..10).map(|k| k % ALPHABET as u8).collect();
        let want: f32 = s.iter().map(|&c| table.score(c, c)).sum();
        let cfg = PsmConfig {
            n0: 10,
            n1: 10,
            tile: None,
        };
        let got = run(
            &mut PlainMemory::new(),
            Variant::Natural,
            &cfg,
            &s,
            &s,
            &table,
        );
        assert_eq!(got, want, "perfect self-alignment sums the diagonal");
    }

    #[test]
    fn single_character_strings() {
        let table = WeightTable::synthetic(3);
        for variant in Variant::all() {
            let cfg = PsmConfig {
                n0: 1,
                n1: 1,
                tile: Some((1, 1)),
            };
            let got = run(&mut PlainMemory::new(), variant, &cfg, &[5], &[5], &table);
            assert_eq!(got, table.score(5, 5).max(0.0));
        }
    }

    #[test]
    fn asymmetric_sizes_and_ragged_tiles() {
        let (s0, s1, table) = setup(61, 7);
        let want = reference(&s0, &s1, &table);
        for variant in [Variant::NaturalTiled, Variant::OvMappedTiled] {
            for tile in [(2, 9), (7, 61), (3, 64), (1, 1)] {
                let cfg = PsmConfig {
                    n0: 61,
                    n1: 7,
                    tile: Some(tile),
                };
                let got = run(&mut PlainMemory::new(), variant, &cfg, &s0, &s1, &table);
                assert_eq!(got, want, "variant {variant:?} tile {tile:?}");
            }
        }
    }

    #[test]
    fn traced_matches_plain() {
        let (s0, s1, table) = setup(32, 32);
        let cfg = PsmConfig {
            n0: 32,
            n1: 32,
            tile: None,
        };
        let plain = run(
            &mut PlainMemory::new(),
            Variant::OvMapped,
            &cfg,
            &s0,
            &s1,
            &table,
        );
        let mut traced = TracedMemory::new(machines::ultra_2());
        let got = run(&mut traced, Variant::OvMapped, &cfg, &s0, &s1, &table);
        assert_eq!(got, plain);
        assert!(traced.machine().stats().accesses > 32 * 32 * 8);
    }

    #[test]
    fn storage_cells_table2() {
        assert_eq!(storage_cells(Variant::Natural, 200, 300), 200 * 300 + 500);
        assert_eq!(storage_cells(Variant::OvMapped, 200, 300), 1001);
        assert_eq!(storage_cells(Variant::StorageOptimized, 200, 300), 403);
    }

    #[test]
    fn ov_allocation_matches_formula() {
        // The OV sweep's actual H+E+F allocation equals Table 2's count.
        let layout = HLayout::Diag { n1: 9 };
        assert_eq!(
            layout.cells(13, 9) + 13 + 9,
            storage_cells(Variant::OvMapped, 13, 9) as usize
        );
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<_> = Variant::all().iter().map(|v| v.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 5);
    }
}
