//! Memory backends: plain computation vs. traced simulation.
//!
//! Kernels are written once, generic over [`Memory`]. With
//! [`PlainMemory`] the abstraction compiles away to `Vec` indexing; with
//! [`TracedMemory`] every access additionally drives a simulated machine,
//! so one kernel source yields both wall-clock numbers and deterministic
//! cycles-per-iteration curves.

use uov_memsim::Machine;

/// Handle to an allocated buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Buf {
    id: u32,
}

/// The memory abstraction kernels run against.
///
/// `alu`/`branch` charge instruction costs on simulating backends and are
/// free on [`PlainMemory`].
pub trait Memory {
    /// Allocate a zero-initialised buffer of `len` f32 cells.
    fn alloc(&mut self, len: usize) -> Buf;

    /// Load `buf[idx]`.
    fn read(&mut self, buf: Buf, idx: usize) -> f32;

    /// Store `buf[idx] = v`.
    fn write(&mut self, buf: Buf, idx: usize, v: f32);

    /// Charge `n` arithmetic operations (free on plain memory).
    #[inline]
    fn alu(&mut self, _n: u64) {}

    /// Charge `n` hard-to-predict branches (free on plain memory).
    #[inline]
    fn branch(&mut self, _n: u64) {}
}

/// Values only: the fastest backend, used for correctness tests and
/// wall-clock benchmarks.
#[derive(Debug, Default)]
pub struct PlainMemory {
    bufs: Vec<Vec<f32>>,
}

impl PlainMemory {
    /// An empty backend.
    pub fn new() -> Self {
        PlainMemory::default()
    }

    /// Borrow a buffer's contents (for result extraction in tests).
    ///
    /// # Panics
    ///
    /// Panics if `buf` was not allocated by this backend.
    pub fn contents(&self, buf: Buf) -> &[f32] {
        &self.bufs[buf.id as usize]
    }
}

impl Memory for PlainMemory {
    fn alloc(&mut self, len: usize) -> Buf {
        self.bufs.push(vec![0.0; len]);
        Buf {
            id: (self.bufs.len() - 1) as u32,
        }
    }

    #[inline]
    fn read(&mut self, buf: Buf, idx: usize) -> f32 {
        self.bufs[buf.id as usize][idx]
    }

    #[inline]
    fn write(&mut self, buf: Buf, idx: usize, v: f32) {
        self.bufs[buf.id as usize][idx] = v;
    }
}

/// Values plus a simulated machine: every access is traced at a distinct
/// page-aligned base address per buffer, so buffers never falsely share
/// cache lines.
#[derive(Debug)]
pub struct TracedMemory {
    bufs: Vec<Vec<f32>>,
    bases: Vec<u64>,
    next_base: u64,
    machine: Machine,
}

/// Bytes per simulated array element (the paper's kernels are C `float`s).
pub const ELEM_BYTES: u64 = 4;

impl TracedMemory {
    /// Wrap a machine. The machine should be freshly reset (cold caches).
    pub fn new(machine: Machine) -> Self {
        TracedMemory {
            bufs: Vec::new(),
            bases: Vec::new(),
            next_base: 0,
            machine,
        }
    }

    /// The wrapped machine's accumulated statistics.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Consume the backend, returning the machine (for stats extraction).
    pub fn into_machine(self) -> Machine {
        self.machine
    }

    /// Borrow a buffer's contents.
    ///
    /// # Panics
    ///
    /// Panics if `buf` was not allocated by this backend.
    pub fn contents(&self, buf: Buf) -> &[f32] {
        &self.bufs[buf.id as usize]
    }

    #[inline]
    fn addr(&self, buf: Buf, idx: usize) -> u64 {
        self.bases[buf.id as usize] + idx as u64 * ELEM_BYTES
    }
}

impl Memory for TracedMemory {
    fn alloc(&mut self, len: usize) -> Buf {
        const PAGE: u64 = 8 << 10; // ≥ the largest preset page size
                                   // Stagger buffer starts by a few cache lines, as a real allocator
                                   // would: without this every buffer begins at the same cache set
                                   // and direct-mapped caches conflict pathologically.
        let stagger = (self.bufs.len() as u64 % 13) * 192;
        self.bufs.push(vec![0.0; len]);
        self.bases.push(self.next_base + stagger);
        let bytes = (len as u64 * ELEM_BYTES + stagger).max(1);
        self.next_base += bytes.div_ceil(PAGE) * PAGE + PAGE;
        Buf {
            id: (self.bufs.len() - 1) as u32,
        }
    }

    #[inline]
    fn read(&mut self, buf: Buf, idx: usize) -> f32 {
        self.machine.read(self.addr(buf, idx));
        self.bufs[buf.id as usize][idx]
    }

    #[inline]
    fn write(&mut self, buf: Buf, idx: usize, v: f32) {
        self.machine.write(self.addr(buf, idx));
        self.bufs[buf.id as usize][idx] = v;
    }

    #[inline]
    fn alu(&mut self, n: u64) {
        self.machine.alu(n);
    }

    #[inline]
    fn branch(&mut self, n: u64) {
        self.machine.branch(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uov_memsim::machines;

    #[test]
    fn plain_memory_round_trip() {
        let mut m = PlainMemory::new();
        let a = m.alloc(4);
        let b = m.alloc(2);
        m.write(a, 3, 7.0);
        m.write(b, 0, -1.0);
        assert_eq!(m.read(a, 3), 7.0);
        assert_eq!(m.read(a, 0), 0.0);
        assert_eq!(m.read(b, 0), -1.0);
        assert_eq!(m.contents(a), &[0.0, 0.0, 0.0, 7.0]);
    }

    #[test]
    fn traced_memory_counts_accesses_and_matches_values() {
        let mut m = TracedMemory::new(machines::pentium_pro());
        let a = m.alloc(128);
        for i in 0..128 {
            m.write(a, i, i as f32);
        }
        for i in 0..128 {
            assert_eq!(m.read(a, i), i as f32);
        }
        assert_eq!(m.machine().stats().accesses, 256);
        assert!(m.machine().cycles() > 0);
    }

    #[test]
    fn buffers_do_not_share_pages() {
        let mut m = TracedMemory::new(machines::pentium_pro());
        let a = m.alloc(1);
        let b = m.alloc(1);
        assert!(m.addr(b, 0) - m.addr(a, 0) >= 8 << 10);
    }

    #[test]
    fn plain_alu_is_free() {
        let mut m = PlainMemory::new();
        m.alu(1_000_000);
        m.branch(1_000_000);
        // No counters to check — the point is that it compiles to nothing
        // and doesn't panic.
    }
}
