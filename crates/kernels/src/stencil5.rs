//! The 5-point one-dimensional stencil (paper §5, Table 1, Figures 5, 7,
//! 9–11).
//!
//! A length-`L` array evolves over `T` time steps; each new value is a
//! weighted average of the five neighbours in the previous time step
//! (indices clamped at the ends). The flow stencil is
//! `{(1,-2), (1,-1), (1,0), (1,1), (1,2)}`, its optimal UOV is `(2,0)`
//! (Figure 5), and rectangular tiling is legal only after skewing by 2.
//!
//! Storage variants (Table 1):
//!
//! | variant            | temporary storage | tileable |
//! |--------------------|-------------------|----------|
//! | natural            | `T·L`             | yes (skewed) |
//! | OV-mapped          | `2·L`             | yes (skewed) |
//! | storage-optimized  | `L + 3`           | no |
//!
//! Every variant computes each output element with the identical
//! expression, so results are **bit-for-bit equal** across variants and
//! schedules — asserted by the test suite.

use crate::mem::{Buf, Memory};

/// The five stencil weights (a smoothing kernel; sums to 1 so values stay
/// bounded over arbitrarily many time steps).
pub const WEIGHTS: [f32; 5] = [0.1, 0.2, 0.4, 0.2, 0.1];

/// Arithmetic operations per inner iteration (5 multiplies + 4 adds).
pub const ALU_BASE: u64 = 9;

/// Storage variant of the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Full `T×L` array expansion, time-major.
    Natural,
    /// Natural storage, skew-2 tiled traversal.
    NaturalTiled,
    /// UOV `(2,0)`, the two rows stored consecutively (`addr = x + (t mod 2)·L`).
    OvBlocked,
    /// UOV `(2,0)`, the two rows interleaved (`addr = 2x + (t mod 2)`, Figure 5).
    OvInterleaved,
    /// Blocked OV storage, skew-2 tiled traversal.
    OvBlockedTiled,
    /// Interleaved OV storage, skew-2 tiled traversal.
    OvInterleavedTiled,
    /// In-place update with three scalar temporaries; lexicographic
    /// schedule only.
    StorageOptimized,
}

impl Variant {
    /// All variants, in the paper's presentation order.
    pub fn all() -> [Variant; 7] {
        [
            Variant::StorageOptimized,
            Variant::Natural,
            Variant::NaturalTiled,
            Variant::OvBlocked,
            Variant::OvBlockedTiled,
            Variant::OvInterleaved,
            Variant::OvInterleavedTiled,
        ]
    }

    /// Short label for experiment output (matches the paper's legends).
    pub fn label(&self) -> &'static str {
        match self {
            Variant::Natural => "Natural",
            Variant::NaturalTiled => "Natural Tiled",
            Variant::OvBlocked => "OV-Mapped",
            Variant::OvInterleaved => "OV-Mapped Interleaved",
            Variant::OvBlockedTiled => "OV-Mapped Tiled",
            Variant::OvInterleavedTiled => "OV-Mapped Interleaved Tiled",
            Variant::StorageOptimized => "Storage Optimized",
        }
    }

    /// Per-iteration address-arithmetic overhead in ALU operations —
    /// OV mappings cost about as much as ordinary array indexing (§4), the
    /// interleaved layout pays one extra shift.
    fn index_alu(&self) -> u64 {
        match self {
            Variant::Natural | Variant::NaturalTiled => 2,
            Variant::OvBlocked | Variant::OvBlockedTiled => 2,
            Variant::OvInterleaved | Variant::OvInterleavedTiled => 3,
            Variant::StorageOptimized => 2,
        }
    }

    /// Whether this variant runs a skew-tiled schedule.
    pub fn is_tiled(&self) -> bool {
        matches!(
            self,
            Variant::NaturalTiled | Variant::OvBlockedTiled | Variant::OvInterleavedTiled
        )
    }
}

/// Problem configuration.
#[derive(Debug, Clone)]
pub struct Stencil5Config {
    /// Array length `L`.
    pub len: usize,
    /// Number of time steps `T ≥ 1`.
    pub time_steps: usize,
    /// Tile shape `(tile_t, tile_u)` in skewed coordinates (`u = x + 2t`);
    /// `None` uses a default sized for an 8 KB L1.
    pub tile: Option<(usize, usize)>,
}

impl Stencil5Config {
    /// Tile shape to use (defaults target an 8 KB L1: 1024 floats wide).
    pub fn tile_shape(&self) -> (usize, usize) {
        self.tile.unwrap_or((self.time_steps.min(32), 1024))
    }
}

/// Temporary storage cells of a variant — the Table 1 formulas.
///
/// # Examples
///
/// ```
/// use uov_kernels::stencil5::{storage_cells, Variant};
/// assert_eq!(storage_cells(Variant::Natural, 1000, 8), 8000);
/// assert_eq!(storage_cells(Variant::OvInterleaved, 1000, 8), 2000);
/// assert_eq!(storage_cells(Variant::StorageOptimized, 1000, 8), 1003);
/// ```
pub fn storage_cells(variant: Variant, len: u64, time_steps: u64) -> u64 {
    match variant {
        Variant::Natural | Variant::NaturalTiled => time_steps * len,
        Variant::OvBlocked
        | Variant::OvInterleaved
        | Variant::OvBlockedTiled
        | Variant::OvInterleavedTiled => 2 * len,
        Variant::StorageOptimized => len + 3,
    }
}

#[inline]
fn clamp(x: i64, len: usize) -> usize {
    x.clamp(0, len as i64 - 1) as usize
}

/// Run the kernel: evolve `input` over `cfg.time_steps` steps and return
/// the final row.
///
/// All variants return bit-identical results.
///
/// # Panics
///
/// Panics if `input.len() != cfg.len`, or `len == 0`, or `time_steps == 0`.
pub fn run<M: Memory>(
    mem: &mut M,
    variant: Variant,
    cfg: &Stencil5Config,
    input: &[f32],
) -> Vec<f32> {
    assert_eq!(
        input.len(),
        cfg.len,
        "input length must match configuration"
    );
    assert!(cfg.len > 0 && cfg.time_steps > 0, "degenerate problem size");
    match variant {
        Variant::Natural => natural(mem, cfg, input, false),
        Variant::NaturalTiled => natural(mem, cfg, input, true),
        Variant::OvBlocked => ov(mem, cfg, input, false, false),
        Variant::OvInterleaved => ov(mem, cfg, input, true, false),
        Variant::OvBlockedTiled => ov(mem, cfg, input, false, true),
        Variant::OvInterleavedTiled => ov(mem, cfg, input, true, true),
        Variant::StorageOptimized => storage_optimized(mem, cfg, input),
    }
}

/// Load the input into a traced buffer (both the natural and OV versions
/// read the 1-D input array when computing the first row, §5).
fn load_input<M: Memory>(mem: &mut M, input: &[f32]) -> Buf {
    let buf = mem.alloc(input.len());
    for (x, &v) in input.iter().enumerate() {
        mem.write(buf, x, v);
    }
    buf
}

/// One cell: `out = Σ w_k · prev[clamp(x+k)]` where `prev` is read through
/// `read_prev(clamped_x)`.
#[inline]
fn cell<M: Memory>(
    mem: &mut M,
    len: usize,
    x: usize,
    alu: u64,
    mut read_prev: impl FnMut(&mut M, usize) -> f32,
) -> f32 {
    let mut acc = 0.0f32;
    for (k, w) in (-2i64..=2).zip(WEIGHTS) {
        let xx = clamp(x as i64 + k, len);
        acc += w * read_prev(mem, xx);
    }
    mem.alu(ALU_BASE + alu);
    acc
}

/// Skew-2 tiled traversal: visit `(t, x)` tile by tile in skewed
/// coordinates `u = x + 2t`; `body(t, x)` runs once per iteration.
fn skewed_tiles(
    time_steps: usize,
    len: usize,
    (tile_t, tile_u): (usize, usize),
    mut body: impl FnMut(usize, usize),
) {
    let t_lo = 1i64;
    let t_hi = time_steps as i64;
    let u_lo = 2 * t_lo; // x = 0 at t = t_lo
    let u_hi = (len as i64 - 1) + 2 * t_hi;
    let mut tb = t_lo;
    while tb <= t_hi {
        let te = (tb + tile_t as i64 - 1).min(t_hi);
        let mut ub = u_lo;
        while ub <= u_hi {
            let ue = (ub + tile_u as i64 - 1).min(u_hi);
            for t in tb..=te {
                for u in ub..=ue {
                    let x = u - 2 * t;
                    if x >= 0 && x < len as i64 {
                        body(t as usize, x as usize);
                    }
                }
            }
            ub = ue + 1;
        }
        tb = te + 1;
    }
}

fn natural<M: Memory>(mem: &mut M, cfg: &Stencil5Config, input: &[f32], tiled: bool) -> Vec<f32> {
    let (len, t_steps) = (cfg.len, cfg.time_steps);
    let input_buf = load_input(mem, input);
    // Rows 1..=T of the expanded array; row t lives at (t-1)·L.
    let a = mem.alloc(t_steps * len);
    let alu = Variant::Natural.index_alu();
    let body = |mem: &mut M, t: usize, x: usize| {
        let v = cell(mem, len, x, alu, |m, xx| {
            if t == 1 {
                m.read(input_buf, xx)
            } else {
                m.read(a, (t - 2) * len + xx)
            }
        });
        mem.write(a, (t - 1) * len + x, v);
    };
    if tiled {
        // SAFETY of the borrow dance: skewed_tiles only needs FnMut.
        let mem_ref = mem;
        skewed_tiles(t_steps, len, cfg.tile_shape(), |t, x| body(mem_ref, t, x));
        let mem = mem_ref;
        (0..len)
            .map(|x| mem.read(a, (t_steps - 1) * len + x))
            .collect()
    } else {
        for t in 1..=t_steps {
            for x in 0..len {
                body(mem, t, x);
            }
        }
        (0..len)
            .map(|x| mem.read(a, (t_steps - 1) * len + x))
            .collect()
    }
}

fn ov<M: Memory>(
    mem: &mut M,
    cfg: &Stencil5Config,
    input: &[f32],
    interleaved: bool,
    tiled: bool,
) -> Vec<f32> {
    let (len, t_steps) = (cfg.len, cfg.time_steps);
    let input_buf = load_input(mem, input);
    let a = mem.alloc(2 * len); // UOV (2,0): two rows
    let variant = if interleaved {
        Variant::OvInterleaved
    } else {
        Variant::OvBlocked
    };
    let alu = variant.index_alu();
    // SMov (§4.2): interleaved addr = 2x + (t mod 2); blocked addr = x + (t mod 2)·L.
    let addr = move |t: usize, x: usize| -> usize {
        if interleaved {
            2 * x + (t & 1)
        } else {
            x + (t & 1) * len
        }
    };
    let body = |mem: &mut M, t: usize, x: usize| {
        let v = cell(mem, len, x, alu, |m, xx| {
            if t == 1 {
                m.read(input_buf, xx)
            } else {
                m.read(a, addr(t - 1, xx))
            }
        });
        mem.write(a, addr(t, x), v);
    };
    if tiled {
        let mem_ref = mem;
        skewed_tiles(t_steps, len, cfg.tile_shape(), |t, x| body(mem_ref, t, x));
        let mem = mem_ref;
        (0..len).map(|x| mem.read(a, addr(t_steps, x))).collect()
    } else {
        for t in 1..=t_steps {
            for x in 0..len {
                body(mem, t, x);
            }
        }
        (0..len).map(|x| mem.read(a, addr(t_steps, x))).collect()
    }
}

fn storage_optimized<M: Memory>(mem: &mut M, cfg: &Stencil5Config, input: &[f32]) -> Vec<f32> {
    let (len, t_steps) = (cfg.len, cfg.time_steps);
    // The input/output array itself, updated in place…
    let a = load_input(mem, input);
    let alu = Variant::StorageOptimized.index_alu();
    // …plus exactly three scalar temporaries (Table 1: L + 3).
    for _t in 1..=t_steps {
        let first = mem.read(a, 0);
        let mut om1 = first; // old A[x-1] (clamped at the left edge)
        let mut om2 = first; // old A[x-2]
        for x in 0..len {
            let c = mem.read(a, x); // old A[x]
            let p1 = mem.read(a, clamp(x as i64 + 1, len));
            let p2 = mem.read(a, clamp(x as i64 + 2, len));
            let v = WEIGHTS[0] * om2
                + WEIGHTS[1] * om1
                + WEIGHTS[2] * c
                + WEIGHTS[3] * p1
                + WEIGHTS[4] * p2;
            mem.alu(ALU_BASE + alu + 2); // +2: the scalar rotation below
            om2 = om1;
            om1 = c;
            mem.write(a, x, v);
        }
    }
    (0..len).map(|x| mem.read(a, x)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::{PlainMemory, TracedMemory};
    use crate::workloads;
    use uov_memsim::machines;

    fn reference(input: &[f32], t_steps: usize) -> Vec<f32> {
        let len = input.len();
        let mut prev = input.to_vec();
        for _ in 0..t_steps {
            let mut next = vec![0.0f32; len];
            for (x, slot) in next.iter_mut().enumerate() {
                let mut acc = 0.0f32;
                for (k, w) in (-2i64..=2).zip(WEIGHTS) {
                    acc += w * prev[clamp(x as i64 + k, len)];
                }
                *slot = acc;
            }
            prev = next;
        }
        prev
    }

    #[test]
    fn all_variants_match_reference_bitwise() {
        let input = workloads::random_f32(97, 11);
        let want = reference(&input, 6);
        for variant in Variant::all() {
            let cfg = Stencil5Config {
                len: 97,
                time_steps: 6,
                tile: Some((2, 16)),
            };
            let got = run(&mut PlainMemory::new(), variant, &cfg, &input);
            assert_eq!(got, want, "variant {variant:?} diverged");
        }
    }

    #[test]
    fn single_time_step() {
        let input = workloads::random_f32(16, 3);
        let want = reference(&input, 1);
        for variant in Variant::all() {
            let cfg = Stencil5Config {
                len: 16,
                time_steps: 1,
                tile: Some((1, 4)),
            };
            assert_eq!(run(&mut PlainMemory::new(), variant, &cfg, &input), want);
        }
    }

    #[test]
    fn tiny_arrays_with_clamping() {
        // len < stencil radius exercises the clamp paths hard.
        for len in [1usize, 2, 3, 4] {
            let input = workloads::random_f32(len, 5);
            let want = reference(&input, 4);
            for variant in Variant::all() {
                let cfg = Stencil5Config {
                    len,
                    time_steps: 4,
                    tile: Some((2, 2)),
                };
                assert_eq!(
                    run(&mut PlainMemory::new(), variant, &cfg, &input),
                    want,
                    "len {len} variant {variant:?}"
                );
            }
        }
    }

    #[test]
    fn odd_time_step_parity() {
        // Odd T lands the output in the other OV row; must still be right.
        let input = workloads::random_f32(33, 9);
        for t in 1..=5 {
            let want = reference(&input, t);
            for variant in [Variant::OvBlocked, Variant::OvInterleaved] {
                let cfg = Stencil5Config {
                    len: 33,
                    time_steps: t,
                    tile: None,
                };
                assert_eq!(run(&mut PlainMemory::new(), variant, &cfg, &input), want);
            }
        }
    }

    #[test]
    fn traced_run_matches_plain_and_counts() {
        let input = workloads::random_f32(256, 21);
        let cfg = Stencil5Config {
            len: 256,
            time_steps: 4,
            tile: None,
        };
        let plain = run(
            &mut PlainMemory::new(),
            Variant::OvInterleaved,
            &cfg,
            &input,
        );
        let mut traced = TracedMemory::new(machines::pentium_pro());
        let out = run(&mut traced, Variant::OvInterleaved, &cfg, &input);
        assert_eq!(out, plain);
        let stats = traced.machine().stats();
        // 5 reads + 1 write per iteration, plus input load and output read.
        let iters = 256 * 4;
        assert!(stats.accesses as usize >= iters * 6);
        assert!(stats.cycles > 0);
    }

    #[test]
    fn storage_cells_table1() {
        assert_eq!(storage_cells(Variant::Natural, 100, 7), 700);
        assert_eq!(storage_cells(Variant::NaturalTiled, 100, 7), 700);
        assert_eq!(storage_cells(Variant::OvBlocked, 100, 7), 200);
        assert_eq!(storage_cells(Variant::OvBlockedTiled, 100, 7), 200);
        assert_eq!(storage_cells(Variant::StorageOptimized, 100, 7), 103);
    }

    #[test]
    fn ov_variants_use_less_memory_footprint() {
        // Confirm the traced allocation sizes follow Table 1.
        let input = workloads::random_f32(64, 2);
        let cfg = Stencil5Config {
            len: 64,
            time_steps: 8,
            tile: None,
        };
        let mut nat = TracedMemory::new(machines::pentium_pro());
        run(&mut nat, Variant::Natural, &cfg, &input);
        let mut ovm = TracedMemory::new(machines::pentium_pro());
        run(&mut ovm, Variant::OvBlocked, &cfg, &input);
        // natural touches T·L distinct cells; OV touches 2·L.
        assert!(nat.machine().stats().accesses > ovm.machine().stats().accesses / 2);
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<_> = Variant::all().iter().map(|v| v.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 7);
    }
}
