//! A 2-D Jacobi stencil over time — a **three-dimensional** iteration
//! space exercising the d-dimensional generalisation of the paper's
//! machinery (the paper works out 2-D in detail, §4; the theory of §3 is
//! dimension-independent).
//!
//! `A[t,x,y] = Σ w·A[t-1, x±{0,1}, y±{0,1}]` (5-point cross in space,
//! edges clamped). The flow stencil is
//! `{(1,0,0), (1,±1,0), (1,0,±1)}`; its optimal UOV is `(2,0,0)` — the
//! lattice derivation of classic *double buffering*: two `N×N` planes,
//! `addr = plane(x,y) + (t mod 2)·N²`.
//!
//! Variants:
//!
//! | variant            | temporary storage | tileable |
//! |--------------------|-------------------|----------|
//! | natural            | `T·N²`            | yes (skew 1,1) |
//! | OV-mapped          | `2·N²`            | yes (skew 1,1) |
//! | storage-optimized  | `N² + N + 2`      | no |
//!
//! The storage-optimized version updates one plane in place, carrying the
//! previous time step's current row and one scalar — the 2-D analogue of
//! Figure 1(c), and just as untileable.

use crate::mem::{Buf, Memory};

/// Stencil weights: centre and the four cross neighbours (sums to 1).
pub const WEIGHTS: [f32; 5] = [0.6, 0.1, 0.1, 0.1, 0.1];

/// Arithmetic operations per inner iteration.
pub const ALU_BASE: u64 = 9;

/// Storage variant of the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Full `T×N×N` expansion.
    Natural,
    /// UOV `(2,0,0)`: two planes (double buffering, derived).
    Ov,
    /// Two planes, skew-(1,1) tiled traversal.
    OvTiled,
    /// In-place plane with a carried row; lexicographic only.
    StorageOptimized,
}

impl Variant {
    /// All variants.
    pub fn all() -> [Variant; 4] {
        [
            Variant::StorageOptimized,
            Variant::Natural,
            Variant::Ov,
            Variant::OvTiled,
        ]
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Variant::Natural => "Natural",
            Variant::Ov => "OV-Mapped",
            Variant::OvTiled => "OV-Mapped Tiled",
            Variant::StorageOptimized => "Storage Optimized",
        }
    }
}

/// Problem configuration.
#[derive(Debug, Clone)]
pub struct Jacobi2dConfig {
    /// Grid side `N`.
    pub n: usize,
    /// Time steps `T ≥ 1`.
    pub time_steps: usize,
    /// Tile shape `(tile_t, tile_u, tile_v)` in skewed coordinates
    /// (`u = x + t`, `v = y + t`); `None` picks an L1-ish default.
    pub tile: Option<(usize, usize, usize)>,
    /// Extra cells inserted between the two OV planes — the paper's §4
    /// array-padding remark ("it would not be difficult to incorporate
    /// data layout techniques such as array padding"). Power-of-two plane
    /// sizes alias perfectly in direct-mapped caches; a few lines of pad
    /// break the aliasing. Ignored by non-OV variants.
    pub pad: usize,
}

impl Jacobi2dConfig {
    fn tile_shape(&self) -> (usize, usize, usize) {
        self.tile.unwrap_or((self.time_steps.min(8), 32, 32))
    }
}

/// Temporary storage cells per variant.
///
/// ```
/// use uov_kernels::jacobi2d::{storage_cells, Variant};
/// assert_eq!(storage_cells(Variant::Natural, 100, 8), 80_000);
/// assert_eq!(storage_cells(Variant::Ov, 100, 8), 20_000);
/// assert_eq!(storage_cells(Variant::StorageOptimized, 100, 8), 10_102);
/// ```
pub fn storage_cells(variant: Variant, n: u64, time_steps: u64) -> u64 {
    match variant {
        Variant::Natural => time_steps * n * n,
        Variant::Ov | Variant::OvTiled => 2 * n * n,
        Variant::StorageOptimized => n * n + n + 2,
    }
}

#[inline]
fn clamp(c: i64, n: usize) -> usize {
    c.clamp(0, n as i64 - 1) as usize
}

/// Run the kernel over `input` (row-major `N×N`) and return the final
/// plane. All variants are bit-identical.
///
/// # Panics
///
/// Panics if `input.len() != n*n` or a size is zero.
pub fn run<M: Memory>(
    mem: &mut M,
    variant: Variant,
    cfg: &Jacobi2dConfig,
    input: &[f32],
) -> Vec<f32> {
    let n = cfg.n;
    assert_eq!(input.len(), n * n, "input must be an N×N plane");
    assert!(n > 0 && cfg.time_steps > 0, "degenerate problem size");
    match variant {
        Variant::Natural => natural(mem, cfg, input),
        Variant::Ov => ov(mem, cfg, input, false),
        Variant::OvTiled => ov(mem, cfg, input, true),
        Variant::StorageOptimized => storage_optimized(mem, cfg, input),
    }
}

fn load_input<M: Memory>(mem: &mut M, input: &[f32]) -> Buf {
    let buf = mem.alloc(input.len());
    for (i, &v) in input.iter().enumerate() {
        mem.write(buf, i, v);
    }
    buf
}

/// One cell of the cross stencil; `read_prev` resolves `(x, y)` in the
/// previous time plane.
#[inline]
fn cell<M: Memory>(
    mem: &mut M,
    n: usize,
    x: usize,
    y: usize,
    mut read_prev: impl FnMut(&mut M, usize, usize) -> f32,
) -> f32 {
    let c = read_prev(mem, x, y);
    let up = read_prev(mem, clamp(x as i64 - 1, n), y);
    let dn = read_prev(mem, clamp(x as i64 + 1, n), y);
    let lf = read_prev(mem, x, clamp(y as i64 - 1, n));
    let rt = read_prev(mem, x, clamp(y as i64 + 1, n));
    mem.alu(ALU_BASE + 3);
    WEIGHTS[0] * c + WEIGHTS[1] * up + WEIGHTS[2] * dn + WEIGHTS[3] * lf + WEIGHTS[4] * rt
}

fn natural<M: Memory>(mem: &mut M, cfg: &Jacobi2dConfig, input: &[f32]) -> Vec<f32> {
    let (n, t_steps) = (cfg.n, cfg.time_steps);
    let input_buf = load_input(mem, input);
    let a = mem.alloc(t_steps * n * n); // planes 1..=T
    for t in 1..=t_steps {
        for x in 0..n {
            for y in 0..n {
                let v = cell(mem, n, x, y, |m, xx, yy| {
                    if t == 1 {
                        m.read(input_buf, xx * n + yy)
                    } else {
                        m.read(a, (t - 2) * n * n + xx * n + yy)
                    }
                });
                mem.write(a, (t - 1) * n * n + x * n + y, v);
            }
        }
    }
    (0..n * n)
        .map(|i| mem.read(a, (t_steps - 1) * n * n + i))
        .collect()
}

fn ov<M: Memory>(mem: &mut M, cfg: &Jacobi2dConfig, input: &[f32], tiled: bool) -> Vec<f32> {
    let (n, t_steps) = (cfg.n, cfg.time_steps);
    let input_buf = load_input(mem, input);
    // UOV (2,0,0): rows 1..3 of the reduction are the plane coordinates,
    // the residue is t mod 2 — double buffering, derived not assumed.
    let plane = n * n + cfg.pad;
    let a = mem.alloc(2 * plane);
    let addr = move |t: usize, x: usize, y: usize| (t & 1) * plane + x * n + y;
    let body = |mem: &mut M, t: usize, x: usize, y: usize| {
        let v = cell(mem, n, x, y, |m, xx, yy| {
            if t == 1 {
                m.read(input_buf, xx * n + yy)
            } else {
                m.read(a, addr(t - 1, xx, yy))
            }
        });
        mem.write(a, addr(t, x, y), v);
    };
    if tiled {
        // Skew u = x + t, v = y + t; deps become component-wise ≥ 0, so
        // rectangular tiles of the skewed space run legally in lex order.
        let (bt, bu, bv) = cfg.tile_shape();
        let (t_lo, t_hi) = (1i64, t_steps as i64);
        let (u_lo, u_hi) = (t_lo, n as i64 - 1 + t_hi);
        let (v_lo, v_hi) = (t_lo, n as i64 - 1 + t_hi);
        let mut tb = t_lo;
        while tb <= t_hi {
            let te = (tb + bt as i64 - 1).min(t_hi);
            let mut ub = u_lo;
            while ub <= u_hi {
                let ue = (ub + bu as i64 - 1).min(u_hi);
                let mut vb = v_lo;
                while vb <= v_hi {
                    let ve = (vb + bv as i64 - 1).min(v_hi);
                    for t in tb..=te {
                        for u in ub..=ue {
                            let x = u - t;
                            if x < 0 || x >= n as i64 {
                                continue;
                            }
                            for v in vb..=ve {
                                let y = v - t;
                                if y >= 0 && y < n as i64 {
                                    body(mem, t as usize, x as usize, y as usize);
                                }
                            }
                        }
                    }
                    vb = ve + 1;
                }
                ub = ue + 1;
            }
            tb = te + 1;
        }
    } else {
        for t in 1..=t_steps {
            for x in 0..n {
                for y in 0..n {
                    body(mem, t, x, y);
                }
            }
        }
    }
    (0..n)
        .flat_map(|x| (0..n).map(move |y| (x, y)))
        .map(|(x, y)| mem.read(a, addr(t_steps, x, y)))
        .collect()
}

fn storage_optimized<M: Memory>(mem: &mut M, cfg: &Jacobi2dConfig, input: &[f32]) -> Vec<f32> {
    let (n, t_steps) = (cfg.n, cfg.time_steps);
    // One plane updated in place (the input/output array)…
    let a = load_input(mem, input);
    // …plus a carried copy of the previous time step's current row and
    // two scalars (N² + N + 2 cells).
    let prev_row = mem.alloc(n);
    for _t in 1..=t_steps {
        // prev_row starts as the old row −1 (clamped: old row 0).
        for y in 0..n {
            let v = mem.read(a, y);
            mem.write(prev_row, y, v);
        }
        for x in 0..n {
            // Scalars carrying old A[x][y-1] and old A[x][y].
            let mut old_left = mem.read(a, x * n); // old value at y = 0 (clamped)
            for y in 0..n {
                let c = mem.read(a, x * n + y); // old A[x][y] (not yet overwritten)
                let up = mem.read(prev_row, y); // old A[x-1][y] (clamped at x = 0)
                let dn = mem.read(a, clamp(x as i64 + 1, n) * n + y); // not yet overwritten
                let rt = mem.read(a, x * n + clamp(y as i64 + 1, n)); // not yet overwritten
                let lf = if y == 0 { c } else { old_left };
                // Same expression order as `cell` for bit-identity:
                let v = WEIGHTS[0] * c
                    + WEIGHTS[1] * up
                    + WEIGHTS[2] * dn
                    + WEIGHTS[3] * lf
                    + WEIGHTS[4] * rt;
                mem.alu(ALU_BASE + 3 + 2);
                // Preserve old values for the next neighbours.
                old_left = c;
                mem.write(prev_row, y, c);
                mem.write(a, x * n + y, v);
            }
        }
    }
    (0..n * n).map(|i| mem.read(a, i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::{PlainMemory, TracedMemory};
    use crate::workloads;
    use uov_memsim::machines;

    fn reference(input: &[f32], n: usize, t_steps: usize) -> Vec<f32> {
        let mut prev = input.to_vec();
        for _ in 0..t_steps {
            let mut next = vec![0.0f32; n * n];
            for x in 0..n {
                for y in 0..n {
                    let c = prev[x * n + y];
                    let up = prev[clamp(x as i64 - 1, n) * n + y];
                    let dn = prev[clamp(x as i64 + 1, n) * n + y];
                    let lf = prev[x * n + clamp(y as i64 - 1, n)];
                    let rt = prev[x * n + clamp(y as i64 + 1, n)];
                    next[x * n + y] = WEIGHTS[0] * c
                        + WEIGHTS[1] * up
                        + WEIGHTS[2] * dn
                        + WEIGHTS[3] * lf
                        + WEIGHTS[4] * rt;
                }
            }
            prev = next;
        }
        prev
    }

    #[test]
    fn all_variants_match_reference_bitwise() {
        let n = 13;
        let input = workloads::random_f32(n * n, 17);
        let want = reference(&input, n, 5);
        for variant in Variant::all() {
            let cfg = Jacobi2dConfig {
                n,
                time_steps: 5,
                tile: Some((2, 4, 5)),
                pad: 0,
            };
            let got = run(&mut PlainMemory::new(), variant, &cfg, &input);
            assert_eq!(got, want, "variant {variant:?} diverged");
        }
    }

    #[test]
    fn tiny_grids() {
        for n in [1usize, 2, 3] {
            let input = workloads::random_f32(n * n, 3);
            let want = reference(&input, n, 3);
            for variant in Variant::all() {
                let cfg = Jacobi2dConfig {
                    n,
                    time_steps: 3,
                    tile: Some((1, 2, 2)),
                    pad: 0,
                };
                assert_eq!(
                    run(&mut PlainMemory::new(), variant, &cfg, &input),
                    want,
                    "n {n} variant {variant:?}"
                );
            }
        }
    }

    #[test]
    fn odd_and_even_time_steps() {
        let n = 8;
        let input = workloads::random_f32(n * n, 9);
        for t in 1..=4 {
            let want = reference(&input, n, t);
            let cfg = Jacobi2dConfig {
                n,
                time_steps: t,
                tile: None,
                pad: 0,
            };
            assert_eq!(
                run(&mut PlainMemory::new(), Variant::Ov, &cfg, &input),
                want
            );
            assert_eq!(
                run(&mut PlainMemory::new(), Variant::OvTiled, &cfg, &input),
                want
            );
        }
    }

    #[test]
    fn uov_derivation_is_2_0_0() {
        use uov_core::search::{find_best_uov, Objective, SearchConfig};
        use uov_isg::{IVec, Stencil};
        let stencil = Stencil::new(vec![
            IVec::from([1, 0, 0]),
            IVec::from([1, 1, 0]),
            IVec::from([1, -1, 0]),
            IVec::from([1, 0, 1]),
            IVec::from([1, 0, -1]),
        ])
        .unwrap();
        let best = find_best_uov(
            &stencil,
            Objective::ShortestVector,
            &SearchConfig::default(),
        )
        .expect("stencil is in range");
        assert_eq!(best.uov, IVec::from([2, 0, 0]), "double buffering, derived");
    }

    #[test]
    fn traced_run_matches_plain() {
        let n = 24;
        let input = workloads::random_f32(n * n, 5);
        let cfg = Jacobi2dConfig {
            n,
            time_steps: 3,
            tile: None,
            pad: 0,
        };
        let plain = run(&mut PlainMemory::new(), Variant::Ov, &cfg, &input);
        let mut traced = TracedMemory::new(machines::alpha_21164());
        let got = run(&mut traced, Variant::Ov, &cfg, &input);
        assert_eq!(got, plain);
        assert!(traced.machine().stats().accesses as usize >= n * n * 3 * 6);
    }

    #[test]
    fn padding_preserves_results() {
        let n = 10;
        let input = workloads::random_f32(n * n, 31);
        let plain = run(
            &mut PlainMemory::new(),
            Variant::Ov,
            &Jacobi2dConfig {
                n,
                time_steps: 4,
                tile: None,
                pad: 0,
            },
            &input,
        );
        for pad in [1usize, 64, 1000] {
            let padded = run(
                &mut PlainMemory::new(),
                Variant::Ov,
                &Jacobi2dConfig {
                    n,
                    time_steps: 4,
                    tile: None,
                    pad,
                },
                &input,
            );
            assert_eq!(padded, plain, "pad {pad} changed results");
        }
    }

    #[test]
    fn storage_formulas() {
        assert_eq!(storage_cells(Variant::Natural, 64, 10), 40_960);
        assert_eq!(storage_cells(Variant::OvTiled, 64, 10), 8_192);
        assert_eq!(storage_cells(Variant::StorageOptimized, 64, 10), 4_162);
    }
}
