//! Parallel tiled execution on OV-mapped storage — the claim of §1/§2
//! ("[tiling] can also be used as a technique to implement parallelism"),
//! executed on real threads.
//!
//! After skewing, the 5-point stencil's inter-tile dependences are
//! component-wise non-negative, so all tiles on one anti-diagonal of the
//! tile grid are mutually independent and may run concurrently. The
//! interesting part is storage: the threads share **one** `2L`-cell
//! OV-mapped buffer, with no array expansion and no per-thread copies.
//!
//! Why that is race-free is precisely the UOV theorem: any two accesses
//! to the same cell are linked by a storage dependence, UOV-induced
//! storage dependences lie in the transitive closure of the value
//! dependences, value dependences order the tiles, and concurrently
//! scheduled tiles are unordered — so concurrent tiles can never touch a
//! common cell. A non-universal OV would make the code below racy; the
//! test suite cross-checks the parallel result bit-for-bit against every
//! sequential variant.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::stencil5::{Stencil5Config, WEIGHTS};

/// A shared mutable f32 buffer whose disjoint-access discipline is
/// guaranteed by the UOV theorem rather than by the type system.
struct TheoremCell {
    ptr: *mut f32,
    len: usize,
}

// SAFETY: `TheoremCell` is only handed to the wavefront executor below,
// which never lets two concurrent tiles access one cell (see module docs).
unsafe impl Sync for TheoremCell {}

impl TheoremCell {
    #[inline]
    unsafe fn read(&self, idx: usize) -> f32 {
        debug_assert!(idx < self.len);
        unsafe { *self.ptr.add(idx) }
    }

    #[inline]
    unsafe fn write(&self, idx: usize, v: f32) {
        debug_assert!(idx < self.len);
        unsafe { *self.ptr.add(idx) = v };
    }
}

/// Run the 5-point stencil with OV-mapped (blocked) storage, executing
/// each anti-diagonal wavefront of skewed tiles on `threads` worker
/// threads. Returns the final row, bit-identical to the sequential
/// variants.
///
/// # Panics
///
/// Panics if `input.len() != cfg.len`, sizes are zero, or `threads == 0`.
pub fn run_stencil5_wavefront(cfg: &Stencil5Config, input: &[f32], threads: usize) -> Vec<f32> {
    assert_eq!(
        input.len(),
        cfg.len,
        "input length must match configuration"
    );
    assert!(cfg.len > 0 && cfg.time_steps > 0, "degenerate problem size");
    assert!(threads > 0, "need at least one worker");
    let (len, t_steps) = (cfg.len, cfg.time_steps);
    let (tile_t, tile_u) = cfg.tile_shape();
    let (tile_t, tile_u) = (tile_t.max(1) as i64, tile_u.max(1) as i64);

    // OV (2,0) blocked storage: addr = x + (t mod 2)·L.
    let mut buf = vec![0.0f32; 2 * len];
    let shared = TheoremCell {
        ptr: buf.as_mut_ptr(),
        len: buf.len(),
    };
    let addr = |t: i64, x: i64| -> usize { x as usize + ((t & 1) as usize) * len };

    // Tile grid in skewed coordinates u = x + 2t.
    let t_lo = 1i64;
    let t_hi = t_steps as i64;
    let u_lo = 2 * t_lo;
    let u_hi = (len as i64 - 1) + 2 * t_hi;
    let n_trows = (t_hi - t_lo) / tile_t + 1;
    let n_ucols = (u_hi - u_lo) / tile_u + 1;

    let clamp = |x: i64| -> i64 { x.clamp(0, len as i64 - 1) };
    let input_ref: &[f32] = input;

    // One tile, sequential inside.
    let run_tile = |tr: i64, uc: i64| {
        let tb = t_lo + tr * tile_t;
        let te = (tb + tile_t - 1).min(t_hi);
        let ub = u_lo + uc * tile_u;
        let ue = (ub + tile_u - 1).min(u_hi);
        for t in tb..=te {
            for u in ub..=ue {
                let x = u - 2 * t;
                if x < 0 || x >= len as i64 {
                    continue;
                }
                let mut acc = 0.0f32;
                for (k, w) in (-2i64..=2).zip(WEIGHTS) {
                    let xx = clamp(x + k);
                    let v = if t == 1 {
                        input_ref[xx as usize]
                    } else {
                        // SAFETY: reads of the previous time row; any
                        // concurrent writer of this cell would be
                        // dependence-ordered with us (UOV theorem).
                        unsafe { shared.read(addr(t - 1, xx)) }
                    };
                    acc += w * v;
                }
                // SAFETY: as above, for the def-def direction.
                unsafe { shared.write(addr(t, x), acc) };
            }
        }
    };

    // Anti-diagonal wavefronts of the tile grid: every tile on the same
    // diagonal is independent (inter-tile deps are ≥ 0 component-wise
    // with at least one positive component).
    for diag in 0..(n_trows + n_ucols - 1) {
        let tiles: Vec<(i64, i64)> = (0..n_trows)
            .filter_map(|tr| {
                let uc = diag - tr;
                (0..n_ucols).contains(&uc).then_some((tr, uc))
            })
            .collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads.min(tiles.len().max(1)) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&(tr, uc)) = tiles.get(i) else { break };
                    run_tile(tr, uc);
                });
            }
        });
    }

    let final_parity = (t_steps & 1) * len;
    buf[final_parity..final_parity + len].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::PlainMemory;
    use crate::stencil5::{run, Variant};
    use crate::workloads;

    #[test]
    fn parallel_matches_sequential_bitwise() {
        let (len, t_steps) = (4097usize, 9usize);
        let input = workloads::random_f32(len, 77);
        let cfg = Stencil5Config {
            len,
            time_steps: t_steps,
            tile: Some((3, 256)),
        };
        let sequential = run(&mut PlainMemory::new(), Variant::OvBlocked, &cfg, &input);
        for threads in [1usize, 2, 4, 8] {
            let parallel = run_stencil5_wavefront(&cfg, &input, threads);
            assert_eq!(parallel, sequential, "{threads} threads diverged");
        }
    }

    #[test]
    fn many_repetitions_stay_deterministic() {
        // Races, if any existed, would be flaky: hammer the schedule.
        let (len, t_steps) = (513usize, 6usize);
        let input = workloads::random_f32(len, 3);
        let cfg = Stencil5Config {
            len,
            time_steps: t_steps,
            tile: Some((2, 64)),
        };
        let want = run(&mut PlainMemory::new(), Variant::Natural, &cfg, &input);
        for _ in 0..20 {
            assert_eq!(run_stencil5_wavefront(&cfg, &input, 4), want);
        }
    }

    #[test]
    fn tiny_problems_and_single_tiles() {
        for (len, t) in [(1usize, 1usize), (3, 2), (8, 1), (5, 7)] {
            let input = workloads::random_f32(len, 9);
            let cfg = Stencil5Config {
                len,
                time_steps: t,
                tile: Some((2, 4)),
            };
            let want = run(&mut PlainMemory::new(), Variant::OvBlocked, &cfg, &input);
            assert_eq!(
                run_stencil5_wavefront(&cfg, &input, 3),
                want,
                "len {len} T {t}"
            );
        }
    }
}
