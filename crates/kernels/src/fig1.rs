//! The paper's Figure-1 running example, end to end.
//!
//! `A[i,j] = f(A[i-1,j], A[i,j-1], A[i-1,j-1])` over an `n×m` grid: row 0
//! is the input, column 0 a constant, only row `n` is live-out. The three
//! storage treatments of Figure 1:
//!
//! | version            | storage    | tileable |
//! |--------------------|------------|----------|
//! | natural (1a)       | `n·m`      | yes      |
//! | OV-mapped (1b)     | `n+m+1`    | yes      |
//! | storage-opt (1c)   | `m+2`      | no       |
//!
//! This module wires the whole pipeline together: the loop comes from
//! `uov-loopir`, its stencil from value-based dependence analysis, the UOV
//! from `uov-core`'s search, the mapping from `uov-storage`, and execution
//! from the reference interpreter — it is the machine-checked version of
//! the paper's §1.

use uov_core::search::{find_best_uov, Objective, SearchConfig};
use uov_isg::{IVec, RectDomain, Stencil};
use uov_loopir::{analysis, examples, interp, LoopNest};
use uov_storage::{Layout, OvMap, StorageMap};

/// Everything the compiler pipeline derives for the Figure-1 loop.
#[derive(Debug)]
pub struct Fig1Pipeline {
    /// The loop nest (from `uov-loopir`).
    pub nest: LoopNest,
    /// Its value-dependence stencil `{(1,0),(0,1),(1,1)}`.
    pub stencil: Stencil,
    /// The optimal UOV `(1,1)` found by branch-and-bound.
    pub uov: IVec,
    /// The OV storage mapping over the bordered domain.
    pub map: OvMap,
}

/// Storage cell counts of the three Figure-1 versions.
///
/// ```
/// use uov_kernels::fig1::storage_cells;
/// assert_eq!(storage_cells(6, 4), (24, 11, 6));
/// ```
pub fn storage_cells(n: u64, m: u64) -> (u64, u64, u64) {
    (n * m, n + m + 1, m + 2)
}

/// Run the full pipeline for an `n×m` instance.
///
/// # Panics
///
/// Panics if `n < 1` or `m < 1`, or if any pipeline stage disagrees with
/// the paper (the derivations are asserted, not assumed).
pub fn pipeline(n: i64, m: i64) -> Fig1Pipeline {
    let nest = examples::fig1_nest(n, m);
    let stencil = analysis::flow_stencil(&nest, 0).expect("Fig-1 loop is regular");
    let best = find_best_uov(
        &stencil,
        Objective::ShortestVector,
        &SearchConfig::default(),
    )
    .expect("Fig-1 stencil is in range");
    assert_eq!(best.uov, IVec::from([1, 1]), "the paper's UOV for Figure 1");
    // The mapping covers the bordered domain (inputs in row 0 / column 0),
    // giving the paper's n + m + 1 cells.
    let bordered = RectDomain::new(IVec::from([0, 0]), IVec::from([n, m]));
    let map = OvMap::new(&bordered, best.uov.clone(), Layout::Interleaved);
    assert_eq!(map.size() as i64, n + m + 1);
    Fig1Pipeline {
        nest,
        stencil,
        uov: best.uov,
        map,
    }
}

/// Execute the natural and OV-mapped versions under `order` and return
/// the live-out row (row `n`), asserting they agree.
///
/// # Panics
///
/// Panics if the mapped run diverges from the natural run — i.e. if the
/// UOV mapping failed to preserve semantics.
pub fn run_and_check(pipe: &Fig1Pipeline, order: &[IVec]) -> Vec<f64> {
    let domain = pipe.nest.domain();
    let n = domain.hi()[0];
    let m = domain.hi()[1];
    let input = |_: usize, e: &IVec| -> f64 {
        if e[0] == 0 {
            1.0 + 0.1 * e[1] as f64 // initialized zero-th row
        } else {
            0.5 // constant zero-th column
        }
    };
    let live_out: Vec<(usize, IVec)> = (1..=m).map(|j| (0usize, IVec::from([n, j]))).collect();
    let outputs = interp::assert_mapping_preserves_semantics(
        &pipe.nest, 0, &pipe.map, order, &input, &live_out,
    );
    (1..=m)
        .map(|j| outputs[&(0usize, IVec::from([n, j]))])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use uov_isg::IterationDomain as _;
    use uov_schedule::{random_topological_order, LoopSchedule};

    #[test]
    fn pipeline_derives_paper_artifacts() {
        let pipe = pipeline(6, 4);
        assert_eq!(pipe.stencil.len(), 3);
        assert_eq!(pipe.uov, IVec::from([1, 1]));
        assert_eq!(pipe.map.size(), 11);
    }

    #[test]
    fn storage_cell_ordering_matches_fig1() {
        // natural > OV-mapped > storage-optimized for any reasonable size.
        for (n, m) in [(4, 4), (10, 3), (100, 100)] {
            let (nat, ov, opt) = storage_cells(n, m);
            assert!(nat > ov, "n={n} m={m}");
            assert!(ov > opt, "n={n} m={m}");
        }
    }

    #[test]
    fn runs_agree_across_schedules() {
        let pipe = pipeline(5, 4);
        let lex: Vec<IVec> = pipe.nest.domain().points().collect();
        let baseline = run_and_check(&pipe, &lex);
        for schedule in [
            LoopSchedule::Interchange(vec![1, 0]),
            LoopSchedule::tiled(vec![2, 2]),
            LoopSchedule::Wavefront(IVec::from([1, 1])),
        ] {
            let order = schedule.order(pipe.nest.domain());
            assert_eq!(run_and_check(&pipe, &order), baseline, "{schedule}");
        }
        for seed in 0..8 {
            let order = random_topological_order(pipe.nest.domain(), &pipe.stencil, seed);
            assert_eq!(run_and_check(&pipe, &order), baseline, "seed {seed}");
        }
    }
}
