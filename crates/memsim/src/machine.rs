//! A whole machine: cache levels, TLB, physical-memory residency, and
//! instruction cost accounting.

use std::collections::HashMap;

use crate::cache::{Cache, CacheConfig, Tlb, TlbConfig};

/// Full description of a simulated machine.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Display name (e.g. `"Pentium Pro (sim)"`).
    pub name: String,
    /// First-level data cache.
    pub l1: CacheConfig,
    /// Optional unified second-level cache.
    pub l2: Option<CacheConfig>,
    /// Data TLB.
    pub tlb: TlbConfig,
    /// Latency of a main-memory access (after the last cache level misses).
    pub mem_cycles: u64,
    /// Physical memory capacity in bytes; beyond it pages spill to "disk".
    pub mem_capacity_bytes: u64,
    /// Cost of a *major* page fault — re-reading an evicted page from
    /// disk, in cycles. First-touch (minor) faults only pay
    /// `minor_fault_cycles`.
    pub disk_cycles: u64,
    /// Cost of a minor (first-touch, zero-fill) page fault, in cycles.
    pub minor_fault_cycles: u64,
    /// Cycles per arithmetic operation (pipelined, so usually ~1).
    pub alu_cycles: u64,
    /// Cycles charged per hard-to-predict branch — the knob behind the
    /// paper's Ultra 2 / Alpha protein-matching plateau (§5.2).
    pub branch_cycles: u64,
}

/// Counters accumulated by a [`Machine`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MachineStats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Memory accesses (reads + writes).
    pub accesses: u64,
    /// L1 misses.
    pub l1_misses: u64,
    /// L2 misses (0 when the machine has no L2).
    pub l2_misses: u64,
    /// TLB misses.
    pub tlb_misses: u64,
    /// Minor page faults (first touch of a page).
    pub minor_faults: u64,
    /// Major page faults (re-reading a page evicted to disk).
    pub major_faults: u64,
    /// Dirty pages written back to disk on eviction.
    pub page_outs: u64,
}

/// A simulated machine executing a stream of reads, writes, ALU operations
/// and branches.
///
/// Determinism: identical call sequences produce identical statistics.
///
/// # Examples
///
/// ```
/// use uov_memsim::machines;
///
/// let mut m = machines::alpha_21164();
/// m.write(0);
/// m.read(0);
/// assert_eq!(m.stats().accesses, 2);
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    config: MachineConfig,
    l1: Cache,
    l2: Option<Cache>,
    tlb: Tlb,
    /// Exact-LRU resident set with O(1) touch and eviction.
    resident: LruPages,
    /// Pages that have been evicted to disk at least once; touching one
    /// again is a major fault.
    evicted: std::collections::HashSet<u64>,
    page_shift: u32,
    stats: MachineStats,
}

/// An exact-LRU set of page numbers with O(1) touch/insert/evict, backed
/// by a doubly-linked list threaded through a slot arena.
#[derive(Debug, Clone)]
struct LruPages {
    map: HashMap<u64, usize>,
    slots: Vec<LruSlot>,
    free: Vec<usize>,
    head: usize, // MRU
    tail: usize, // LRU
    capacity: usize,
}

#[derive(Debug, Clone)]
struct LruSlot {
    page: u64,
    dirty: bool,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

/// Result of touching a page in the resident set.
enum TouchOutcome {
    /// Already resident (LRU position refreshed).
    Resident,
    /// Newly inserted; `evicted` is the victim page (with its dirty bit),
    /// if the set was full.
    Inserted { evicted: Option<(u64, bool)> },
}

impl LruPages {
    fn new(capacity: usize) -> Self {
        LruPages {
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity: capacity.max(1),
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slots[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slots[next].prev = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Touch `page` (marking it dirty if `is_write`). When the set is
    /// full, the least recently used page is evicted first and reported in
    /// the outcome together with its dirty bit.
    fn touch(&mut self, page: u64, is_write: bool) -> TouchOutcome {
        if let Some(&i) = self.map.get(&page) {
            if self.head != i {
                self.unlink(i);
                self.push_front(i);
            }
            self.slots[i].dirty |= is_write;
            return TouchOutcome::Resident;
        }
        let mut victim_page = None;
        if self.map.len() >= self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            self.unlink(victim);
            victim_page = Some((self.slots[victim].page, self.slots[victim].dirty));
            self.map.remove(&self.slots[victim].page);
            self.free.push(victim);
        }
        let i = match self.free.pop() {
            Some(i) => {
                self.slots[i].page = page;
                self.slots[i].dirty = is_write;
                i
            }
            None => {
                self.slots.push(LruSlot {
                    page,
                    dirty: is_write,
                    prev: NIL,
                    next: NIL,
                });
                self.slots.len() - 1
            }
        };
        self.map.insert(page, i);
        self.push_front(i);
        TouchOutcome::Inserted {
            evicted: victim_page,
        }
    }

    fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }
}

impl Machine {
    /// Build a machine with cold caches and an empty resident set.
    ///
    /// # Panics
    ///
    /// Panics if a cache geometry is invalid (see [`Cache::new`]) or the
    /// memory capacity is smaller than one page.
    pub fn new(config: MachineConfig) -> Self {
        let page_bytes = config.tlb.page_bytes;
        assert!(
            config.mem_capacity_bytes >= page_bytes,
            "memory must hold at least one page"
        );
        Machine {
            l1: Cache::new(config.l1.clone()),
            l2: config.l2.clone().map(Cache::new),
            tlb: Tlb::new(config.tlb.clone()),
            resident: LruPages::new((config.mem_capacity_bytes / page_bytes) as usize),
            evicted: std::collections::HashSet::new(),
            page_shift: page_bytes.trailing_zeros(),
            stats: MachineStats::default(),
            config,
        }
    }

    /// The configuration of this machine.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Machine name.
    pub fn name(&self) -> &str {
        &self.config.name
    }

    /// Simulate a load from `addr`.
    pub fn read(&mut self, addr: u64) {
        self.access(addr, false);
    }

    /// Simulate a store to `addr` (write-allocate; evicting a dirtied page
    /// from physical memory later pays a disk write-back).
    pub fn write(&mut self, addr: u64) {
        self.access(addr, true);
    }

    fn access(&mut self, addr: u64, is_write: bool) {
        self.stats.accesses += 1;
        // Address translation.
        if !self.tlb.access(addr) {
            self.stats.tlb_misses += 1;
            self.stats.cycles += self.tlb.miss_cycles();
        }
        // Residency: page faults dominate everything else.
        self.touch_page(addr >> self.page_shift, is_write);
        // Cache hierarchy.
        self.stats.cycles += self.config.l1.hit_cycles;
        if self.l1.access(addr) {
            return;
        }
        self.stats.l1_misses += 1;
        if let Some(l2) = &mut self.l2 {
            self.stats.cycles += l2.config().hit_cycles;
            if l2.access(addr) {
                return;
            }
            self.stats.l2_misses += 1;
        }
        self.stats.cycles += self.config.mem_cycles;
    }

    fn touch_page(&mut self, page: u64, is_write: bool) {
        match self.resident.touch(page, is_write) {
            TouchOutcome::Resident => {}
            TouchOutcome::Inserted { evicted } => {
                if self.evicted.remove(&page) {
                    self.stats.major_faults += 1;
                    self.stats.cycles += self.config.disk_cycles;
                } else {
                    self.stats.minor_faults += 1;
                    self.stats.cycles += self.config.minor_fault_cycles;
                }
                if let Some((victim, dirty)) = evicted {
                    self.evicted.insert(victim);
                    if dirty {
                        // The page's contents must reach the swap device.
                        self.stats.page_outs += 1;
                        self.stats.cycles += self.config.disk_cycles;
                    }
                }
            }
        }
    }

    /// Charge `n` pipelined arithmetic operations.
    pub fn alu(&mut self, n: u64) {
        self.stats.cycles += n * self.config.alu_cycles;
    }

    /// Charge `n` hard-to-predict branches.
    pub fn branch(&mut self, n: u64) {
        self.stats.cycles += n * self.config.branch_cycles;
    }

    /// Counters so far.
    pub fn stats(&self) -> &MachineStats {
        &self.stats
    }

    /// Cycles so far (shorthand for `stats().cycles`).
    pub fn cycles(&self) -> u64 {
        self.stats.cycles
    }

    /// Cold-start the machine again: caches, TLB, residency and counters.
    pub fn reset(&mut self) {
        self.l1.reset();
        if let Some(l2) = &mut self.l2 {
            l2.reset();
        }
        self.tlb.reset();
        self.resident.clear();
        self.evicted.clear();
        self.stats = MachineStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines;

    fn tiny() -> Machine {
        Machine::new(MachineConfig {
            name: "tiny".into(),
            l1: CacheConfig {
                size_bytes: 128,
                line_bytes: 16,
                assoc: 2,
                hit_cycles: 1,
            },
            l2: Some(CacheConfig {
                size_bytes: 512,
                line_bytes: 16,
                assoc: 4,
                hit_cycles: 4,
            }),
            tlb: TlbConfig {
                entries: 2,
                page_bytes: 256,
                assoc: 2,
                miss_cycles: 20,
            },
            mem_cycles: 50,
            mem_capacity_bytes: 1024,
            disk_cycles: 10_000,
            minor_fault_cycles: 50,
            alu_cycles: 1,
            branch_cycles: 5,
        })
    }

    #[test]
    fn sequential_reuse_is_cheap() {
        let mut m = tiny();
        m.read(0); // cold: tlb miss + fault + l1 miss + l2 miss
        let cold = m.cycles();
        m.read(4); // same line, same page
        let warm = m.cycles() - cold;
        assert!(
            warm < cold / 10,
            "warm access ({warm}) should be far cheaper than cold ({cold})"
        );
    }

    #[test]
    fn capacity_thrashing_hits_disk() {
        let mut m = tiny();
        // 8 pages cycled through a 4-page memory → every round faults.
        for round in 0..3u64 {
            for p in 0..8u64 {
                m.read(p * 256);
            }
            if round == 0 {
                assert_eq!(m.stats().minor_faults, 8);
                assert_eq!(m.stats().major_faults, 0);
            }
        }
        assert_eq!(m.stats().minor_faults, 8);
        assert_eq!(
            m.stats().major_faults,
            16,
            "strict LRU cycling must re-fault every time"
        );
    }

    #[test]
    fn small_working_set_never_faults_again() {
        let mut m = tiny();
        for _ in 0..10 {
            for p in 0..3u64 {
                m.read(p * 256);
            }
        }
        assert_eq!(m.stats().minor_faults, 3);
        assert_eq!(m.stats().major_faults, 0);
    }

    #[test]
    fn alu_and_branch_costs() {
        let mut m = tiny();
        m.alu(7);
        assert_eq!(m.cycles(), 7);
        m.branch(2);
        assert_eq!(m.cycles(), 17);
    }

    #[test]
    fn reset_restores_cold_state() {
        let mut m = tiny();
        m.read(0);
        m.read(0);
        m.reset();
        assert_eq!(m.stats(), &MachineStats::default());
        m.read(0);
        assert_eq!(m.stats().l1_misses, 1);
    }

    #[test]
    fn determinism() {
        let run = || {
            let mut m = tiny();
            for i in 0..1000u64 {
                m.read((i * 97) % 4096);
                m.alu(1);
            }
            m.stats().clone()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn presets_construct_and_differ() {
        let pp = machines::pentium_pro();
        let u2 = machines::ultra_2();
        let al = machines::alpha_21164();
        assert_ne!(pp.name(), u2.name());
        assert_ne!(u2.name(), al.name());
        // The Alpha's L1 is the smallest of the three.
        assert!(al.config().l1.size_bytes <= pp.config().l1.size_bytes);
        assert!(
            u2.config().l2.as_ref().unwrap().size_bytes
                > pp.config().l2.as_ref().unwrap().size_bytes
        );
    }

    #[test]
    fn streaming_beats_striding_on_cycles() {
        // Locality must matter: sequential touch of 64KB vs page-striding.
        let mut seq = machines::pentium_pro();
        for i in 0..16_384u64 {
            seq.read(i * 4);
        }
        let mut stride = machines::pentium_pro();
        for i in 0..16_384u64 {
            stride.read((i * 4096) % (4096 * 512) + (i % 8) * 4);
        }
        assert!(
            seq.cycles() < stride.cycles(),
            "sequential ({}) must beat striding ({})",
            seq.cycles(),
            stride.cycles()
        );
    }
}
