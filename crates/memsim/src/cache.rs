//! Set-associative LRU caches and TLBs.

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Associativity (ways per set). `1` is direct-mapped.
    pub assoc: u32,
    /// Cycles charged on a hit at this level.
    pub hit_cycles: u64,
}

impl CacheConfig {
    fn num_sets(&self) -> u64 {
        let lines = self.size_bytes / self.line_bytes;
        (lines / self.assoc as u64).max(1)
    }
}

/// A set-associative cache with true-LRU replacement.
///
/// Tags are stored per set in most-recently-used-first order; an access is
/// a linear scan of at most `assoc` entries — plenty fast for the small
/// associativities of real caches.
///
/// # Examples
///
/// ```
/// use uov_memsim::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig {
///     size_bytes: 256, line_bytes: 32, assoc: 2, hit_cycles: 1,
/// });
/// assert!(!c.access(0));   // cold miss
/// assert!(c.access(16));   // same 32-byte line
/// assert!(!c.access(4096));
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// `sets[s]` holds up to `assoc` line tags, MRU first.
    sets: Vec<Vec<u64>>,
    line_shift: u32,
    set_mask: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Build an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the line size is not a power of two, the associativity is
    /// zero, or the capacity is smaller than one line.
    pub fn new(config: CacheConfig) -> Self {
        assert!(
            config.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(config.assoc >= 1, "associativity must be at least 1");
        assert!(
            config.size_bytes >= config.line_bytes,
            "cache must hold at least one line"
        );
        let num_sets = config.num_sets();
        assert!(
            num_sets.is_power_of_two(),
            "size / line / assoc must yield a power-of-two set count"
        );
        Cache {
            line_shift: config.line_bytes.trailing_zeros(),
            set_mask: num_sets - 1,
            sets: vec![Vec::with_capacity(config.assoc as usize); num_sets as usize],
            config,
            hits: 0,
            misses: 0,
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Touch the line containing `addr`; returns `true` on a hit. Misses
    /// allocate (write-allocate policy for both reads and writes).
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = &mut self.sets[(line & self.set_mask) as usize];
        if let Some(pos) = set.iter().position(|&t| t == line) {
            // Move to MRU position.
            set[..=pos].rotate_right(1);
            self.hits += 1;
            true
        } else {
            if set.len() == self.config.assoc as usize {
                set.pop(); // evict LRU
            }
            set.insert(0, line);
            self.misses += 1;
            false
        }
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Drop all contents and statistics.
    pub fn reset(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        self.hits = 0;
        self.misses = 0;
    }
}

/// Geometry of a TLB.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of entries.
    pub entries: u32,
    /// Page size in bytes (power of two).
    pub page_bytes: u64,
    /// Associativity; use `entries` for fully associative.
    pub assoc: u32,
    /// Cycles charged on a TLB miss (page-table walk).
    pub miss_cycles: u64,
}

/// A TLB: a cache keyed by page number.
///
/// # Examples
///
/// ```
/// use uov_memsim::{Tlb, TlbConfig};
///
/// let mut t = Tlb::new(TlbConfig { entries: 2, page_bytes: 4096, assoc: 2, miss_cycles: 30 });
/// assert!(!t.access(0));
/// assert!(t.access(100));      // same page
/// assert!(!t.access(4096));    // next page
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    inner: Cache,
    miss_cycles: u64,
}

impl Tlb {
    /// Build an empty TLB.
    ///
    /// # Panics
    ///
    /// Panics under the same geometry conditions as [`Cache::new`].
    pub fn new(config: TlbConfig) -> Self {
        Tlb {
            inner: Cache::new(CacheConfig {
                size_bytes: config.page_bytes * config.entries as u64,
                line_bytes: config.page_bytes,
                assoc: config.assoc,
                hit_cycles: 0,
            }),
            miss_cycles: config.miss_cycles,
        }
    }

    /// Translate `addr`; returns `true` on a TLB hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.inner.access(addr)
    }

    /// Cycles charged per miss.
    pub fn miss_cycles(&self) -> u64 {
        self.miss_cycles
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.inner.misses()
    }

    /// Drop all contents and statistics.
    pub fn reset(&mut self) {
        self.inner.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        Cache::new(CacheConfig {
            size_bytes: 128,
            line_bytes: 16,
            assoc: 2,
            hit_cycles: 1,
        })
    }

    #[test]
    fn hit_within_line() {
        let mut c = small();
        assert!(!c.access(0));
        for off in 1..16 {
            assert!(c.access(off), "offset {off} should hit the same line");
        }
        assert_eq!(c.misses(), 1);
        assert_eq!(c.hits(), 15);
    }

    #[test]
    fn lru_eviction_order() {
        // 128B / 16B lines / 2-way = 4 sets. Lines mapping to set 0:
        // addresses 0, 64, 128, 192 (line numbers 0, 4, 8, 12).
        let mut c = small();
        c.access(0);
        c.access(64);
        assert!(c.access(0)); // 0 now MRU
        c.access(128); // evicts 64 (LRU), not 0
        assert!(c.access(0), "0 must have survived");
        assert!(!c.access(64), "64 must have been evicted");
    }

    #[test]
    fn direct_mapped_conflicts() {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 64,
            line_bytes: 16,
            assoc: 1,
            hit_cycles: 1,
        });
        // 4 sets; addresses 0 and 64 collide.
        c.access(0);
        c.access(64);
        assert!(!c.access(0), "direct-mapped conflict must evict");
    }

    #[test]
    fn full_capacity_streaming() {
        let mut c = small();
        // Touch 8 distinct lines = full capacity; all fit.
        for i in 0..8u64 {
            c.access(i * 16);
        }
        for i in 0..8u64 {
            assert!(c.access(i * 16), "line {i} should still be resident");
        }
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = small();
        c.access(0);
        c.reset();
        assert_eq!(c.hits() + c.misses(), 0);
        assert!(!c.access(0));
    }

    #[test]
    fn tlb_page_granularity() {
        let mut t = Tlb::new(TlbConfig {
            entries: 4,
            page_bytes: 4096,
            assoc: 4,
            miss_cycles: 30,
        });
        assert!(!t.access(0));
        assert!(t.access(4095));
        assert!(!t.access(4096));
        assert_eq!(t.misses(), 2);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_panics() {
        let _ = Cache::new(CacheConfig {
            size_bytes: 96,
            line_bytes: 24,
            assoc: 1,
            hit_cycles: 1,
        });
    }
}
