//! A deterministic memory-hierarchy simulator.
//!
//! The paper's evaluation (§5) ran two kernels on three 1998 machines — a
//! 200 MHz Pentium Pro, a 200 MHz Sun Ultra 2 and a 500 MHz DEC Alpha
//! 21164 — and reported *cycles per iteration* as problem sizes sweep from
//! cache-resident to out-of-memory. None of that hardware is available, so
//! this crate substitutes a transparent capacity/latency model:
//!
//! * set-associative, LRU caches with configurable size / line /
//!   associativity and per-level hit latencies ([`Cache`]);
//! * a TLB modelled as a cache of page numbers with a miss penalty
//!   ([`Tlb`]);
//! * a physical-memory capacity with LRU page residency — exceeding it
//!   sends accesses to "disk", reproducing the paper's cycles-per-iteration
//!   cliff when a storage variant falls out of memory;
//! * per-iteration ALU and branch-misprediction costs, the knobs behind
//!   the paper's observation that branchy code (protein string matching)
//!   is stall-bound rather than memory-bound on the Ultra 2 and Alpha.
//!
//! The three presets in [`machines`] use the documented cache geometries
//! of the original machines with approximate latencies (in each machine's
//! own cycles); memory capacities are scaled down (64–128 MB) so the
//! out-of-memory cliff is reachable by CI-scale sweeps. The *shapes* of
//! the resulting curves — who wins, where crossovers fall — are the
//! reproduction target, not absolute cycle counts.
//!
//! # Example
//!
//! ```
//! use uov_memsim::machines;
//!
//! let mut m = machines::pentium_pro();
//! for i in 0..1024u64 {
//!     m.read(i * 4);
//!     m.alu(2);
//! }
//! let stats = m.stats();
//! assert!(stats.cycles > 0);
//! assert!(stats.l1_misses < stats.accesses);
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod cache;
pub mod machine;
pub mod machines;

pub use cache::{Cache, CacheConfig, Tlb, TlbConfig};
pub use machine::{Machine, MachineConfig, MachineStats};
