//! Presets approximating the paper's three evaluation machines.
//!
//! Cache geometries follow the published microarchitecture documents;
//! latencies are round-number approximations in each machine's own clock.
//! Two deliberate departures, both documented in DESIGN.md:
//!
//! * **Memory capacities are scaled down** (64–128 MB — period-plausible,
//!   but chosen so the natural storage variant falls out of memory within
//!   CI-scale problem sweeps, reproducing the paper's cliff).
//! * **Branch cost** is a per-hard-branch charge: ~4 cycles on the Pentium
//!   Pro (CMOV covers most of the max/select patterns) versus ~12/10 on
//!   the Ultra 2 / Alpha — the paper's conjecture for why tiling did not
//!   help protein string matching there (§5.2).

use crate::cache::{CacheConfig, TlbConfig};
use crate::machine::{Machine, MachineConfig};

/// 200 MHz Intel Pentium Pro: 8 KB 2-way L1D, 256 KB 4-way L2, 64-entry
/// DTLB, 4 KB pages, 64 MB memory.
pub fn pentium_pro() -> Machine {
    Machine::new(MachineConfig {
        name: "Pentium Pro (sim)".into(),
        l1: CacheConfig {
            size_bytes: 8 << 10,
            line_bytes: 32,
            assoc: 2,
            hit_cycles: 1,
        },
        l2: Some(CacheConfig {
            size_bytes: 256 << 10,
            line_bytes: 32,
            assoc: 4,
            hit_cycles: 7,
        }),
        tlb: TlbConfig {
            entries: 64,
            page_bytes: 4 << 10,
            assoc: 4,
            miss_cycles: 25,
        },
        mem_cycles: 60,
        mem_capacity_bytes: 64 << 20,
        disk_cycles: 1_000_000,
        minor_fault_cycles: 300,
        alu_cycles: 1,
        branch_cycles: 4,
    })
}

/// 200 MHz Sun Ultra 2 (UltraSPARC-II): 16 KB direct-mapped L1D, 1 MB
/// direct-mapped external L2 with 64-byte lines, 64-entry fully
/// associative DTLB, 8 KB pages, 128 MB memory.
pub fn ultra_2() -> Machine {
    Machine::new(MachineConfig {
        name: "Ultra 2 (sim)".into(),
        l1: CacheConfig {
            size_bytes: 16 << 10,
            line_bytes: 32,
            assoc: 1,
            hit_cycles: 1,
        },
        l2: Some(CacheConfig {
            size_bytes: 1 << 20,
            line_bytes: 64,
            assoc: 1,
            hit_cycles: 10,
        }),
        tlb: TlbConfig {
            entries: 64,
            page_bytes: 8 << 10,
            assoc: 64,
            miss_cycles: 30,
        },
        mem_cycles: 50,
        mem_capacity_bytes: 128 << 20,
        disk_cycles: 1_200_000,
        minor_fault_cycles: 300,
        alu_cycles: 1,
        branch_cycles: 12,
    })
}

/// 500 MHz DEC Alpha 21164: 8 KB direct-mapped L1D, 96 KB 3-way on-chip
/// L2, 64-entry fully associative DTLB, 8 KB pages, 96 MB memory. Higher
/// clock means more cycles per memory access.
pub fn alpha_21164() -> Machine {
    Machine::new(MachineConfig {
        name: "Alpha 21164 (sim)".into(),
        l1: CacheConfig {
            size_bytes: 8 << 10,
            line_bytes: 32,
            assoc: 1,
            hit_cycles: 1,
        },
        l2: Some(CacheConfig {
            size_bytes: 96 << 10,
            line_bytes: 32,
            assoc: 3,
            hit_cycles: 6,
        }),
        tlb: TlbConfig {
            entries: 64,
            page_bytes: 8 << 10,
            assoc: 64,
            miss_cycles: 40,
        },
        mem_cycles: 120,
        mem_capacity_bytes: 96 << 20,
        disk_cycles: 2_500_000,
        minor_fault_cycles: 600,
        alu_cycles: 1,
        branch_cycles: 10,
    })
}

/// All three presets, in the paper's presentation order.
pub fn all() -> Vec<Machine> {
    vec![pentium_pro(), ultra_2(), alpha_21164()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_build() {
        assert_eq!(all().len(), 3);
    }

    #[test]
    fn cache_resident_sweep_is_fast_on_every_machine() {
        // 4 KB working set swept repeatedly: after warm-up, cycles per
        // access must approach the L1 hit cost on every machine.
        for mut m in all() {
            for _ in 0..4 {
                for i in 0..1024u64 {
                    m.read(i * 4);
                }
            }
            let warm_start = m.cycles();
            let base = m.stats().accesses;
            for i in 0..1024u64 {
                m.read(i * 4);
            }
            let per_access = (m.cycles() - warm_start) as f64 / (m.stats().accesses - base) as f64;
            assert!(
                per_access < 2.0,
                "{}: warm per-access cost {per_access} too high",
                m.name()
            );
        }
    }

    #[test]
    fn out_of_memory_cliff_exists() {
        // Stream twice over twice the physical memory: the first sweep
        // pays only minor faults, the second — LRU cycling — pays a major
        // fault on every page, so cycles must be disk-dominated.
        let mut m = pentium_pro();
        let pages = (m.config().mem_capacity_bytes / 4096) * 2;
        for p in 0..pages {
            m.read(p * 4096);
        }
        assert_eq!(m.stats().major_faults, 0, "first touches are minor faults");
        let first_sweep = m.cycles();
        for p in 0..pages {
            m.read(p * 4096);
        }
        let second_sweep = m.cycles() - first_sweep;
        assert_eq!(
            m.stats().major_faults,
            pages,
            "cycling must re-fault every page"
        );
        assert!(
            second_sweep as f64 / pages as f64 > m.config().disk_cycles as f64 * 0.9,
            "re-faulting sweep should be disk-dominated"
        );
        assert!(second_sweep > first_sweep * 100);
    }

    #[test]
    fn working_set_within_memory_never_major_faults() {
        let mut m = ultra_2();
        // 1 MB working set inside 128 MB memory, swept many times.
        for _ in 0..4 {
            for i in 0..(1u64 << 20) / 64 {
                m.read(i * 64);
            }
        }
        assert_eq!(m.stats().major_faults, 0);
    }
}
