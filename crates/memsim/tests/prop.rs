//! Property-based tests for the memory-hierarchy simulator.

use proptest::prelude::*;
use uov_memsim::{machines, Cache, CacheConfig};

fn small_cache() -> impl Strategy<Value = Cache> {
    (0u32..4, 0u32..3, 0u32..3).prop_map(|(sets_log, assoc_log, line_log)| {
        let line = 16u64 << line_log;
        let assoc = 1u32 << assoc_log;
        let sets = 1u64 << sets_log;
        Cache::new(CacheConfig {
            size_bytes: sets * assoc as u64 * line,
            line_bytes: line,
            assoc,
            hit_cycles: 1,
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn accesses_equal_hits_plus_misses(
        mut cache in small_cache(),
        addrs in prop::collection::vec(0u64..4096, 1..200),
    ) {
        for &a in &addrs {
            cache.access(a);
        }
        prop_assert_eq!(cache.hits() + cache.misses(), addrs.len() as u64);
    }

    #[test]
    fn immediate_rereference_always_hits(
        mut cache in small_cache(),
        addrs in prop::collection::vec(0u64..4096, 1..100),
    ) {
        for &a in &addrs {
            cache.access(a);
            prop_assert!(cache.access(a), "re-access of {a} must hit");
        }
    }

    #[test]
    fn working_set_within_capacity_converges_to_all_hits(
        assoc_log in 0u32..3,
        lines in 1u64..8,
    ) {
        let assoc = 1u32 << assoc_log;
        let line = 32u64;
        let mut cache = Cache::new(CacheConfig {
            size_bytes: 8 * assoc as u64 * line, // 8 sets
            line_bytes: line,
            assoc,
            hit_cycles: 1,
        });
        // A working set no bigger than one set's worth per set index.
        let addrs: Vec<u64> = (0..lines.min(assoc as u64)).map(|i| i * line * 8).collect();
        for _ in 0..3 {
            for &a in &addrs {
                cache.access(a);
            }
        }
        let before = cache.misses();
        for &a in &addrs {
            prop_assert!(cache.access(a));
        }
        prop_assert_eq!(cache.misses(), before);
    }

    #[test]
    fn machine_determinism(addrs in prop::collection::vec(0u64..(1 << 20), 1..300)) {
        let run = |addrs: &[u64]| {
            let mut m = machines::alpha_21164();
            for &a in addrs {
                m.read(a);
            }
            m.stats().clone()
        };
        prop_assert_eq!(run(&addrs), run(&addrs));
    }

    #[test]
    fn cycles_monotone_under_extension(
        prefix in prop::collection::vec(0u64..(1 << 16), 1..100),
        extra in prop::collection::vec(0u64..(1 << 16), 1..50),
    ) {
        let mut a = machines::pentium_pro();
        for &x in &prefix {
            a.read(x);
        }
        let cycles_prefix = a.cycles();
        for &x in &extra {
            a.read(x);
        }
        prop_assert!(a.cycles() > cycles_prefix);
    }

    #[test]
    fn reset_restores_initial_behaviour(
        addrs in prop::collection::vec(0u64..(1 << 16), 1..100),
    ) {
        let mut warm = machines::ultra_2();
        for &a in &addrs {
            warm.read(a);
        }
        warm.reset();
        for &a in &addrs {
            warm.read(a);
        }
        let mut cold = machines::ultra_2();
        for &a in &addrs {
            cold.read(a);
        }
        prop_assert_eq!(warm.stats(), cold.stats());
    }
}
