//! The canonicalizing plan cache with single-flight deduplication.
//!
//! Every planning request is first canonicalized ([`crate::canon`]) so
//! axis-relabeled and symmetric requests share one cache slot, then keyed
//! by the workspace-standard problem fingerprint into a sharded LRU.
//!
//! Three rules keep cached answers byte-identical to cold solves:
//!
//! 1. A hit's full canonical problem (vectors **and** objective) is
//!    compared against the stored one before use — a fingerprint
//!    collision degrades to a miss, never a wrong answer.
//! 2. The mapped-back vector's cost is independently recomputed; any
//!    mismatch degrades to a direct solve.
//! 3. When the hit travelled through a non-identity permutation, the lex
//!    tie-break is repaired ([`crate::canon::lex_min_equivalent`]) so the
//!    response equals what a direct search of the *original* problem
//!    returns under the engine's `(cost, ‖w‖², lex w)` order.
//!
//! Degraded (budget-cut) results are published to coalesced waiters — all
//! concurrent identical requests still receive one identical answer — but
//! are **never** inserted into the LRU: the cache only ever serves answers
//! that were optimal when computed.

use std::collections::{HashMap, HashSet};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use uov_core::search::try_cost_of;
use uov_core::wire::{crc32, Decoder, Encoder};
use uov_core::{fingerprint, Degradation, SearchResult, ShardedLru};
use uov_isg::{IVec, Stencil};

use crate::canon::{canonicalize, lex_min_equivalent, map_back, map_to_canonical, Canonical};
use crate::proto::{CacheOutcome, ObjectiveSpec};

/// Default number of distinct canonical plans the cache retains.
pub const DEFAULT_CACHE_CAPACITY: usize = 1024;

/// A planning answer plus how the cache produced it.
#[derive(Debug, Clone)]
pub struct Planned {
    /// The optimal (or budget-degraded) UOV, in the *request's* coordinates.
    pub uov: IVec,
    /// Its objective value.
    pub cost: u128,
    /// Present iff the answer came from a budget-cut search.
    pub degradation: Option<Degradation>,
    /// How the cache handled the request.
    pub cache: CacheOutcome,
}

/// One stored plan: the full canonical problem it answers (for collision
/// defence) and its optimal answer in canonical coordinates.
#[derive(Debug, Clone)]
struct CachedPlan {
    vectors: Vec<IVec>,
    objective: ObjectiveSpec,
    uov: IVec,
    cost: u128,
}

/// In-canonical-coordinates result a flight leader publishes to waiters.
type FlightOutcome = Result<(IVec, u128, Option<Degradation>), String>;

/// One in-flight canonical solve that concurrent identical requests park on.
struct Flight {
    slot: Mutex<Option<FlightOutcome>>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Self {
        Flight {
            slot: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn publish(&self, outcome: FlightOutcome) {
        let mut slot = self.slot.lock().unwrap_or_else(|p| p.into_inner());
        if slot.is_none() {
            *slot = Some(outcome);
        }
        drop(slot);
        self.cv.notify_all();
    }

    fn wait(&self) -> FlightOutcome {
        let mut slot = self.slot.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(outcome) = slot.as_ref() {
                return outcome.clone();
            }
            slot = match self.cv.wait(slot) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
    }
}

/// Why a warm-cache snapshot could not be restored as a whole.
///
/// The variants matter operationally: a [`WarmCacheError::Corrupt`] file
/// points at disk or transport damage (delete it and move on), while an
/// [`WarmCacheError::UnsupportedVersion`] file points at a rollback — a
/// *newer* server wrote it, and upgrading again would recover the warmth.
/// The server logs the variant and counts the two classes separately in
/// its startup stats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WarmCacheError {
    /// The snapshot file exists but could not be read.
    Io(String),
    /// The file does not start with the `UOVWARM1` magic — it is not a
    /// warm-cache snapshot at all.
    BadMagic,
    /// The file was written by a future (or otherwise unknown) format
    /// version; restoring it would require that writer's code.
    UnsupportedVersion(u32),
    /// The file is framed as a snapshot but its contents are damaged
    /// (torn section, CRC mismatch, truncated header).
    Corrupt(String),
}

impl std::fmt::Display for WarmCacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WarmCacheError::Io(msg) => write!(f, "{msg}"),
            WarmCacheError::BadMagic => write!(f, "warm-cache snapshot has wrong magic"),
            WarmCacheError::UnsupportedVersion(v) => {
                write!(f, "unsupported warm-cache version {v}")
            }
            WarmCacheError::Corrupt(msg) => write!(f, "corrupt warm-cache snapshot: {msg}"),
        }
    }
}

impl std::error::Error for WarmCacheError {}

/// Cache traffic counters, all monotonically increasing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests answered from the LRU without searching.
    pub hits: u64,
    /// Requests that ran (or led) a search.
    pub misses: u64,
    /// Requests that parked on another request's in-flight search.
    pub coalesced: u64,
    /// Entries restored from a warm-cache snapshot at startup.
    pub warm_loaded: u64,
    /// Entries inserted through neighbor replication (`REQ_REPLICATE`),
    /// i.e. plans this replica holds for problems whose ring home is
    /// elsewhere.
    pub replicated_entries: u64,
    /// Cache hits served from a replicated entry — warm failovers.
    pub replica_hits: u64,
}

/// Ensures a flight leader that panics or errors before publishing still
/// wakes its waiters (with a typed failure) and unregisters the flight.
struct LeaderGuard<'a> {
    cache: &'a PlanCache,
    key: u64,
    flight: Arc<Flight>,
    done: bool,
}

impl LeaderGuard<'_> {
    /// Publish the outcome, wake every waiter, and retire the flight.
    fn finish(&mut self, outcome: FlightOutcome) {
        self.cache.remove_flight(self.key);
        self.flight.publish(outcome);
        self.done = true;
    }
}

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        if !self.done {
            self.cache.remove_flight(self.key);
            self.flight
                .publish(Err("plan search aborted before publishing a result".into()));
        }
    }
}

/// The canonicalizing, single-flight, LRU-backed plan cache.
pub struct PlanCache {
    lru: ShardedLru<u64, CachedPlan>,
    flights: Mutex<HashMap<u64, Arc<Flight>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    warm_loaded: AtomicU64,
    /// Canonical keys whose entry arrived by neighbor replication, so a
    /// hit on one can be attributed to the replication machinery.
    replica_keys: Mutex<HashSet<u64>>,
    replicated: AtomicU64,
    replica_hits: AtomicU64,
}

impl PlanCache {
    /// A cache holding at most `capacity` canonical plans.
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            lru: ShardedLru::new(capacity, 8),
            flights: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            warm_loaded: AtomicU64::new(0),
            replica_keys: Mutex::new(HashSet::new()),
            replicated: AtomicU64::new(0),
            replica_hits: AtomicU64::new(0),
        }
    }

    /// Current traffic counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            warm_loaded: self.warm_loaded.load(Ordering::Relaxed),
            replicated_entries: self.replicated.load(Ordering::Relaxed),
            replica_hits: self.replica_hits.load(Ordering::Relaxed),
        }
    }

    fn remove_flight(&self, key: u64) {
        let mut flights = self.flights.lock().unwrap_or_else(|p| p.into_inner());
        flights.remove(&key);
    }

    /// Answer a planning request through the cache.
    ///
    /// `solve` is invoked at most once per canonical problem across all
    /// concurrent callers; it receives the *canonical* problem on a miss
    /// (and, on rare repair-fallback paths, the original one).
    pub fn plan<F>(
        &self,
        stencil: &Stencil,
        objective: &ObjectiveSpec,
        solve: F,
    ) -> Result<Planned, String>
    where
        F: Fn(&Stencil, &ObjectiveSpec) -> Result<SearchResult, String>,
    {
        let canon = canonicalize(stencil, objective);
        let key = fingerprint(&canon.stencil, &canon.objective.as_objective());

        // Fast path: a completed plan for this canonical problem.
        if let Some(entry) = self.lru.get(&key) {
            if entry.vectors == canon.stencil.vectors() && entry.objective == canon.objective {
                if let Some((uov, cost)) =
                    self.realize(stencil, objective, &canon, &entry.uov, entry.cost, false)
                {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    let replicated = {
                        let keys = self.replica_keys.lock().unwrap_or_else(|p| p.into_inner());
                        keys.contains(&key)
                    };
                    if replicated {
                        self.replica_hits.fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok(Planned {
                        uov,
                        cost,
                        degradation: None,
                        cache: CacheOutcome::Hit,
                    });
                }
            }
            // Fingerprint collision or unrepairable tie-break: solve
            // the original problem directly; the answer stays correct.
            return self.direct(stencil, objective, &solve);
        }

        // Single-flight: exactly one caller per canonical key searches.
        let (flight, leader) = {
            let mut flights = self.flights.lock().unwrap_or_else(|p| p.into_inner());
            match flights.get(&key) {
                Some(f) => (Arc::clone(f), false),
                None => {
                    let f = Arc::new(Flight::new());
                    flights.insert(key, Arc::clone(&f));
                    (Arc::clone(&f), true)
                }
            }
        };

        if !leader {
            let (uov_c, cost, degradation) = flight.wait()?;
            self.coalesced.fetch_add(1, Ordering::Relaxed);
            let degraded = degradation.is_some();
            return match self.realize(stencil, objective, &canon, &uov_c, cost, degraded) {
                Some((uov, cost)) => Ok(Planned {
                    uov,
                    cost,
                    degradation,
                    cache: CacheOutcome::Coalesced,
                }),
                None => self.direct(stencil, objective, &solve),
            };
        }

        let mut guard = LeaderGuard {
            cache: self,
            key,
            flight,
            done: false,
        };
        self.misses.fetch_add(1, Ordering::Relaxed);
        match solve(&canon.stencil, &canon.objective) {
            Ok(result) => {
                if result.degradation.is_none() {
                    self.lru.insert(
                        key,
                        CachedPlan {
                            vectors: canon.stencil.vectors().to_vec(),
                            objective: canon.objective.clone(),
                            uov: result.uov.clone(),
                            cost: result.cost,
                        },
                    );
                }
                let degraded = result.degradation.is_some();
                guard.finish(Ok((result.uov.clone(), result.cost, result.degradation)));
                match self.realize(
                    stencil,
                    objective,
                    &canon,
                    &result.uov,
                    result.cost,
                    degraded,
                ) {
                    Some((uov, cost)) => Ok(Planned {
                        uov,
                        cost,
                        degradation: result.degradation,
                        cache: CacheOutcome::Miss,
                    }),
                    None => self.direct(stencil, objective, &solve),
                }
            }
            Err(e) => {
                guard.finish(Err(e.clone()));
                Err(e)
            }
        }
    }

    /// Solve the original, uncanonicalized problem. Used for cache
    /// bypass and as the fallback when a cached answer cannot be
    /// faithfully mapped back. Never inserts into the cache: the result
    /// is in original coordinates, and caching a non-canonical tie-break
    /// would break byte-identity for later hits.
    pub fn direct<F>(
        &self,
        stencil: &Stencil,
        objective: &ObjectiveSpec,
        solve: &F,
    ) -> Result<Planned, String>
    where
        F: Fn(&Stencil, &ObjectiveSpec) -> Result<SearchResult, String>,
    {
        self.misses.fetch_add(1, Ordering::Relaxed);
        let result = solve(stencil, objective)?;
        Ok(Planned {
            uov: result.uov,
            cost: result.cost,
            degradation: result.degradation,
            cache: CacheOutcome::Miss,
        })
    }

    /// Insert a plan pushed by a peer through neighbor replication.
    ///
    /// The answer arrives in the *sender's* coordinates; this
    /// canonicalizes the problem, maps the answer forward, re-derives the
    /// cost independently, and — crucially — normalizes to the canonical
    /// lex-minimum via [`lex_min_equivalent`] before inserting. The LRU
    /// may only ever hold the canonical tie-break: a hit whose request is
    /// already in canonical axes skips lex repair, so storing anything
    /// else would break byte-identity with a direct search. Verification
    /// failure (or hitting the repair enumeration limit) refuses the
    /// entry and returns `false` — the replica stays cold, never wrong.
    pub fn insert_replicated(
        &self,
        stencil: &Stencil,
        objective: &ObjectiveSpec,
        uov: &IVec,
        cost: u128,
    ) -> bool {
        let canon = canonicalize(stencil, objective);
        let obj = canon.objective.as_objective();
        let w_canon = map_to_canonical(uov, &canon.perm);
        if try_cost_of(&obj, &w_canon) != Ok(cost) {
            return false;
        }
        // `‖w‖²` and cone membership are permutation-invariant, so the
        // mapped answer is optimal in (cost, norm) for the canonical
        // problem; the sphere scan both verifies UOV-ness and lands on
        // the canonical lex-min representative.
        let Some(canon_uov) = lex_min_equivalent(&canon.stencil, &obj, &w_canon, cost) else {
            return false;
        };
        let key = fingerprint(&canon.stencil, &obj);
        self.lru.insert(
            key,
            CachedPlan {
                vectors: canon.stencil.vectors().to_vec(),
                objective: canon.objective.clone(),
                uov: canon_uov,
                cost,
            },
        );
        let mut keys = self.replica_keys.lock().unwrap_or_else(|p| p.into_inner());
        keys.insert(key);
        drop(keys);
        self.replicated.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Map a canonical-coordinates answer back into the request's
    /// coordinates, verify its cost independently, and repair the lex
    /// tie-break when the permutation is non-trivial. `None` means the
    /// answer could not be faithfully realized and the caller must solve
    /// directly.
    fn realize(
        &self,
        stencil: &Stencil,
        objective: &ObjectiveSpec,
        canon: &Canonical,
        uov_c: &IVec,
        cost: u128,
        degraded: bool,
    ) -> Option<(IVec, u128)> {
        let w = map_back(uov_c, &canon.perm);
        let obj = objective.as_objective();
        if try_cost_of(&obj, &w) != Ok(cost) {
            return None;
        }
        if canon.is_identity() || degraded {
            return Some((w, cost));
        }
        lex_min_equivalent(stencil, &obj, &w, cost).map(|repaired| (repaired, cost))
    }
}

// --------------------------------------------------- warm-cache snapshots
//
// The snapshot file follows the checkpoint format discipline:
//
// ```text
// magic    b"UOVWARM1"                          8 bytes
// version  u32 LE (currently 1)                 4 bytes
// section  tag=1 ‖ len u64 ‖ payload ‖ crc32    (self-checking)
// ```
//
// The payload is a count-prefixed list of entries *sorted by key*, so two
// drains of the same cache contents produce byte-identical files. Each
// entry carries the full canonical problem, not just the answer: on load
// the key is recomputed from the problem and the answer's cost is
// re-derived, so a snapshot that was tampered with (but re-CRC'd) still
// cannot inject a wrong plan — at worst an entry is skipped. Legality is
// re-checked at serve time by the server's per-response certification.

/// Warm-cache snapshot magic.
const WARM_MAGIC: &[u8; 8] = b"UOVWARM1";
/// Warm-cache snapshot version.
const WARM_VERSION: u32 = 1;
/// Section tag holding the entry list.
const WARM_TAG_ENTRIES: u8 = 1;

impl CachedPlan {
    fn encode_into(&self, key: u64, e: &mut Encoder) {
        e.u64(key);
        let dim = self.uov.dim();
        e.u16(dim as u16);
        e.u32(self.vectors.len() as u32);
        for v in &self.vectors {
            e.vec(v);
        }
        match &self.objective {
            ObjectiveSpec::ShortestVector => e.u8(0),
            ObjectiveSpec::KnownBounds(d) => {
                e.u8(1);
                e.vec(d.lo());
                e.vec(d.hi());
            }
        }
        e.vec(&self.uov);
        e.u128(self.cost);
    }

    /// Decode one entry and re-validate it from first principles. `None`
    /// means the entry is damaged or inconsistent and must be skipped.
    fn decode_validated(d: &mut Decoder<'_>) -> Option<(u64, CachedPlan)> {
        let key = d.u64().ok()?;
        let dim = usize::from(d.u16().ok()?);
        if dim == 0 {
            return None;
        }
        let nvec = d.u32().ok()? as usize;
        if nvec.checked_mul(dim)?.checked_mul(8)? > d.remaining() {
            return None;
        }
        let mut vectors = Vec::with_capacity(nvec);
        for _ in 0..nvec {
            vectors.push(d.vec(dim).ok()?);
        }
        let objective = match d.u8().ok()? {
            0 => ObjectiveSpec::ShortestVector,
            1 => {
                let lo = d.vec(dim).ok()?;
                let hi = d.vec(dim).ok()?;
                if (0..dim).any(|k| lo[k] > hi[k]) {
                    return None;
                }
                ObjectiveSpec::KnownBounds(uov_isg::RectDomain::new(lo, hi))
            }
            _ => return None,
        };
        let uov = d.vec(dim).ok()?;
        let cost = d.u128().ok()?;
        // The stored key must be derivable from the stored problem, and
        // the stored cost from the stored answer.
        let stencil = Stencil::new(vectors.clone()).ok()?;
        if stencil.vectors() != vectors.as_slice() {
            return None;
        }
        if fingerprint(&stencil, &objective.as_objective()) != key {
            return None;
        }
        if try_cost_of(&objective.as_objective(), &uov) != Ok(cost) {
            return None;
        }
        Some((
            key,
            CachedPlan {
                vectors,
                objective,
                uov,
                cost,
            },
        ))
    }
}

impl PlanCache {
    /// Persist every cached plan to `path` atomically (scratch file,
    /// fsync, rename). Returns the number of entries written.
    ///
    /// # Errors
    ///
    /// A human-readable description of the I/O failure; the previous
    /// snapshot (if any) is left intact.
    pub fn save(&self, path: &Path) -> Result<u64, String> {
        let mut entries = self.lru.entries();
        entries.sort_by_key(|(k, _)| *k);

        let mut body = Encoder::new();
        body.u64(entries.len() as u64);
        for (key, plan) in &entries {
            plan.encode_into(*key, &mut body);
        }
        let mut e = Encoder::with_capacity(16 + body.buf.len());
        e.buf.extend_from_slice(WARM_MAGIC);
        e.u32(WARM_VERSION);
        e.section(WARM_TAG_ENTRIES, &body.buf);

        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        let write = (|| -> std::io::Result<()> {
            use std::io::Write;
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&e.buf)?;
            f.sync_all()?;
            drop(f);
            fs::rename(&tmp, path)
        })();
        if let Err(err) = write {
            let _ = fs::remove_file(&tmp);
            return Err(format!("warm-cache save to {}: {err}", path.display()));
        }
        Ok(entries.len() as u64)
    }

    /// Restore plans from a snapshot written by [`PlanCache::save`].
    /// Damaged or inconsistent entries are skipped, never served; a
    /// missing file restores zero entries and is not an error. Returns
    /// the number of entries restored (also visible as
    /// [`CacheStats::warm_loaded`]).
    ///
    /// # Errors
    ///
    /// A [`WarmCacheError`] saying why the file as a whole is unreadable,
    /// distinguishing damage ([`WarmCacheError::Corrupt`]) from version
    /// skew ([`WarmCacheError::UnsupportedVersion`]).
    pub fn load(&self, path: &Path) -> Result<u64, WarmCacheError> {
        let bytes = match fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
            Err(e) => {
                return Err(WarmCacheError::Io(format!(
                    "warm-cache read {}: {e}",
                    path.display()
                )))
            }
        };
        let corrupt = |e: uov_core::wire::WireError| WarmCacheError::Corrupt(e.to_string());
        let mut d = Decoder::new(&bytes);
        if d.take(8).ok() != Some(WARM_MAGIC.as_slice()) {
            return Err(WarmCacheError::BadMagic);
        }
        let version = d.u32().map_err(corrupt)?;
        if version != WARM_VERSION {
            return Err(WarmCacheError::UnsupportedVersion(version));
        }
        // Section framing: tag ‖ len ‖ payload ‖ crc32(tag ‖ len ‖ payload).
        let section_start = d.pos;
        let tag = d.u8().map_err(corrupt)?;
        let len = d.u64().map_err(corrupt)? as usize;
        let payload = d.take(len).map_err(corrupt)?;
        let declared = d.u32().map_err(corrupt)?;
        if crc32(&bytes[section_start..section_start + 1 + 8 + len]) != declared {
            return Err(WarmCacheError::Corrupt(
                "section failed its CRC32 check".into(),
            ));
        }
        if tag != WARM_TAG_ENTRIES {
            // An unknown section from a future writer: nothing to restore.
            return Ok(0);
        }

        let mut body = Decoder::new(payload);
        let count = body.u64().map_err(corrupt)?;
        let mut restored = 0u64;
        for _ in 0..count {
            match CachedPlan::decode_validated(&mut body) {
                Some((key, plan)) => {
                    self.lru.insert(key, plan);
                    restored += 1;
                }
                // One damaged entry poisons the cursor position, so stop
                // rather than misread the rest as garbage entries.
                None => break,
            }
        }
        self.warm_loaded.fetch_add(restored, Ordering::Relaxed);
        Ok(restored)
    }
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new(DEFAULT_CACHE_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use uov_core::search::{find_best_uov, Objective, SearchConfig};
    use uov_isg::ivec;

    fn fig1() -> Stencil {
        Stencil::new(vec![ivec![1, 0], ivec![0, 1], ivec![1, 1]]).unwrap()
    }

    fn counting_solver(
        calls: &AtomicUsize,
    ) -> impl Fn(&Stencil, &ObjectiveSpec) -> Result<SearchResult, String> + '_ {
        move |s, o| {
            calls.fetch_add(1, Ordering::SeqCst);
            find_best_uov(s, o.as_objective(), &SearchConfig::default()).map_err(|e| e.to_string())
        }
    }

    #[test]
    fn repeat_requests_hit_without_searching() {
        let cache = PlanCache::new(16);
        let calls = AtomicUsize::new(0);
        let solve = counting_solver(&calls);
        let cold = cache
            .plan(&fig1(), &ObjectiveSpec::ShortestVector, &solve)
            .unwrap();
        let warm = cache
            .plan(&fig1(), &ObjectiveSpec::ShortestVector, &solve)
            .unwrap();
        assert_eq!(cold.cache, CacheOutcome::Miss);
        assert_eq!(warm.cache, CacheOutcome::Hit);
        assert_eq!((cold.uov, cold.cost), (warm.uov, warm.cost));
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn permuted_resubmission_hits_and_matches_direct_search() {
        // {(1,0),(2,1)} and its axis swap {(0,1),(1,2)} share a slot; the
        // second request's answer must be byte-identical to solving it
        // directly.
        let a = Stencil::new(vec![ivec![1, 0], ivec![2, 1]]).unwrap();
        let b = Stencil::new(vec![ivec![0, 1], ivec![1, 2]]).unwrap();
        let cache = PlanCache::new(16);
        let calls = AtomicUsize::new(0);
        let solve = counting_solver(&calls);
        let first = cache
            .plan(&a, &ObjectiveSpec::ShortestVector, &solve)
            .unwrap();
        let second = cache
            .plan(&b, &ObjectiveSpec::ShortestVector, &solve)
            .unwrap();
        assert_eq!(first.cache, CacheOutcome::Miss);
        assert_eq!(second.cache, CacheOutcome::Hit);
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        let direct =
            find_best_uov(&b, Objective::ShortestVector, &SearchConfig::default()).unwrap();
        assert_eq!(second.uov, direct.uov);
        assert_eq!(second.cost, direct.cost);
    }

    #[test]
    fn concurrent_identical_requests_coalesce_to_one_search() {
        use std::sync::Barrier;
        let cache = Arc::new(PlanCache::new(16));
        let calls = Arc::new(AtomicUsize::new(0));
        let n = 8;
        let barrier = Arc::new(Barrier::new(n));
        let mut handles = Vec::new();
        for _ in 0..n {
            let cache = Arc::clone(&cache);
            let calls = Arc::clone(&calls);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                cache
                    .plan(&fig1(), &ObjectiveSpec::ShortestVector, |s, o| {
                        calls.fetch_add(1, Ordering::SeqCst);
                        // Hold the flight open long enough for the other
                        // threads to park on it.
                        std::thread::sleep(std::time::Duration::from_millis(50));
                        find_best_uov(s, o.as_objective(), &SearchConfig::default())
                            .map_err(|e| e.to_string())
                    })
                    .unwrap()
            }));
        }
        let results: Vec<Planned> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let answers: Vec<(IVec, u128)> = results.iter().map(|p| (p.uov.clone(), p.cost)).collect();
        assert!(answers.windows(2).all(|w| w[0] == w[1]), "answers diverged");
        // With all threads racing before the LRU is filled, everyone either
        // led, coalesced, or (late arrivals) hit — never a second search.
        assert_eq!(calls.load(Ordering::SeqCst), 1, "search ran more than once");
        let coalesced = results
            .iter()
            .filter(|p| p.cache == CacheOutcome::Coalesced)
            .count();
        let misses = results
            .iter()
            .filter(|p| p.cache == CacheOutcome::Miss)
            .count();
        assert_eq!(misses, 1);
        assert_eq!(cache.stats().coalesced as usize, coalesced);
    }

    #[test]
    fn solver_errors_propagate_and_are_not_cached() {
        let cache = PlanCache::new(16);
        let err = cache.plan(&fig1(), &ObjectiveSpec::ShortestVector, |_, _| {
            Err::<SearchResult, String>("boom".into())
        });
        assert_eq!(err.unwrap_err(), "boom");
        // The failure must not poison the key: a later good solve works.
        let calls = AtomicUsize::new(0);
        let solve = counting_solver(&calls);
        let ok = cache
            .plan(&fig1(), &ObjectiveSpec::ShortestVector, &solve)
            .unwrap();
        assert_eq!(ok.cache, CacheOutcome::Miss);
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn warm_snapshot_round_trips_and_serves_hits() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "uov-warm-test-{}-{:?}.bin",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);

        let cache = PlanCache::new(16);
        let calls = AtomicUsize::new(0);
        let solve = counting_solver(&calls);
        let cold = cache
            .plan(&fig1(), &ObjectiveSpec::ShortestVector, &solve)
            .unwrap();
        let written = cache.save(&path).unwrap();
        assert_eq!(written, 1);
        // Byte-determinism: saving the same contents again is identical.
        let first = std::fs::read(&path).unwrap();
        cache.save(&path).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), first);

        // A fresh cache restored from the snapshot hits without solving.
        let warm = PlanCache::new(16);
        assert_eq!(warm.load(&path).unwrap(), 1);
        assert_eq!(warm.stats().warm_loaded, 1);
        let calls2 = AtomicUsize::new(0);
        let solve2 = counting_solver(&calls2);
        let hit = warm
            .plan(&fig1(), &ObjectiveSpec::ShortestVector, &solve2)
            .unwrap();
        assert_eq!(hit.cache, CacheOutcome::Hit);
        assert_eq!(calls2.load(Ordering::SeqCst), 0);
        assert_eq!((hit.uov, hit.cost), (cold.uov, cold.cost));

        // Loading a missing file restores nothing and is not an error.
        let _ = std::fs::remove_file(&path);
        assert_eq!(PlanCache::new(4).load(&path).unwrap(), 0);
    }

    #[test]
    fn corrupt_warm_snapshot_is_rejected_not_served() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "uov-warm-corrupt-{}-{:?}.bin",
            std::process::id(),
            std::thread::current().id()
        ));
        let cache = PlanCache::new(16);
        let calls = AtomicUsize::new(0);
        let solve = counting_solver(&calls);
        cache
            .plan(&fig1(), &ObjectiveSpec::ShortestVector, &solve)
            .unwrap();
        cache.save(&path).unwrap();

        // Flip one payload bit: the section CRC must catch it, and the
        // failure must be typed as damage, not version skew.
        let good = std::fs::read(&path).unwrap();
        let mut bytes = good.clone();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let warm = PlanCache::new(16);
        assert!(matches!(warm.load(&path), Err(WarmCacheError::Corrupt(_))));
        assert_eq!(warm.stats().warm_loaded, 0);

        // Wrong magic is its own variant.
        std::fs::write(&path, b"NOTAWARM").unwrap();
        assert_eq!(PlanCache::new(4).load(&path), Err(WarmCacheError::BadMagic));

        // A future version is *not* corruption: the bytes are intact, the
        // reader is just too old. The distinction drives different ops
        // responses (delete vs. roll forward).
        let mut future = good;
        future[8..12].copy_from_slice(&9u32.to_le_bytes());
        std::fs::write(&path, &future).unwrap();
        assert_eq!(
            PlanCache::new(4).load(&path),
            Err(WarmCacheError::UnsupportedVersion(9))
        );
        let _ = std::fs::remove_file(&path);
    }

    /// A neighbor-replicated entry rides the `UOVWARM1` snapshot like
    /// any other plan and is re-validated from first principles on load
    /// — a tampered copy (re-CRC'd so the section check passes) is
    /// skipped, never served.
    #[test]
    fn replicated_entries_survive_warm_snapshots_and_tampering_is_skipped() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "uov-warm-replica-{}-{:?}.bin",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);

        let home = PlanCache::new(16);
        let calls = AtomicUsize::new(0);
        let solve = counting_solver(&calls);
        let planned = home
            .plan(&fig1(), &ObjectiveSpec::ShortestVector, &solve)
            .unwrap();

        // The replica accepts the pushed copy and persists it.
        let replica = PlanCache::new(16);
        assert!(replica.insert_replicated(
            &fig1(),
            &ObjectiveSpec::ShortestVector,
            &planned.uov,
            planned.cost,
        ));
        assert_eq!(replica.save(&path).unwrap(), 1);

        // A restarted replica restores it and serves without solving.
        let restarted = PlanCache::new(16);
        assert_eq!(restarted.load(&path).unwrap(), 1);
        let calls2 = AtomicUsize::new(0);
        let solve2 = counting_solver(&calls2);
        let hit = restarted
            .plan(&fig1(), &ObjectiveSpec::ShortestVector, &solve2)
            .unwrap();
        assert_eq!(hit.cache, CacheOutcome::Hit);
        assert_eq!(calls2.load(Ordering::SeqCst), 0);
        assert_eq!((hit.uov, &hit.cost), (planned.uov.clone(), &planned.cost));

        // Tamper with the stored cost and re-CRC the section so only the
        // semantic re-validation can catch it: the entry must be skipped.
        let mut bytes = std::fs::read(&path).unwrap();
        // u128 cost is the last entry field, just before the section CRC.
        let cost_at = bytes.len() - 4 - 16;
        bytes[cost_at] ^= 0xFF;
        let body_len = u64::from_le_bytes(bytes[13..21].try_into().unwrap()) as usize;
        let crc = crc32(&bytes[12..12 + 1 + 8 + body_len]);
        let crc_at = bytes.len() - 4;
        bytes[crc_at..].copy_from_slice(&crc.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let tampered = PlanCache::new(16);
        assert_eq!(
            tampered.load(&path).unwrap(),
            0,
            "a tampered entry must be skipped, not restored"
        );
        let calls3 = AtomicUsize::new(0);
        let solve3 = counting_solver(&calls3);
        let fresh = tampered
            .plan(&fig1(), &ObjectiveSpec::ShortestVector, &solve3)
            .unwrap();
        assert_eq!(fresh.cache, CacheOutcome::Miss, "tampered entry served");
        assert_eq!(fresh.cost, planned.cost);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn replicated_inserts_hit_byte_identically_and_count() {
        // Push an answer computed in swapped axes; requests in *either*
        // axis order must then hit and match their own direct search.
        let a = Stencil::new(vec![ivec![1, 0], ivec![2, 1]]).unwrap();
        let b = Stencil::new(vec![ivec![0, 1], ivec![1, 2]]).unwrap();
        let answer_b =
            find_best_uov(&b, Objective::ShortestVector, &SearchConfig::default()).unwrap();

        let cache = PlanCache::new(16);
        assert!(cache.insert_replicated(
            &b,
            &ObjectiveSpec::ShortestVector,
            &answer_b.uov,
            answer_b.cost
        ));
        assert_eq!(cache.stats().replicated_entries, 1);

        for s in [&a, &b] {
            let calls = AtomicUsize::new(0);
            let solve = counting_solver(&calls);
            let served = cache
                .plan(s, &ObjectiveSpec::ShortestVector, &solve)
                .unwrap();
            assert_eq!(served.cache, CacheOutcome::Hit);
            assert_eq!(calls.load(Ordering::SeqCst), 0);
            let direct =
                find_best_uov(s, Objective::ShortestVector, &SearchConfig::default()).unwrap();
            assert_eq!((served.uov, served.cost), (direct.uov, direct.cost));
        }
        assert_eq!(cache.stats().replica_hits, 2);

        // A push with a wrong cost is refused, never served.
        assert!(!cache.insert_replicated(
            &fig1(),
            &ObjectiveSpec::ShortestVector,
            &ivec![1, 1],
            999
        ));
        assert_eq!(cache.stats().replicated_entries, 1);
    }

    #[test]
    fn degraded_results_are_served_but_never_cached() {
        let cache = PlanCache::new(16);
        let calls = AtomicUsize::new(0);
        let degraded_solve = |s: &Stencil, o: &ObjectiveSpec| {
            calls.fetch_add(1, Ordering::SeqCst);
            let mut r = find_best_uov(s, o.as_objective(), &SearchConfig::default())
                .map_err(|e| e.to_string())?;
            let budget = uov_core::Budget::unlimited().with_max_nodes(0);
            r.degradation = Some(budget.degradation(uov_core::Exhausted::Nodes, 0, true));
            Ok(r)
        };
        let first = cache
            .plan(&fig1(), &ObjectiveSpec::ShortestVector, degraded_solve)
            .unwrap();
        assert!(first.degradation.is_some());
        assert_eq!(first.cache, CacheOutcome::Miss);
        let second = cache
            .plan(&fig1(), &ObjectiveSpec::ShortestVector, degraded_solve)
            .unwrap();
        // A degraded answer must not have populated the LRU.
        assert_eq!(second.cache, CacheOutcome::Miss);
        assert_eq!(calls.load(Ordering::SeqCst), 2);
    }
}
