//! Command-line front end for the UOV planning service.
//!
//! ```text
//! uov-service serve  <endpoint> [--workers N] [--queue N] [--cache N] [--search-threads N]
//!                               [--warm-cache PATH] [--wedge-timeout MS]
//! uov-service query  <endpoint> --stencil "1,0;0,1;1,1" [--grid N,M] [--deadline MS] [--no-cache] [--mesh [--replication K]]
//! uov-service bench  <endpoint> [--clients N] [--requests N] [--seed S] [--distinct N]
//!                               [--deadline MS] [--csv]
//! uov-service health <endpoint>
//! uov-service stats  <endpoint>
//! uov-service shutdown <endpoint>
//! ```
//!
//! Endpoints are TCP addresses (`127.0.0.1:7878`; port `0` picks a free
//! port and prints it) or Unix sockets (`unix:/tmp/uov.sock`). `query`
//! accepts a comma-separated replica list and plans through the
//! resilient fabric when more than one endpoint is given; with `--mesh`
//! it instead routes by consistent hash and distributes the search
//! across the shards as re-dispatchable work units.

use std::process::ExitCode;
use std::time::Duration;

use uov_isg::{IVec, RectDomain, Stencil};
use uov_service::{
    serve, Client, LoadGenConfig, MeshClient, MeshConfig, ObjectiveSpec, OpenLoopConfig,
    PlanRequest, QuotaConfig, ResilientClient, ResilientConfig, ServerConfig, TenantQuota,
    FLAG_NO_CACHE,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("serve") => cmd_serve(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("smoke") => cmd_smoke(&args[1..]),
        Some("health") => cmd_health(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("shutdown") => cmd_shutdown(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            eprintln!("{USAGE}");
            return ExitCode::from(if args.is_empty() { 1 } else { 0 });
        }
        Some(other) => Err(format!("unknown subcommand `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage:
  uov-service serve  <endpoint> [--workers N] [--queue N] [--cache N] [--search-threads N] [--warm-cache PATH] [--wedge-timeout MS]
                                [--degrade-watermark N] [--tenant-rate N] [--tenant-burst N] [--tenant-inflight N]
                                [--tenant-quota T:RATE:BURST:INFLIGHT[:WEIGHT] …]
  uov-service query  <endpoint[,endpoint…]> --stencil \"1,0;0,1;1,1\" [--grid N,M] [--deadline MS] [--no-cache] [--mesh [--replication K]]
  uov-service bench  <endpoint> [--clients N] [--requests N] [--seed S] [--distinct N] [--deadline MS] [--csv]
                                [--open-loop [--rps N] [--duration MS] [--tenants N] [--hog T] [--hog-multiplier N] [--batch N]]
  uov-service smoke  <endpoint>
  uov-service health <endpoint>
  uov-service stats  <endpoint>
  uov-service shutdown <endpoint>";

/// Pull the value of `--flag <value>` out of `args`, if present.
fn opt<'a>(args: &'a [String], flag: &str) -> Result<Option<&'a str>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .map(|s| Some(s.as_str()))
            .ok_or_else(|| format!("{flag} needs a value")),
    }
}

fn opt_parse<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> Result<T, String> {
    match opt(args, flag)? {
        None => Ok(default),
        Some(s) => s.parse().map_err(|_| format!("invalid {flag} `{s}`")),
    }
}

fn endpoint_of(args: &[String]) -> Result<&str, String> {
    args.first()
        .map(String::as_str)
        .filter(|a| !a.starts_with("--"))
        .ok_or_else(|| format!("missing endpoint\n{USAGE}"))
}

/// Parse `"1,0;0,1;1,1"` into a stencil.
fn parse_stencil(spec: &str) -> Result<Stencil, String> {
    let mut vectors = Vec::new();
    for part in spec.split(';') {
        let comps: Result<Vec<i64>, _> = part.split(',').map(|c| c.trim().parse()).collect();
        let comps = comps.map_err(|_| format!("invalid stencil vector `{part}`"))?;
        vectors.push(IVec::from(comps));
    }
    Stencil::new(vectors).map_err(|e| format!("invalid stencil: {e}"))
}

fn parse_grid(spec: &str) -> Result<RectDomain, String> {
    let parts: Vec<&str> = spec.split(',').collect();
    if parts.len() != 2 {
        return Err(format!("--grid wants N,M, got `{spec}`"));
    }
    let n: u32 = parts[0].trim().parse().map_err(|_| "invalid grid size")?;
    let m: u32 = parts[1].trim().parse().map_err(|_| "invalid grid size")?;
    if n == 0 || m == 0 {
        return Err("grid sides must be positive".into());
    }
    Ok(RectDomain::grid(n as i64, m as i64))
}

/// Parse one `--tenant-quota T:RATE:BURST:INFLIGHT[:WEIGHT]` spec.
fn parse_tenant_quota(spec: &str) -> Result<(u32, TenantQuota), String> {
    let parts: Vec<&str> = spec.split(':').collect();
    if !(4..=5).contains(&parts.len()) {
        return Err(format!(
            "--tenant-quota wants T:RATE:BURST:INFLIGHT[:WEIGHT], got `{spec}`"
        ));
    }
    let field = |i: usize| -> Result<u64, String> {
        parts[i]
            .trim()
            .parse()
            .map_err(|_| format!("invalid --tenant-quota field `{}`", parts[i]))
    };
    Ok((
        field(0)? as u32,
        TenantQuota {
            tokens_per_sec: field(1)?,
            burst: field(2)?,
            max_inflight: field(3)?,
            weight: if parts.len() == 5 {
                field(4)? as u32
            } else {
                1
            },
        },
    ))
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let endpoint = endpoint_of(args)?;
    let base = TenantQuota::default();
    let default_quota = TenantQuota {
        tokens_per_sec: opt_parse(args, "--tenant-rate", base.tokens_per_sec)?,
        burst: opt_parse(args, "--tenant-burst", base.burst)?,
        max_inflight: opt_parse(args, "--tenant-inflight", base.max_inflight)?,
        weight: base.weight,
    };
    let mut tenants = std::collections::HashMap::new();
    let mut i = 0;
    while let Some(pos) = args[i..].iter().position(|a| a == "--tenant-quota") {
        let at = i + pos;
        let spec = args
            .get(at + 1)
            .ok_or_else(|| "--tenant-quota needs a value".to_string())?;
        let (tenant, quota) = parse_tenant_quota(spec)?;
        tenants.insert(tenant, quota);
        i = at + 2;
    }
    let quota_flags = ["--tenant-rate", "--tenant-burst", "--tenant-inflight"]
        .iter()
        .any(|f| args.iter().any(|a| a == f));
    let quotas = if quota_flags || !tenants.is_empty() {
        Some(QuotaConfig {
            default: default_quota,
            tenants,
        })
    } else {
        None
    };
    let config = ServerConfig {
        workers: opt_parse(args, "--workers", ServerConfig::default().workers)?,
        queue_depth: opt_parse(args, "--queue", ServerConfig::default().queue_depth)?,
        search_threads: opt_parse(args, "--search-threads", 1)?,
        cache_capacity: opt_parse(args, "--cache", ServerConfig::default().cache_capacity)?,
        warm_cache: opt(args, "--warm-cache")?.map(std::path::PathBuf::from),
        wedge_timeout: Duration::from_millis(opt_parse(args, "--wedge-timeout", 0u64)?),
        degrade_watermark: opt_parse(args, "--degrade-watermark", 0usize)?,
        quotas,
        ..ServerConfig::default()
    };
    let server = serve(endpoint, config).map_err(|e| e.to_string())?;
    // Scripts read this line to learn the resolved port.
    println!("listening on {}", server.endpoint());
    let stats = server.join();
    println!(
        "drained: {} requests, {} responses, {} protocol errors, {} overloaded, {} panics",
        stats.requests,
        stats.responses,
        stats.protocol_errors,
        stats.rejected_overloaded,
        stats.panics
    );
    Ok(())
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let endpoint = endpoint_of(args)?;
    let stencil = parse_stencil(opt(args, "--stencil")?.ok_or("query needs --stencil")?)?;
    let objective = match opt(args, "--grid")? {
        Some(g) => ObjectiveSpec::KnownBounds(parse_grid(g)?),
        None => ObjectiveSpec::ShortestVector,
    };
    let deadline_ms: u32 = opt_parse(args, "--deadline", 0)?;
    let flags = if args.iter().any(|a| a == "--no-cache") {
        FLAG_NO_CACHE
    } else {
        0
    };
    let req = PlanRequest {
        stencil,
        objective,
        deadline_ms,
        flags,
    };
    let mesh_mode = args.iter().any(|a| a == "--mesh");
    let resp = if endpoint.contains(',') {
        let endpoints: Vec<String> = endpoint
            .split(',')
            .map(|e| e.trim().to_string())
            .filter(|e| !e.is_empty())
            .collect();
        if mesh_mode {
            // Consistent-hash routing + distributed work units. The
            // certified answer is pushed to `--replication K` ring
            // successors so failover targets are warm.
            let replication = opt_parse(
                args,
                "--replication",
                MeshConfig::default().replication_factor,
            )?;
            let mut mesh = MeshClient::new(
                &endpoints,
                MeshConfig {
                    attempt_timeout: Duration::from_secs(600),
                    replication_factor: replication,
                    ..MeshConfig::default()
                },
            )
            .map_err(|e| e.to_string())?;
            let resp = mesh.plan_distributed(&req).map_err(|e| e.to_string())?;
            let stats = mesh.stats();
            println!(
                "mesh        {} round(s), {} unit(s), {} redispatch(es), {} replica push(es)",
                stats.rounds, stats.units_dispatched, stats.redispatches, stats.replicas_pushed
            );
            resp
        } else {
            // A replica list: plan through the resilient fabric.
            let mut fabric = ResilientClient::new(
                &endpoints,
                ResilientConfig {
                    attempt_timeout: Duration::from_secs(600),
                    ..ResilientConfig::default()
                },
            )
            .map_err(|e| e.to_string())?;
            fabric.plan(&req).map_err(|e| e.to_string())?
        }
    } else {
        let mut client = Client::connect(endpoint).map_err(|e| e.to_string())?;
        client
            .set_timeout(Some(Duration::from_secs(600)))
            .map_err(|e| e.to_string())?;
        client.plan(&req).map_err(|e| e.to_string())?
    };
    println!("uov         {}", resp.uov);
    println!("cost        {}", resp.cost);
    println!("certificate {:#018x}", resp.certificate_hash);
    println!("degraded    {:?}", resp.degradation);
    println!("cache       {:?}", resp.cache);
    Ok(())
}

fn cmd_bench(args: &[String]) -> Result<(), String> {
    let endpoint = endpoint_of(args)?;
    if args.iter().any(|a| a == "--open-loop") {
        return cmd_bench_open_loop(endpoint, args);
    }
    let defaults = LoadGenConfig::default();
    let cfg = LoadGenConfig {
        clients: opt_parse(args, "--clients", defaults.clients)?,
        requests_per_client: opt_parse(args, "--requests", defaults.requests_per_client)?,
        seed: opt_parse(args, "--seed", defaults.seed)?,
        distinct_stencils: opt_parse(args, "--distinct", defaults.distinct_stencils)?,
        deadline_ms: opt_parse(args, "--deadline", defaults.deadline_ms)?,
        permute: true,
    };
    let report = uov_service::run_loadgen(endpoint, &cfg).map_err(|e| e.to_string())?;
    if args.iter().any(|a| a == "--csv") {
        println!(
            "completed,errors,elapsed_ms,throughput_rps,p50_us,p99_us,max_us,hits,misses,coalesced,hit_rate"
        );
        println!(
            "{},{},{},{:.1},{},{},{},{},{},{},{:.3}",
            report.completed,
            report.errors,
            report.elapsed.as_millis(),
            report.throughput_rps,
            report.p50_us,
            report.p99_us,
            report.max_us,
            report.hits,
            report.misses,
            report.coalesced,
            report.hit_rate()
        );
    } else {
        println!("| metric | value |");
        println!("|---|---|");
        println!("| completed | {} |", report.completed);
        println!("| errors | {} |", report.errors);
        println!("| elapsed | {:.1} ms |", report.elapsed.as_secs_f64() * 1e3);
        println!("| throughput | {:.1} req/s |", report.throughput_rps);
        println!("| p50 latency | {} µs |", report.p50_us);
        println!("| p99 latency | {} µs |", report.p99_us);
        println!("| cache hits | {} |", report.hits);
        println!("| cache misses | {} |", report.misses);
        println!("| coalesced | {} |", report.coalesced);
        println!("| hit rate | {:.1}% |", report.hit_rate() * 100.0);
    }
    Ok(())
}

/// Open-loop overload bench: fixed per-tenant arrival rates (optionally
/// with a hog tenant offering a multiple of everyone else's rate) and a
/// per-tenant availability table.
fn cmd_bench_open_loop(endpoint: &str, args: &[String]) -> Result<(), String> {
    let defaults = OpenLoopConfig::default();
    let hog = opt(args, "--hog")?
        .map(|s| s.parse::<u32>().map_err(|_| format!("invalid --hog `{s}`")))
        .transpose()?;
    let cfg = OpenLoopConfig {
        arrival_rps: opt_parse(args, "--rps", defaults.arrival_rps)?,
        duration_ms: opt_parse(args, "--duration", defaults.duration_ms)?,
        seed: opt_parse(args, "--seed", defaults.seed)?,
        tenants: opt_parse(args, "--tenants", defaults.tenants)?,
        hog_tenant: hog,
        hog_multiplier: opt_parse(args, "--hog-multiplier", defaults.hog_multiplier)?,
        distinct_stencils: opt_parse(args, "--distinct", defaults.distinct_stencils)?,
        deadline_ms: opt_parse(args, "--deadline", defaults.deadline_ms)?,
        batch: opt_parse(args, "--batch", defaults.batch)?,
        conns_per_tenant: opt_parse(args, "--conns", defaults.conns_per_tenant)?,
    };
    let report = uov_service::run_open_loop(endpoint, &cfg).map_err(|e| e.to_string())?;
    if args.iter().any(|a| a == "--csv") {
        println!("tenant,offered,completed,degraded,shed,errors,availability,p50_us,p99_us");
        for t in &report.tenants {
            println!(
                "{},{},{},{},{},{},{:.4},{},{}",
                t.tenant,
                t.offered,
                t.completed,
                t.degraded,
                t.shed,
                t.errors,
                t.availability(),
                t.p50_us,
                t.p99_us
            );
        }
    } else {
        println!("| tenant | offered | completed | degraded | shed | errors | availability | p50 µs | p99 µs |");
        println!("|---|---|---|---|---|---|---|---|---|");
        for t in &report.tenants {
            println!(
                "| {} | {} | {} | {} | {} | {} | {:.4} | {} | {} |",
                t.tenant,
                t.offered,
                t.completed,
                t.degraded,
                t.shed,
                t.errors,
                t.availability(),
                t.p50_us,
                t.p99_us
            );
        }
        println!(
            "compliant availability: {:.4} over {:.1} ms",
            report.compliant_availability(hog),
            report.elapsed.as_secs_f64() * 1e3
        );
    }
    Ok(())
}

/// CI acceptance check against a live server: a bounded deterministic
/// load must complete with zero errors and a warm >90% hit rate, and a
/// synchronized burst must coalesce at least one request onto an
/// in-flight search. Exits non-zero on any violation.
fn cmd_smoke(args: &[String]) -> Result<(), String> {
    let endpoint = endpoint_of(args)?;

    // Cold pass populates the cache; warm pass must run >90% hit rate.
    let cfg = LoadGenConfig {
        clients: 4,
        requests_per_client: 25,
        distinct_stencils: 6,
        permute: true,
        ..LoadGenConfig::default()
    };
    let cold = uov_service::run_loadgen(endpoint, &cfg).map_err(|e| e.to_string())?;
    let warm = uov_service::run_loadgen(endpoint, &cfg).map_err(|e| e.to_string())?;
    println!(
        "smoke: cold {}/{} ok ({} hits), warm {}/{} ok (hit rate {:.1}%)",
        cold.completed,
        cold.completed + cold.errors,
        cold.hits,
        warm.completed,
        warm.completed + warm.errors,
        warm.hit_rate() * 100.0
    );
    if cold.errors + warm.errors > 0 {
        return Err(format!(
            "load generation saw {} protocol errors",
            cold.errors + warm.errors
        ));
    }
    if warm.hit_rate() <= 0.90 {
        return Err(format!(
            "warm hit rate {:.1}% is not above 90%",
            warm.hit_rate() * 100.0
        ));
    }

    // Single-flight: at least one request of the burst must coalesce.
    let burst = uov_service::coalescing_burst(endpoint, 4, 300).map_err(|e| e.to_string())?;
    println!(
        "smoke: burst of {} → {} miss, {} coalesced, {} hit, {} distinct answer(s)",
        burst.burst, burst.misses, burst.coalesced, burst.hits, burst.distinct_answers
    );
    if burst.errors > 0 {
        return Err(format!("burst saw {} errors", burst.errors));
    }
    if burst.coalesced == 0 {
        return Err("no request coalesced onto the in-flight search".into());
    }
    if burst.distinct_answers != 1 {
        return Err(format!(
            "coalesced burst returned {} distinct answers, want 1",
            burst.distinct_answers
        ));
    }
    println!("smoke: OK");
    Ok(())
}

/// Probe liveness/readiness. Exit code 0 iff the server is ready, so
/// orchestration scripts can gate on it directly.
fn cmd_health(args: &[String]) -> Result<(), String> {
    let endpoint = endpoint_of(args)?;
    let mut client = Client::connect(endpoint).map_err(|e| e.to_string())?;
    client
        .set_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| e.to_string())?;
    let h = client.health().map_err(|e| e.to_string())?;
    println!(
        "ready {}  draining {}  workers {}  queue {}/{}",
        h.ready, h.draining, h.workers_alive, h.queue_len, h.queue_depth
    );
    if h.ready {
        Ok(())
    } else {
        Err("server is not ready".into())
    }
}

/// Dump the server's traffic/fault counters and cache counters.
fn cmd_stats(args: &[String]) -> Result<(), String> {
    let endpoint = endpoint_of(args)?;
    let mut client = Client::connect(endpoint).map_err(|e| e.to_string())?;
    client
        .set_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| e.to_string())?;
    let s = client.stats().map_err(|e| e.to_string())?;
    println!("| counter | value |");
    println!("|---|---|");
    println!("| connections | {} |", s.server.connections);
    println!("| requests | {} |", s.server.requests);
    println!("| responses | {} |", s.server.responses);
    println!("| rejected overloaded | {} |", s.server.rejected_overloaded);
    println!("| rejected shutdown | {} |", s.server.rejected_shutdown);
    println!("| protocol errors | {} |", s.server.protocol_errors);
    println!("| crc failures | {} |", s.server.crc_failures);
    println!("| bad magic | {} |", s.server.bad_magic);
    println!("| bad version | {} |", s.server.bad_version);
    println!("| oversized frames | {} |", s.server.oversized_frames);
    println!("| panics | {} |", s.server.panics);
    println!("| watchdog cancels | {} |", s.server.watchdog_cancels);
    println!("| worker restarts | {} |", s.server.worker_restarts);
    println!("| work units | {} |", s.server.workunits);
    println!(
        "| stale-epoch rejections | {} |",
        s.server.stale_epoch_rejections
    );
    println!(
        "| anti-entropy repairs | {} |",
        s.server.anti_entropy_repairs
    );
    println!("| warm-load corrupt | {} |", s.server.warm_load_corrupt);
    println!("| warm-load version | {} |", s.server.warm_load_version);
    println!("| shed over quota | {} |", s.server.shed_over_quota);
    println!(
        "| degraded under pressure | {} |",
        s.server.degraded_under_pressure
    );
    println!("| batch frames | {} |", s.server.batch_frames);
    println!("| idle timeouts | {} |", s.server.idle_timeouts);
    println!("| cache hits | {} |", s.cache.hits);
    println!("| cache misses | {} |", s.cache.misses);
    println!("| cache coalesced | {} |", s.cache.coalesced);
    println!("| cache warm-loaded | {} |", s.cache.warm_loaded);
    println!(
        "| cache replicated entries | {} |",
        s.cache.replicated_entries
    );
    println!("| cache replica hits | {} |", s.cache.replica_hits);
    match s.bound {
        Some(b) => println!(
            "| gossip bound | cost {} for problem {:#018x} |",
            b.cost, b.fingerprint
        ),
        None => println!("| gossip bound | none |"),
    }
    for g in &s.tenants {
        println!("| tenant {} in-flight | {} |", g.tenant, g.inflight);
    }
    Ok(())
}

fn cmd_shutdown(args: &[String]) -> Result<(), String> {
    let endpoint = endpoint_of(args)?;
    let mut client = Client::connect(endpoint).map_err(|e| e.to_string())?;
    client.shutdown_server().map_err(|e| e.to_string())?;
    println!("shutdown acknowledged");
    Ok(())
}
