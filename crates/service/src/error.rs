//! Typed failures of the planning service, shared by client and server.

use std::fmt;
use std::io;

use uov_core::wire::WireError;

/// Error codes carried in `RESP_ERROR` frames. The numeric values are part
/// of the wire format and must never be reassigned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The server's bounded request queue was full; retry later.
    Overloaded,
    /// The request frame or payload could not be decoded.
    Malformed,
    /// The request asks for something this server version cannot do.
    Unsupported,
    /// The request crashed or errored inside the server; the worker
    /// survived (panic isolation) and the failure is reported, not hidden.
    Internal,
    /// The server is draining: in-flight requests finish, new ones are
    /// rejected with this code.
    ShuttingDown,
    /// The frame failed a transport-level integrity check (CRC, magic,
    /// torn frame): the bytes were damaged in transit, not the request
    /// itself, so resending the same request is safe and likely to
    /// succeed. Distinct from [`ErrorCode::Malformed`], which means the
    /// request content is wrong and a retry cannot help.
    Corrupted,
    /// A work-unit completion (or dispatch) carried a fencing epoch older
    /// than one the server has already seen for the same problem: the
    /// lease was superseded by a re-dispatch, and accepting the stale
    /// unit could double-apply work. The coordinator treats this as a
    /// benign race, not a replica failure.
    StaleEpoch,
}

impl ErrorCode {
    /// Wire encoding of the code.
    pub fn to_u8(self) -> u8 {
        match self {
            ErrorCode::Overloaded => 1,
            ErrorCode::Malformed => 2,
            ErrorCode::Unsupported => 3,
            ErrorCode::Internal => 4,
            ErrorCode::ShuttingDown => 5,
            ErrorCode::Corrupted => 6,
            ErrorCode::StaleEpoch => 7,
        }
    }

    /// Decode a wire code; `None` for unassigned values.
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            1 => Some(ErrorCode::Overloaded),
            2 => Some(ErrorCode::Malformed),
            3 => Some(ErrorCode::Unsupported),
            4 => Some(ErrorCode::Internal),
            5 => Some(ErrorCode::ShuttingDown),
            6 => Some(ErrorCode::Corrupted),
            7 => Some(ErrorCode::StaleEpoch),
            _ => None,
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErrorCode::Overloaded => write!(f, "overloaded"),
            ErrorCode::Malformed => write!(f, "malformed request"),
            ErrorCode::Unsupported => write!(f, "unsupported request"),
            ErrorCode::Internal => write!(f, "internal server error"),
            ErrorCode::ShuttingDown => write!(f, "server is shutting down"),
            ErrorCode::Corrupted => write!(f, "frame corrupted in transit"),
            ErrorCode::StaleEpoch => write!(f, "work-unit lease epoch superseded"),
        }
    }
}

/// Everything that can go wrong speaking the planning protocol.
#[derive(Debug)]
pub enum ServiceError {
    /// An OS-level socket failure.
    Io(io::Error),
    /// Structural decode failure (truncation, oversized declared size).
    Wire(WireError),
    /// The peer's frame does not start with the protocol magic.
    BadMagic,
    /// The peer speaks a protocol version this build does not.
    UnsupportedVersion(u16),
    /// A frame declares a payload larger than the protocol allows. The
    /// frame is rejected *before* any allocation of that size.
    FrameTooLarge(u32),
    /// A frame's CRC32 does not match its contents.
    CrcMismatch,
    /// The frame decodes structurally but violates a protocol invariant
    /// (unknown kind, invalid stencil, bad domain bounds, …).
    Malformed(String),
    /// The peer closed the connection mid-frame (half-open, crash, or
    /// network drop).
    ConnectionClosed,
    /// The server answered with a typed error frame.
    Rejected {
        /// The server's error code.
        code: ErrorCode,
        /// Human-readable detail from the server.
        msg: String,
    },
    /// Every replica in the fabric failed (or the retry budget ran out)
    /// before a certified answer arrived. Carries the final per-attempt
    /// failure for diagnosis.
    FabricExhausted {
        /// Attempts made before giving up.
        attempts: u32,
        /// The failure of the last attempt.
        last: Box<ServiceError>,
    },
    /// Two replicas returned *certified* answers whose transcript hashes
    /// disagree. The fabric cannot know which replica is lying, so this
    /// is a hard error — never silently pick one.
    ReplicaDivergence {
        /// Transcript hash from the first replica to answer.
        a: u64,
        /// Transcript hash from the second replica.
        b: u64,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Io(e) => write!(f, "socket error: {e}"),
            ServiceError::Wire(e) => write!(f, "wire decode error: {e}"),
            ServiceError::BadMagic => write!(f, "not a UOV service frame (bad magic)"),
            ServiceError::UnsupportedVersion(v) => {
                write!(f, "unsupported protocol version {v}")
            }
            ServiceError::FrameTooLarge(n) => {
                write!(f, "declared payload of {n} bytes exceeds the frame limit")
            }
            ServiceError::CrcMismatch => write!(f, "frame failed its CRC32 check"),
            ServiceError::Malformed(msg) => write!(f, "malformed frame: {msg}"),
            ServiceError::ConnectionClosed => write!(f, "peer closed the connection"),
            ServiceError::Rejected { code, msg } => write!(f, "server rejected: {code}: {msg}"),
            ServiceError::FabricExhausted { attempts, last } => {
                write!(f, "all replicas failed after {attempts} attempts: {last}")
            }
            ServiceError::ReplicaDivergence { a, b } => write!(
                f,
                "replicas returned divergent certified answers \
                 (transcript {a:#018x} vs {b:#018x})"
            ),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Io(e) => Some(e),
            ServiceError::Wire(e) => Some(e),
            ServiceError::FabricExhausted { last, .. } => Some(last.as_ref()),
            _ => None,
        }
    }
}

impl From<io::Error> for ServiceError {
    fn from(e: io::Error) -> Self {
        ServiceError::Io(e)
    }
}

impl From<WireError> for ServiceError {
    fn from(e: WireError) -> Self {
        ServiceError::Wire(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_codes_round_trip() {
        for code in [
            ErrorCode::Overloaded,
            ErrorCode::Malformed,
            ErrorCode::Unsupported,
            ErrorCode::Internal,
            ErrorCode::ShuttingDown,
            ErrorCode::Corrupted,
            ErrorCode::StaleEpoch,
        ] {
            assert_eq!(ErrorCode::from_u8(code.to_u8()), Some(code));
        }
        assert_eq!(ErrorCode::from_u8(0), None);
        assert_eq!(ErrorCode::from_u8(99), None);
    }
}
