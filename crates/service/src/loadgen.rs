//! Deterministic load generators for the planning service.
//!
//! Two workload shapes:
//!
//! * **Closed loop** ([`run`]): `clients` threads each run a fixed
//!   number of requests back-to-back (the next request starts when the
//!   previous one answers). Measures service latency under bounded
//!   concurrency.
//! * **Open loop** ([`run_open_loop`]): requests arrive on a fixed
//!   schedule derived from the seed — per-tenant arrival rates, an
//!   optional *hog* tenant offering a multiple of everyone else's rate,
//!   and optional batching — regardless of how fast the server answers.
//!   Measures overload behavior: per-tenant availability, sheds, and
//!   pressure degradations.
//!
//! Both are fully determined by the seed: every stream draws from its
//! own xorshift64 state, picking stencils from a fixed pool — optionally
//! resubmitting axis-permuted variants to exercise the canonicalizing
//! cache — so two runs with the same seed issue the same requests in the
//! same per-stream order (open-loop arrival *times* are scheduled
//! deterministically; actual service timing is the system under test).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use uov_isg::{IVec, RectDomain, Stencil};

use crate::client::Client;
use crate::error::{ErrorCode, ServiceError};
use crate::proto::{BatchRequest, CacheOutcome, DegradationCode, ObjectiveSpec, PlanRequest};

/// Workload shape for [`run`].
#[derive(Debug, Clone)]
pub struct LoadGenConfig {
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Requests each client issues.
    pub requests_per_client: usize,
    /// Seed for the deterministic request streams.
    pub seed: u64,
    /// Distinct stencils in the pool (small pool ⇒ high cache hit rate).
    pub distinct_stencils: usize,
    /// Per-request deadline in ms (0 = unlimited).
    pub deadline_ms: u32,
    /// Also resubmit axis-permuted variants of pool stencils, which the
    /// canonicalizing cache must collapse onto the same entries.
    pub permute: bool,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        LoadGenConfig {
            clients: 4,
            requests_per_client: 50,
            seed: 0x10AD_6E4E,
            distinct_stencils: 8,
            deadline_ms: 0,
            permute: true,
        }
    }
}

/// Aggregate results of one load-generation run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests that received a `RESP_PLAN`.
    pub completed: u64,
    /// Requests that failed (transport or typed rejection).
    pub errors: u64,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// Median response latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile response latency, microseconds.
    pub p99_us: u64,
    /// Maximum response latency, microseconds.
    pub max_us: u64,
    /// Responses served from the plan cache.
    pub hits: u64,
    /// Responses that ran a fresh search.
    pub misses: u64,
    /// Responses deduplicated onto a concurrent identical search.
    pub coalesced: u64,
}

impl LoadReport {
    /// Fraction of completed requests that avoided a fresh search
    /// (cache hits plus coalesced), in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.completed == 0 {
            return 0.0;
        }
        (self.hits + self.coalesced) as f64 / self.completed as f64
    }
}

/// Minimal deterministic PRNG so the service crate stays dependency-free.
struct XorShift64(u64);

impl XorShift64 {
    fn new(seed: u64) -> Self {
        // Zero is the one absorbing state of xorshift; avoid it.
        XorShift64(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        self.next() % n
    }
}

/// Deterministic pool of distinct, valid 2-D stencils. Index `i` always
/// yields the same stencil regardless of seed, so pool membership is
/// stable across runs and processes.
pub fn stencil_pool(distinct: usize) -> Vec<Stencil> {
    // Lex-positive building blocks; every subset of ≥2 forms a valid
    // stencil.
    let basis: Vec<IVec> = vec![
        IVec::from(vec![1, 0]),
        IVec::from(vec![0, 1]),
        IVec::from(vec![1, 1]),
        IVec::from(vec![2, 1]),
        IVec::from(vec![1, 2]),
        IVec::from(vec![1, -1]),
        IVec::from(vec![2, -1]),
        IVec::from(vec![0, 2]),
    ];
    let mut pool = Vec::with_capacity(distinct);
    let mut i: u64 = 0;
    while pool.len() < distinct {
        i += 1;
        // Enumerate subsets by the bits of `i`, requiring at least two
        // vectors so the search has real structure.
        let mask = i % (1 << basis.len());
        if mask.count_ones() < 2 {
            continue;
        }
        let vectors: Vec<IVec> = basis
            .iter()
            .enumerate()
            .filter(|(k, _)| mask & (1 << k) != 0)
            .map(|(_, v)| v.clone())
            .collect();
        if let Ok(s) = Stencil::new(vectors) {
            if !pool.contains(&s) {
                pool.push(s);
            }
        }
    }
    pool
}

/// Swap the two axes of a 2-D stencil when the swap keeps every vector
/// lex-positive; otherwise return the stencil unchanged. The swapped
/// problem is equivalent under the canonicalizing cache.
fn axis_swapped(s: &Stencil) -> Stencil {
    if s.dim() != 2 {
        return s.clone();
    }
    let swapped: Vec<IVec> = s.iter().map(|v| IVec::from(vec![v[1], v[0]])).collect();
    if !swapped.iter().all(IVec::is_lex_positive) {
        return s.clone();
    }
    Stencil::new(swapped).unwrap_or_else(|_| s.clone())
}

/// Result of a [`coalescing_burst`] round.
#[derive(Debug, Clone)]
pub struct BurstReport {
    /// Requests fired (barrier-synchronized, identical).
    pub burst: u64,
    /// Requests that ran a fresh search — the flight leaders.
    pub misses: u64,
    /// Requests served from the LRU.
    pub hits: u64,
    /// Requests that parked on an in-flight identical search.
    pub coalesced: u64,
    /// Distinct `(uov, cost, certificate_hash)` triples observed; 1 when
    /// the whole burst landed in a single flight.
    pub distinct_answers: u64,
    /// Requests that failed outright.
    pub errors: u64,
}

/// Fire `n` barrier-synchronized identical requests at a stencil outside
/// the [`stencil_pool`], so the burst is that key's cold start.
///
/// Timing is made deterministic with the protocol's own budget: the
/// burst problem is a 4-D cross stencil whose branch-and-bound runs far
/// past any deadline, and the request carries `deadline_ms`, so the
/// leader's flight provably stays open for the whole deadline window.
/// Every waiter scheduled inside it coalesces — on any machine, a
/// single-core host included. The leader degrades to a legal UOV at the
/// deadline and publishes it to all waiters; degraded answers are never
/// cached, so each call to this function is a fresh burst.
///
/// # Errors
///
/// [`ServiceError`] only if no client could connect; per-request
/// failures are counted in [`BurstReport::errors`].
pub fn coalescing_burst(
    endpoint: &str,
    n: usize,
    deadline_ms: u32,
) -> Result<BurstReport, ServiceError> {
    let mut vectors: Vec<IVec> = (0..4).map(|k| IVec::unit(4, k)).collect();
    vectors.push(IVec::from(vec![1, 1, 1, 1]));
    vectors.push(IVec::from(vec![1, -1, 1, -1]));
    let stencil = Stencil::new(vectors).map_err(|e| ServiceError::Malformed(e.to_string()))?;
    let n = n.max(2);
    let barrier = Arc::new(std::sync::Barrier::new(n));
    let mut handles = Vec::with_capacity(n);
    for _ in 0..n {
        let barrier = Arc::clone(&barrier);
        let endpoint = endpoint.to_string();
        let stencil = stencil.clone();
        handles.push(thread::spawn(move || {
            let mut client = Client::connect(&endpoint)?;
            barrier.wait();
            client.plan(&PlanRequest {
                stencil,
                objective: ObjectiveSpec::ShortestVector,
                deadline_ms: deadline_ms.max(1),
                flags: 0,
            })
        }));
    }
    let mut report = BurstReport {
        burst: n as u64,
        misses: 0,
        hits: 0,
        coalesced: 0,
        distinct_answers: 0,
        errors: 0,
    };
    let mut answers: Vec<(IVec, u128, u64)> = Vec::new();
    let mut connected = false;
    for h in handles {
        match h.join() {
            Ok(Ok(resp)) => {
                connected = true;
                answers.push((resp.uov, resp.cost, resp.certificate_hash));
                match resp.cache {
                    CacheOutcome::Miss => report.misses += 1,
                    CacheOutcome::Hit => report.hits += 1,
                    CacheOutcome::Coalesced => report.coalesced += 1,
                }
            }
            _ => report.errors += 1,
        }
    }
    if !connected && report.errors > 0 {
        return Err(ServiceError::ConnectionClosed);
    }
    answers.sort();
    answers.dedup();
    report.distinct_answers = answers.len() as u64;
    Ok(report)
}

/// Run the closed-loop workload against a live server.
///
/// # Errors
///
/// [`ServiceError`] if a client thread cannot connect at all; individual
/// request failures are counted in [`LoadReport::errors`] instead.
pub fn run(endpoint: &str, cfg: &LoadGenConfig) -> Result<LoadReport, ServiceError> {
    let pool = Arc::new(stencil_pool(cfg.distinct_stencils.max(1)));
    let errors = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let mut handles = Vec::with_capacity(cfg.clients.max(1));
    for client_idx in 0..cfg.clients.max(1) {
        let pool = Arc::clone(&pool);
        let errors = Arc::clone(&errors);
        let endpoint = endpoint.to_string();
        let cfg = cfg.clone();
        handles.push(thread::spawn(move || {
            let mut latencies: Vec<u64> = Vec::with_capacity(cfg.requests_per_client);
            let mut outcomes = [0u64; 3];
            let mut client = match Client::connect(&endpoint) {
                Ok(c) => c,
                Err(_) => {
                    errors.fetch_add(cfg.requests_per_client as u64, Ordering::Relaxed);
                    return (latencies, outcomes);
                }
            };
            // Distinct stream per client, same streams every run.
            let mut rng =
                XorShift64::new(cfg.seed ^ (client_idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            for _ in 0..cfg.requests_per_client {
                let base = &pool[rng.below(pool.len() as u64) as usize];
                let stencil = if cfg.permute && rng.below(2) == 1 {
                    axis_swapped(base)
                } else {
                    base.clone()
                };
                let objective = if rng.below(4) == 0 {
                    let n = 4 + rng.below(5) as i64;
                    ObjectiveSpec::KnownBounds(RectDomain::grid(n, n))
                } else {
                    ObjectiveSpec::ShortestVector
                };
                let req = PlanRequest {
                    stencil,
                    objective,
                    deadline_ms: cfg.deadline_ms,
                    flags: 0,
                };
                let sent = Instant::now();
                match client.plan(&req) {
                    Ok(resp) => {
                        let us = sent.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                        latencies.push(us);
                        let slot = match resp.cache {
                            CacheOutcome::Miss => 0,
                            CacheOutcome::Hit => 1,
                            CacheOutcome::Coalesced => 2,
                        };
                        outcomes[slot] += 1;
                    }
                    Err(_) => {
                        errors.fetch_add(1, Ordering::Relaxed);
                        // The connection may be unusable now; redial.
                        if let Ok(c) = Client::connect(&endpoint) {
                            client = c;
                        }
                    }
                }
            }
            (latencies, outcomes)
        }));
    }

    let mut latencies: Vec<u64> = Vec::new();
    let mut misses = 0u64;
    let mut hits = 0u64;
    let mut coalesced = 0u64;
    for h in handles {
        if let Ok((lat, outcomes)) = h.join() {
            latencies.extend(lat);
            misses += outcomes[0];
            hits += outcomes[1];
            coalesced += outcomes[2];
        } else {
            errors.fetch_add(1, Ordering::Relaxed);
        }
    }
    let elapsed = start.elapsed();
    latencies.sort_unstable();
    let completed = latencies.len() as u64;
    let pct = |p: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let idx = ((latencies.len() - 1) as f64 * p).round() as usize;
        latencies[idx.min(latencies.len() - 1)]
    };
    Ok(LoadReport {
        completed,
        errors: errors.load(Ordering::Relaxed),
        elapsed,
        throughput_rps: if elapsed.as_secs_f64() > 0.0 {
            completed as f64 / elapsed.as_secs_f64()
        } else {
            0.0
        },
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        max_us: latencies.last().copied().unwrap_or(0),
        hits,
        misses,
        coalesced,
    })
}

// -------------------------------------------------------------- open loop

/// Workload shape for [`run_open_loop`].
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// Arrivals per second offered by each compliant tenant.
    pub arrival_rps: u64,
    /// Length of the arrival schedule, milliseconds.
    pub duration_ms: u64,
    /// Seed for the deterministic streams (stencil picks and phases).
    pub seed: u64,
    /// Compliant tenants, ids `1..=tenants`, each offering `arrival_rps`.
    pub tenants: usize,
    /// Optional hog: this tenant offers `hog_multiplier ×` the compliant
    /// rate. Use an id outside `1..=tenants` to add a pure aggressor.
    pub hog_tenant: Option<u32>,
    /// The hog's rate multiple (≥ 1).
    pub hog_multiplier: u64,
    /// Distinct stencils in the shared pool.
    pub distinct_stencils: usize,
    /// Per-request deadline in ms (0 = unlimited).
    pub deadline_ms: u32,
    /// Entries per wire frame: 1 sends singleton `REQ_PLAN`s, larger
    /// values group consecutive arrivals into `REQ_BATCH` frames.
    pub batch: usize,
    /// Concurrent sender connections per tenant (arrivals are dealt to
    /// senders round-robin so one slow answer cannot stall the stream).
    pub conns_per_tenant: usize,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        OpenLoopConfig {
            arrival_rps: 50,
            duration_ms: 1000,
            seed: 0x0BE4_10AD,
            tenants: 3,
            hog_tenant: None,
            hog_multiplier: 10,
            distinct_stencils: 8,
            deadline_ms: 0,
            batch: 1,
            conns_per_tenant: 2,
        }
    }
}

/// One tenant's slice of an open-loop run.
#[derive(Debug, Clone, Copy, Default)]
pub struct TenantLoad {
    /// The tenant id these counters describe.
    pub tenant: u32,
    /// Plan entries offered (batch entries count individually).
    pub offered: u64,
    /// Entries answered with a certified plan (full-fidelity or
    /// degraded — both are served, legal answers).
    pub completed: u64,
    /// Completed entries that were degraded (deadline or pressure).
    pub degraded: u64,
    /// Entries shed with a typed `Overloaded` rejection.
    pub shed: u64,
    /// Entries lost to transport faults or other typed errors.
    pub errors: u64,
    /// Median entry latency, microseconds (batch entries share their
    /// frame's round-trip time).
    pub p50_us: u64,
    /// 99th-percentile entry latency, microseconds.
    pub p99_us: u64,
}

impl TenantLoad {
    /// Served fraction of offered entries, in `[0, 1]`: sheds and
    /// errors count against availability, degraded answers do not (they
    /// are certified, legal plans).
    pub fn availability(&self) -> f64 {
        if self.offered == 0 {
            return 1.0;
        }
        self.completed as f64 / self.offered as f64
    }
}

/// Aggregate results of one open-loop run.
#[derive(Debug, Clone)]
pub struct OpenLoopReport {
    /// Per-tenant outcomes, sorted by tenant id.
    pub tenants: Vec<TenantLoad>,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
}

impl OpenLoopReport {
    /// The slice for one tenant, if it offered any traffic.
    pub fn tenant(&self, id: u32) -> Option<&TenantLoad> {
        self.tenants.iter().find(|t| t.tenant == id)
    }

    /// Worst availability over every tenant except `hog`: the headline
    /// overload-safety number (1.0 = no compliant entry was refused).
    pub fn compliant_availability(&self, hog: Option<u32>) -> f64 {
        self.tenants
            .iter()
            .filter(|t| Some(t.tenant) != hog)
            .map(TenantLoad::availability)
            .fold(1.0, f64::min)
    }
}

/// One scheduled arrival: a stencil pick due `at_ms` after the start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Arrival {
    at_ms: u64,
    pool_idx: usize,
    permuted: bool,
}

/// Build the deterministic arrival schedule: for each tenant, evenly
/// spaced arrivals over the run with a seed-derived phase, and
/// seed-derived stencil picks. Pure function of the config.
fn arrival_schedule(cfg: &OpenLoopConfig, pool_len: usize) -> Vec<(u32, Vec<Arrival>)> {
    let mut tenants: Vec<(u32, u64)> = (1..=cfg.tenants.max(1) as u32)
        .map(|t| (t, cfg.arrival_rps.max(1)))
        .collect();
    if let Some(hog) = cfg.hog_tenant {
        let rate = cfg.arrival_rps.max(1) * cfg.hog_multiplier.max(1);
        match tenants.iter_mut().find(|(t, _)| *t == hog) {
            Some(slot) => slot.1 = rate,
            None => tenants.push((hog, rate)),
        }
    }
    tenants.sort_unstable_by_key(|&(t, _)| t);
    tenants
        .into_iter()
        .map(|(tenant, rate)| {
            let mut rng =
                XorShift64::new(cfg.seed ^ u64::from(tenant).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let count = (rate * cfg.duration_ms.max(1)).div_ceil(1000).max(1);
            let phase = rng.below(1000 / rate.clamp(1, 1000));
            let arrivals = (0..count)
                .map(|k| Arrival {
                    at_ms: phase + k * cfg.duration_ms.max(1) / count,
                    pool_idx: rng.below(pool_len as u64) as usize,
                    permuted: rng.below(2) == 1,
                })
                .collect();
            (tenant, arrivals)
        })
        .collect()
}

/// Run the open-loop workload against a live server.
///
/// Arrivals are dealt round-robin to `conns_per_tenant` sender threads
/// per tenant; each sender sleeps until an arrival's scheduled time and
/// issues it (late if the previous answer on that connection was slow —
/// the schedule itself never shrinks, which is what makes the load
/// *open* loop). With `batch > 1`, each sender groups its consecutive
/// arrivals into `REQ_BATCH` frames.
///
/// # Errors
///
/// [`ServiceError`] only if no sender could ever connect; per-entry
/// failures are counted in the report instead.
pub fn run_open_loop(endpoint: &str, cfg: &OpenLoopConfig) -> Result<OpenLoopReport, ServiceError> {
    let pool = Arc::new(stencil_pool(cfg.distinct_stencils.max(1)));
    let schedule = arrival_schedule(cfg, pool.len());
    let connected = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    type SenderResult = (TenantLoad, Vec<u64>);
    let mut handles: Vec<(u32, thread::JoinHandle<SenderResult>)> = Vec::new();
    for (tenant, arrivals) in schedule {
        let senders = cfg.conns_per_tenant.max(1);
        for s in 0..senders {
            let mine: Vec<Arrival> = arrivals.iter().copied().skip(s).step_by(senders).collect();
            if mine.is_empty() {
                continue;
            }
            let pool = Arc::clone(&pool);
            let connected = Arc::clone(&connected);
            let endpoint = endpoint.to_string();
            let cfg = cfg.clone();
            handles.push((
                tenant,
                thread::spawn(move || {
                    run_sender(&endpoint, tenant, &mine, &pool, &cfg, start, &connected)
                }),
            ));
        }
    }
    let mut merged: Vec<TenantLoad> = Vec::new();
    let mut latencies: Vec<(u32, Vec<u64>)> = Vec::new();
    for (tenant, h) in handles {
        let (part, lats) = match h.join() {
            Ok(r) => r,
            Err(_) => (
                TenantLoad {
                    tenant,
                    ..TenantLoad::default()
                },
                Vec::new(),
            ),
        };
        if !merged.iter().any(|t| t.tenant == tenant) {
            merged.push(TenantLoad {
                tenant,
                ..TenantLoad::default()
            });
            latencies.push((tenant, Vec::new()));
        }
        if let Some(slot) = merged.iter_mut().find(|t| t.tenant == tenant) {
            slot.offered += part.offered;
            slot.completed += part.completed;
            slot.degraded += part.degraded;
            slot.shed += part.shed;
            slot.errors += part.errors;
        }
        if let Some((_, all)) = latencies.iter_mut().find(|(t, _)| *t == tenant) {
            all.extend(lats);
        }
    }
    if connected.load(Ordering::Relaxed) == 0 && merged.iter().any(|t| t.errors > 0) {
        return Err(ServiceError::ConnectionClosed);
    }
    for slot in &mut merged {
        if let Some((_, lats)) = latencies.iter_mut().find(|(t, _)| *t == slot.tenant) {
            lats.sort_unstable();
            let pct = |p: f64| -> u64 {
                if lats.is_empty() {
                    return 0;
                }
                let idx = ((lats.len() - 1) as f64 * p).round() as usize;
                lats[idx.min(lats.len() - 1)]
            };
            slot.p50_us = pct(0.50);
            slot.p99_us = pct(0.99);
        }
    }
    merged.sort_unstable_by_key(|t| t.tenant);
    Ok(OpenLoopReport {
        tenants: merged,
        elapsed: start.elapsed(),
    })
}

/// One sender thread's share of a tenant's schedule: issue each arrival
/// at its due time over one connection, grouping `cfg.batch` consecutive
/// arrivals into a `REQ_BATCH` frame when batching is on.
fn run_sender(
    endpoint: &str,
    tenant: u32,
    arrivals: &[Arrival],
    pool: &[Stencil],
    cfg: &OpenLoopConfig,
    start: Instant,
    connected: &AtomicU64,
) -> (TenantLoad, Vec<u64>) {
    let mut load = TenantLoad {
        tenant,
        ..TenantLoad::default()
    };
    let mut lats: Vec<u64> = Vec::with_capacity(arrivals.len());
    let mut client: Option<Client> = None;
    let batch = cfg.batch.max(1);
    for group in arrivals.chunks(batch) {
        // Open loop: wait for the *scheduled* time of the group's first
        // arrival, regardless of how long earlier answers took.
        let due = start + Duration::from_millis(group[0].at_ms);
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            if !wait.is_zero() {
                thread::sleep(wait);
            }
        }
        load.offered += group.len() as u64;
        let c = match &mut client {
            Some(c) => c,
            None => match Client::connect(endpoint) {
                Ok(mut c) => {
                    c.set_tenant(tenant);
                    connected.fetch_add(1, Ordering::Relaxed);
                    client.insert(c)
                }
                Err(_) => {
                    load.errors += group.len() as u64;
                    continue;
                }
            },
        };
        let entries: Vec<PlanRequest> = group
            .iter()
            .map(|a| {
                let base = &pool[a.pool_idx % pool.len()];
                PlanRequest {
                    stencil: if a.permuted {
                        axis_swapped(base)
                    } else {
                        base.clone()
                    },
                    objective: ObjectiveSpec::ShortestVector,
                    deadline_ms: cfg.deadline_ms,
                    flags: 0,
                }
            })
            .collect();
        let sent = Instant::now();
        if batch == 1 {
            match c.plan(&entries[0]) {
                Ok(resp) => {
                    load.completed += 1;
                    if resp.degradation != DegradationCode::None {
                        load.degraded += 1;
                    }
                    lats.push(sent.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
                }
                Err(e) => count_entry_error(&e, 1, &mut load, &mut client),
            }
        } else {
            let req = BatchRequest { entries };
            match c.plan_batch(&req) {
                Ok(resp) => {
                    let us = sent.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                    for entry in &resp.entries {
                        match entry {
                            Ok(plan) => {
                                load.completed += 1;
                                if plan.degradation != DegradationCode::None {
                                    load.degraded += 1;
                                }
                                lats.push(us);
                            }
                            Err(err) if err.code == ErrorCode::Overloaded => load.shed += 1,
                            Err(_) => load.errors += 1,
                        }
                    }
                    // Short answers (should not happen) count as errors.
                    load.errors += (req.entries.len().saturating_sub(resp.entries.len())) as u64;
                }
                Err(e) => count_entry_error(&e, req.entries.len() as u64, &mut load, &mut client),
            }
        }
    }
    (load, lats)
}

/// Attribute a frame-level failure to its entries and drop the
/// connection when the transport may be unusable.
fn count_entry_error(
    e: &ServiceError,
    entries: u64,
    load: &mut TenantLoad,
    client: &mut Option<Client>,
) {
    match e {
        ServiceError::Rejected {
            code: ErrorCode::Overloaded,
            ..
        } => load.shed += entries,
        ServiceError::Rejected { .. } => load.errors += entries,
        _ => {
            load.errors += entries;
            // The connection may be unusable now; redial next arrival.
            *client = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stencil_pool_is_deterministic_and_distinct() {
        let a = stencil_pool(8);
        let b = stencil_pool(8);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        for (i, s) in a.iter().enumerate() {
            for t in &a[i + 1..] {
                assert_ne!(s, t);
            }
        }
    }

    #[test]
    fn xorshift_streams_are_deterministic() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next(), b.next());
        }
        // Seed 0 must not absorb.
        let mut z = XorShift64::new(0);
        assert_ne!(z.next(), 0);
    }

    #[test]
    fn arrival_schedule_is_deterministic_and_hog_rate_scales() {
        let cfg = OpenLoopConfig {
            arrival_rps: 40,
            duration_ms: 2000,
            tenants: 3,
            hog_tenant: Some(9),
            hog_multiplier: 10,
            ..OpenLoopConfig::default()
        };
        let a = arrival_schedule(&cfg, 8);
        let b = arrival_schedule(&cfg, 8);
        assert_eq!(a, b, "same seed must give the same schedule");
        assert_eq!(a.len(), 4, "three compliant tenants plus the hog");
        let compliant = a.iter().find(|(t, _)| *t == 1).map(|(_, v)| v.len());
        let hog = a.iter().find(|(t, _)| *t == 9).map(|(_, v)| v.len());
        assert_eq!(compliant, Some(80), "40 rps × 2 s");
        assert_eq!(hog, Some(800), "hog offers 10× the compliant rate");
        for (_, arrivals) in &a {
            assert!(arrivals.windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
            assert!(arrivals.iter().all(|x| x.pool_idx < 8));
        }
    }

    #[test]
    fn hog_id_inside_compliant_range_replaces_that_tenant_rate() {
        let cfg = OpenLoopConfig {
            arrival_rps: 10,
            duration_ms: 1000,
            tenants: 2,
            hog_tenant: Some(2),
            hog_multiplier: 5,
            ..OpenLoopConfig::default()
        };
        let sched = arrival_schedule(&cfg, 4);
        assert_eq!(sched.len(), 2, "hog replaces tenant 2, not added");
        let t2 = sched.iter().find(|(t, _)| *t == 2).map(|(_, v)| v.len());
        assert_eq!(t2, Some(50), "tenant 2 offers 5× the base rate");
    }

    #[test]
    fn availability_counts_sheds_against_and_degrades_for() {
        let t = TenantLoad {
            tenant: 1,
            offered: 10,
            completed: 8,
            degraded: 3,
            shed: 1,
            errors: 1,
            ..TenantLoad::default()
        };
        assert!((t.availability() - 0.8).abs() < 1e-9);
        let clean = TenantLoad {
            tenant: 2,
            offered: 4,
            completed: 4,
            degraded: 4,
            ..TenantLoad::default()
        };
        assert!((clean.availability() - 1.0).abs() < 1e-9);
        let report = OpenLoopReport {
            tenants: vec![t, clean],
            elapsed: Duration::from_millis(1),
        };
        assert!((report.compliant_availability(Some(1)) - 1.0).abs() < 1e-9);
        assert!((report.compliant_availability(None) - 0.8).abs() < 1e-9);
    }

    #[test]
    fn axis_swap_preserves_validity() {
        for s in stencil_pool(8) {
            let t = axis_swapped(&s);
            assert_eq!(t.dim(), s.dim());
            assert!(t.iter().all(IVec::is_lex_positive));
        }
    }
}
