//! A deterministic closed-loop load generator for the planning service.
//!
//! `clients` threads each run a fixed number of requests back-to-back
//! (closed loop: the next request starts when the previous one answers).
//! The workload is fully determined by the seed: every client draws from
//! its own xorshift64 stream, picking stencils from a fixed pool —
//! optionally resubmitting axis-permuted variants to exercise the
//! canonicalizing cache — so two runs with the same seed issue the same
//! requests in the same per-client order.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use uov_isg::{IVec, RectDomain, Stencil};

use crate::client::Client;
use crate::error::ServiceError;
use crate::proto::{CacheOutcome, ObjectiveSpec, PlanRequest};

/// Workload shape for [`run`].
#[derive(Debug, Clone)]
pub struct LoadGenConfig {
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Requests each client issues.
    pub requests_per_client: usize,
    /// Seed for the deterministic request streams.
    pub seed: u64,
    /// Distinct stencils in the pool (small pool ⇒ high cache hit rate).
    pub distinct_stencils: usize,
    /// Per-request deadline in ms (0 = unlimited).
    pub deadline_ms: u32,
    /// Also resubmit axis-permuted variants of pool stencils, which the
    /// canonicalizing cache must collapse onto the same entries.
    pub permute: bool,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        LoadGenConfig {
            clients: 4,
            requests_per_client: 50,
            seed: 0x10AD_6E4E,
            distinct_stencils: 8,
            deadline_ms: 0,
            permute: true,
        }
    }
}

/// Aggregate results of one load-generation run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests that received a `RESP_PLAN`.
    pub completed: u64,
    /// Requests that failed (transport or typed rejection).
    pub errors: u64,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// Median response latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile response latency, microseconds.
    pub p99_us: u64,
    /// Maximum response latency, microseconds.
    pub max_us: u64,
    /// Responses served from the plan cache.
    pub hits: u64,
    /// Responses that ran a fresh search.
    pub misses: u64,
    /// Responses deduplicated onto a concurrent identical search.
    pub coalesced: u64,
}

impl LoadReport {
    /// Fraction of completed requests that avoided a fresh search
    /// (cache hits plus coalesced), in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.completed == 0 {
            return 0.0;
        }
        (self.hits + self.coalesced) as f64 / self.completed as f64
    }
}

/// Minimal deterministic PRNG so the service crate stays dependency-free.
struct XorShift64(u64);

impl XorShift64 {
    fn new(seed: u64) -> Self {
        // Zero is the one absorbing state of xorshift; avoid it.
        XorShift64(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        self.next() % n
    }
}

/// Deterministic pool of distinct, valid 2-D stencils. Index `i` always
/// yields the same stencil regardless of seed, so pool membership is
/// stable across runs and processes.
pub fn stencil_pool(distinct: usize) -> Vec<Stencil> {
    // Lex-positive building blocks; every subset of ≥2 forms a valid
    // stencil.
    let basis: Vec<IVec> = vec![
        IVec::from(vec![1, 0]),
        IVec::from(vec![0, 1]),
        IVec::from(vec![1, 1]),
        IVec::from(vec![2, 1]),
        IVec::from(vec![1, 2]),
        IVec::from(vec![1, -1]),
        IVec::from(vec![2, -1]),
        IVec::from(vec![0, 2]),
    ];
    let mut pool = Vec::with_capacity(distinct);
    let mut i: u64 = 0;
    while pool.len() < distinct {
        i += 1;
        // Enumerate subsets by the bits of `i`, requiring at least two
        // vectors so the search has real structure.
        let mask = i % (1 << basis.len());
        if mask.count_ones() < 2 {
            continue;
        }
        let vectors: Vec<IVec> = basis
            .iter()
            .enumerate()
            .filter(|(k, _)| mask & (1 << k) != 0)
            .map(|(_, v)| v.clone())
            .collect();
        if let Ok(s) = Stencil::new(vectors) {
            if !pool.contains(&s) {
                pool.push(s);
            }
        }
    }
    pool
}

/// Swap the two axes of a 2-D stencil when the swap keeps every vector
/// lex-positive; otherwise return the stencil unchanged. The swapped
/// problem is equivalent under the canonicalizing cache.
fn axis_swapped(s: &Stencil) -> Stencil {
    if s.dim() != 2 {
        return s.clone();
    }
    let swapped: Vec<IVec> = s.iter().map(|v| IVec::from(vec![v[1], v[0]])).collect();
    if !swapped.iter().all(IVec::is_lex_positive) {
        return s.clone();
    }
    Stencil::new(swapped).unwrap_or_else(|_| s.clone())
}

/// Result of a [`coalescing_burst`] round.
#[derive(Debug, Clone)]
pub struct BurstReport {
    /// Requests fired (barrier-synchronized, identical).
    pub burst: u64,
    /// Requests that ran a fresh search — the flight leaders.
    pub misses: u64,
    /// Requests served from the LRU.
    pub hits: u64,
    /// Requests that parked on an in-flight identical search.
    pub coalesced: u64,
    /// Distinct `(uov, cost, certificate_hash)` triples observed; 1 when
    /// the whole burst landed in a single flight.
    pub distinct_answers: u64,
    /// Requests that failed outright.
    pub errors: u64,
}

/// Fire `n` barrier-synchronized identical requests at a stencil outside
/// the [`stencil_pool`], so the burst is that key's cold start.
///
/// Timing is made deterministic with the protocol's own budget: the
/// burst problem is a 4-D cross stencil whose branch-and-bound runs far
/// past any deadline, and the request carries `deadline_ms`, so the
/// leader's flight provably stays open for the whole deadline window.
/// Every waiter scheduled inside it coalesces — on any machine, a
/// single-core host included. The leader degrades to a legal UOV at the
/// deadline and publishes it to all waiters; degraded answers are never
/// cached, so each call to this function is a fresh burst.
///
/// # Errors
///
/// [`ServiceError`] only if no client could connect; per-request
/// failures are counted in [`BurstReport::errors`].
pub fn coalescing_burst(
    endpoint: &str,
    n: usize,
    deadline_ms: u32,
) -> Result<BurstReport, ServiceError> {
    let mut vectors: Vec<IVec> = (0..4).map(|k| IVec::unit(4, k)).collect();
    vectors.push(IVec::from(vec![1, 1, 1, 1]));
    vectors.push(IVec::from(vec![1, -1, 1, -1]));
    let stencil = Stencil::new(vectors).map_err(|e| ServiceError::Malformed(e.to_string()))?;
    let n = n.max(2);
    let barrier = Arc::new(std::sync::Barrier::new(n));
    let mut handles = Vec::with_capacity(n);
    for _ in 0..n {
        let barrier = Arc::clone(&barrier);
        let endpoint = endpoint.to_string();
        let stencil = stencil.clone();
        handles.push(thread::spawn(move || {
            let mut client = Client::connect(&endpoint)?;
            barrier.wait();
            client.plan(&PlanRequest {
                stencil,
                objective: ObjectiveSpec::ShortestVector,
                deadline_ms: deadline_ms.max(1),
                flags: 0,
            })
        }));
    }
    let mut report = BurstReport {
        burst: n as u64,
        misses: 0,
        hits: 0,
        coalesced: 0,
        distinct_answers: 0,
        errors: 0,
    };
    let mut answers: Vec<(IVec, u128, u64)> = Vec::new();
    let mut connected = false;
    for h in handles {
        match h.join() {
            Ok(Ok(resp)) => {
                connected = true;
                answers.push((resp.uov, resp.cost, resp.certificate_hash));
                match resp.cache {
                    CacheOutcome::Miss => report.misses += 1,
                    CacheOutcome::Hit => report.hits += 1,
                    CacheOutcome::Coalesced => report.coalesced += 1,
                }
            }
            _ => report.errors += 1,
        }
    }
    if !connected && report.errors > 0 {
        return Err(ServiceError::ConnectionClosed);
    }
    answers.sort();
    answers.dedup();
    report.distinct_answers = answers.len() as u64;
    Ok(report)
}

/// Run the closed-loop workload against a live server.
///
/// # Errors
///
/// [`ServiceError`] if a client thread cannot connect at all; individual
/// request failures are counted in [`LoadReport::errors`] instead.
pub fn run(endpoint: &str, cfg: &LoadGenConfig) -> Result<LoadReport, ServiceError> {
    let pool = Arc::new(stencil_pool(cfg.distinct_stencils.max(1)));
    let errors = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let mut handles = Vec::with_capacity(cfg.clients.max(1));
    for client_idx in 0..cfg.clients.max(1) {
        let pool = Arc::clone(&pool);
        let errors = Arc::clone(&errors);
        let endpoint = endpoint.to_string();
        let cfg = cfg.clone();
        handles.push(thread::spawn(move || {
            let mut latencies: Vec<u64> = Vec::with_capacity(cfg.requests_per_client);
            let mut outcomes = [0u64; 3];
            let mut client = match Client::connect(&endpoint) {
                Ok(c) => c,
                Err(_) => {
                    errors.fetch_add(cfg.requests_per_client as u64, Ordering::Relaxed);
                    return (latencies, outcomes);
                }
            };
            // Distinct stream per client, same streams every run.
            let mut rng =
                XorShift64::new(cfg.seed ^ (client_idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            for _ in 0..cfg.requests_per_client {
                let base = &pool[rng.below(pool.len() as u64) as usize];
                let stencil = if cfg.permute && rng.below(2) == 1 {
                    axis_swapped(base)
                } else {
                    base.clone()
                };
                let objective = if rng.below(4) == 0 {
                    let n = 4 + rng.below(5) as i64;
                    ObjectiveSpec::KnownBounds(RectDomain::grid(n, n))
                } else {
                    ObjectiveSpec::ShortestVector
                };
                let req = PlanRequest {
                    stencil,
                    objective,
                    deadline_ms: cfg.deadline_ms,
                    flags: 0,
                };
                let sent = Instant::now();
                match client.plan(&req) {
                    Ok(resp) => {
                        let us = sent.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                        latencies.push(us);
                        let slot = match resp.cache {
                            CacheOutcome::Miss => 0,
                            CacheOutcome::Hit => 1,
                            CacheOutcome::Coalesced => 2,
                        };
                        outcomes[slot] += 1;
                    }
                    Err(_) => {
                        errors.fetch_add(1, Ordering::Relaxed);
                        // The connection may be unusable now; redial.
                        if let Ok(c) = Client::connect(&endpoint) {
                            client = c;
                        }
                    }
                }
            }
            (latencies, outcomes)
        }));
    }

    let mut latencies: Vec<u64> = Vec::new();
    let mut misses = 0u64;
    let mut hits = 0u64;
    let mut coalesced = 0u64;
    for h in handles {
        if let Ok((lat, outcomes)) = h.join() {
            latencies.extend(lat);
            misses += outcomes[0];
            hits += outcomes[1];
            coalesced += outcomes[2];
        } else {
            errors.fetch_add(1, Ordering::Relaxed);
        }
    }
    let elapsed = start.elapsed();
    latencies.sort_unstable();
    let completed = latencies.len() as u64;
    let pct = |p: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let idx = ((latencies.len() - 1) as f64 * p).round() as usize;
        latencies[idx.min(latencies.len() - 1)]
    };
    Ok(LoadReport {
        completed,
        errors: errors.load(Ordering::Relaxed),
        elapsed,
        throughput_rps: if elapsed.as_secs_f64() > 0.0 {
            completed as f64 / elapsed.as_secs_f64()
        } else {
            0.0
        },
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        max_us: latencies.last().copied().unwrap_or(0),
        hits,
        misses,
        coalesced,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stencil_pool_is_deterministic_and_distinct() {
        let a = stencil_pool(8);
        let b = stencil_pool(8);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        for (i, s) in a.iter().enumerate() {
            for t in &a[i + 1..] {
                assert_ne!(s, t);
            }
        }
    }

    #[test]
    fn xorshift_streams_are_deterministic() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next(), b.next());
        }
        // Seed 0 must not absorb.
        let mut z = XorShift64::new(0);
        assert_ne!(z.next(), 0);
    }

    #[test]
    fn axis_swap_preserves_validity() {
        for s in stencil_pool(8) {
            let t = axis_swapped(&s);
            assert_eq!(t.dim(), s.dim());
            assert!(t.iter().all(IVec::is_lex_positive));
        }
    }
}
